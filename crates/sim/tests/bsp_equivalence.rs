//! The BSP engine must be bit-identical to the reference interpreter for
//! every circuit, partition shape, and thread count — this is the
//! correctness claim behind cycle-accurate parallel simulation (§3.2).

mod common;

use common::random_circuit;
use parendi_core::{compile, MultiChipStrategy, PartitionConfig, Strategy};
use parendi_rtl::{Builder, Circuit, RegId};
use parendi_sim::{BspSimulator, Simulator};
use proptest::prelude::*;

/// Runs both engines and asserts identical architectural state.
fn check_equivalence(circuit: &Circuit, tiles: u32, threads: usize, cycles: u64) {
    let mut cfg = PartitionConfig::with_tiles(tiles);
    cfg.tiles_per_chip = (tiles.div_ceil(2)).max(1); // force multi-chip paths too
    let comp = compile(circuit, &cfg).expect("compiles");
    let mut reference = Simulator::new(circuit);
    let mut bsp = BspSimulator::new(circuit, &comp.partition, threads);
    reference.step_n(cycles);
    bsp.run(cycles);
    for i in 0..circuit.regs.len() {
        assert_eq!(
            bsp.reg_value(RegId(i as u32)),
            reference.reg_value(RegId(i as u32)),
            "register {} ({}) diverged after {cycles} cycles on {tiles} tiles / {threads} threads",
            i,
            circuit.regs[i].name,
        );
    }
    for (ai, a) in circuit.arrays.iter().enumerate() {
        for idx in 0..a.depth {
            assert_eq!(
                bsp.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                reference.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                "array {} [{}] diverged",
                a.name,
                idx
            );
        }
    }
}

#[test]
fn fixed_seeds_all_tile_and_thread_shapes() {
    for seed in 0..6u64 {
        let c = random_circuit(seed, 12, 60);
        for &(tiles, threads) in &[(1u32, 1usize), (2, 2), (4, 2), (8, 4), (13, 3)] {
            check_equivalence(&c, tiles, threads, 25);
        }
    }
}

/// Past 16 workers the phase barrier combines arrivals up a tree
/// (`engine.rs::PhaseBarrier`); a 24-tile partition on 24 threads must
/// stay bit-exact through it, chunked runs and all.
#[test]
fn tree_barrier_pool_shapes_are_equivalent() {
    for seed in [2u64, 31] {
        let c = random_circuit(seed, 26, 120);
        for &threads in &[17usize, 24] {
            check_equivalence(&c, 24, threads, 40);
        }
    }
}

#[test]
fn strategies_are_equivalent_too() {
    let c = random_circuit(99, 16, 80);
    for strategy in [Strategy::BottomUp, Strategy::Hypergraph] {
        for mc in [
            MultiChipStrategy::Pre,
            MultiChipStrategy::Post,
            MultiChipStrategy::None,
        ] {
            let mut cfg = PartitionConfig::with_tiles(6);
            cfg.tiles_per_chip = 3;
            cfg.strategy = strategy;
            cfg.multi_chip = mc;
            let comp = compile(&c, &cfg).expect("compiles");
            let mut reference = Simulator::new(&c);
            let mut bsp = BspSimulator::new(&c, &comp.partition, 3);
            reference.step_n(20);
            bsp.run(20);
            for i in 0..c.regs.len() {
                assert_eq!(
                    bsp.reg_value(RegId(i as u32)),
                    reference.reg_value(RegId(i as u32)),
                    "{strategy:?}/{mc:?} diverged at reg {i}"
                );
            }
        }
    }
}

#[test]
fn inputs_propagate_identically() {
    let mut b = Builder::new("io");
    let x = b.input("x", 32);
    let r = b.reg("acc", 32, 0);
    let s = b.add(r.q(), x);
    b.connect(r, s);
    let c = b.finish().unwrap();
    let comp = compile(&c, &PartitionConfig::with_tiles(1)).unwrap();
    let mut reference = Simulator::new(&c);
    let mut bsp = BspSimulator::new(&c, &comp.partition, 1);
    for v in [5u64, 7, 11] {
        reference.poke("x", v);
        bsp.poke("x", v);
        reference.step_n(2);
        bsp.run(2);
    }
    assert_eq!(reference.reg_value(RegId(0)).to_u64(), 2 * (5 + 7 + 11));
    assert_eq!(bsp.reg_value(RegId(0)), reference.reg_value(RegId(0)));
}

#[test]
fn long_runs_across_thread_pool_shapes() {
    // The double-buffered mailboxes alternate epochs by cycle parity and
    // the worker pool persists across `run` calls: exercise both over
    // hundreds of cycles, in several chunks, at every pool width.
    for seed in [3u64, 17, 91] {
        let c = random_circuit(seed, 14, 70);
        for &threads in &[1usize, 2, 4, 8] {
            let mut cfg = PartitionConfig::with_tiles(9);
            cfg.tiles_per_chip = 5;
            let comp = compile(&c, &cfg).expect("compiles");
            let mut reference = Simulator::new(&c);
            let mut bsp = BspSimulator::new(&c, &comp.partition, threads);
            // Uneven chunks catch epoch-parity bugs at run() boundaries.
            for chunk in [1u64, 2, 125, 128] {
                reference.step_n(chunk);
                bsp.run(chunk);
            }
            assert_eq!(bsp.cycle(), 256);
            for i in 0..c.regs.len() {
                assert_eq!(
                    bsp.reg_value(RegId(i as u32)),
                    reference.reg_value(RegId(i as u32)),
                    "seed {seed}: reg {i} diverged on {threads} threads after 256 cycles"
                );
            }
            for (ai, a) in c.arrays.iter().enumerate() {
                for idx in 0..a.depth {
                    assert_eq!(
                        bsp.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                        reference.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                        "seed {seed}: array {}[{idx}] diverged on {threads} threads",
                        a.name
                    );
                }
            }
        }
    }
}

/// Multi-chip partitions (chips >= 2, both fiber-distribution
/// strategies) must stay bit-identical to the reference across every
/// pool width — the chip-group worker layout, the per-chip-pair
/// aggregate mailboxes, and the off-chip flush sub-phase are exercised
/// here, with the artificial off-chip delay engaged to prove it never
/// affects functional results.
#[test]
fn multi_chip_worker_groups_are_equivalent() {
    for seed in [7u64, 42] {
        let c = random_circuit(seed, 14, 70);
        for mc in [MultiChipStrategy::Pre, MultiChipStrategy::Post] {
            for &(tiles, per_chip) in &[(8u32, 4u32), (12, 3)] {
                let mut cfg = PartitionConfig::with_tiles(tiles);
                cfg.tiles_per_chip = per_chip;
                cfg.multi_chip = mc;
                let comp = compile(&c, &cfg).expect("compiles");
                assert!(comp.partition.chips >= 2, "partition must span chips");
                for &threads in &[1usize, 2, 4, 8] {
                    let mut reference = Simulator::new(&c);
                    let mut bsp = BspSimulator::new(&c, &comp.partition, threads);
                    if comp.plan.offchip_total_bytes > 0 {
                        assert!(
                            bsp.offchip_channels() > 0,
                            "cross-chip traffic must ride aggregate mailboxes"
                        );
                    }
                    bsp.set_offchip_spin_per_word(8);
                    reference.step_n(50);
                    let ph = bsp.run_timed(50);
                    assert_eq!(
                        ph.per_tile.len(),
                        comp.partition.tiles_used() as usize,
                        "timed runs report one histogram entry per tile"
                    );
                    for i in 0..c.regs.len() {
                        assert_eq!(
                            bsp.reg_value(RegId(i as u32)),
                            reference.reg_value(RegId(i as u32)),
                            "seed {seed} {mc:?} {tiles}t/{per_chip}pc x{threads}: reg {i}"
                        );
                    }
                    for (ai, a) in c.arrays.iter().enumerate() {
                        for idx in 0..a.depth {
                            assert_eq!(
                                bsp.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                                reference.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                                "seed {seed} {mc:?}: array {}[{idx}]",
                                a.name
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Single-chip partitions have no off-chip fabric: no aggregate
/// mailboxes, and a zero off-chip column in the timed split.
#[test]
fn single_chip_has_no_offchip_phase() {
    let c = random_circuit(5, 10, 50);
    let cfg = PartitionConfig::with_tiles(6); // tiles_per_chip = 1472
    let comp = compile(&c, &cfg).expect("compiles");
    assert_eq!(comp.partition.chips, 1);
    let mut bsp = BspSimulator::new(&c, &comp.partition, 2);
    assert_eq!(bsp.offchip_channels(), 0);
    let ph = bsp.run_timed(20);
    assert_eq!(ph.offchip_s, 0.0, "the flush sub-phase is skipped outright");
    assert!(
        ph.per_tile.iter().all(|t| t.offchip_s == 0.0),
        "no tile flushes off-chip on one chip"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: any random circuit, any partition width, any thread
    /// count — identical state after a random number of cycles.
    #[test]
    fn bsp_matches_reference(
        seed in 0u64..10_000,
        tiles in 1u32..10,
        threads in 1usize..5,
        cycles in 1u64..40,
    ) {
        let c = random_circuit(seed, 8, 40);
        check_equivalence(&c, tiles, threads, cycles);
    }

    /// Property: point-to-point engine equals the reference over >=256
    /// cycles for random circuits x tile counts x 1/2/4/8 threads.
    #[test]
    fn bsp_matches_reference_long(
        seed in 0u64..10_000,
        tiles in 1u32..14,
        threads_pick in 0usize..4,
    ) {
        let c = random_circuit(seed, 10, 50);
        let threads = [1usize, 2, 4, 8][threads_pick];
        check_equivalence(&c, tiles, threads, 256);
    }
}
