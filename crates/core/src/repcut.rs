//! The RepCut-style alternative partitioning strategy (paper §6.6).
//!
//! RepCut formulates SLB as hypergraph partitioning: hypernodes are
//! fibers and hyperedges are the *replication clusters* — maximal node
//! groups shared by the same fibers — so a good cut keeps sharing fibers
//! together and bounds duplicated work. We reuse our multilevel
//! partitioner over exactly that hypergraph.

use crate::process::Process;
use parendi_graph::analysis::replication_clusters;
use parendi_graph::cost::CostModel;
use parendi_graph::fiber::{FiberId, FiberSet};
use parendi_hypergraph::Hypergraph;

/// Partitions the fibers of one chip into `k` processes with the RepCut
/// hypergraph formulation. `fiber_ids` selects the chip's fibers.
pub fn partition_fibers(
    fs: &FiberSet,
    costs: &CostModel,
    fiber_ids: &[FiberId],
    k: u32,
    seed: u64,
) -> Vec<Process> {
    if fiber_ids.is_empty() {
        return Vec::new();
    }
    let k = k.min(fiber_ids.len() as u32).max(1);
    // Local index of each selected fiber.
    let mut local = vec![u32::MAX; fs.len()];
    for (i, f) in fiber_ids.iter().enumerate() {
        local[f.index()] = i as u32;
    }
    let weights: Vec<u64> = fiber_ids
        .iter()
        .map(|f| fs.fibers[f.index()].ipu_cost.max(1))
        .collect();
    let mut hg = Hypergraph::new(weights);
    for cluster in replication_clusters(fs, &costs.ipu_cycles) {
        let pins: Vec<u32> = cluster
            .fibers
            .iter()
            .filter_map(|f| {
                let l = local[f.index()];
                (l != u32::MAX).then_some(l)
            })
            .collect();
        if pins.len() >= 2 {
            hg.add_edge(cluster.ipu_cost.max(1), pins);
        }
    }
    let result = hg.partition(k, 0.08, seed);

    let mut buckets: Vec<Vec<FiberId>> = vec![Vec::new(); k as usize];
    for (i, &f) in fiber_ids.iter().enumerate() {
        buckets[result.parts[i] as usize].push(f);
    }
    buckets
        .into_iter()
        .filter(|b| !b.is_empty())
        .map(|b| {
            let mut it = b.into_iter();
            let mut p = Process::singleton(fs, it.next().expect("non-empty bucket"));
            for f in it {
                let q = Process::singleton(fs, f);
                p.merge(&q, costs);
            }
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_graph::extract_fibers;
    use parendi_rtl::Builder;

    #[test]
    fn repcut_groups_sharing_fibers() {
        // Two families of fibers; each family shares one expensive cone.
        let mut b = Builder::new("fam");
        for fam in 0..2 {
            let x = b.input(format!("x{fam}"), 32);
            let mut shared = x;
            for _ in 0..6 {
                shared = b.mul(shared, shared);
            }
            for i in 0..4 {
                let r = b.reg(format!("f{fam}_r{i}"), 32, 0);
                let k = b.lit(32, i as u64);
                let v = b.add(shared, k);
                let v = b.xor(v, r.q());
                b.connect(r, v);
            }
        }
        let c = b.finish().unwrap();
        let costs = CostModel::of(&c);
        let fs = extract_fibers(&c, &costs);
        let all: Vec<FiberId> = (0..fs.len() as u32).map(FiberId).collect();
        let procs = partition_fibers(&fs, &costs, &all, 2, 1);
        assert_eq!(procs.len(), 2);
        // Each process should hold one complete family (fibers 0-3 / 4-7).
        for p in &procs {
            let fams: Vec<u32> = p.fibers.iter().map(|f| f.0 / 4).collect();
            assert!(
                fams.iter().all(|&x| x == fams[0]),
                "family split: {:?}",
                p.fibers
            );
        }
    }

    #[test]
    fn k_larger_than_fibers_is_clamped() {
        let mut b = Builder::new("one");
        let r = b.reg("r", 8, 0);
        let one = b.lit(8, 1);
        let n = b.add(r.q(), one);
        b.connect(r, n);
        let c = b.finish().unwrap();
        let costs = CostModel::of(&c);
        let fs = extract_fibers(&c, &costs);
        let all: Vec<FiberId> = (0..fs.len() as u32).map(FiberId).collect();
        let procs = partition_fibers(&fs, &costs, &all, 64, 1);
        assert_eq!(procs.len(), 1);
    }
}
