//! Arbitrary-width two's-complement bit vectors.
//!
//! [`Bits`] is the value type of the RTL IR: every signal, register and
//! array element carries a fixed bit width between 1 and [`MAX_WIDTH`].
//! Values are stored as little-endian `u64` words with the unused high
//! bits of the top word kept at zero (the *normalized* form). All
//! arithmetic wraps modulo `2^width`, matching Verilog semantics for
//! same-width operands.
//!
//! The [`word`] submodule exposes the underlying word-level kernels that
//! operate on raw `&[u64]` slices; the simulation engine evaluates nodes
//! directly on a flat word arena using those kernels, so `Bits` itself is
//! only on hot paths at the testbench boundary.
//!
//! # Examples
//!
//! ```
//! use parendi_rtl::Bits;
//!
//! let a = Bits::from_u64(12, 0x0ab);
//! let b = Bits::from_u64(12, 0x101);
//! assert_eq!(a.add(&b), Bits::from_u64(12, 0x1ac));
//! assert_eq!(a.concat(&b).width(), 24);
//! ```

use std::fmt;

/// Maximum supported signal width in bits.
///
/// Wide enough for any realistic RTL bus; small enough that width
/// arithmetic never overflows `u32`.
pub const MAX_WIDTH: u32 = 1 << 20;

/// Number of `u64` words required to hold `width` bits.
#[inline]
pub const fn words_for(width: u32) -> usize {
    width.div_ceil(64) as usize
}

/// Mask selecting the valid bits of the top word of a `width`-bit value.
#[inline]
pub const fn top_word_mask(width: u32) -> u64 {
    let rem = width % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// A fixed-width bit vector value.
///
/// See the [module documentation](self) for representation details.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    width: u32,
    words: Vec<u64>,
}

impl Bits {
    /// Creates an all-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn zero(width: u32) -> Self {
        assert!((1..=MAX_WIDTH).contains(&width), "invalid width {width}");
        Bits {
            width,
            words: vec![0; words_for(width)],
        }
    }

    /// Creates an all-ones value of the given width.
    pub fn ones(width: u32) -> Self {
        let mut b = Bits::zero(width);
        for w in &mut b.words {
            *w = u64::MAX;
        }
        b.normalize();
        b
    }

    /// Creates a value from a `u64`, truncating to `width` bits.
    pub fn from_u64(width: u32, value: u64) -> Self {
        let mut b = Bits::zero(width);
        b.words[0] = value;
        b.normalize();
        b
    }

    /// Creates a value from a `u128`, truncating to `width` bits.
    pub fn from_u128(width: u32, value: u128) -> Self {
        let mut b = Bits::zero(width);
        b.words[0] = value as u64;
        if b.words.len() > 1 {
            b.words[1] = (value >> 64) as u64;
        }
        b.normalize();
        b
    }

    /// Creates a value from little-endian words, truncating to `width` bits.
    ///
    /// Missing high words are taken as zero; extra words are ignored.
    pub fn from_words(width: u32, words: &[u64]) -> Self {
        let mut b = Bits::zero(width);
        let n = b.words.len().min(words.len());
        b.words[..n].copy_from_slice(&words[..n]);
        b.normalize();
        b
    }

    /// Parses a hexadecimal string (optionally `0x`-prefixed, `_` allowed).
    ///
    /// # Errors
    ///
    /// Returns an error message if a character is not a hex digit or the
    /// value does not fit in `width` bits.
    pub fn from_hex(width: u32, s: &str) -> Result<Self, String> {
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        let mut b = Bits::zero(width);
        for (nibble, c) in s.chars().rev().filter(|&c| c != '_').enumerate() {
            let v = c
                .to_digit(16)
                .ok_or_else(|| format!("invalid hex digit {c:?}"))? as u64;
            let bit = nibble as u32 * 4;
            if bit >= width && v != 0 {
                return Err(format!("value does not fit in {width} bits"));
            }
            if bit < width {
                let wi = (bit / 64) as usize;
                b.words[wi] |= v << (bit % 64);
                // A nibble can straddle a word boundary.
                if bit % 64 > 60 && wi + 1 < b.words.len() {
                    b.words[wi + 1] |= v >> (64 - bit % 64);
                }
            }
        }
        let check = b.clone();
        b.normalize();
        if b != check {
            return Err(format!("value does not fit in {width} bits"));
        }
        Ok(b)
    }

    /// The width of this value in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The underlying little-endian words (normalized).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The low 64 bits of the value.
    #[inline]
    pub fn to_u64(&self) -> u64 {
        self.words[0]
    }

    /// The full value if it fits in a `u64`, otherwise `None`.
    pub fn try_to_u64(&self) -> Option<u64> {
        if self.words[1..].iter().all(|&w| w == 0) {
            Some(self.words[0])
        } else {
            None
        }
    }

    /// Whether every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The bit at position `i` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_bit(&mut self, i: u32, v: bool) {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let w = &mut self.words[(i / 64) as usize];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    fn normalize(&mut self) {
        let last = self.words.len() - 1;
        self.words[last] &= top_word_mask(self.width);
    }

    fn binop(&self, rhs: &Bits, f: impl Fn(&mut [u64], &[u64], &[u64], u32)) -> Bits {
        assert_eq!(
            self.width, rhs.width,
            "width mismatch {} vs {}",
            self.width, rhs.width
        );
        let mut out = Bits::zero(self.width);
        f(&mut out.words, &self.words, &rhs.words, self.width);
        out
    }

    /// Wrapping addition. Panics on width mismatch.
    pub fn add(&self, rhs: &Bits) -> Bits {
        self.binop(rhs, word::add)
    }

    /// Wrapping subtraction. Panics on width mismatch.
    pub fn sub(&self, rhs: &Bits) -> Bits {
        self.binop(rhs, word::sub)
    }

    /// Wrapping negation (two's complement).
    pub fn neg(&self) -> Bits {
        let mut out = Bits::zero(self.width);
        word::neg(&mut out.words, &self.words, self.width);
        out
    }

    /// Wrapping multiplication (result truncated to the operand width).
    pub fn mul(&self, rhs: &Bits) -> Bits {
        self.binop(rhs, word::mul)
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(&self, rhs: &Bits) -> Bits {
        self.binop(rhs, word::and)
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(&self, rhs: &Bits) -> Bits {
        self.binop(rhs, word::or)
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(&self, rhs: &Bits) -> Bits {
        self.binop(rhs, word::xor)
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Bits {
        let mut out = Bits::zero(self.width);
        word::not(&mut out.words, &self.words, self.width);
        out
    }

    /// Logical shift left by `sh` bits (zeros shifted in; width preserved).
    pub fn shl(&self, sh: u32) -> Bits {
        let mut out = Bits::zero(self.width);
        word::shl(&mut out.words, &self.words, sh, self.width);
        out
    }

    /// Logical shift right by `sh` bits.
    pub fn lshr(&self, sh: u32) -> Bits {
        let mut out = Bits::zero(self.width);
        word::lshr(&mut out.words, &self.words, sh, self.width);
        out
    }

    /// Arithmetic shift right by `sh` bits (sign bit replicated).
    pub fn ashr(&self, sh: u32) -> Bits {
        let mut out = Bits::zero(self.width);
        word::ashr(&mut out.words, &self.words, sh, self.width);
        out
    }

    /// Unsigned less-than. Panics on width mismatch.
    pub fn lt_u(&self, rhs: &Bits) -> bool {
        assert_eq!(self.width, rhs.width);
        word::lt_u(&self.words, &rhs.words)
    }

    /// Signed less-than (two's complement). Panics on width mismatch.
    pub fn lt_s(&self, rhs: &Bits) -> bool {
        assert_eq!(self.width, rhs.width);
        word::lt_s(&self.words, &rhs.words, self.width)
    }

    /// AND-reduction: true iff all bits are one.
    pub fn red_and(&self) -> bool {
        word::red_and(&self.words, self.width)
    }

    /// OR-reduction: true iff any bit is one.
    pub fn red_or(&self) -> bool {
        !self.is_zero()
    }

    /// XOR-reduction: parity of the set bits.
    pub fn red_xor(&self) -> bool {
        self.count_ones() % 2 == 1
    }

    /// Extracts bits `hi..=lo` as a `(hi-lo+1)`-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(&self, hi: u32, lo: u32) -> Bits {
        assert!(
            hi >= lo && hi < self.width,
            "bad slice [{hi}:{lo}] of width {}",
            self.width
        );
        let mut out = Bits::zero(hi - lo + 1);
        word::slice(&mut out.words, &self.words, hi, lo);
        out
    }

    /// Concatenation: `self` becomes the high bits, `lo` the low bits.
    pub fn concat(&self, lo: &Bits) -> Bits {
        let mut out = Bits::zero(self.width + lo.width);
        word::concat(&mut out.words, &self.words, &lo.words, lo.width);
        out.normalize();
        out
    }

    /// Zero-extends (or truncates) to `width` bits.
    pub fn zext(&self, width: u32) -> Bits {
        let mut out = Bits::zero(width);
        word::zext(&mut out.words, &self.words, width);
        out
    }

    /// Sign-extends (or truncates) to `width` bits.
    pub fn sext(&self, width: u32) -> Bits {
        let mut out = Bits::zero(width);
        word::sext(&mut out.words, &self.words, self.width, width);
        out
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(self, f)
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for (i, w) in self.words.iter().enumerate().rev() {
            if started {
                write!(f, "{w:016x}")?;
            } else if *w != 0 || i == 0 {
                write!(f, "{w:x}")?;
                started = true;
            }
        }
        Ok(())
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl From<bool> for Bits {
    fn from(v: bool) -> Self {
        Bits::from_u64(1, v as u64)
    }
}

/// Word-level kernels used both by [`Bits`] and by the simulation engine's
/// flat value arena. All slices must be exactly `words_for(width)` long and
/// inputs must be normalized; outputs are produced normalized.
pub mod word {
    use super::{top_word_mask, words_for};

    /// `dst = a + b (mod 2^width)`.
    pub fn add(dst: &mut [u64], a: &[u64], b: &[u64], width: u32) {
        let mut carry = 0u64;
        for i in 0..dst.len() {
            let (s1, c1) = a[i].overflowing_add(b[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            dst[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        mask_top(dst, width);
    }

    /// `dst = a - b (mod 2^width)`.
    pub fn sub(dst: &mut [u64], a: &[u64], b: &[u64], width: u32) {
        let mut borrow = 0u64;
        for i in 0..dst.len() {
            let (d1, b1) = a[i].overflowing_sub(b[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            dst[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        mask_top(dst, width);
    }

    /// `dst = -a (mod 2^width)`: two's complement without a zero
    /// temporary (the hot path of `Neg` in both simulation engines).
    pub fn neg(dst: &mut [u64], a: &[u64], width: u32) {
        let mut borrow = 0u64;
        for i in 0..dst.len() {
            let (d1, b1) = 0u64.overflowing_sub(a[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            dst[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        mask_top(dst, width);
    }

    /// `dst = a * b (mod 2^width)`, schoolbook with truncation.
    ///
    /// `dst` must not alias `a` or `b`.
    pub fn mul(dst: &mut [u64], a: &[u64], b: &[u64], width: u32) {
        dst.fill(0);
        let n = dst.len();
        for (i, &aw) in a.iter().enumerate().take(n) {
            if aw == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bw) in b.iter().enumerate().take(n - i) {
                let t = aw as u128 * bw as u128 + dst[i + j] as u128 + carry;
                dst[i + j] = t as u64;
                carry = t >> 64;
            }
        }
        mask_top(dst, width);
    }

    /// `dst = a & b`.
    pub fn and(dst: &mut [u64], a: &[u64], b: &[u64], _width: u32) {
        for i in 0..dst.len() {
            dst[i] = a[i] & b[i];
        }
    }

    /// `dst = a | b`.
    pub fn or(dst: &mut [u64], a: &[u64], b: &[u64], _width: u32) {
        for i in 0..dst.len() {
            dst[i] = a[i] | b[i];
        }
    }

    /// `dst = a ^ b`.
    pub fn xor(dst: &mut [u64], a: &[u64], b: &[u64], _width: u32) {
        for i in 0..dst.len() {
            dst[i] = a[i] ^ b[i];
        }
    }

    /// `dst = !a` (masked to width).
    pub fn not(dst: &mut [u64], a: &[u64], width: u32) {
        for i in 0..dst.len() {
            dst[i] = !a[i];
        }
        mask_top(dst, width);
    }

    /// `dst = a << sh` (width preserved; `sh >= width` yields zero).
    pub fn shl(dst: &mut [u64], a: &[u64], sh: u32, width: u32) {
        dst.fill(0);
        if sh >= width {
            return;
        }
        let ws = (sh / 64) as usize;
        let bs = sh % 64;
        for i in (ws..dst.len()).rev() {
            let mut v = a[i - ws] << bs;
            if bs > 0 && i > ws {
                v |= a[i - ws - 1] >> (64 - bs);
            }
            dst[i] = v;
        }
        mask_top(dst, width);
    }

    /// `dst = a >> sh` (logical; `sh >= width` yields zero).
    pub fn lshr(dst: &mut [u64], a: &[u64], sh: u32, width: u32) {
        dst.fill(0);
        if sh >= width {
            return;
        }
        let ws = (sh / 64) as usize;
        let bs = sh % 64;
        let n = dst.len();
        for i in 0..n - ws {
            let mut v = a[i + ws] >> bs;
            if bs > 0 && i + ws + 1 < n {
                v |= a[i + ws + 1] << (64 - bs);
            }
            dst[i] = v;
        }
    }

    /// `dst = a >> sh` (arithmetic: bit `width-1` replicated).
    pub fn ashr(dst: &mut [u64], a: &[u64], sh: u32, width: u32) {
        let sign = (a[((width - 1) / 64) as usize] >> ((width - 1) % 64)) & 1 == 1;
        let sh = sh.min(width);
        lshr(dst, a, sh, width);
        if sign && sh > 0 {
            // Fill the vacated top `sh` bits with ones.
            for bit in width - sh..width {
                dst[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        mask_top(dst, width);
    }

    /// Unsigned comparison `a < b` (equal lengths).
    pub fn lt_u(a: &[u64], b: &[u64]) -> bool {
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i] < b[i];
            }
        }
        false
    }

    /// Signed comparison `a < b` at the given width.
    pub fn lt_s(a: &[u64], b: &[u64], width: u32) -> bool {
        let sa = (a[((width - 1) / 64) as usize] >> ((width - 1) % 64)) & 1 == 1;
        let sb = (b[((width - 1) / 64) as usize] >> ((width - 1) % 64)) & 1 == 1;
        if sa != sb {
            return sa;
        }
        lt_u(a, b)
    }

    /// Equality of two normalized values.
    pub fn eq(a: &[u64], b: &[u64]) -> bool {
        a == b
    }

    /// AND-reduction at the given width.
    pub fn red_and(a: &[u64], width: u32) -> bool {
        let last = a.len() - 1;
        a[..last].iter().all(|&w| w == u64::MAX) && a[last] == top_word_mask(width)
    }

    /// OR-reduction.
    pub fn red_or(a: &[u64]) -> bool {
        a.iter().any(|&w| w != 0)
    }

    /// XOR-reduction (parity).
    pub fn red_xor(a: &[u64]) -> bool {
        a.iter().fold(0u32, |p, w| p ^ (w.count_ones() & 1)) == 1
    }

    /// Extracts bits `hi..=lo` of `src` into `dst` (sized for `hi-lo+1`).
    pub fn slice(dst: &mut [u64], src: &[u64], hi: u32, lo: u32) {
        let width = hi - lo + 1;
        let ws = (lo / 64) as usize;
        let bs = lo % 64;
        for i in 0..dst.len() {
            let mut v = src[i + ws] >> bs;
            if bs > 0 && i + ws + 1 < src.len() {
                v |= src[i + ws + 1] << (64 - bs);
            }
            dst[i] = v;
        }
        mask_top(dst, width);
    }

    /// `dst = {hi, lo}` where `lo` occupies the low `lo_width` bits.
    pub fn concat(dst: &mut [u64], hi: &[u64], lo: &[u64], lo_width: u32) {
        dst.fill(0);
        dst[..lo.len()].copy_from_slice(lo);
        let ws = (lo_width / 64) as usize;
        let bs = lo_width % 64;
        for (i, &h) in hi.iter().enumerate() {
            dst[i + ws] |= h << bs;
            if bs > 0 && i + ws + 1 < dst.len() {
                dst[i + ws + 1] |= h >> (64 - bs);
            }
        }
    }

    /// Zero-extends or truncates `src` into `dst` (sized for `width`).
    pub fn zext(dst: &mut [u64], src: &[u64], width: u32) {
        let n = dst.len().min(src.len());
        dst[..n].copy_from_slice(&src[..n]);
        dst[n..].fill(0);
        mask_top(dst, width);
    }

    /// Sign-extends or truncates `src` (of `src_width` bits) into `dst`.
    pub fn sext(dst: &mut [u64], src: &[u64], src_width: u32, width: u32) {
        zext(dst, src, width);
        if width > src_width {
            let sign = (src[((src_width - 1) / 64) as usize] >> ((src_width - 1) % 64)) & 1 == 1;
            if sign {
                for bit in src_width..width {
                    dst[(bit / 64) as usize] |= 1 << (bit % 64);
                }
            }
        }
        mask_top(dst, width);
    }

    /// Folds a (normalized, little-endian) index value to `u64::MAX`
    /// when it cannot address any real array — any high word set, or a
    /// low word beyond `u32::MAX` (array depths fit in `u32`) — and to
    /// its low word otherwise. Both simulation engines share this so
    /// out-of-range semantics cannot drift between them.
    pub fn fold_index(v: &[u64]) -> u64 {
        if v[1..].iter().any(|&x| x != 0) || v[0] > u32::MAX as u64 {
            u64::MAX
        } else {
            v[0]
        }
    }

    /// Saturating shift amount: anything ≥ the value width behaves as
    /// width (shared by both simulation engines).
    pub fn shift_amount(bv: &[u64], width: u32) -> u32 {
        if bv[1..].iter().any(|&x| x != 0) || bv[0] > u32::MAX as u64 {
            width
        } else {
            (bv[0] as u32).min(width)
        }
    }

    /// Copies a normalized value.
    pub fn copy(dst: &mut [u64], src: &[u64]) {
        dst.copy_from_slice(src);
    }

    /// Masks the top word of `dst` to `width` bits.
    #[inline]
    pub fn mask_top(dst: &mut [u64], width: u32) {
        let last = words_for(width) - 1;
        dst[last] &= top_word_mask(width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_normalization() {
        let b = Bits::from_u64(4, 0xff);
        assert_eq!(b.to_u64(), 0xf);
        assert_eq!(b.width(), 4);
        let o = Bits::ones(65);
        assert_eq!(o.words()[0], u64::MAX);
        assert_eq!(o.words()[1], 1);
        assert_eq!(o.count_ones(), 65);
    }

    #[test]
    fn from_u128_roundtrip() {
        let v = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        let b = Bits::from_u128(128, v);
        assert_eq!(b.words()[0], 0x1122_3344_5566_7788);
        assert_eq!(b.words()[1], 0x1234_5678_9abc_def0);
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(
            Bits::from_hex(16, "0xBEEF").unwrap(),
            Bits::from_u64(16, 0xbeef)
        );
        assert_eq!(
            Bits::from_hex(12, "a_b_c").unwrap(),
            Bits::from_u64(12, 0xabc)
        );
        assert!(Bits::from_hex(8, "100").is_err());
        assert!(Bits::from_hex(8, "zz").is_err());
        let wide = Bits::from_hex(130, "3ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(wide, Bits::ones(130));
    }

    #[test]
    fn add_sub_wraparound() {
        let a = Bits::from_u64(8, 0xff);
        let one = Bits::from_u64(8, 1);
        assert_eq!(a.add(&one), Bits::zero(8));
        assert_eq!(Bits::zero(8).sub(&one), Bits::from_u64(8, 0xff));
        // Carry across word boundary.
        let big = Bits::ones(64).zext(65);
        assert_eq!(big.add(&Bits::from_u64(65, 1)).words(), &[0, 1]);
    }

    #[test]
    fn mul_truncates() {
        let a = Bits::from_u64(8, 0x10);
        assert_eq!(a.mul(&a), Bits::zero(8));
        let b = Bits::from_u64(16, 0x10);
        assert_eq!(b.mul(&b), Bits::from_u64(16, 0x100));
        // 128-bit multiply.
        let x = Bits::from_u128(128, u64::MAX as u128);
        let y = x.mul(&x);
        assert_eq!(
            y,
            Bits::from_u128(128, (u64::MAX as u128) * (u64::MAX as u128))
        );
    }

    #[test]
    fn shifts() {
        let a = Bits::from_u64(8, 0b1001_0110);
        assert_eq!(a.shl(2), Bits::from_u64(8, 0b0101_1000));
        assert_eq!(a.lshr(2), Bits::from_u64(8, 0b0010_0101));
        assert_eq!(a.ashr(2), Bits::from_u64(8, 0b1110_0101));
        assert_eq!(a.shl(8), Bits::zero(8));
        assert_eq!(a.ashr(100), Bits::ones(8));
        let w = Bits::from_u128(100, 1).shl(99);
        assert!(w.bit(99));
        assert_eq!(w.lshr(99), Bits::from_u64(100, 1).zext(100));
    }

    #[test]
    fn comparisons() {
        let a = Bits::from_u64(8, 0x80); // -128 signed
        let b = Bits::from_u64(8, 0x01);
        assert!(b.lt_u(&a));
        assert!(a.lt_s(&b));
        assert!(!a.lt_u(&b));
        let x = Bits::from_u128(128, 1 << 100);
        let y = Bits::from_u128(128, 1);
        assert!(y.lt_u(&x));
    }

    #[test]
    fn reductions() {
        assert!(Bits::ones(33).red_and());
        assert!(!Bits::from_u64(33, 1).red_and());
        assert!(Bits::from_u64(33, 2).red_or());
        assert!(!Bits::zero(33).red_or());
        assert!(Bits::from_u64(8, 0b111).red_xor());
        assert!(!Bits::from_u64(8, 0b11).red_xor());
    }

    #[test]
    fn slice_concat() {
        let v = Bits::from_u64(16, 0xabcd);
        assert_eq!(v.slice(15, 8), Bits::from_u64(8, 0xab));
        assert_eq!(v.slice(7, 0), Bits::from_u64(8, 0xcd));
        assert_eq!(v.slice(11, 4), Bits::from_u64(8, 0xbc));
        assert_eq!(v.slice(15, 8).concat(&v.slice(7, 0)), v);
        // Straddling a word boundary.
        let w = Bits::from_u128(128, 0xdead_beef << 60);
        assert_eq!(w.slice(91, 60), Bits::from_u64(32, 0xdead_beef));
    }

    #[test]
    fn extension() {
        let v = Bits::from_u64(4, 0b1010);
        assert_eq!(v.zext(8), Bits::from_u64(8, 0b0000_1010));
        assert_eq!(v.sext(8), Bits::from_u64(8, 0b1111_1010));
        assert_eq!(Bits::from_u64(4, 0b0101).sext(8), Bits::from_u64(8, 0b0101));
        assert_eq!(v.sext(2), Bits::from_u64(2, 0b10));
        let neg = Bits::ones(64);
        assert_eq!(neg.sext(128), Bits::ones(128));
    }

    #[test]
    fn neg_not() {
        let v = Bits::from_u64(8, 1);
        assert_eq!(v.neg(), Bits::from_u64(8, 0xff));
        assert_eq!(v.not(), Bits::from_u64(8, 0xfe));
        assert_eq!(Bits::zero(8).neg(), Bits::zero(8));
    }

    #[test]
    fn formatting() {
        let v = Bits::from_u64(16, 0xabc);
        assert_eq!(format!("{v:x}"), "abc");
        assert_eq!(format!("{v:?}"), "16'habc");
        assert_eq!(format!("{:b}", Bits::from_u64(4, 0b1010)), "1010");
        let w = Bits::from_u128(96, 0x1_0000_0000_0000_0000u128);
        assert_eq!(format!("{w:x}"), "10000000000000000");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = Bits::zero(4).add(&Bits::zero(5));
    }

    #[test]
    #[should_panic(expected = "invalid width")]
    fn zero_width_panics() {
        let _ = Bits::zero(0);
    }
}
