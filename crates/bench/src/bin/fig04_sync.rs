//! Fig. 4: PRNG simulation rate vs parallelism with a fixed number of
//! fibers per tile (IPU) or thread (x64).
//!
//! The PRNGs are independent (`t_comm = 0`), so the experiment isolates
//! `t_sync`: rate(m) = clk / (2·barrier(m) + f·fiber_cost). The fiber
//! cost is *measured* from the real xorshift design via the cost model;
//! the barrier costs come from the machine models of §4.1.

use parendi_core::{compile, PartitionConfig};
use parendi_designs::prng::build_prng_bank;
use parendi_graph::{extract_fibers, CostModel};
use parendi_machine::ipu::IpuConfig;
use parendi_machine::x64::X64Config;
use parendi_sim::BspSimulator;

fn main() {
    // Measure one fiber's cost from the real design.
    let bank = build_prng_bank(4);
    let costs = CostModel::of(&bank);
    let fibers = extract_fibers(&bank, &costs);
    let ipu_fiber = fibers.fibers[0].ipu_cost;
    let x64_fiber = fibers.fibers[0].x64_cost;
    println!("measured xorshift fiber: {ipu_fiber} IPU cycles, {x64_fiber} x64 instructions\n");

    let ipu = IpuConfig::m2000();
    println!("Fig. 4 (left): IPU, rate normalized to 64 tiles");
    println!("{:>6} {:>9} {:>9} {:>9}", "tiles", "7f", "56f", "448f");
    let fs = [7u64, 56, 448];
    let base: Vec<f64> = fs
        .iter()
        .map(|&f| 1.0 / (ipu.sync_cycles(64) as f64 + f as f64 * ipu_fiber as f64))
        .collect();
    let mut tiles = 64;
    while tiles <= 5888 {
        let rates: Vec<f64> = fs
            .iter()
            .map(|&f| 1.0 / (ipu.sync_cycles(tiles) as f64 + f as f64 * ipu_fiber as f64))
            .collect();
        println!(
            "{tiles:>6} {:>9.3} {:>9.3} {:>9.3}",
            rates[0] / base[0],
            rates[1] / base[1],
            rates[2] / base[2]
        );
        tiles += 832;
    }

    let ix3 = X64Config::ix3();
    println!("\nFig. 4 (right): x64 (ix3 barrier), rate normalized to 1 thread");
    println!(
        "{:>8} {:>9} {:>9} {:>9}",
        "threads", "736f", "5888f", "47104f"
    );
    let fs = [736u64, 5888, 47104];
    let base: Vec<f64> = fs
        .iter()
        .map(|&f| 1.0 / (f as f64 * x64_fiber as f64 / ix3.base_ipc))
        .collect();
    for threads in [1u32, 7, 14, 21, 28, 35, 42, 49, 56] {
        let rates: Vec<f64> = fs
            .iter()
            .map(|&f| {
                1.0 / (ix3.sync_cycles(threads) as f64 + f as f64 * x64_fiber as f64 / ix3.base_ipc)
            })
            .collect();
        println!(
            "{threads:>8} {:>9.3} {:>9.3} {:>9.3}",
            rates[0] / base[0],
            rates[1] / base[1],
            rates[2] / base[2]
        );
    }
    println!(
        "\nShape check: IPU\u{2019}s 448f line stays near 1.0; x64 falls sharply even at 47104f."
    );

    // Host-engine cross-check: the PRNGs are independent (`t_comm = 0`),
    // so the measured exchange phase of the real point-to-point engine is
    // pure synchronization — the executable counterpart of the modeled
    // barrier costs above.
    let bank = build_prng_bank(64);
    let comp = compile(&bank, &PartitionConfig::with_tiles(32)).expect("prng bank fits");
    println!(
        "\nHost engine (measured, {} tiles, t_comm = 0): exchange phase is barrier cost",
        comp.partition.tiles_used()
    );
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "threads", "compute/cyc", "exchange/cyc", "kcyc/s"
    );
    for threads in [1usize, 2, 4, 8] {
        let mut sim = BspSimulator::new(&bank, &comp.partition, threads);
        sim.run(100); // warm the persistent pool
        let cycles = 2000u64;
        let ph = sim.run_timed(cycles);
        println!(
            "{threads:>8} {:>10.2}µs {:>12.2}µs {:>12.1}",
            ph.compute_s * 1e6 / cycles as f64,
            ph.exchange_s * 1e6 / cycles as f64,
            cycles as f64 / ph.total_s / 1e3,
        );
    }
}
