//! The `srN`/`lrN` benchmarks: an N×N mesh NoC of RISC-V cores
//! (Constellation/Chipyard-style \[62, 10\]).
//!
//! Every node holds a 5-port XY-routed mesh router (North/South/East/
//! West/Local, one-flit input buffers, fixed-priority arbitration), a
//! deterministic traffic generator injecting random-destination flits,
//! and a RISC-V core running a compute loop: a multi-cycle `pico` core
//! for `srN`, or a pipelined `rocket` core plus a MAC block for `lrN`
//! (the paper's "large" cores carry an FPU and VM; the MAC block plays
//! that role in our gate-count scaling).
//!
//! Flit format: `{dest_x[4], dest_y[4], payload[24]}` — the 4-bit
//! coordinates cap meshes at 16×16, comfortably covering the paper's
//! sr15/lr10 sweep.

use crate::isa;
use parendi_rtl::{Bits, Builder, Circuit, Reg, Signal};

/// Which core each mesh node carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoreKind {
    /// Multi-cycle pico core (`srN`).
    Small,
    /// Pipelined rocket core with a MAC block (`lrN`).
    Large,
}

/// Configuration of a mesh design.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Mesh side length (N×N nodes).
    pub n: u32,
    /// Core kind per node.
    pub core: CoreKind,
    /// Injection rate: a flit is offered when the low `inject_shift`
    /// bits of the node PRNG are zero (rate = 2^-inject_shift).
    pub inject_shift: u32,
    /// Whether nodes contain cores at all (pure-router meshes are used
    /// by the router unit tests).
    pub with_cores: bool,
}

impl MeshConfig {
    /// The paper's `srN` configuration.
    pub fn small(n: u32) -> Self {
        MeshConfig {
            n,
            core: CoreKind::Small,
            inject_shift: 3,
            with_cores: true,
        }
    }

    /// The paper's `lrN` configuration.
    pub fn large(n: u32) -> Self {
        MeshConfig {
            n,
            core: CoreKind::Large,
            inject_shift: 3,
            with_cores: true,
        }
    }

    /// A router-only mesh (for protocol tests).
    pub fn routers_only(n: u32) -> Self {
        MeshConfig {
            n,
            core: CoreKind::Small,
            inject_shift: 2,
            with_cores: false,
        }
    }
}

const DIRS: usize = 5; // N, S, E, W, L
const N: usize = 0;
const S: usize = 1;
const E: usize = 2;
const W: usize = 3;
const L: usize = 4;

fn opposite(d: usize) -> usize {
    match d {
        N => S,
        S => N,
        E => W,
        W => E,
        _ => L,
    }
}

struct NodeBufs {
    valid: Vec<Reg>,
    data: Vec<Reg>,
}

/// Builds the mesh into a fresh circuit.
///
/// Per-node registers of interest (scoped `n{x}_{y}.`): `injected`,
/// `delivered`, `checksum`, plus the router buffers and core state.
pub fn build_mesh(cfg: &MeshConfig) -> Circuit {
    assert!((2..=15).contains(&cfg.n), "mesh side must be in 2..=15");
    let n = cfg.n as usize;
    let mut b = Builder::new(format!(
        "{}r{}",
        if cfg.core == CoreKind::Small {
            "s"
        } else {
            "l"
        },
        cfg.n
    ));

    // ---- Pass 1: declare every router buffer (and the cores).
    let mut bufs: Vec<Vec<NodeBufs>> = Vec::with_capacity(n);
    for y in 0..n {
        let mut row = Vec::with_capacity(n);
        for x in 0..n {
            b.push_scope(format!("n{x}_{y}"));
            let mut valid = Vec::with_capacity(DIRS);
            let mut data = Vec::with_capacity(DIRS);
            for d in 0..DIRS {
                valid.push(b.reg(format!("in{d}_v"), 1, 0));
                data.push(b.reg(format!("in{d}_d"), 32, 0));
            }
            if cfg.with_cores {
                b.push_scope("core");
                match cfg.core {
                    CoreKind::Small => {
                        let prog = isa::programs::mixed(2000);
                        crate::pico::build_pico_into(
                            &mut b,
                            &crate::pico::PicoConfig {
                                program: prog,
                                dmem_words: 64,
                                dmem_init: Vec::new(),
                            },
                        );
                    }
                    CoreKind::Large => {
                        let prog = isa::programs::mixed(2000);
                        crate::rocket::build_rocket_into(
                            &mut b,
                            &crate::rocket::RocketConfig {
                                program: prog,
                                dmem_words: 128,
                                dmem_init: Vec::new(),
                            },
                        );
                        b.pop_scope();
                        b.push_scope("mac");
                        crate::vta::build_vta_into(&mut b, &crate::vta::VtaConfig::new(4, 4, 8));
                        b.push_scope("core"); // re-balance scopes
                    }
                }
                b.pop_scope();
            }
            b.pop_scope();
            row.push(NodeBufs { valid, data });
        }
        bufs.push(row);
    }

    // ---- Pass 2: per node, arbitration and output fire/data.
    // out_fire[y][x][d], out_data[y][x][d], drained[y][x][p].
    let mut out_fire: Vec<Vec<Vec<Signal>>> = Vec::with_capacity(n);
    let mut out_data: Vec<Vec<Vec<Signal>>> = Vec::with_capacity(n);
    let mut drained: Vec<Vec<Vec<Signal>>> = Vec::with_capacity(n);
    for y in 0..n {
        let mut fire_row = Vec::with_capacity(n);
        let mut data_row = Vec::with_capacity(n);
        let mut drain_row = Vec::with_capacity(n);
        for x in 0..n {
            b.push_scope(format!("rt{x}_{y}"));
            let nb = &bufs[y][x];
            // Desired output direction of each input port's flit.
            let my_x = b.lit(4, x as u64);
            let my_y = b.lit(4, y as u64);
            let mut wants: Vec<[Signal; DIRS]> = Vec::with_capacity(DIRS);
            for p in 0..DIRS {
                let d = nb.data[p].q();
                let v = nb.valid[p].q();
                let dx = b.slice(d, 31, 28);
                let dy = b.slice(d, 27, 24);
                let xe = b.eq(dx, my_x);
                let ye = b.eq(dy, my_y);
                let go_e0 = b.gt_u(dx, my_x);
                let go_w0 = b.lt_u(dx, my_x);
                let go_s1 = b.gt_u(dy, my_y);
                let go_n1 = b.lt_u(dy, my_y);
                let go_s0 = b.and(xe, go_s1);
                let go_n0 = b.and(xe, go_n1);
                let here0 = b.and(xe, ye);
                let go_e = b.and(go_e0, v);
                let go_w = b.and(go_w0, v);
                let go_s = b.and(go_s0, v);
                let go_n = b.and(go_n0, v);
                let here = b.and(here0, v);
                wants.push([go_n, go_s, go_e, go_w, here]);
            }
            // Fixed-priority grants per output: L input first, then N,S,E,W.
            const PRIO: [usize; DIRS] = [L, N, S, E, W];
            let mut fires = Vec::with_capacity(DIRS);
            let mut datas = Vec::with_capacity(DIRS);
            let mut drain_acc: Vec<Signal> = (0..DIRS).map(|_| b.lit(1, 0)).collect();
            #[allow(clippy::needless_range_loop)] // `o` is a mesh direction, not a plain index
            for o in 0..DIRS {
                // Downstream readiness.
                let ready = match o {
                    N if y > 0 => {
                        let nv = bufs[y - 1][x].valid[S].q();
                        b.lnot(nv)
                    }
                    S if y + 1 < n => {
                        let nv = bufs[y + 1][x].valid[N].q();
                        b.lnot(nv)
                    }
                    E if x + 1 < n => {
                        let nv = bufs[y][x + 1].valid[W].q();
                        b.lnot(nv)
                    }
                    W if x > 0 => {
                        let nv = bufs[y][x - 1].valid[E].q();
                        b.lnot(nv)
                    }
                    L => b.lit(1, 1),
                    _ => b.lit(1, 0), // off-mesh: never ready (XY routing never asks)
                };
                // Priority arbitration.
                let mut granted_any = b.lit(1, 0);
                let mut chosen = b.lit(32, 0);
                let mut grant_of: Vec<Option<Signal>> = vec![None; DIRS];
                for &p in &PRIO {
                    let req = wants[p][o];
                    let ng = b.lnot(granted_any);
                    let grant = b.and(req, ng);
                    granted_any = b.or(granted_any, req);
                    chosen = b.mux(grant, nb.data[p].q(), chosen);
                    grant_of[p] = Some(grant);
                }
                let fire = b.and(granted_any, ready);
                for p in 0..DIRS {
                    let g = grant_of[p].expect("all ports visited");
                    let drains = b.and(g, fire);
                    drain_acc[p] = b.or(drain_acc[p], drains);
                }
                fires.push(fire);
                datas.push(chosen);
            }
            b.pop_scope();
            fire_row.push(fires);
            data_row.push(datas);
            drain_row.push(drain_acc);
        }
        out_fire.push(fire_row);
        out_data.push(data_row);
        drained.push(drain_row);
    }

    // ---- Pass 3: connect buffer next-values, injection and delivery.
    for y in 0..n {
        for x in 0..n {
            b.push_scope(format!("nx{x}_{y}"));
            // Mesh-direction inputs come from the neighbour's output.
            for p in [N, S, E, W] {
                let (nx, ny) = match p {
                    N => (x as isize, y as isize - 1),
                    S => (x as isize, y as isize + 1),
                    E => (x as isize + 1, y as isize),
                    _ => (x as isize - 1, y as isize),
                };
                let (inc_fire, inc_data) =
                    if nx >= 0 && ny >= 0 && (nx as usize) < n && (ny as usize) < n {
                        // The neighbour fires toward us through the
                        // opposite direction port.
                        let o = opposite(p);
                        (
                            out_fire[ny as usize][nx as usize][o],
                            out_data[ny as usize][nx as usize][o],
                        )
                    } else {
                        (b.lit(1, 0), b.lit(32, 0))
                    };
                connect_buffer(&mut b, &bufs[y][x], p, inc_fire, inc_data, drained[y][x][p]);
            }

            // Local port: traffic generator injects, delivery consumes.
            let seed = 0xACE1_u32
                .wrapping_add((y * n + x) as u32)
                .wrapping_mul(0x9E37_79B9)
                | 1;
            let rng = b.reg_init("rng", Bits::from_u64(32, seed as u64));
            let rng_next = xorshift32(&mut b, rng.q());
            b.connect(rng, rng_next);

            let mask = b.lit(32, (1u64 << cfg.inject_shift) - 1);
            let low = b.and(rng.q(), mask);
            let zero32 = b.lit(32, 0);
            let want_inject = b.eq(low, zero32);
            let lbuf_free = b.lnot(bufs[y][x].valid[L].q());
            // Destination from high PRNG bits, folded into [0, n).
            let nb_bits = crate::rv32::addr_bits(cfg.n);
            let dest_x = fold_mod(&mut b, rng.q(), 20, nb_bits, cfg.n);
            let dest_y = fold_mod(&mut b, rng.q(), 12, nb_bits, cfg.n);
            let my_x = b.lit(4, x as u64);
            let my_y = b.lit(4, y as u64);
            let same_x = b.eq(dest_x, my_x);
            let same_y = b.eq(dest_y, my_y);
            let to_self0 = b.and(same_x, same_y);
            let to_other = b.lnot(to_self0);
            let inject0 = b.and(want_inject, lbuf_free);
            let inject = b.and(inject0, to_other);
            let payload = b.slice(rng.q(), 23, 0);
            let flit0 = b.concat(dest_x, dest_y);
            let flit = b.concat(flit0, payload);
            connect_buffer(&mut b, &bufs[y][x], L, inject, flit, drained[y][x][L]);

            let injected = b.reg("injected", 32, 0);
            let one = b.lit(32, 1);
            let inj1 = b.add(injected.q(), one);
            let inj_next = b.mux(inject, inj1, injected.q());
            b.connect(injected, inj_next);

            let delivered = b.reg("delivered", 32, 0);
            let del_fire = out_fire[y][x][L];
            let del1 = b.add(delivered.q(), one);
            let del_next = b.mux(del_fire, del1, delivered.q());
            b.connect(delivered, del_next);

            let checksum = b.reg("checksum", 24, 0);
            let pay = b.slice(out_data[y][x][L], 23, 0);
            let cks = b.xor(checksum.q(), pay);
            let cks_next = b.mux(del_fire, cks, checksum.q());
            b.connect(checksum, cks_next);
            b.pop_scope();
        }
    }

    b.finish().expect("mesh must validate")
}

fn xorshift32(b: &mut Builder, s: Signal) -> Signal {
    let t1 = b.shli(s, 13);
    let x1 = b.xor(s, t1);
    let t2 = b.lshri(x1, 17);
    let x2 = b.xor(x1, t2);
    let t3 = b.shli(x2, 5);
    b.xor(x2, t3)
}

/// Extracts `bits` bits of `v` at `lo` and folds them into `[0, n)` with
/// a single conditional subtract (valid because `2^bits < 2n`).
fn fold_mod(b: &mut Builder, v: Signal, lo: u32, bits: u32, n: u32) -> Signal {
    let raw = b.slice(v, lo + bits - 1, lo);
    let raw4 = b.zext(raw, 4);
    let nn = b.lit(4, n as u64);
    let ge = b.ge_u(raw4, nn);
    let folded = b.sub(raw4, nn);
    b.mux(ge, folded, raw4)
}

fn connect_buffer(
    b: &mut Builder,
    bufs: &NodeBufs,
    p: usize,
    inc_fire: Signal,
    inc_data: Signal,
    drained: Signal,
) {
    let v = bufs.valid[p].q();
    let not_drained = b.lnot(drained);
    let hold = b.and(v, not_drained);
    let v_next = b.or(inc_fire, hold);
    b.connect(bufs.valid[p], v_next);
    let d_next = b.mux(inc_fire, inc_data, bufs.data[p].q());
    b.connect(bufs.data[p], d_next);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_rtl::RegId;
    use parendi_sim::Simulator;

    fn reg_named(c: &Circuit, name: &str) -> RegId {
        RegId(
            c.regs
                .iter()
                .position(|r| r.name == name)
                .unwrap_or_else(|| panic!("{name}")) as u32,
        )
    }

    fn sum_regs(c: &Circuit, sim: &Simulator<'_>, suffix: &str) -> u64 {
        c.regs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.name.ends_with(suffix))
            .map(|(i, _)| sim.reg_value(RegId(i as u32)).to_u64())
            .sum()
    }

    #[test]
    fn flits_are_conserved() {
        let c = build_mesh(&MeshConfig::routers_only(4));
        let mut sim = Simulator::new(&c);
        for _ in 0..10 {
            sim.step_n(25);
            let injected = sum_regs(&c, &sim, ".injected");
            let delivered = sum_regs(&c, &sim, ".delivered");
            let in_flight = sum_regs(&c, &sim, "_v"); // all buffer valid bits
            assert_eq!(
                injected,
                delivered + in_flight,
                "conservation violated at cycle {}",
                sim.cycle()
            );
        }
        // Traffic must actually flow.
        assert!(
            sum_regs(&c, &sim, ".delivered") > 50,
            "mesh is not delivering"
        );
    }

    #[test]
    fn all_nodes_receive_traffic() {
        let c = build_mesh(&MeshConfig::routers_only(3));
        let mut sim = Simulator::new(&c);
        sim.step_n(600);
        for y in 0..3 {
            for x in 0..3 {
                let d = sim
                    .reg_value(reg_named(&c, &format!("nx{x}_{y}.delivered")))
                    .to_u64();
                assert!(d > 0, "node ({x},{y}) never received a flit");
            }
        }
    }

    #[test]
    fn mesh_with_cores_runs_and_core_state_advances() {
        let c = build_mesh(&MeshConfig::small(2));
        let mut sim = Simulator::new(&c);
        sim.step_n(200);
        // Each core's retired counter advances.
        for y in 0..2 {
            for x in 0..2 {
                let retired = sim
                    .reg_value(reg_named(&c, &format!("n{x}_{y}.core.retired")))
                    .to_u64();
                assert!(retired > 40, "core ({x},{y}) retired only {retired}");
            }
        }
        // And the NoC still conserves flits.
        let injected = sum_regs(&c, &sim, ".injected");
        let delivered = sum_regs(&c, &sim, ".delivered");
        let in_flight: u64 = c
            .regs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.name.contains("in") && r.name.ends_with("_v"))
            .map(|(i, _)| sim.reg_value(RegId(i as u32)).to_u64())
            .sum();
        assert_eq!(injected, delivered + in_flight);
    }

    #[test]
    fn large_mesh_is_heavier_than_small() {
        let sr = build_mesh(&MeshConfig::small(2));
        let lr = build_mesh(&MeshConfig::large(2));
        let gs = parendi_rtl::stats(&sr).gates;
        let gl = parendi_rtl::stats(&lr).gates;
        assert!(
            gl as f64 > 1.3 * gs as f64,
            "lr2 ({gl} gates) must outweigh sr2 ({gs} gates)"
        );
    }

    #[test]
    fn fibers_scale_quadratically_with_mesh_side() {
        let c3 = build_mesh(&MeshConfig::routers_only(3));
        let c6 = build_mesh(&MeshConfig::routers_only(6));
        let m3 = parendi_graph::CostModel::of(&c3);
        let m6 = parendi_graph::CostModel::of(&c6);
        let f3 = parendi_graph::extract_fibers(&c3, &m3).len() as f64;
        let f6 = parendi_graph::extract_fibers(&c6, &m6).len() as f64;
        let ratio = f6 / f3;
        assert!((3.0..5.5).contains(&ratio), "fiber growth ratio {ratio}");
    }
}
