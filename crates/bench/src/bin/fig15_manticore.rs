//! Fig. 15: Parendi on one IPU (1472 tiles) vs a Manticore-like 225-core
//! BSP accelerator. Manticore's per-core rate is higher (huge register
//! file, statically scheduled pipeline) but it has 6.5× fewer cores and
//! tight memory, so large designs favour the IPU.

use parendi_bench::ipu_point;
use parendi_core::{compile, PartitionConfig};
use parendi_designs::Benchmark;
use parendi_machine::ipu::IpuConfig;
use parendi_machine::manticore::ManticoreConfig;

fn main() {
    let ipu = IpuConfig::m2000();
    let mcr = ManticoreConfig::prototype();
    println!("Fig. 15: speedup of Parendi (1472 tiles) over Manticore (225 cores)");
    println!(
        "{:>8} {:>10} {:>10} {:>9} {:>7}",
        "design", "ipu-kHz", "mcr-kHz", "ipu/mcr", "fits?"
    );
    for bench in [
        Benchmark::Bitcoin,
        Benchmark::Prng(256),
        Benchmark::Vta,
        Benchmark::Pico,
        Benchmark::Rocket,
        Benchmark::Sr(3),
        Benchmark::Mc,
    ] {
        let c = bench.build();
        let ipu_p = ipu_point(&c, 1472, &ipu);
        // Manticore: partition the same design onto 225 cores.
        let mut cfg = PartitionConfig::with_tiles(225);
        cfg.tiles_per_chip = 225;
        let comp = compile(&c, &cfg).expect("fits 225 cores");
        let per_core_comm = comp.plan.total_sent() / comp.partition.tiles_used().max(1) as u64;
        let cycles = mcr.cycles_per_rtl_cycle(comp.partition.straggler_cost(), per_core_comm);
        let mcr_khz = mcr.rate_khz(cycles);
        let state = c.array_bytes() + c.state_bits() / 8;
        println!(
            "{:>8} {:>10.1} {:>10.1} {:>9.2} {:>7}",
            bench.name(),
            ipu_p.khz,
            mcr_khz,
            ipu_p.khz / mcr_khz,
            if mcr.fits(state) { "yes" } else { "NO" }
        );
    }
    println!("\nShape check: small straggler-bound designs (pico) lean Manticore");
    println!("(faster cores); wide designs (bitcoin, vta, mc) lean Parendi.");
}
