//! Exchange planning: what each tile sends and receives every cycle.
//!
//! After partitioning, every register (and array write port) whose value
//! is consumed on another tile contributes to the BSP communication
//! phase. The differential-exchange optimization (§5.2) replaces
//! whole-array transfers with per-port `(index, data, enable)` records,
//! using the static bound on writes per cycle.

use crate::partition::Partition;
use parendi_graph::fiber::SinkKind;
use parendi_rtl::bits::words_for;
use parendi_rtl::Circuit;

/// Per-cycle communication volumes implied by a partition.
#[derive(Clone, Debug, Default)]
pub struct ExchangePlan {
    /// Bytes each tile sends per cycle (fanout included).
    pub tile_out_bytes: Vec<u64>,
    /// Bytes each tile receives per cycle.
    pub tile_in_bytes: Vec<u64>,
    /// Worst per-tile on-chip traffic (out + in), driving the on-chip
    /// exchange cost (Fig. 5 left: cost follows `b`).
    pub max_tile_onchip_bytes: u64,
    /// Total bytes crossing chip boundaries, driving the off-chip cost
    /// (Fig. 5 right: cost follows `m×b`).
    pub offchip_total_bytes: u64,
    /// Unique value bytes crossing tile boundaries (Table 3 "Int.",
    /// fanout excluded).
    pub onchip_cut_bytes: u64,
    /// Unique value bytes crossing chip boundaries (Table 3 "Ext.").
    pub offchip_cut_bytes: u64,
}

impl ExchangePlan {
    /// Total fanout-included bytes sent per cycle.
    pub fn total_sent(&self) -> u64 {
        self.tile_out_bytes.iter().sum()
    }
}

/// Computes the [`ExchangePlan`] of `partition`.
pub fn plan(circuit: &Circuit, partition: &Partition, differential: bool) -> ExchangePlan {
    let n = partition.processes.len();
    let mut out = ExchangePlan {
        tile_out_bytes: vec![0; n],
        tile_in_bytes: vec![0; n],
        ..Default::default()
    };

    // Producer tile of each register / array port.
    let mut reg_writer = vec![u32::MAX; circuit.regs.len()];
    // Array -> (writer tiles of its ports, total differential bytes/cycle).
    let mut array_port_tiles: Vec<Vec<(u32, u64)>> = vec![Vec::new(); circuit.arrays.len()];
    for (pi, p) in partition.processes.iter().enumerate() {
        for &f in &p.fibers {
            match partition.fiber_sinks[f.index()] {
                SinkKind::Reg(r) => reg_writer[r.index()] = pi as u32,
                SinkKind::ArrayPort { array, .. } => {
                    let a = &circuit.arrays[array.index()];
                    let bytes = words_for(a.width) as u64 * 8 + 4 + 1;
                    array_port_tiles[array.index()].push((pi as u32, bytes));
                }
                SinkKind::Output(_) => {}
            }
        }
    }

    // Register traffic.
    for (pi, p) in partition.processes.iter().enumerate() {
        for &r in &p.regs_read {
            let w = reg_writer[r.index()];
            if w == u32::MAX || w == pi as u32 {
                continue;
            }
            let bytes = words_for(circuit.regs[r.index()].width) as u64 * 8;
            out.tile_out_bytes[w as usize] += bytes;
            out.tile_in_bytes[pi] += bytes;
            let cross_chip = partition.processes[w as usize].chip != p.chip;
            if cross_chip {
                out.offchip_total_bytes += bytes;
            }
        }
    }
    // Unique cut bytes (no fanout): a register counts once if any remote
    // tile/chip reads it.
    for (ri, reg) in circuit.regs.iter().enumerate() {
        let w = reg_writer[ri];
        if w == u32::MAX {
            continue;
        }
        let bytes = words_for(reg.width) as u64 * 8;
        let mut crosses_tile = false;
        let mut crosses_chip = false;
        for (pi, p) in partition.processes.iter().enumerate() {
            if pi as u32 == w {
                continue;
            }
            if p.regs_read.binary_search(&parendi_rtl::RegId(ri as u32)).is_ok() {
                crosses_tile = true;
                if p.chip != partition.processes[w as usize].chip {
                    crosses_chip = true;
                }
            }
        }
        if crosses_tile {
            out.onchip_cut_bytes += bytes;
        }
        if crosses_chip {
            out.offchip_cut_bytes += bytes;
        }
    }

    // Array traffic: every tile holding a copy (reader) must observe every
    // write port's updates.
    for (ai, a) in circuit.arrays.iter().enumerate() {
        let full_bytes = a.size_bytes();
        let readers: Vec<u32> = partition
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.arrays.binary_search(&parendi_rtl::ArrayId(ai as u32)).is_ok())
            .map(|(i, _)| i as u32)
            .collect();
        let mut crossed_tile = false;
        let mut crossed_chip = false;
        for &(wt, diff_bytes) in &array_port_tiles[ai] {
            let payload = if differential { diff_bytes } else { full_bytes };
            for &rt in &readers {
                if rt == wt {
                    continue;
                }
                crossed_tile = true;
                out.tile_out_bytes[wt as usize] += payload;
                out.tile_in_bytes[rt as usize] += payload;
                if partition.processes[rt as usize].chip != partition.processes[wt as usize].chip {
                    out.offchip_total_bytes += payload;
                    crossed_chip = true;
                }
            }
        }
        if crossed_tile {
            out.onchip_cut_bytes += if differential {
                array_port_tiles[ai].iter().map(|&(_, b)| b).sum()
            } else {
                full_bytes
            };
        }
        if crossed_chip {
            out.offchip_cut_bytes += if differential {
                array_port_tiles[ai].iter().map(|&(_, b)| b).sum()
            } else {
                full_bytes
            };
        }
    }

    out.max_tile_onchip_bytes = (0..n)
        .map(|i| out.tile_out_bytes[i] + out.tile_in_bytes[i])
        .max()
        .unwrap_or(0);
    out
}
