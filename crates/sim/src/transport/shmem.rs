//! Shared-memory backend: completed pair aggregates are published
//! through a memory-mapped file on `/dev/shm` (falling back to the
//! temp dir), guarded by per-parity sequence words.
//!
//! Segment layout per ordered chip pair (64-bit words):
//!
//! ```text
//! [ seq0 | pad ×7 | seq1 | pad ×7 ][ buf0 (words) ][ buf1 (words) ]
//! ```
//!
//! `seq<p>` holds `cycle + 1` once `buf<p>` carries that cycle's
//! frame; publisher stores it `Release` after the copy, receiver spins
//! `Acquire` until it reaches the expected cycle. The two sequence
//! words sit a cache line apart so the parities never false-share.
//! The protocol is process-agnostic: [`ShmMap::open`] maps the same
//! file from another process, which the cross-process test below
//! exercises end to end (parent and child exchanging frames through
//! `/dev/shm` with the same acquire/release discipline).

use super::{ChipTransport, Staging, TransportInit};
use crate::engine::Mailbox;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Words in each pair segment's header (two cache-line-separated
/// sequence words).
const HDR_WORDS: usize = 16;

/// A memory-mapped file of `u64` words, shareable across processes.
pub(crate) struct ShmMap {
    ptr: *mut u64,
    words: usize,
    path: PathBuf,
    /// The creator unlinks the file on drop; openers leave it.
    owner: bool,
}

// SAFETY: the raw pointer targets a MAP_SHARED mapping; all
// cross-thread access goes through the atomic sequence words or
// through word ranges the publish/receive protocol hands off
// exclusively.
unsafe impl Send for ShmMap {}
unsafe impl Sync for ShmMap {}

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 1;

    unsafe extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    /// Maps `len` bytes of `file` shared read/write.
    pub(super) fn map_shared(file: &File, len: usize) -> *mut u8 {
        // SAFETY: fd is valid for the duration of the call; the kernel
        // validates the rest and returns MAP_FAILED on error.
        let p = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        assert!(
            !std::ptr::eq(p, usize::MAX as *mut u8),
            "mmap of the shared-memory transport file failed"
        );
        p
    }

    /// Unmaps a mapping produced by [`map_shared`].
    pub(super) fn unmap(ptr: *mut u8, len: usize) {
        // SAFETY: ptr/len come from a successful map_shared.
        unsafe {
            munmap(ptr, len);
        }
    }
}

/// Whether a process with this pid is still running: true when
/// `/proc/<pid>` exists, and — safety first — also true when `/proc`
/// itself is absent (non-Linux hosts), so a sweep never removes a
/// live peer's segment just because liveness cannot be determined.
fn pid_alive(pid: u32) -> bool {
    if !std::path::Path::new("/proc").is_dir() {
        return true;
    }
    std::path::Path::new("/proc").join(pid.to_string()).exists()
}

/// Removes `parendi-shm-<pid>-<seq>` files in `dir` whose creating
/// process is gone — the debris a killed run leaves behind (`ShmMap`
/// unlinks on drop, but a `SIGKILL` or `process::exit` never runs the
/// drop). Files of live processes (including our own) and unrelated
/// names are left alone. Returns the number of segments removed.
fn sweep_stale(dir: &std::path::Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(rest) = name.to_str().and_then(|n| n.strip_prefix("parendi-shm-")) else {
            continue;
        };
        let Some(pid) = rest
            .split_once('-')
            .and_then(|(pid, _seq)| pid.parse::<u32>().ok())
        else {
            continue;
        };
        if pid == std::process::id() || pid_alive(pid) {
            continue;
        }
        if std::fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    swept
}

impl ShmMap {
    /// The directory backing the mappings: `/dev/shm` when present
    /// (true shared memory), the temp dir otherwise.
    fn dir() -> PathBuf {
        let shm = PathBuf::from("/dev/shm");
        if shm.is_dir() {
            shm
        } else {
            std::env::temp_dir()
        }
    }

    /// Creates a zero-filled mapping of `words` u64s under a fresh
    /// name; the returned map unlinks the file on drop.
    #[cfg(unix)]
    pub(crate) fn create(words: usize) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        static SWEEP: std::sync::Once = std::sync::Once::new();
        // Once per process, clear segments orphaned by killed runs
        // before adding our own (a kill-resume workflow would
        // otherwise slowly fill /dev/shm).
        SWEEP.call_once(|| {
            let n = sweep_stale(&Self::dir());
            if n > 0 {
                eprintln!("[transport] swept {n} stale shared-memory segment(s)");
            }
        });
        let path = Self::dir().join(format!(
            "parendi-shm-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .expect("create shared-memory transport file");
        file.set_len((words * 8) as u64)
            .expect("size shared-memory transport file");
        let ptr = sys::map_shared(&file, words * 8) as *mut u64;
        ShmMap {
            ptr,
            words,
            path,
            owner: true,
        }
    }

    /// Maps an existing file created by [`ShmMap::create`] (typically
    /// from another process — exercised by the cross-process test).
    #[cfg(unix)]
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn open(path: PathBuf) -> Self {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .expect("open shared-memory transport file");
        let words = (file.metadata().expect("stat shm file").len() / 8) as usize;
        let ptr = sys::map_shared(&file, words * 8) as *mut u64;
        ShmMap {
            ptr,
            words,
            path,
            owner: false,
        }
    }

    #[cfg(not(unix))]
    pub(crate) fn create(_words: usize) -> Self {
        panic!("the shared-memory transport requires a unix host");
    }

    #[cfg(not(unix))]
    pub(crate) fn open(_path: PathBuf) -> Self {
        panic!("the shared-memory transport requires a unix host");
    }

    /// Filesystem path of the backing file (hand to another process —
    /// exercised by the cross-process test).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn path(&self) -> &PathBuf {
        &self.path
    }

    /// Atomic view of word `off` (a sequence word).
    pub(crate) fn seq(&self, off: usize) -> &AtomicU64 {
        assert!(off < self.words);
        // SAFETY: in-bounds, 8-aligned (mmap is page-aligned), and the
        // protocol only accesses sequence words atomically.
        unsafe { &*(self.ptr.add(off) as *const AtomicU64) }
    }

    /// Copies `src` into the mapping at word `off`.
    ///
    /// Caller contract: the protocol gives this thread exclusive write
    /// access to `[off, off + src.len())` (no published, unconsumed
    /// frame occupies it).
    pub(crate) fn write(&self, off: usize, src: &[u64]) {
        assert!(off + src.len() <= self.words);
        // SAFETY: in-bounds; exclusivity per the caller contract.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(off), src.len());
        }
    }

    /// Copies `n` words of the mapping at word `off` into `dst`.
    ///
    /// Caller contract: an `Acquire` load of the range's sequence word
    /// ordered the publisher's copy before this read.
    pub(crate) fn read_into(&self, off: usize, dst: *mut u64, n: usize) {
        assert!(off + n <= self.words);
        // SAFETY: in-bounds; visibility per the caller contract.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(off), dst, n);
        }
    }
}

impl Drop for ShmMap {
    fn drop(&mut self) {
        #[cfg(unix)]
        sys::unmap(self.ptr as *mut u8, self.words * 8);
        if self.owner {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// The frame-wait deadline, read once per process (the same
/// `PARENDI_TRANSPORT_TIMEOUT_MS` budget the TCP backend honors).
fn spin_budget() -> Option<std::time::Duration> {
    static BUDGET: std::sync::OnceLock<Option<std::time::Duration>> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(super::transport_timeout)
}

/// Spins until `seq` reaches `want` (Acquire), yielding periodically;
/// panics once the `PARENDI_TRANSPORT_TIMEOUT_MS` budget (default
/// 30 s, `0` waits forever) is exhausted — a missing frame means a
/// peer died, and a worker panic aborts the run rather than hanging
/// the barrier.
fn spin_until(seq: &AtomicU64, want: u64) {
    let start = std::time::Instant::now();
    let budget = spin_budget();
    let mut n = 0u32;
    loop {
        let got = seq.load(Ordering::Acquire);
        if got >= want {
            assert_eq!(got, want, "shared-memory frame sequence skipped ahead");
            return;
        }
        std::hint::spin_loop();
        n = n.wrapping_add(1);
        if n & 0x3fff == 0 {
            std::thread::yield_now();
            if let Some(b) = budget {
                assert!(
                    start.elapsed() < b,
                    "timed out waiting for shared-memory frame {want}: \
                     exceeded {} ms (PARENDI_TRANSPORT_TIMEOUT_MS)",
                    b.as_millis()
                );
            }
        }
    }
}

/// The shared-memory backend (see the module docs for the layout).
pub(crate) struct SharedMem {
    staging: Staging,
    map: ShmMap,
    /// Word offset of each pair's segment in the mapping.
    seg_off: Vec<usize>,
    /// Per worker: the pair indices it receives.
    recv_of: Vec<Vec<u32>>,
}

impl SharedMem {
    pub(crate) fn new(init: TransportInit<'_>) -> Self {
        let staging = Staging::new(&init, true);
        let mut seg_off = Vec::with_capacity(init.pairs.len());
        let mut off = 0usize;
        for p in 0..init.pairs.len() {
            seg_off.push(off);
            off += HDR_WORDS + 2 * staging.words(p);
        }
        let map = ShmMap::create(off.max(1));
        SharedMem {
            staging,
            map,
            seg_off,
            recv_of: init.recv_of,
        }
    }

    /// Word offset of pair `p`'s parity buffer.
    fn buf_off(&self, p: usize, parity: usize) -> usize {
        self.seg_off[p] + HDR_WORDS + parity * self.staging.words(p)
    }
}

impl ChipTransport for SharedMem {
    fn staging(&self) -> Option<&[Mailbox]> {
        self.staging.boxes()
    }

    fn tile_flushed(&self, tile: usize, parity: usize, cycle: u64) {
        self.staging.tile_flushed(tile, |p| {
            // SAFETY: the countdown completed through this thread's
            // AcqRel decrement — every producer's staging write is
            // visible and none remain.
            let frame = unsafe { self.staging.frame(p, parity) };
            self.map.write(self.buf_off(p, parity), frame);
            self.map
                .seq(self.seg_off[p] + parity * 8)
                .store(cycle + 1, Ordering::Release);
        });
    }

    fn complete_recvs(
        &self,
        who: usize,
        parity: usize,
        cycle: u64,
        channels: &[Mailbox],
        onchip: usize,
    ) {
        self.staging.credit_recvs(self.recv_of[who].len() as u64);
        for &p in &self.recv_of[who] {
            let p = p as usize;
            spin_until(self.map.seq(self.seg_off[p] + parity * 8), cycle + 1);
            // SAFETY: epoch discipline — nobody reads `parity` of this
            // consumer box until after barrier 1, and this worker is
            // the pair's sole receiver.
            let dst = unsafe { channels[onchip + p].write_base(parity) };
            self.map
                .read_into(self.buf_off(p, parity), dst, self.staging.words(p));
        }
    }

    fn bytes_sent(&self) -> u64 {
        self.staging.bytes()
    }

    fn resync(&self, channels: &[Mailbox], onchip: usize, cycle: u64) {
        self.staging.resync(channels, onchip);
        // Rewind every pair's sequence words to the restored cycle:
        // `spin_until` asserts the *exact* expected sequence, so a
        // restore to an earlier cycle would otherwise trip the
        // "skipped ahead" check against the pre-restore value.
        // (The buffers themselves need no rewrite: every pair frame is
        // republished whole from the resynced staging before the next
        // receive consults it.)
        for &off in &self.seg_off {
            for parity in 0..2 {
                self.map
                    .seq(off + parity * 8)
                    .store(cycle, Ordering::Release);
            }
        }
    }

    fn name(&self) -> &'static str {
        "shm"
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    const CHILD_ENV: &str = "PARENDI_SHM_CHILD_PATH";

    /// Child half of `frames_cross_a_process_boundary`: inert unless
    /// spawned by the parent test with the handoff env var set.
    #[test]
    fn shm_child_entry() {
        let Ok(path) = std::env::var(CHILD_ENV) else {
            return;
        };
        let map = ShmMap::open(path.into());
        // Parent's frame: seq word 0, payload at words 16..24.
        spin_until(map.seq(0), 1);
        let mut payload = [0u64; 8];
        map.read_into(16, payload.as_mut_ptr(), 8);
        // Echo a transform at words 24..32, ack at seq word 8 — the
        // same store-Release / load-Acquire discipline the engine's
        // publish/receive path uses.
        let echo: Vec<u64> = payload.iter().map(|w| w.wrapping_mul(3) ^ 0xa5).collect();
        map.write(24, &echo);
        map.seq(8).store(1, Ordering::Release);
    }

    /// The mapping protocol must work across a real process boundary:
    /// the parent publishes a frame into `/dev/shm`, a freshly spawned
    /// child process opens the same file, consumes it, and echoes a
    /// transform back.
    #[test]
    fn frames_cross_a_process_boundary() {
        let map = ShmMap::create(32);
        let payload: Vec<u64> = (0..8)
            .map(|i| 0x1234_5678_9abc_def0u64.wrapping_add(i * 977))
            .collect();
        map.write(16, &payload);
        map.seq(0).store(1, Ordering::Release);
        let exe = std::env::current_exe().expect("current test binary");
        let status = std::process::Command::new(exe)
            .args(["transport::shmem::tests::shm_child_entry", "--exact"])
            .env(CHILD_ENV, map.path())
            .status()
            .expect("spawn shm child process");
        assert!(status.success(), "shm child process failed");
        spin_until(map.seq(8), 1);
        let mut echo = [0u64; 8];
        map.read_into(24, echo.as_mut_ptr(), 8);
        for (i, (&e, &p)) in echo.iter().zip(&payload).enumerate() {
            assert_eq!(
                e,
                p.wrapping_mul(3) ^ 0xa5,
                "word {i} corrupted crossing the process boundary"
            );
        }
    }

    /// The stale-segment sweep removes exactly the debris of dead
    /// processes: segments named with a pid that no longer exists.
    /// Live-pid segments, our own segments, and unrelated files must
    /// survive — deleting a live peer's mapping would corrupt a
    /// concurrent run on the same host.
    #[test]
    fn sweep_removes_only_dead_pid_segments() {
        let dir = std::env::temp_dir().join(format!("parendi-sweep-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create sweep test dir");
        // u32::MAX is far above any kernel pid_max, so this pid is
        // guaranteed dead on any Linux host.
        let dead = dir.join("parendi-shm-4294967295-0");
        let own = dir.join(format!("parendi-shm-{}-7", std::process::id()));
        let live = dir.join("parendi-shm-1-3"); // pid 1 is always alive
        let other = dir.join("some-other-file");
        let garbled = dir.join("parendi-shm-notapid-0");
        for f in [&dead, &own, &live, &other, &garbled] {
            std::fs::write(f, b"x").expect("seed sweep test file");
        }

        let swept = sweep_stale(&dir);

        assert_eq!(swept, 1, "exactly the dead-pid segment is swept");
        assert!(!dead.exists(), "dead-pid segment removed");
        assert!(own.exists(), "our own segment survives");
        assert!(live.exists(), "live peer's segment survives");
        assert!(other.exists(), "unrelated file survives");
        assert!(garbled.exists(), "unparseable name is left alone");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A sweep over a directory that does not exist is a quiet no-op —
    /// first run on a host with no `/dev/shm` debris must not fail.
    #[test]
    fn sweep_of_missing_dir_is_harmless() {
        let dir = std::env::temp_dir().join("parendi-sweep-test-nonexistent");
        assert_eq!(sweep_stale(&dir), 0);
    }
}
