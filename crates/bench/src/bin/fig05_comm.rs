//! Fig. 5: measured communication cycles on the IPU — on-chip exchange
//! cost follows the per-tile byte count `b`; off-chip cost follows the
//! total volume `m×b` and saturates the 107 GiB/s fabric.

use parendi_bench::{write_bench_json, BenchRecord};
use parendi_core::{compile, PartitionConfig};
use parendi_designs::Benchmark;
use parendi_machine::ipu::IpuConfig;
use parendi_sim::BspSimulator;

fn main() {
    let ipu = IpuConfig::m2000();
    let ms = [64u64, 184, 368, 552, 736];
    let bs = [4u64, 16, 64, 128, 256, 512];

    println!("Fig. 5 (left): on-chip exchange cycles (rows m, cols b) incl. sync");
    print!("{:>6}", "m\\b");
    for &b in &bs {
        print!("{b:>8}");
    }
    println!();
    for &m in &ms {
        print!("{m:>6}");
        for &b in &bs {
            let c = ipu.sync_cycles(m as u32) + ipu.onchip_exchange_cycles(b);
            print!("{c:>8}");
        }
        println!();
    }

    println!("\nFig. 5 (right): off-chip exchange cycles (rows m, cols b) incl. sync");
    print!("{:>6}", "m\\b");
    for &b in &bs {
        print!("{b:>8}");
    }
    println!();
    for &m in &ms {
        print!("{m:>6}");
        for &b in &bs {
            // every tile pair crosses chips: total volume = m*b both ways
            let c = ipu.sync_cycles(2 * m as u32) + ipu.offchip_exchange_cycles(2 * m * b);
            print!("{c:>8}");
        }
        println!();
    }

    // Shape checks.
    let on_col = ipu.onchip_exchange_cycles(512);
    let on_small = ipu.onchip_exchange_cycles(4);
    let off_corner = ipu.offchip_exchange_cycles(2 * 736 * 512);
    let off_small = ipu.offchip_exchange_cycles(2 * 64 * 512);
    println!("\nShape check: on-chip grows only with b ({on_small} -> {on_col} cycles),");
    println!("off-chip grows with m at fixed b ({off_small} -> {off_corner} cycles).");

    // Measured counterpart: the point-to-point engine's exchange phase on
    // array-carrying designs, next to the modeled per-tile byte count `b`
    // the on-chip cost follows. Both columns are views of the same
    // compiled `Routing`.
    let ipu = IpuConfig::m2000();
    println!("\nHost engine (measured): exchange phase vs routed volume");
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>12} {:>14}",
        "design", "tiles", "b(bytes)", "chans", "model(cyc)", "exchange/cyc"
    );
    let mut records = Vec::new();
    for (bench, tiles) in [
        (Benchmark::Mc, 16u32),
        (Benchmark::Vta, 32),
        (Benchmark::Sr(3), 48),
    ] {
        let circuit = bench.build();
        let comp = compile(&circuit, &PartitionConfig::with_tiles(tiles)).expect("fits");
        let model_cycles = ipu.sync_cycles(comp.partition.tiles_used())
            + ipu.onchip_exchange_cycles(comp.plan.max_tile_onchip_bytes);
        let mut sim = BspSimulator::new(&circuit, &comp.partition, 4);
        sim.run(50); // warm the persistent pool
        let cycles = 500u64;
        let ph = sim.run_timed(cycles);
        println!(
            "{:>8} {:>6} {:>10} {:>10} {:>12} {:>12.2}µs",
            bench.name(),
            comp.partition.tiles_used(),
            comp.plan.max_tile_onchip_bytes,
            sim.channels(),
            model_cycles,
            ph.exchange_s * 1e6 / cycles as f64,
        );
        records.push(BenchRecord::from_phases(
            "fig05",
            bench.name(),
            "bsp",
            false,
            comp.partition.chips,
            comp.partition.tiles_used(),
            1,
            4,
            cycles,
            cycles as f64 / ph.total_s,
            &ph,
        ));
    }
    match write_bench_json("fig05", &records) {
        Ok(path) => println!("\nwrote {} ({} records)", path.display(), records.len()),
        Err(e) => println!("\ncould not write BENCH_fig05.json: {e}"),
    }
}
