//! Submodular load balancing: the bottom-up merge of §5.1 stages 3–4.
//!
//! Stage 3 repeatedly takes the cheapest process and merges it with a
//! communicating partner as long as the merged execution time does not
//! exceed the current straggler and the tile memory budgets hold; when
//! no partner works it falls back to merging the two smallest processes,
//! and otherwise skips the candidate. Stage 4 (only if stage 3 fails to
//! reach the tile count) re-runs the loop allowing the worst-case
//! execution time to grow; if even that cannot fit the hardware, the
//! compilation fails — matching the paper's behaviour (§5.3).

use crate::config::CompileError;
use crate::process::Process;
use parendi_graph::analysis::Adjacency;
use parendi_graph::cost::CostModel;
use parendi_graph::fiber::FiberSet;
use parendi_rtl::Circuit;
use std::collections::BTreeSet;

/// Shared state of the merge loop.
pub struct Merger<'a> {
    circuit: &'a Circuit,
    costs: &'a CostModel,
    /// `None` = absorbed into another process.
    slots: Vec<Option<Process>>,
    /// fiber -> slot index.
    fiber_owner: Vec<u32>,
    /// slot -> neighbouring slots (processes it communicates with).
    neighbors: Vec<BTreeSet<u32>>,
    active: usize,
    data_budget: u64,
    code_budget: u64,
}

impl<'a> Merger<'a> {
    /// Builds the merge state from initial processes.
    pub fn new(
        circuit: &'a Circuit,
        costs: &'a CostModel,
        fs: &FiberSet,
        adj: &Adjacency,
        processes: Vec<Process>,
        data_budget: u64,
        code_budget: u64,
    ) -> Result<Self, CompileError> {
        let mut fiber_owner = vec![u32::MAX; fs.len()];
        for (pi, p) in processes.iter().enumerate() {
            for &f in &p.fibers {
                fiber_owner[f.index()] = pi as u32;
            }
        }
        // Reject fibers that cannot fit a tile even alone (§5.3).
        for p in processes.iter() {
            if p.fibers.len() == 1 {
                let data = p.data_bytes(circuit, costs);
                if data > data_budget {
                    return Err(CompileError::FiberTooLarge {
                        fiber: p.fibers[0].0,
                        needed: data,
                        budget: data_budget,
                    });
                }
                if p.code_bytes > code_budget {
                    return Err(CompileError::FiberTooLarge {
                        fiber: p.fibers[0].0,
                        needed: p.code_bytes,
                        budget: code_budget,
                    });
                }
            }
        }
        let mut neighbors: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); processes.len()];
        for (pi, p) in processes.iter().enumerate() {
            for &f in &p.fibers {
                for &nf in &adj.neighbors[f.index()] {
                    let owner = fiber_owner[nf.index()];
                    if owner != pi as u32 && owner != u32::MAX {
                        neighbors[pi].insert(owner);
                    }
                }
            }
        }
        let active = processes.len();
        Ok(Merger {
            circuit,
            costs,
            slots: processes.into_iter().map(Some).collect(),
            fiber_owner,
            neighbors,
            active,
            data_budget,
            code_budget,
        })
    }

    /// Number of live processes.
    pub fn active(&self) -> usize {
        self.active
    }

    /// The worst current execution time (the straggler process).
    pub fn straggler_cost(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|p| p.ipu_cost)
            .max()
            .unwrap_or(0)
    }

    fn memory_ok(&self, a: &Process, b: &Process) -> bool {
        a.merged_data_bytes(b, self.circuit, self.costs) <= self.data_budget
            && a.merged_code_bytes(b, self.costs) <= self.code_budget
    }

    /// Merges slot `b` into slot `a`.
    fn do_merge(&mut self, a: u32, b: u32) {
        let pb = self.slots[b as usize].take().expect("merge of dead slot");
        let pa = self.slots[a as usize]
            .as_mut()
            .expect("merge into dead slot");
        pa.merge(&pb, self.costs);
        for &f in &pb.fibers {
            self.fiber_owner[f.index()] = a;
        }
        // Rewire neighbour sets: everyone pointing at b now points at a.
        let bn: Vec<u32> = self.neighbors[b as usize].iter().copied().collect();
        for n in bn {
            self.neighbors[n as usize].remove(&b);
            if n != a {
                self.neighbors[n as usize].insert(a);
                self.neighbors[a as usize].insert(n);
            }
        }
        self.neighbors[b as usize].clear();
        self.neighbors[a as usize].remove(&a);
        self.neighbors[a as usize].remove(&b);
        self.active -= 1;
    }

    /// Live slot ids ordered by ascending cost (cheapest first).
    fn order_by_cost(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| i as u32)
            .collect();
        ids.sort_by_key(|&i| (self.slots[i as usize].as_ref().unwrap().ipu_cost, i));
        ids
    }

    /// One merge attempt for candidate `p`: best communicating partner
    /// under `bound`, else the smallest other process. Returns the slot
    /// that absorbed `p`'s partner, if any merge happened.
    fn try_merge(&mut self, p: u32, bound: Option<u64>, order: &[u32]) -> bool {
        let Some(cand) = self.slots[p as usize].as_ref() else {
            return false;
        };
        // Best communicating partner by merged cost.
        let mut best: Option<(u64, u32)> = None;
        for &n in &self.neighbors[p as usize] {
            let Some(pn) = self.slots[n as usize].as_ref() else {
                continue;
            };
            let merged = cand.merged_ipu_cost(pn, self.costs);
            if let Some(b) = bound {
                if merged > b {
                    continue;
                }
            }
            if !self.memory_ok(cand, pn) {
                continue;
            }
            if best.is_none_or(|(c, _)| merged < c) {
                best = Some((merged, n));
            }
        }
        if let Some((_, n)) = best {
            self.do_merge(p, n);
            return true;
        }
        // Fallback: merge with the smallest other process (paper: "the two
        // smallest processes"). `order` is the round's ascending-cost
        // ordering; the first live entry is (approximately) the smallest.
        let smallest = order
            .iter()
            .copied()
            .find(|&q| q != p && self.slots[q as usize].is_some());
        if let Some(q) = smallest {
            let pq = self.slots[q as usize].as_ref().unwrap();
            let merged = cand.merged_ipu_cost(pq, self.costs);
            let bound_ok = bound.is_none_or(|b| merged <= b);
            if bound_ok && self.memory_ok(cand, pq) {
                self.do_merge(p, q);
                return true;
            }
        }
        false
    }

    /// Runs merge rounds until `target` processes remain or no further
    /// merge is possible. `grow` selects stage-3 (false: straggler bound
    /// fixed) or stage-4 (true: bound lifted) behaviour.
    pub fn run(&mut self, target: usize, grow: bool) {
        let bound = if grow {
            None
        } else {
            Some(self.straggler_cost())
        };
        loop {
            if self.active <= target {
                return;
            }
            let mut merged_this_round = 0;
            let order = self.order_by_cost();
            for &p in &order {
                if self.active <= target {
                    return;
                }
                if self.slots[p as usize].is_none() {
                    continue; // absorbed earlier this round
                }
                if self.try_merge(p, bound, &order) {
                    merged_this_round += 1;
                }
            }
            if merged_this_round == 0 {
                return;
            }
        }
    }

    /// Consumes the merger, returning the live processes.
    pub fn into_processes(self) -> Vec<Process> {
        self.slots.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_graph::{adjacency, extract_fibers, FiberId};
    use parendi_rtl::Builder;

    /// A chain of n registers, each adding a constant to the previous —
    /// every fiber communicates with its successor.
    fn chain(n: usize) -> Circuit {
        let mut b = Builder::new("chain");
        let regs: Vec<_> = (0..n).map(|i| b.reg(format!("r{i}"), 32, 0)).collect();
        for i in 0..n {
            let prev = if i == 0 {
                regs[n - 1].q()
            } else {
                regs[i - 1].q()
            };
            let k = b.lit(32, i as u64 + 1);
            let sum = b.add(prev, k);
            b.connect(regs[i], sum);
        }
        b.finish().unwrap()
    }

    fn build_merger(c: &Circuit) -> (CostModel, FiberSet) {
        let costs = CostModel::of(c);
        let fs = extract_fibers(c, &costs);
        (costs, fs)
    }

    #[test]
    fn stage3_reaches_target_on_balanced_chain() {
        let c = chain(32);
        let (costs, fs) = build_merger(&c);
        let adj = adjacency(&c, &fs);
        let procs: Vec<Process> = (0..fs.len())
            .map(|i| Process::singleton(&fs, FiberId(i as u32)))
            .collect();
        let mut m = Merger::new(&c, &costs, &fs, &adj, procs, 400 << 10, 200 << 10).unwrap();
        let before = m.straggler_cost();
        m.run(8, false);
        // Stage 3 never raises the straggler... but balanced chains merge
        // only where cost stays under the bound, so it may stall early.
        assert!(m.straggler_cost() <= before);
        let mut m4 = m;
        m4.run(8, true);
        assert_eq!(m4.active(), 8);
        let procs = m4.into_processes();
        assert_eq!(procs.iter().map(|p| p.fibers.len()).sum::<usize>(), 32);
    }

    #[test]
    fn stage3_keeps_straggler_bound() {
        // One huge fiber + many small ones: small ones merge, bound holds.
        let mut b = Builder::new("skew");
        let big = b.reg("big", 64, 0);
        let mut acc = big.q();
        for _ in 0..20 {
            acc = b.mul(acc, acc);
        }
        b.connect(big, acc);
        let mut smalls = Vec::new();
        for i in 0..16 {
            let r = b.reg(format!("s{i}"), 8, 0);
            let one = b.lit(8, 1);
            let nxt = b.add(r.q(), one);
            b.connect(r, nxt);
            smalls.push(r);
        }
        let c = b.finish().unwrap();
        let (costs, fs) = build_merger(&c);
        let adj = adjacency(&c, &fs);
        let procs: Vec<Process> = (0..fs.len())
            .map(|i| Process::singleton(&fs, FiberId(i as u32)))
            .collect();
        let mut m = Merger::new(&c, &costs, &fs, &adj, procs, 400 << 10, 200 << 10).unwrap();
        let bound = m.straggler_cost();
        m.run(2, false);
        assert!(
            m.straggler_cost() <= bound,
            "stage 3 must not grow the straggler"
        );
        assert!(
            m.active() <= 3,
            "independent small fibers should pack: {}",
            m.active()
        );
    }

    #[test]
    fn oversized_fiber_is_rejected() {
        let mut b = Builder::new("huge");
        let addr = b.input("a", 10);
        let mem = b.array("m", 512, 1024); // 64 KiB
        let rd = b.array_read(mem, addr);
        let r = b.reg("r", 512, 0);
        let x = b.xor(rd, r.q());
        b.connect(r, x);
        let c = b.finish().unwrap();
        let (costs, fs) = build_merger(&c);
        let adj = adjacency(&c, &fs);
        let procs: Vec<Process> = (0..fs.len())
            .map(|i| Process::singleton(&fs, FiberId(i as u32)))
            .collect();
        // Give a tiny budget so the array cannot fit.
        let r = Merger::new(&c, &costs, &fs, &adj, procs, 16 << 10, 200 << 10);
        assert!(matches!(r, Err(CompileError::FiberTooLarge { .. })));
    }

    #[test]
    fn memory_budget_blocks_merges() {
        // Two fibers each with a 32 KiB array; budget fits one array only.
        let mut b = Builder::new("mem");
        for i in 0..2 {
            let addr = b.input(format!("a{i}"), 9);
            let mem = b.array(format!("m{i}"), 512, 512); // 32 KiB each
            let rd = b.array_read(mem, addr);
            let r = b.reg(format!("r{i}"), 512, 0);
            let x = b.xor(rd, r.q());
            b.connect(r, x);
        }
        let c = b.finish().unwrap();
        let (costs, fs) = build_merger(&c);
        let adj = adjacency(&c, &fs);
        let procs: Vec<Process> = (0..fs.len())
            .map(|i| Process::singleton(&fs, FiberId(i as u32)))
            .collect();
        let mut m = Merger::new(&c, &costs, &fs, &adj, procs, 40 << 10, 200 << 10).unwrap();
        m.run(1, true);
        assert_eq!(m.active(), 2, "memory budget must prevent the final merge");
    }
}
