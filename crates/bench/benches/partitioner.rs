//! Compiler throughput: the four-stage partitioner end to end, plus the
//! differential-exchange ablation (§5.2).

use criterion::{criterion_group, criterion_main, Criterion};
use parendi_core::{compile, PartitionConfig, Strategy};
use parendi_designs::Benchmark;
use std::hint::black_box;

fn bench_partitioner(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioner");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    let circuit = Benchmark::Sr(6).build();
    g.bench_function("sr6_bottom_up_1472", |b| {
        b.iter(|| compile(black_box(&circuit), &PartitionConfig::with_tiles(1472)).unwrap())
    });
    g.bench_function("sr6_hypergraph_1472", |b| {
        let mut cfg = PartitionConfig::with_tiles(1472);
        cfg.strategy = Strategy::Hypergraph;
        b.iter(|| compile(black_box(&circuit), &cfg).unwrap())
    });
    g.bench_function("sr6_no_diff_exchange", |b| {
        let mut cfg = PartitionConfig::with_tiles(1472);
        cfg.differential_exchange = false;
        b.iter(|| compile(black_box(&circuit), &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_partitioner);
criterion_main!(benches);
