//! Fig. 16: Parendi's bottom-up SLB (B) vs RepCut-style hypergraph
//! partitioning (H) on a single IPU: normalized machine cycles per RTL
//! cycle with the sync/comm/comp breakdown. Neither strategy dominates.

use parendi_core::{compile, PartitionConfig, Strategy};
use parendi_designs::Benchmark;
use parendi_machine::ipu::IpuConfig;
use parendi_sim::timing::ipu_timings;

fn main() {
    let ipu = IpuConfig::m2000();
    println!("Fig. 16: cycles per RTL cycle, B vs H (normalized to B)");
    println!(
        "{:>8} {:>4} | {:>9} {:>9} {:>9} | {:>9} {:>7}",
        "design", "strat", "comp", "comm", "sync", "total", "norm"
    );
    let benches: Vec<Benchmark> = (4..=7)
        .map(Benchmark::Sr)
        .chain((2..=5).map(Benchmark::Lr))
        .collect();
    for bench in benches {
        let c = bench.build();
        let mut base = None;
        for (label, strategy) in [("B", Strategy::BottomUp), ("H", Strategy::Hypergraph)] {
            let mut cfg = PartitionConfig::with_tiles(1472);
            cfg.strategy = strategy;
            let comp = compile(&c, &cfg).expect("fits one IPU");
            let t = ipu_timings(&comp, &ipu);
            let total = t.total();
            let b = *base.get_or_insert(total);
            println!(
                "{:>8} {:>4} | {:>9.0} {:>9.0} {:>9.0} | {:>9.0} {:>7.3}",
                bench.name(),
                label,
                t.comp,
                t.comm,
                t.sync,
                total,
                total / b
            );
        }
        println!();
    }
    println!("Shape check: the winner flips between designs; neither B nor H is");
    println!("uniformly better (paper §6.6).");
}
