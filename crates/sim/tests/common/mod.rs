//! Shared random-circuit generator for integration tests.

use parendi_rtl::{Builder, Circuit, Signal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random but well-formed circuit from a seed: a soup of
/// registers, arrays and combinational ops with data-dependent control.
#[allow(dead_code)]
pub fn random_circuit(seed: u64, regs: usize, ops: usize) -> Circuit {
    random_circuit_inner(seed, regs, ops, 0)
}

/// Like [`random_circuit`], but with `inputs` primary inputs that are
/// *guaranteed* to reach every register's next-value (each register's
/// feedback is xored with an input-derived value), so per-lane stimulus
/// divergence is observable in every lane's architectural state —
/// the stimulus side of the gang-engine equivalence tests.
#[allow(dead_code)]
pub fn random_circuit_io(seed: u64, regs: usize, ops: usize, inputs: usize) -> Circuit {
    assert!(inputs > 0, "use random_circuit for the input-free variant");
    random_circuit_inner(seed, regs, ops, inputs)
}

fn random_circuit_inner(seed: u64, regs: usize, ops: usize, inputs: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::new(format!("rand{seed}"));
    let widths = [1u32, 7, 8, 16, 31, 32, 64, 65, 96];
    let mut pool: Vec<Signal> = Vec::new();
    let regs: Vec<_> = (0..regs)
        .map(|i| {
            let w = widths[rng.random_range(0..widths.len())];
            let r = b.reg(format!("r{i}"), w, rng.random::<u64>());
            pool.push(r.q());
            r
        })
        .collect();
    // A couple of memories with write traffic derived from registers.
    let mem = b.array("mem", 32, 32);
    let seed_sig = b.lit(32, rng.random::<u64>());
    pool.push(seed_sig);
    // Primary inputs (per-lane stimulus hooks) of assorted widths; they
    // join the pool and are folded into every register below.
    let in_widths = [1u32, 8, 32, 64];
    let in_sigs: Vec<Signal> = (0..inputs)
        .map(|i| {
            let w = in_widths[i % in_widths.len()];
            let s = b.input(format!("in{i}"), w);
            pool.push(s);
            s
        })
        .collect();

    let pick = |b: &mut Builder, pool: &[Signal], rng: &mut StdRng, width: u32| -> Signal {
        // Find a pool signal and adapt its width.
        let s = pool[rng.random_range(0..pool.len())];
        match s.width().cmp(&width) {
            std::cmp::Ordering::Equal => s,
            std::cmp::Ordering::Less => {
                if rng.random_bool(0.5) {
                    b.zext(s, width)
                } else {
                    b.sext(s, width)
                }
            }
            std::cmp::Ordering::Greater => b.slice(s, width - 1, 0),
        }
    };

    for _ in 0..ops {
        let w = widths[rng.random_range(0..widths.len())];
        let a = pick(&mut b, &pool, &mut rng, w);
        let c = pick(&mut b, &pool, &mut rng, w);
        let v = match rng.random_range(0..12) {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, c),
            3 => b.and(a, c),
            4 => b.or(a, c),
            5 => b.xor(a, c),
            6 => {
                let sh = b.lit(8, rng.random_range(0..=(w as u64 + 4)));
                b.shl(a, sh)
            }
            7 => {
                let sh = b.lit(8, rng.random_range(0..=(w as u64 + 4)));
                b.ashr(a, sh)
            }
            8 => {
                let sel = b.bit(a, rng.random_range(0..w));
                b.mux(sel, a, c)
            }
            9 => {
                let lt = b.lt_s(a, c);
                b.zext(lt, w)
            }
            10 => {
                let idx = pick(&mut b, &pool, &mut rng, 5);
                let rd = b.array_read(mem, idx);
                if w == 32 {
                    rd
                } else if w < 32 {
                    b.slice(rd, w - 1, 0)
                } else {
                    b.zext(rd, w)
                }
            }
            _ => {
                let r = b.red_xor(a);
                b.zext(r, w)
            }
        };
        pool.push(v);
    }
    // Connect every register to a random pool value of its width, and
    // expose it through a primary output (exercises output fibers and
    // the BSP engine's `peek_output` path). With inputs present, every
    // register's next-value folds one in, so distinct stimulus provably
    // diverges the state.
    for (i, r) in regs.iter().enumerate() {
        let mut v = pick(&mut b, &pool, &mut rng, r.q().width());
        if !in_sigs.is_empty() {
            let inp = in_sigs[i % in_sigs.len()];
            let adapted = match inp.width().cmp(&v.width()) {
                std::cmp::Ordering::Equal => inp,
                std::cmp::Ordering::Less => b.zext(inp, v.width()),
                std::cmp::Ordering::Greater => b.slice(inp, v.width() - 1, 0),
            };
            v = b.xor(v, adapted);
        }
        b.connect(*r, v);
        b.output(format!("o_r{i}"), r.q());
    }
    // One output on a random combinational value (a cone that may read
    // several registers, possibly across tiles).
    let mix = pick(&mut b, &pool, &mut rng, 32);
    b.output("o_mix", mix);
    // One write port on the memory.
    let idx = pick(&mut b, &pool, &mut rng, 5);
    let data = pick(&mut b, &pool, &mut rng, 32);
    let en = pick(&mut b, &pool, &mut rng, 1);
    b.array_write(mem, idx, data, en);
    b.finish().expect("random circuit must validate")
}
