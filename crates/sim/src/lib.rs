//! # parendi-sim
//!
//! The BSP simulation engine of the Parendi reproduction:
//!
//! * [`interp::Simulator`] — the single-threaded full-cycle reference
//!   interpreter (the semantic oracle);
//! * [`bsp::BspSimulator`] — parallel host execution of a compiled
//!   partition with the two-barrier BSP structure of Fig. 3;
//! * [`gang::GangSimulator`] — scenario-parallel execution: `L`
//!   independent stimulus lanes in lockstep over one compiled
//!   partition, with lane-strided state, per-lane I/O, and per-lane
//!   early exit;
//! * [`timing`] — the Eq. 1 cost breakdown
//!   (`t_comp`/`t_comm`/`t_sync`) on the IPU machine model;
//! * [`checkpoint`] — versioned, checksummed engine snapshots:
//!   crash-safe checkpoint/restore and periodic auto-checkpointing
//!   (`PARENDI_CHECKPOINT`), plus lane fork on the gang;
//! * [`fault`] — fault-injection campaigns over gang lanes (stuck-at /
//!   transient flips, detected/latent/silent coverage against a golden
//!   lane).
//!
//! Observability — per-worker event tracing (Perfetto-loadable Chrome
//! trace JSON via `PARENDI_TRACE` or the `with_trace` constructors)
//! and a typed metrics registry — lives in `parendi-telemetry`; the
//! key types ([`TraceConfig`], [`MetricsSnapshot`], [`CodeStats`],
//! [`TrackSummary`]) are re-exported here. Environment knobs are
//! cataloged in `docs/ENVVARS.md` at the repository root.
//!
//! Both simulators are facades over one lane-strided execution core
//! (`exec`, crate-private) that runs a fused, cache-compact bytecode —
//! a single hot loop shared by every engine; the compile front-end and
//! the `Step` → bytecode lowering live in `engine`.
//!
//! # Examples
//!
//! ```
//! use parendi_rtl::Builder;
//! use parendi_core::{compile, PartitionConfig};
//! use parendi_sim::{Simulator, BspSimulator};
//! use parendi_rtl::RegId;
//!
//! let mut b = Builder::new("counter");
//! let r = b.reg("c", 16, 0);
//! let one = b.lit(16, 1);
//! let n = b.add(r.q(), one);
//! b.connect(r, n);
//! let circuit = b.finish().unwrap();
//!
//! // Reference run.
//! let mut reference = Simulator::new(&circuit);
//! reference.step_n(10);
//!
//! // Parallel BSP run of the compiled partition.
//! let comp = compile(&circuit, &PartitionConfig::with_tiles(2)).unwrap();
//! let mut bsp = BspSimulator::new(&circuit, &comp.partition, 2);
//! bsp.run(10);
//! assert_eq!(bsp.reg_value(RegId(0)), reference.reg_value(RegId(0)));
//! ```

#![warn(missing_docs)]

pub mod bsp;
pub mod checkpoint;
pub(crate) mod engine;
pub(crate) mod exec;
pub mod fault;
pub mod gang;
pub mod interp;
pub mod precompiled;
pub(crate) mod simd;
pub mod timing;
pub mod transport;
pub mod vcd;

pub use bsp::{BspPhases, BspSimulator};
pub use checkpoint::{Snapshot, SnapshotError};
pub use fault::{run_campaign, CampaignReport, FaultKind, FaultOutcome, FaultPlan, FaultSpec};
pub use gang::{GangSimulator, StimulusSet};
pub use interp::Simulator;
pub use parendi_telemetry::{CodeStats, MetricsSnapshot, TraceConfig, TraceLevel, TrackSummary};
pub use precompiled::Precompiled;
pub use timing::{ipu_rate_khz, ipu_timings};
pub use transport::{TransportChoice, TransportError};
pub use vcd::{dump_vcd, dump_vcd_lane, VcdWriter};
