//! A Manticore-like machine model for the Fig. 15 comparison.
//!
//! Manticore (Emami et al., ASPLOS '23) is a 225-core, statically
//! scheduled, deeply pipelined BSP RTL-simulation architecture prototyped
//! on an FPGA at a modest clock. The paper's Fig. 15 comparison uses
//! Manticore's published numbers; we model the same first-order facts:
//! a *higher per-core simulation rate* than an IPU tile (huge register
//! file, no load/store in the inner loop) but *far less parallelism*
//! (225 vs 1472 cores) and tight FPGA memory limits.

use serde::{Deserialize, Serialize};

/// Parameters of the Manticore-like model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ManticoreConfig {
    /// Number of cores (225 in the prototype).
    pub cores: u32,
    /// Core clock in GHz (FPGA prototype ≈ 0.475 GHz).
    pub clock_ghz: f64,
    /// Per-operation cycle advantage over an IPU tile: Manticore's
    /// register file removes most loads/stores, so the same fiber takes
    /// fewer machine cycles.
    pub cycles_scale: f64,
    /// Barrier cost in cycles (static global schedule, very cheap).
    pub barrier_cycles: u64,
    /// On-FPGA memory available for design state, bytes.
    pub memory_bytes: u64,
    /// Network bytes per cycle per core.
    pub net_bytes_per_cycle: f64,
}

impl ManticoreConfig {
    /// The published 225-core FPGA prototype.
    pub fn prototype() -> Self {
        ManticoreConfig {
            cores: 225,
            clock_ghz: 0.475,
            cycles_scale: 0.45,
            barrier_cycles: 40,
            memory_bytes: 32 << 20,
            net_bytes_per_cycle: 2.0,
        }
    }

    /// Whether a design with the given state fits the FPGA memory.
    pub fn fits(&self, state_bytes: u64) -> bool {
        state_bytes <= self.memory_bytes
    }

    /// Per-RTL-cycle machine cycles given the straggler core's IPU-cycle
    /// cost and the per-core communication bytes.
    pub fn cycles_per_rtl_cycle(&self, straggler_ipu_cycles: u64, comm_bytes_per_core: u64) -> f64 {
        straggler_ipu_cycles as f64 * self.cycles_scale
            + comm_bytes_per_core as f64 / self.net_bytes_per_cycle
            + 2.0 * self.barrier_cycles as f64
    }

    /// Simulation rate in kHz.
    pub fn rate_khz(&self, cycles_per_rtl_cycle: f64) -> f64 {
        if cycles_per_rtl_cycle <= 0.0 {
            return f64::INFINITY;
        }
        self.clock_ghz * 1e6 / cycles_per_rtl_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_faster_but_fewer_cores() {
        let m = ManticoreConfig::prototype();
        assert!(
            m.cycles_scale < 1.0,
            "a Manticore core beats an IPU tile per op"
        );
        assert!(m.cores < 1472);
    }

    #[test]
    fn memory_gate() {
        let m = ManticoreConfig::prototype();
        assert!(m.fits(1 << 20));
        assert!(!m.fits(1 << 30));
    }

    #[test]
    fn rate_math() {
        let m = ManticoreConfig::prototype();
        let c = m.cycles_per_rtl_cycle(100, 16);
        assert!(c > 100.0 * m.cycles_scale);
        assert!(m.rate_khz(c) > 0.0);
    }
}
