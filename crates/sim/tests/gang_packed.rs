//! Packed-lane correctness: the bit-packed gang engine must be
//! bit-identical to the lane-strided gang **and** to the reference
//! interpreter, in every lane, across partition shapes, thread counts,
//! and lane counts straddling the 64-lane word boundary. Packing may
//! change the layout of 1-bit state, never its semantics.

mod common;

use common::random_circuit_io;
use parendi_core::{compile, MultiChipStrategy, PartitionConfig};
use parendi_rtl::bits::Bits;
use parendi_rtl::{Circuit, RegId};
use parendi_sim::{GangSimulator, Simulator, StimulusSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random per-lane input trace (the same shape the
/// strided gang matrix uses): every input of every lane is re-driven
/// with ~30% probability per cycle, so lanes diverge immediately.
fn random_stim(seed: u64, circuit: &Circuit, lanes: u32, cycles: u64) -> StimulusSet {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9AC4_ED1E);
    let mut stim = StimulusSet::new(lanes);
    for c in 0..cycles {
        for l in 0..lanes {
            for d in &circuit.inputs {
                if c == 0 || rng.random_bool(0.3) {
                    stim.drive(c, l, &d.name, Bits::from_u64(d.width, rng.random::<u64>()));
                }
            }
        }
    }
    stim
}

/// Asserts every architectural bit of `lane` matches between a packed
/// gang and an oracle closure returning `(reg, array-element, output)`
/// values.
fn check_lane_vs_reference(
    circuit: &Circuit,
    packed: &GangSimulator<'_>,
    reference: &Simulator<'_>,
    lane: usize,
    what: &str,
) {
    for i in 0..circuit.regs.len() {
        assert_eq!(
            packed.reg_value_lane(RegId(i as u32), lane),
            reference.reg_value(RegId(i as u32)),
            "{what} lane {lane}: reg {} diverged",
            circuit.regs[i].name,
        );
    }
    for (ai, a) in circuit.arrays.iter().enumerate() {
        for idx in 0..a.depth {
            assert_eq!(
                packed.array_value_lane(parendi_rtl::ArrayId(ai as u32), idx, lane),
                reference.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                "{what} lane {lane}: array {}[{idx}] diverged",
                a.name
            );
        }
    }
    for o in &circuit.outputs {
        assert_eq!(
            packed
                .peek_output_lane(&o.name, lane)
                .expect("output exists"),
            reference.output(&o.name).expect("output exists"),
            "{what} lane {lane}: output {} diverged",
            o.name
        );
    }
}

/// Runs a packed gang over `stim` and checks every lane against a fresh
/// per-lane reference interpreter replay.
fn check_packed_vs_interp(
    circuit: &Circuit,
    cfg: &PartitionConfig,
    threads: usize,
    lanes: usize,
    cycles: u64,
    seed: u64,
) {
    let comp = compile(circuit, cfg).expect("compiles");
    let stim = random_stim(seed, circuit, lanes as u32, cycles);
    let mut gang = GangSimulator::new_packed(circuit, &comp.partition, threads, lanes);
    assert!(gang.is_packed());
    gang.run_stimulus(cycles, &stim);
    for lane in 0..lanes {
        let mut reference = Simulator::new(circuit);
        for c in 0..cycles {
            stim.apply_lane(lane as u32, c, &mut reference);
            reference.step();
        }
        check_lane_vs_reference(
            circuit,
            &gang,
            &reference,
            lane,
            &format!("{threads}T x {lanes}L"),
        );
    }
}

/// Runs packed and strided gangs over the same stimulus and compares
/// them lane by lane (registers, arrays, outputs) — the cheap oracle
/// for big lane counts.
fn check_packed_vs_strided(
    circuit: &Circuit,
    cfg: &PartitionConfig,
    threads: usize,
    lanes: usize,
    cycles: u64,
    seed: u64,
) {
    let comp = compile(circuit, cfg).expect("compiles");
    let stim = random_stim(seed, circuit, lanes as u32, cycles);
    let mut packed = GangSimulator::new_packed(circuit, &comp.partition, threads, lanes);
    let mut strided = GangSimulator::new(circuit, &comp.partition, threads, lanes);
    packed.run_stimulus(cycles, &stim);
    strided.run_stimulus(cycles, &stim);
    for lane in 0..lanes {
        for i in 0..circuit.regs.len() {
            assert_eq!(
                packed.reg_value_lane(RegId(i as u32), lane),
                strided.reg_value_lane(RegId(i as u32), lane),
                "lane {lane}: reg {} packed != strided ({threads} threads x {lanes} lanes)",
                circuit.regs[i].name,
            );
        }
        for (ai, a) in circuit.arrays.iter().enumerate() {
            for idx in 0..a.depth {
                assert_eq!(
                    packed.array_value_lane(parendi_rtl::ArrayId(ai as u32), idx, lane),
                    strided.array_value_lane(parendi_rtl::ArrayId(ai as u32), idx, lane),
                    "lane {lane}: array {}[{idx}] packed != strided",
                    a.name
                );
            }
        }
        for o in &circuit.outputs {
            assert_eq!(
                packed.peek_output_lane(&o.name, lane),
                strided.peek_output_lane(&o.name, lane),
                "lane {lane}: output {} packed != strided",
                o.name
            );
        }
    }
}

/// The packed acceptance matrix against the reference interpreter:
/// Pre/Post multi-chip distribution × 1/2/4/8 threads × lane counts
/// straddling the packed word boundary (1, 63, 64, 65), per-lane
/// stimulus, array writes and output readback checked in every lane.
#[test]
fn gang_packed_matrix_matches_reference_per_lane() {
    let c = random_circuit_io(11, 10, 50, 4);
    for mc in [MultiChipStrategy::Pre, MultiChipStrategy::Post] {
        let mut cfg = PartitionConfig::with_tiles(8);
        cfg.tiles_per_chip = 4; // force real multi-chip paths
        cfg.multi_chip = mc;
        for &threads in &[1usize, 2, 4, 8] {
            for &lanes in &[1usize, 63, 64, 65] {
                check_packed_vs_interp(&c, &cfg, threads, lanes, 25, 11);
            }
        }
    }
}

/// 256 lanes — four packed words per 1-bit net — packed vs strided
/// bit-for-bit, across both multi-chip strategies.
#[test]
fn gang_packed_256_lanes_match_strided() {
    let c = random_circuit_io(23, 10, 50, 4);
    for mc in [MultiChipStrategy::Pre, MultiChipStrategy::Post] {
        let mut cfg = PartitionConfig::with_tiles(8);
        cfg.tiles_per_chip = 4;
        cfg.multi_chip = mc;
        for &threads in &[1usize, 4, 8] {
            check_packed_vs_strided(&c, &cfg, threads, 256, 25, 23);
        }
    }
}

/// A second random topology per matrix cell at the word boundary — the
/// packed/strided split depends on where 1-bit registers land, so a
/// different seed exercises different pack/unpack boundaries.
#[test]
fn gang_packed_second_seed_matches_reference() {
    let c = random_circuit_io(23, 12, 60, 4);
    let mut cfg = PartitionConfig::with_tiles(8);
    cfg.tiles_per_chip = 4;
    for &threads in &[1usize, 4] {
        for &lanes in &[63usize, 64, 65] {
            check_packed_vs_interp(&c, &cfg, threads, lanes, 25, 29);
        }
    }
}

/// Early exit under packing: retiring lanes must freeze their packed
/// 1-bit registers, mailbox epochs, and outputs bit-exact while the
/// survivors keep advancing (the packed commits/sends blend through the
/// retire mask — this is the test that mask).
#[test]
fn gang_packed_early_exit_freezes_lanes() {
    let c = random_circuit_io(31, 10, 50, 4);
    let mut cfg = PartitionConfig::with_tiles(8);
    cfg.tiles_per_chip = 4;
    let comp = compile(&c, &cfg).expect("compiles");
    let lanes = 70usize; // straddles the word boundary
    let cycles = 30u64;
    let stim = random_stim(37, &c, lanes as u32, cycles);
    let mut gang = GangSimulator::new_packed(&c, &comp.partition, 4, lanes);

    // Run halfway, snapshot two lanes, retire them, run the rest.
    let half = cycles / 2;
    gang.run_stimulus(half, &stim);
    let frozen = [3usize, 66];
    let snap: Vec<Vec<Bits>> = frozen
        .iter()
        .map(|&l| {
            (0..c.regs.len())
                .map(|i| gang.reg_value_lane(RegId(i as u32), l))
                .collect()
        })
        .collect();
    let snap_out: Vec<Vec<Option<Bits>>> = frozen
        .iter()
        .map(|&l| {
            c.outputs
                .iter()
                .map(|o| gang.peek_output_lane(&o.name, l))
                .collect()
        })
        .collect();
    for &l in &frozen {
        gang.finish_lane(l);
    }
    gang.run_stimulus(cycles - half, &stim);

    // Frozen lanes: bit-exact at their snapshot.
    for (k, &l) in frozen.iter().enumerate() {
        for (i, expect) in snap[k].iter().enumerate() {
            assert_eq!(
                &gang.reg_value_lane(RegId(i as u32), l),
                expect,
                "retired lane {l}: reg {} moved",
                c.regs[i].name
            );
        }
        for (oi, o) in c.outputs.iter().enumerate() {
            assert_eq!(
                gang.peek_output_lane(&o.name, l),
                snap_out[k][oi],
                "retired lane {l}: output {} moved",
                o.name
            );
        }
    }
    // Survivors: bit-exact against their full-trace reference.
    for lane in [0usize, 40, 69] {
        let mut reference = Simulator::new(&c);
        for cy in 0..cycles {
            stim.apply_lane(lane as u32, cy, &mut reference);
            reference.step();
        }
        check_lane_vs_reference(&c, &gang, &reference, lane, "survivor");
    }
}
