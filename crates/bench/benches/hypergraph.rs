//! Multilevel hypergraph partitioner throughput (the KaHyPar substitute
//! used by stage 2 and the RepCut strategy).

use criterion::{criterion_group, criterion_main, Criterion};
use parendi_hypergraph::Hypergraph;
use std::hint::black_box;

fn mesh_graph(side: u32) -> Hypergraph {
    let n = side * side;
    let mut hg = Hypergraph::new(vec![1; n as usize]);
    for y in 0..side {
        for x in 0..side {
            let id = y * side + x;
            if x + 1 < side {
                hg.add_edge(2, vec![id, id + 1]);
            }
            if y + 1 < side {
                hg.add_edge(2, vec![id, id + side]);
            }
        }
    }
    hg
}

fn bench_hypergraph(c: &mut Criterion) {
    let mut g = c.benchmark_group("hypergraph");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    let hg = mesh_graph(48); // 2304 nodes
    for k in [2u32, 4] {
        g.bench_function(format!("mesh48_k{k}"), |b| {
            b.iter(|| black_box(&hg).partition(k, 0.05, 7))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hypergraph);
criterion_main!(benches);
