//! # parendi-designs
//!
//! The benchmark RTL designs of the Parendi reproduction, all built with
//! the `parendi-rtl` eDSL and functionally verified against software
//! golden models:
//!
//! * [`prng`] — the §4.1 xorshift bank (Fig. 4 microbenchmark);
//! * [`pico`] — a multi-cycle RV32I core (imbalanced fibers);
//! * [`rocket`] — a pipelined RV32I core with forwarding;
//! * [`sha256`] — a fully pipelined double-SHA-256 bitcoin miner
//!   (balanced fibers);
//! * [`mc`] — a Monte-Carlo option-pricing engine;
//! * [`vta`] — a systolic GEMM accelerator;
//! * [`noc`] — the srN/lrN mesh-NoC-of-cores generator;
//! * [`isa`] — an RV32I assembler and golden-model interpreter.
//!
//! [`Benchmark`] enumerates the paper's evaluation suite (§6) at the
//! reproduction's scale; see EXPERIMENTS.md for the scale factors.

#![warn(missing_docs)]

pub mod ca;
pub mod isa;
pub mod mc;
pub mod noc;
pub mod pico;
pub mod prng;
pub mod rocket;
pub mod rv32;
pub mod sha256;
pub mod vta;

use parendi_rtl::Circuit;

/// A named benchmark of the paper's evaluation (§6) or analysis (§4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Benchmark {
    /// The VTA-like GEMM accelerator (block size scales the design).
    Vta,
    /// The Monte-Carlo option pricer.
    Mc,
    /// N×N small-core mesh (paper sr2–sr15).
    Sr(u32),
    /// N×N large-core mesh (paper lr2–lr10).
    Lr(u32),
    /// The multi-cycle RISC-V core of §4.3.
    Pico,
    /// The pipelined RISC-V core of §4.3.
    Rocket,
    /// The double-SHA-256 miner of §4.3.
    Bitcoin,
    /// `n` independent xorshift64 fibers (§4.1).
    Prng(u32),
    /// A Rule 30 cellular-automaton ring of `n` 1-bit cells — the
    /// pure-control workload (every net is one bit; the bit-packed
    /// gang's best case).
    Ca(u32),
}

impl Benchmark {
    /// The paper's name for this benchmark.
    pub fn name(&self) -> String {
        match self {
            Benchmark::Vta => "vta".into(),
            Benchmark::Mc => "mc".into(),
            Benchmark::Sr(n) => format!("sr{n}"),
            Benchmark::Lr(n) => format!("lr{n}"),
            Benchmark::Pico => "pico".into(),
            Benchmark::Rocket => "rocket".into(),
            Benchmark::Bitcoin => "bitcoin".into(),
            Benchmark::Prng(n) => format!("prng{n}"),
            Benchmark::Ca(n) => format!("ca{n}"),
        }
    }

    /// Parses a [`name`](Self::name) string back into its benchmark —
    /// the inverse, so wire protocols and CLIs can identify designs by
    /// key instead of serializing circuits. `None` for unknown names
    /// (including parameterized families with a missing or zero
    /// parameter: there is no `sr0` mesh).
    pub fn parse(name: &str) -> Option<Benchmark> {
        fn param(s: &str, prefix: &str) -> Option<u32> {
            let n: u32 = s.strip_prefix(prefix)?.parse().ok()?;
            (n >= 1).then_some(n)
        }
        match name {
            "vta" => Some(Benchmark::Vta),
            "mc" => Some(Benchmark::Mc),
            "pico" => Some(Benchmark::Pico),
            "rocket" => Some(Benchmark::Rocket),
            "bitcoin" => Some(Benchmark::Bitcoin),
            _ => param(name, "sr")
                .map(Benchmark::Sr)
                .or_else(|| param(name, "lr").map(Benchmark::Lr))
                .or_else(|| param(name, "prng").map(Benchmark::Prng))
                .or_else(|| param(name, "ca").map(Benchmark::Ca)),
        }
    }

    /// Builds the benchmark circuit at the reproduction's scale.
    pub fn build(&self) -> Circuit {
        match self {
            // BlockIn/Out=64 in the paper; 16×16 at our scale.
            Benchmark::Vta => vta::build_vta(&vta::VtaConfig::new(16, 16, 32)),
            Benchmark::Mc => mc::build_mc(&mc::McConfig {
                paths: 128,
                ..Default::default()
            }),
            Benchmark::Sr(n) => noc::build_mesh(&noc::MeshConfig::small(*n)),
            Benchmark::Lr(n) => noc::build_mesh(&noc::MeshConfig::large(*n)),
            Benchmark::Pico => pico::build_pico(&pico::PicoConfig::new(isa::programs::mixed(2000))),
            Benchmark::Rocket => {
                rocket::build_rocket(&rocket::RocketConfig::new(isa::programs::mixed(2000)))
            }
            Benchmark::Bitcoin => sha256::build_miner(&sha256::MinerConfig::default()),
            Benchmark::Prng(n) => prng::build_prng_bank(*n),
            Benchmark::Ca(n) => ca::build_rule30(*n),
        }
    }

    /// The paper's full Fig. 7 / Table 3 suite: vta, mc, sr2–srN, lr2–lrN.
    ///
    /// `sr_max`/`lr_max` default to the paper's 15/10 but can be lowered
    /// for quick runs.
    pub fn suite(sr_max: u32, lr_max: u32) -> Vec<Benchmark> {
        let mut v = vec![Benchmark::Vta, Benchmark::Mc];
        v.extend((2..=sr_max).map(Benchmark::Sr));
        v.extend((2..=lr_max).map(Benchmark::Lr));
        v
    }

    /// The three small designs of §4.3 (Fig. 6, Table 1).
    pub fn small_three() -> Vec<Benchmark> {
        vec![Benchmark::Pico, Benchmark::Bitcoin, Benchmark::Rocket]
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_and_validate() {
        for bench in [
            Benchmark::Vta,
            Benchmark::Mc,
            Benchmark::Sr(2),
            Benchmark::Lr(2),
            Benchmark::Pico,
            Benchmark::Rocket,
            Benchmark::Bitcoin,
            Benchmark::Prng(8),
        ] {
            let c = bench.build();
            assert!(c.validate().is_ok(), "{} must validate", bench.name());
            assert!(!c.regs.is_empty(), "{} has state", bench.name());
        }
    }

    #[test]
    fn suite_matches_paper_composition() {
        let suite = Benchmark::suite(15, 10);
        assert_eq!(suite.len(), 2 + 14 + 9); // vta, mc, sr2-15, lr2-10
        assert_eq!(suite[0].name(), "vta");
        assert_eq!(suite.last().unwrap().name(), "lr10");
        assert_eq!(Benchmark::small_three().len(), 3);
    }

    #[test]
    fn parse_inverts_name() {
        for bench in [
            Benchmark::Vta,
            Benchmark::Mc,
            Benchmark::Sr(3),
            Benchmark::Lr(2),
            Benchmark::Pico,
            Benchmark::Rocket,
            Benchmark::Bitcoin,
            Benchmark::Prng(8),
            Benchmark::Ca(64),
        ] {
            assert_eq!(Benchmark::parse(&bench.name()), Some(bench));
        }
        for junk in ["", "sr", "sr0", "srx", "vta2", "mesh", "ca-3"] {
            assert_eq!(Benchmark::parse(junk), None, "{junk:?} must not parse");
        }
    }

    #[test]
    fn meshes_grow_monotonically() {
        let g4 = parendi_rtl::stats(&Benchmark::Sr(4).build()).gates;
        let g6 = parendi_rtl::stats(&Benchmark::Sr(6).build()).gates;
        assert!(g6 > 2 * g4, "sr6 {g6} vs sr4 {g4}");
    }
}
