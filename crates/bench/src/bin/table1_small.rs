//! Table 1: simulation rates for the three small designs — Parendi at
//! one tile and at one-fiber-per-tile, Verilator single- and
//! two-thread on the ix3 model.

use parendi_baseline::VerilatorModel;
use parendi_bench::{ipu_point, rule};
use parendi_designs::Benchmark;
use parendi_machine::ipu::IpuConfig;
use parendi_machine::x64::X64Config;

fn main() {
    let ipu = IpuConfig::m2000();
    let ix3 = X64Config::ix3();
    println!("Table 1: small-design rates (kHz)");
    rule(86);
    println!(
        "{:<8} | {:>6} {:>10} | {:>6} {:>10} | {:>10} {:>10}",
        "design", "par", "Parendi", "par", "Parendi", "vlt 1T", "vlt 2T"
    );
    rule(86);
    for bench in Benchmark::small_three() {
        let c = bench.build();
        let one = ipu_point(&c, 1, &ipu);
        let fibers = one.comp.fibers.len() as u32;
        // Best parallel configuration up to one fiber per tile.
        let max = [64, 128, 256, 512, 1024, 1472, fibers]
            .into_iter()
            .filter(|&t| t > 1)
            .map(|t| ipu_point(&c, t.min(fibers), &ipu))
            .max_by(|a, b| a.khz.partial_cmp(&b.khz).expect("finite"))
            .expect("non-empty");
        let vm = VerilatorModel::new(&c);
        println!(
            "{:<8} | {:>6} {:>10.1} | {:>6} {:>10.1} | {:>10.1} {:>10.1}",
            bench.name(),
            one.tiles_used,
            one.khz,
            max.tiles_used,
            max.khz,
            vm.rate_khz(&ix3, 1),
            vm.rate_khz(&ix3, 2),
        );
    }
    rule(86);
    println!("Shape check: x64 gains nothing from 2 threads on these sizes;");
    println!("Parendi's parallel bitcoin beats its single-tile rate by orders of magnitude.");
}
