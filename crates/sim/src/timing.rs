//! Timing layers: per-RTL-cycle cost of a compiled partition on the IPU
//! machine model (Eq. 1: `r = 1 / (t_sync + t_comm + t_comp)`).

use parendi_core::Compilation;
use parendi_machine::ipu::{IpuConfig, IpuTimings};

/// Computes the IPU cost breakdown of a compilation.
///
/// * `t_comp` — the straggler process's deduplicated cycles (§4.3);
/// * `t_comm` — on-chip exchange driven by the worst per-tile byte count
///   plus off-chip exchange driven by total cross-chip volume (§4.2);
/// * `t_sync` — two barriers across the tiles used (§4.1).
pub fn ipu_timings(comp: &Compilation, ipu: &IpuConfig) -> IpuTimings {
    let tiles = comp.partition.tiles_used();
    let onchip = ipu.onchip_exchange_cycles(comp.plan.max_tile_onchip_bytes);
    let offchip = ipu.offchip_exchange_cycles(comp.plan.offchip_total_bytes);
    IpuTimings {
        comp: comp.partition.straggler_cost() as f64,
        comm: (onchip + offchip) as f64,
        sync: ipu.sync_cycles(tiles) as f64,
    }
}

/// The simulation rate of a compilation on `ipu`, in kHz.
pub fn ipu_rate_khz(comp: &Compilation, ipu: &IpuConfig) -> f64 {
    ipu_timings(comp, ipu).rate_khz(ipu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_core::{compile, PartitionConfig};
    use parendi_rtl::Builder;

    fn chain(n: usize) -> parendi_rtl::Circuit {
        let mut b = Builder::new("chain");
        let regs: Vec<_> = (0..n).map(|i| b.reg(format!("r{i}"), 32, 0)).collect();
        for i in 0..n {
            let prev = regs[(i + n - 1) % n].q();
            let k = b.lit(32, 7);
            let v = b.mul(prev, k);
            b.connect(regs[i], v);
        }
        b.finish().unwrap()
    }

    #[test]
    fn more_tiles_reduce_comp() {
        let c = chain(64);
        let ipu = IpuConfig::m2000();
        let t4 = ipu_timings(&compile(&c, &PartitionConfig::with_tiles(4)).unwrap(), &ipu);
        let t32 = ipu_timings(
            &compile(&c, &PartitionConfig::with_tiles(32)).unwrap(),
            &ipu,
        );
        assert!(
            t32.comp < t4.comp,
            "comp must fall with tiles: {t4:?} vs {t32:?}"
        );
        // Rate math is consistent.
        assert!(t32.total() > 0.0);
    }

    #[test]
    fn single_tile_has_no_comm() {
        let c = chain(8);
        let ipu = IpuConfig::m2000();
        let comp = compile(&c, &PartitionConfig::with_tiles(1)).unwrap();
        let t = ipu_timings(&comp, &ipu);
        assert_eq!(t.comm, 0.0, "one tile exchanges nothing");
        assert!(t.comp > 0.0);
    }

    #[test]
    fn crossing_chips_costs_more() {
        let c = chain(64);
        let ipu = IpuConfig::m2000();
        let mut one_chip = PartitionConfig::with_tiles(32);
        one_chip.tiles_per_chip = 64;
        let mut two_chips = PartitionConfig::with_tiles(32);
        two_chips.tiles_per_chip = 16;
        let t1 = ipu_timings(&compile(&c, &one_chip).unwrap(), &ipu);
        let t2 = ipu_timings(&compile(&c, &two_chips).unwrap(), &ipu);
        assert!(
            t2.sync + t2.comm > t1.sync + t1.comm,
            "chip crossing must add sync+comm: {t1:?} vs {t2:?}"
        );
    }
}
