//! Property tests pinning `HybridSet`/`DenseBitSet` behaviour to a
//! `BTreeSet` reference model across the sparse→dense promotion.

use parendi_graph::{DenseBitSet, HybridSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

const UNIVERSE: usize = 2048;

fn model_of(elems: &[u32]) -> BTreeSet<u32> {
    elems.iter().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hybrid_union_matches_model(
        a in proptest::collection::vec(0u32..UNIVERSE as u32, 0..300),
        b in proptest::collection::vec(0u32..UNIVERSE as u32, 0..300),
    ) {
        let mut s = HybridSet::from_iter(UNIVERSE, a.iter().copied());
        let t = HybridSet::from_iter(UNIVERSE, b.iter().copied());
        s.union_with(&t);
        let mut m = model_of(&a);
        m.extend(model_of(&b));
        prop_assert_eq!(s.len(), m.len());
        prop_assert_eq!(s.iter().collect::<Vec<_>>(), m.iter().copied().collect::<Vec<_>>());
        for probe in [0u32, 7, 100, 2047] {
            prop_assert_eq!(s.contains(probe), m.contains(&probe));
        }
    }

    #[test]
    fn weighted_intersection_matches_model(
        a in proptest::collection::vec(0u32..UNIVERSE as u32, 0..300),
        b in proptest::collection::vec(0u32..UNIVERSE as u32, 0..300),
        seed in any::<u64>(),
    ) {
        let weights: Vec<u32> =
            (0..UNIVERSE as u64).map(|i| ((i * 2654435761).wrapping_add(seed) % 97) as u32).collect();
        let s = HybridSet::from_iter(UNIVERSE, a.iter().copied());
        let t = HybridSet::from_iter(UNIVERSE, b.iter().copied());
        let (ma, mb) = (model_of(&a), model_of(&b));
        let expect: u64 = ma.intersection(&mb).map(|&e| weights[e as usize] as u64).sum();
        prop_assert_eq!(s.weighted_intersection(&t, &weights), expect);
        prop_assert_eq!(t.weighted_intersection(&s, &weights), expect, "symmetry");
        let expect_len: u64 = ma.iter().map(|&e| weights[e as usize] as u64).sum();
        prop_assert_eq!(s.weighted_len(&weights), expect_len);
    }

    #[test]
    fn dense_matches_model(
        a in proptest::collection::vec(0u32..UNIVERSE as u32, 0..500),
        b in proptest::collection::vec(0u32..UNIVERSE as u32, 0..500),
    ) {
        let mut s = DenseBitSet::new(UNIVERSE);
        for &e in &a {
            s.insert(e);
        }
        let mut t = DenseBitSet::new(UNIVERSE);
        for &e in &b {
            t.insert(e);
        }
        let (ma, mb) = (model_of(&a), model_of(&b));
        prop_assert_eq!(s.len(), ma.len());
        prop_assert_eq!(s.intersection_len(&t), ma.intersection(&mb).count());
        s.union_with(&t);
        let mut mu = ma.clone();
        mu.extend(mb.iter().copied());
        prop_assert_eq!(s.iter().collect::<Vec<_>>(), mu.into_iter().collect::<Vec<_>>());
    }
}
