//! # parendi-core
//!
//! The Parendi compiler: the paper's primary contribution. Given an RTL
//! circuit (from `parendi-rtl`) it extracts fibers, solves the
//! submodular load-balancing problem with the four-stage algorithm of
//! §5.1, assigns processes to IPU tiles and chips, and compiles the BSP
//! exchange (including the differential-exchange optimization of §5.2).
//!
//! # Exchange architecture
//!
//! Compilation produces an executable [`Routing`] ([`routing`]): for
//! every register and array write port, the producer tile, the explicit
//! consumer tiles, and pre-resolved word offsets into per-tile-pair
//! channel buffers. The [`ExchangePlan`] byte counts the cost model
//! consumes are *derived* from this structure
//! ([`routing::Routing::exchange_plan`]), and the parallel BSP engine in
//! `parendi-sim` executes the very same hops through double-buffered
//! mailboxes — one source of truth for what moves between tiles.
//!
//! # Examples
//!
//! ```
//! use parendi_rtl::Builder;
//! use parendi_core::{compile, PartitionConfig};
//!
//! let mut b = Builder::new("pair");
//! let r0 = b.reg("r0", 16, 1);
//! let r1 = b.reg("r1", 16, 2);
//! let sum = b.add(r0.q(), r1.q());
//! let dif = b.sub(r0.q(), r1.q());
//! b.connect(r0, sum);
//! b.connect(r1, dif);
//! let circuit = b.finish().unwrap();
//!
//! let comp = compile(&circuit, &PartitionConfig::with_tiles(2)).unwrap();
//! assert_eq!(comp.partition.tiles_used(), 2);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod exchange;
pub mod key;
pub mod partition;
pub mod process;
pub mod repcut;
pub mod routing;
pub mod slb;
pub mod stages;

pub use config::{CompileError, MultiChipStrategy, PartitionConfig, Strategy};
pub use exchange::{plan, ExchangePlan};
pub use key::{circuit_content_hash, CompileKey};
pub use partition::Partition;
pub use process::Process;
pub use routing::{ChannelClass, ChannelSpec, Hop, PortRoute, RegRoute, Routing};
pub use stages::{compile, Compilation};
