//! The executable `Routing` is the single source of truth for exchange
//! volumes. This suite pins its derived `ExchangePlan` to the *legacy*
//! accounting (the pre-routing direct computation, reimplemented here as
//! a golden reference) across the benchmark-design corpus, so the
//! refactor provably changed the representation and not the numbers.

use parendi_core::{
    compile, ChannelClass, ExchangePlan, MultiChipStrategy, Partition, PartitionConfig, Routing,
};
use parendi_designs::Benchmark;
use parendi_graph::fiber::{SinkKind, PORT_RECORD_OVERHEAD_BYTES};
use parendi_rtl::bits::words_for;
use parendi_rtl::Circuit;

/// The original (pre-`Routing`) exchange-plan computation, kept verbatim
/// as the golden reference for the equivalence claim.
fn legacy_plan(circuit: &Circuit, partition: &Partition, differential: bool) -> ExchangePlan {
    let n = partition.processes.len();
    let mut out = ExchangePlan {
        tile_out_bytes: vec![0; n],
        tile_in_bytes: vec![0; n],
        ..Default::default()
    };

    let mut reg_writer = vec![u32::MAX; circuit.regs.len()];
    let mut array_port_tiles: Vec<Vec<(u32, u64)>> = vec![Vec::new(); circuit.arrays.len()];
    for (pi, p) in partition.processes.iter().enumerate() {
        for &f in &p.fibers {
            match partition.fiber_sinks[f.index()] {
                SinkKind::Reg(r) => reg_writer[r.index()] = pi as u32,
                SinkKind::ArrayPort { array, .. } => {
                    let a = &circuit.arrays[array.index()];
                    let bytes = words_for(a.width) as u64 * 8 + PORT_RECORD_OVERHEAD_BYTES;
                    array_port_tiles[array.index()].push((pi as u32, bytes));
                }
                SinkKind::Output(_) => {}
            }
        }
    }

    for (pi, p) in partition.processes.iter().enumerate() {
        for &r in &p.regs_read {
            let w = reg_writer[r.index()];
            if w == u32::MAX || w == pi as u32 {
                continue;
            }
            let bytes = words_for(circuit.regs[r.index()].width) as u64 * 8;
            out.tile_out_bytes[w as usize] += bytes;
            out.tile_in_bytes[pi] += bytes;
            if partition.processes[w as usize].chip != p.chip {
                out.offchip_total_bytes += bytes;
            }
        }
    }
    for (ri, reg) in circuit.regs.iter().enumerate() {
        let w = reg_writer[ri];
        if w == u32::MAX {
            continue;
        }
        let bytes = words_for(reg.width) as u64 * 8;
        let mut crosses_tile = false;
        let mut crosses_chip = false;
        for (pi, p) in partition.processes.iter().enumerate() {
            if pi as u32 == w {
                continue;
            }
            if p.regs_read
                .binary_search(&parendi_rtl::RegId(ri as u32))
                .is_ok()
            {
                crosses_tile = true;
                if p.chip != partition.processes[w as usize].chip {
                    crosses_chip = true;
                }
            }
        }
        if crosses_tile {
            out.onchip_cut_bytes += bytes;
        }
        if crosses_chip {
            out.offchip_cut_bytes += bytes;
        }
    }

    for (ai, a) in circuit.arrays.iter().enumerate() {
        let full_bytes = a.size_bytes();
        let readers: Vec<u32> = partition
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.arrays
                    .binary_search(&parendi_rtl::ArrayId(ai as u32))
                    .is_ok()
            })
            .map(|(i, _)| i as u32)
            .collect();
        let mut crossed_tile = false;
        let mut crossed_chip = false;
        for &(wt, diff_bytes) in &array_port_tiles[ai] {
            let payload = if differential { diff_bytes } else { full_bytes };
            for &rt in &readers {
                if rt == wt {
                    continue;
                }
                crossed_tile = true;
                out.tile_out_bytes[wt as usize] += payload;
                out.tile_in_bytes[rt as usize] += payload;
                if partition.processes[rt as usize].chip != partition.processes[wt as usize].chip {
                    out.offchip_total_bytes += payload;
                    crossed_chip = true;
                }
            }
        }
        let cut: u64 = if differential {
            array_port_tiles[ai].iter().map(|&(_, b)| b).sum()
        } else {
            full_bytes
        };
        if crossed_tile {
            out.onchip_cut_bytes += cut;
        }
        if crossed_chip {
            out.offchip_cut_bytes += cut;
        }
    }

    out.max_tile_onchip_bytes = (0..n)
        .map(|i| out.tile_out_bytes[i] + out.tile_in_bytes[i])
        .max()
        .unwrap_or(0);
    out
}

fn assert_plans_equal(bench: &str, tiles: u32, a: &ExchangePlan, b: &ExchangePlan) {
    assert_eq!(
        a.tile_out_bytes, b.tile_out_bytes,
        "{bench}@{tiles}: tile_out_bytes"
    );
    assert_eq!(
        a.tile_in_bytes, b.tile_in_bytes,
        "{bench}@{tiles}: tile_in_bytes"
    );
    assert_eq!(
        a.max_tile_onchip_bytes, b.max_tile_onchip_bytes,
        "{bench}@{tiles}: max_tile_onchip_bytes"
    );
    assert_eq!(
        a.offchip_total_bytes, b.offchip_total_bytes,
        "{bench}@{tiles}: offchip_total_bytes"
    );
    assert_eq!(
        a.onchip_cut_bytes, b.onchip_cut_bytes,
        "{bench}@{tiles}: onchip_cut_bytes"
    );
    assert_eq!(
        a.offchip_cut_bytes, b.offchip_cut_bytes,
        "{bench}@{tiles}: offchip_cut_bytes"
    );
}

#[test]
fn routing_reproduces_legacy_plan_on_designs_corpus() {
    let corpus = [
        Benchmark::Pico,
        Benchmark::Rocket,
        Benchmark::Bitcoin,
        Benchmark::Mc,
        Benchmark::Vta,
        Benchmark::Sr(3),
        Benchmark::Lr(2),
        Benchmark::Prng(32),
    ];
    for bench in corpus {
        let circuit = bench.build();
        for tiles in [4u32, 48, 192] {
            for differential in [true, false] {
                let mut cfg = PartitionConfig::with_tiles(tiles);
                cfg.tiles_per_chip = tiles.div_ceil(2).max(1);
                cfg.differential_exchange = differential;
                let comp = compile(&circuit, &cfg)
                    .unwrap_or_else(|e| panic!("{} at {tiles}: {e}", bench.name()));
                let derived = comp.routing.exchange_plan(&circuit, differential);
                let legacy = legacy_plan(&circuit, &comp.partition, differential);
                assert_plans_equal(&bench.name(), tiles, &legacy, &derived);
                // The plan stored in the compilation is the derived one.
                assert_plans_equal(&bench.name(), tiles, &comp.plan, &derived);
            }
        }
    }
}

/// Recomputes the off-chip byte volume from the channel *classification*
/// alone: every hop whose channel is `OffChip` contributes its modeled
/// payload. Independent of `exchange_plan`'s own accounting loops.
fn offchip_bytes_by_class(circuit: &Circuit, routing: &Routing, differential: bool) -> u64 {
    let mut total = 0u64;
    for route in &routing.reg_routes {
        for hop in &route.hops {
            if routing.channels[hop.channel as usize].class == ChannelClass::OffChip {
                total += route.words as u64 * 8;
            }
        }
    }
    for route in &routing.port_routes {
        let full = circuit.arrays[route.array.index()].size_bytes();
        let diff = route.data_words as u64 * 8 + PORT_RECORD_OVERHEAD_BYTES;
        let payload = if differential { diff } else { full };
        for hop in &route.hops {
            if routing.channels[hop.channel as usize].class == ChannelClass::OffChip {
                total += payload;
            }
        }
    }
    total
}

/// Golden test: the channel classification *is* the off-chip accounting.
/// Summing modeled payloads over `OffChip`-classed channels reproduces
/// `ExchangePlan::offchip_total_bytes` exactly, and the class always
/// agrees with the `tile_chip` assignment it is derived from.
#[test]
fn offchip_channel_class_pins_plan_total() {
    let corpus = [
        Benchmark::Pico,
        Benchmark::Rocket,
        Benchmark::Mc,
        Benchmark::Sr(3),
        Benchmark::Prng(32),
    ];
    for bench in corpus {
        let circuit = bench.build();
        for (tiles, per_chip) in [(8u32, 4u32), (16, 4), (24, 6)] {
            for differential in [true, false] {
                let mut cfg = PartitionConfig::with_tiles(tiles);
                cfg.tiles_per_chip = per_chip;
                cfg.differential_exchange = differential;
                let comp = compile(&circuit, &cfg)
                    .unwrap_or_else(|e| panic!("{} at {tiles}: {e}", bench.name()));
                let routing = &comp.routing;
                for ch in &routing.channels {
                    let crosses =
                        routing.tile_chip[ch.from as usize] != routing.tile_chip[ch.to as usize];
                    assert_eq!(
                        ch.class == ChannelClass::OffChip,
                        crosses,
                        "{}: channel {}→{} misclassified",
                        bench.name(),
                        ch.from,
                        ch.to
                    );
                }
                assert_eq!(
                    offchip_bytes_by_class(&circuit, routing, differential),
                    comp.plan.offchip_total_bytes,
                    "{}@{tiles}t/{per_chip}pc diff={differential}",
                    bench.name()
                );
            }
        }
    }
}

#[test]
fn routing_reproduces_legacy_plan_across_chip_strategies() {
    let circuit = Benchmark::Sr(4).build();
    for mc in [
        MultiChipStrategy::Pre,
        MultiChipStrategy::Post,
        MultiChipStrategy::None,
    ] {
        let mut cfg = PartitionConfig::with_tiles(64);
        cfg.tiles_per_chip = 16; // four chips
        cfg.multi_chip = mc;
        let comp = compile(&circuit, &cfg).unwrap();
        let derived = comp
            .routing
            .exchange_plan(&circuit, cfg.differential_exchange);
        let legacy = legacy_plan(&circuit, &comp.partition, cfg.differential_exchange);
        assert_plans_equal(&format!("sr4/{mc:?}"), 64, &legacy, &derived);
    }
}
