//! The parallel BSP execution engine: compiled point-to-point exchange.
//!
//! Executes a compiled [`Partition`] on host threads with exactly the
//! structure of Fig. 3: a *computation* phase in which every process
//! evaluates its (possibly duplicated) cone into private memory, a
//! barrier, a *communication* phase, and a second barrier. Functional
//! results are bit-identical to the reference [`Simulator`]
//! (`crate::interp`) — the engine is the correctness check for the
//! partitioner, not a model.
//!
//! # Exchange architecture
//!
//! There is no shared mutable global state and no leader thread. Every
//! tile *owns* the registers and array copies it produces or holds, and
//! all cross-tile values move through the channels of the compiled
//! [`Routing`], laid out at compile time (register slots first, then
//! array write-port records). Channels come in the two classes the
//! machine distinguishes (Fig. 5): *on-chip* channels get one
//! double-buffered mailbox per producer→consumer tile pair, while
//! *off-chip* channels are aggregated into one **wider mailbox per
//! ordered chip pair** — every cross-chip channel owns a disjoint
//! segment of its chip-pair buffer, modeling the shared gateway link
//! that off-chip traffic funnels through.
//!
//! # Chip-group worker layout
//!
//! Tiles fold onto worker threads **chip-major**: each chip's tiles go
//! to a contiguous *group* of workers sized proportionally to the chip's
//! tile count (with fewer workers than chips, whole chips round-robin
//! over workers so a chip's tiles stay within one worker). A worker
//! therefore touches at most one chip whenever the pool is at least as
//! wide as the machine, which keeps each group's on-chip mailbox traffic
//! within the group and makes the off-chip flush a per-group act — the
//! host analogue of tiles sharing a chip's exchange fabric.
//!
//! The two epochs of a mailbox alternate by cycle parity. During cycle
//! `c` every worker, for each of its tiles:
//!
//! 1. runs the tile's step program, reading its own registers and array
//!    copies plus *epoch `c`* mailbox slots for remote registers;
//! 2. latches its own registers (tile-local, nobody else reads them);
//! 3. copies outgoing **on-chip** register values and `(enable, index,
//!    data)` port records into *epoch `c+1`* on-chip mailboxes;
//! 4. in a distinct, separately-timed **off-chip flush sub-phase**,
//!    copies cross-chip values into the epoch-`c+1` chip-pair
//!    aggregates, optionally spinning a configurable per-word delay
//!    ([`BspSimulator::set_offchip_spin_per_word`]) so benches can sweep
//!    the `m×b` off-chip cost the paper measures.
//!
//! Writers touch only epoch-`c+1` buffers while readers touch only
//! epoch-`c` buffers, so neither sub-phase needs locks or barriers
//! between them. After the first barrier, the communication phase has
//! every *holder* of an array apply the staged port records (its own
//! from its arena, remote ones from epoch-`c+1` mailboxes) in global
//! `(array, port)` order, keeping every copy bit-identical; the second
//! barrier ends the cycle. The only synchronization in the steady-state
//! loop is those two barriers: no locks are taken and no heap allocation
//! occurs. Per-tile `Mutex`es exist solely so the testbench API
//! (`poke`/`reg_value`/`array_value`/`peek_output`) can inspect state
//! between [`run`](BspSimulator::run) calls, and are locked once per
//! run, outside the cycle loop.
//!
//! Worker threads are spawned once in [`BspSimulator::new`] and persist
//! across `run()` calls (the figure binaries call `run` in a loop), so
//! repeated runs pay two barrier waits, not thread start-up.
//! [`run_timed`](BspSimulator::run_timed) reports the straggler worker's
//! compute / off-chip / on-chip exchange split plus per-tile phase
//! histograms ([`BspPhases::per_tile`]) — the measured counterpart of
//! Fig. 6's load-imbalance view.
//!
//! [`Simulator`]: crate::interp::Simulator

use parendi_core::routing::{ChannelClass, Routing, PORT_RECORD_HEADER_WORDS};
use parendi_core::Partition;
use parendi_rtl::bits::{word, words_for, Bits};
use parendi_rtl::{BinOp, Circuit, InputId, NodeKind, RegId, UnOp};
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// A sense-reversing hybrid barrier for the twice-per-cycle phase
/// synchronization. BSP cycles are microseconds long, so when every
/// worker has its own core, parking on a futex (`std::sync::Barrier`)
/// costs more than an entire cycle — workers spin instead, and the
/// entire wait is a handful of atomic operations with no lock. When the
/// host is oversubscribed (more workers than cores), spinning burns the
/// timeslice of the very thread that could make progress, so waiters
/// park on a condvar; the leader only touches the condvar's mutex when
/// `parked` says somebody actually sleeps there. The run hand-off
/// barriers (`gate`/`done`) stay parking barriers — between runs,
/// sleeping is exactly right.
struct PhaseBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    /// Waiters that gave up spinning and (are about to) sleep.
    parked: AtomicUsize,
    lock: Mutex<()>,
    cv: std::sync::Condvar,
    n: usize,
    spin_limit: u32,
}

impl PhaseBarrier {
    fn new(n: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        // `n > cores` means at least one waiter would spin on a core the
        // last arriver needs: skip straight to parking. `PARENDI_SPIN_LIMIT`
        // overrides the spin budget either way — raise it on big multicore
        // boxes where cycles are short, set it to 0 to force parking.
        let spin_limit = std::env::var("PARENDI_SPIN_LIMIT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if n <= cores { 1 << 14 } else { 0 });
        PhaseBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            parked: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: std::sync::Condvar::new(),
            n,
            spin_limit,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::SeqCst);
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.store(gen.wrapping_add(1), Ordering::SeqCst);
            // Waiters increment `parked` (SeqCst) *before* re-checking the
            // generation under the lock, so observing zero here proves no
            // waiter can sleep through this release.
            if self.parked.load(Ordering::SeqCst) != 0 {
                drop(self.lock.lock().unwrap());
                self.cv.notify_all();
            }
        } else {
            for _ in 0..self.spin_limit {
                if self.generation.load(Ordering::SeqCst) != gen {
                    return;
                }
                std::hint::spin_loop();
            }
            self.parked.fetch_add(1, Ordering::SeqCst);
            let mut g = self.lock.lock().unwrap();
            while self.generation.load(Ordering::SeqCst) == gen {
                g = self.cv.wait(g).unwrap();
            }
            drop(g);
            self.parked.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// One resolved evaluation step of a process program. Every operand
/// width is pre-resolved at compile time so the cycle loop never touches
/// the circuit.
#[derive(Clone, Debug)]
enum Step {
    /// Copy from the shared (read-only during a run) input buffer.
    Input { dst: u32, src: u32, nw: u32 },
    /// Copy one of this tile's own registers.
    RegOwn { dst: u32, src: u32, nw: u32 },
    /// Copy a remote register from an inbound mailbox slot (epoch `c`).
    RegMail {
        dst: u32,
        ch: u32,
        src: u32,
        nw: u32,
    },
    /// Combinational read of a tile-local array copy.
    ArrayRead {
        dst: u32,
        arr: u32,
        idx: u32,
        idx_w: u32,
        nw: u32,
        depth: u32,
    },
    /// Unary op (`aw` = argument width in bits for the reductions).
    Un {
        op: UnOp,
        dst: u32,
        a: u32,
        w: u32,
        aw: u32,
        anw: u32,
    },
    /// Binary op (`aw` = left operand width, for comparisons/shifts).
    Bin {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
        w: u32,
        aw: u32,
        anw: u32,
        bnw: u32,
    },
    /// Two-way select; `t`/`f` are as wide as the result.
    Mux {
        dst: u32,
        sel: u32,
        t: u32,
        f: u32,
        nw: u32,
    },
    /// Bit extraction `[lo + w - 1 : lo]`.
    Slice {
        dst: u32,
        a: u32,
        lo: u32,
        w: u32,
        anw: u32,
    },
    /// Zero extension to `w` bits.
    Zext { dst: u32, a: u32, w: u32, anw: u32 },
    /// Sign extension from `aw` to `w` bits.
    Sext {
        dst: u32,
        a: u32,
        aw: u32,
        w: u32,
        anw: u32,
    },
    /// Concatenation with `lo` occupying the low `low_w` bits.
    Concat {
        dst: u32,
        hi: u32,
        lo: u32,
        w: u32,
        low_w: u32,
        hnw: u32,
        lnw: u32,
    },
}

/// Latch one of this tile's own registers (arena → `reg_cur`).
#[derive(Clone, Copy, Debug)]
struct RegCommit {
    local: u32,
    dst: u32,
    nw: u32,
}

/// Send a produced register value to one remote consumer's mailbox.
#[derive(Clone, Copy, Debug)]
struct RegSend {
    local: u32,
    ch: u32,
    dst: u32,
    nw: u32,
}

/// Stage one array write port's `(enable, index, data)` record into the
/// mailboxes of every remote holder of the array.
#[derive(Clone, Debug)]
struct PortSend {
    en: u32,
    idx: u32,
    idx_w: u32,
    data: u32,
    nw: u32,
    /// `(channel, word offset)` of the record slot per remote holder.
    dests: Vec<(u32, u32)>,
}

/// Where an applied port record comes from.
#[derive(Clone, Copy, Debug)]
enum RecSrc {
    /// This tile produced the port: read straight from its arena.
    Own {
        en: u32,
        idx: u32,
        idx_w: u32,
        data: u32,
    },
    /// A remote tile produced it: read the mailbox record (epoch `c+1`).
    Mail { ch: u32, off: u32 },
}

/// Apply one port record to a tile-local array copy (exchange phase).
#[derive(Clone, Copy, Debug)]
struct Apply {
    arr: u32,
    nw: u32,
    depth: u32,
    src: RecSrc,
}

/// A compiled per-tile program. Self-contained: executing it requires no
/// access to the `Circuit`.
#[derive(Debug)]
struct Program {
    steps: Vec<Step>,
    arena_words: usize,
    const_init: Vec<(u32, Vec<u64>)>,
    commits: Vec<RegCommit>,
    /// Register sends over on-chip channels (pushed during compute).
    sends: Vec<RegSend>,
    /// Register sends crossing chips (pushed by the off-chip flush).
    offchip_sends: Vec<RegSend>,
    /// Port records to on-chip holders (pushed during compute).
    port_sends: Vec<PortSend>,
    /// Port records to off-chip holders (pushed by the off-chip flush).
    offchip_port_sends: Vec<PortSend>,
    /// In global `(array, port)` order per array, so every holder applies
    /// identically (last port wins, as in the reference interpreter).
    applies: Vec<Apply>,
    /// Primary outputs this tile computes: `(output id, arena offset)`.
    outputs: Vec<(u32, u32)>,
}

impl Program {
    /// Whether this tile sends anything across a chip boundary (tiles
    /// that don't skip the off-chip flush sub-phase entirely).
    fn has_offchip(&self) -> bool {
        !self.offchip_sends.is_empty() || !self.offchip_port_sends.is_empty()
    }
}

/// Mutable tile-owned state. Guarded by a `Mutex` purely for the
/// testbench API; workers lock it once per `run`, not per cycle.
#[derive(Debug)]
struct TileState {
    arena: Vec<u64>,
    /// This tile's own registers, packed in `RegId` order.
    reg_cur: Vec<u64>,
    /// Local copies of held arrays, in the process's sorted array order.
    arrays: Vec<Vec<u64>>,
}

/// A double-buffered mailbox: one per on-chip producer→consumer tile
/// pair, plus one *aggregate* per ordered chip pair whose buffer is
/// segmented among all the cross-chip channels of that pair.
///
/// Epoch discipline (enforced by the two BSP barriers, see the module
/// docs): during cycle `c` producer threads write only buffer
/// `(c + 1) & 1` and consumer threads read only buffer `c & 1`
/// (computation phase) or `(c + 1) & 1` *after* the first barrier
/// (communication phase). No thread ever touches a word another thread
/// is writing.
///
/// Aggregate mailboxes can have *several concurrent writers* — one per
/// worker group flushing into its disjoint channel segments — so the
/// write side never materializes a `&mut [u64]` over the whole buffer
/// (two live `&mut` to one allocation would be UB even with disjoint
/// stores). Writers go through the raw [`write_base`](Self::write_base)
/// pointer instead.
struct Mailbox {
    bufs: [UnsafeCell<Box<[u64]>>; 2],
}

// SAFETY: access is partitioned by the epoch/barrier discipline above;
// the type itself hands out raw access only through unsafe accessors.
unsafe impl Sync for Mailbox {}

impl Mailbox {
    fn new(words: usize) -> Self {
        Mailbox {
            bufs: [
                UnsafeCell::new(vec![0u64; words].into_boxed_slice()),
                UnsafeCell::new(vec![0u64; words].into_boxed_slice()),
            ],
        }
    }

    /// SAFETY: no concurrent writer of `parity` may exist (see epoch
    /// discipline in the type docs).
    unsafe fn read(&self, parity: usize) -> &[u64] {
        &*self.bufs[parity].get()
    }

    /// Base pointer for segment writes into buffer `parity`, derived
    /// raw-to-raw so no `&mut` over the buffer ever exists.
    ///
    /// SAFETY: the epoch discipline must hold (no concurrent reader of
    /// `parity`), and each writer must store only to word ranges it
    /// exclusively owns (channel segments are disjoint by layout).
    unsafe fn write_base(&self, parity: usize) -> *mut u64 {
        (&raw mut **self.bufs[parity].get()) as *mut u64
    }
}

/// One tile's phase seconds over a timed run (its share of the worker's
/// loop bodies; barrier waits are per-worker and excluded).
#[derive(Clone, Copy, Debug, Default)]
pub struct TilePhases {
    /// Seconds running the tile's step program (incl. latches and
    /// on-chip mailbox pushes).
    pub compute_s: f64,
    /// Seconds flushing the tile's cross-chip traffic (incl. the
    /// configured per-word delay).
    pub offchip_s: f64,
    /// Seconds applying staged port records to the tile's array copies.
    pub exchange_s: f64,
}

/// Per-run phase timings: the straggler worker's split plus per-tile
/// histograms.
///
/// The three phase columns come from the *single* worker with the
/// largest compute + off-chip flush time (the straggler — totals can't
/// rank workers because barrier waits absorb the slack), so
/// `compute_s + offchip_s + exchange_s` is that worker's real wall
/// time — phases are never paired across different workers.
#[derive(Clone, Debug, Default)]
pub struct BspPhases {
    /// Wall-clock seconds for the whole run.
    pub total_s: f64,
    /// Seconds the straggler worker spent in computation phases
    /// (step programs, register latches, on-chip mailbox pushes).
    pub compute_s: f64,
    /// Seconds the straggler worker spent flushing cross-chip traffic
    /// into the per-chip-pair aggregate mailboxes (zero on single-chip
    /// partitions).
    pub offchip_s: f64,
    /// Seconds the straggler worker spent in communication phases:
    /// record application plus both barrier waits.
    pub exchange_s: f64,
    /// Per-tile phase split, indexed by tile — the measured counterpart
    /// of the Fig. 6 straggler histograms. Empty for untimed runs.
    pub per_tile: Vec<TilePhases>,
}

/// State shared between the simulator facade and the worker pool.
struct Shared {
    programs: Vec<Program>,
    tiles: Vec<Mutex<TileState>>,
    channels: Vec<Mailbox>,
    inputs: RwLock<Vec<u64>>,
    /// Workers-only phase barrier (two waits per cycle).
    phase_barrier: PhaseBarrier,
    /// Run hand-off: workers + the control thread.
    gate: Barrier,
    done: Barrier,
    cmd_cycles: AtomicU64,
    cmd_start: AtomicU64,
    cmd_timed: AtomicBool,
    exit: AtomicBool,
    /// Spin iterations per word charged to off-chip flushes.
    offchip_spin: AtomicU32,
    /// Per-worker (compute, offchip, exchange) ns of the last timed run.
    phase_ns: Vec<Mutex<(u64, u64, u64)>>,
    /// Per-tile (compute, offchip, exchange) ns of the last timed run.
    tile_ns: Vec<Mutex<(u64, u64, u64)>>,
}

/// Where a register's current value lives.
#[derive(Clone, Copy, Debug)]
struct RegHome {
    tile: u32,
    off: u32,
    words: u32,
}

/// Where an array's reference copy lives.
#[derive(Clone, Debug)]
enum ArrayHome {
    /// Held by a tile (all holders are bit-identical; we read this one).
    Held { tile: u32, slot: u32 },
    /// No tile references it: it keeps its initial contents forever.
    Spare(Vec<u64>),
}

/// Where a primary output's value lands after a tile's step program.
#[derive(Clone, Copy, Debug)]
struct OutputHome {
    tile: u32,
    off: u32,
}

/// A parallel BSP simulator for a compiled partition.
pub struct BspSimulator<'c> {
    circuit: &'c Circuit,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    reg_home: Vec<RegHome>,
    array_home: Vec<ArrayHome>,
    output_home: Vec<OutputHome>,
    input_off: Vec<u32>,
    input_by_name: HashMap<String, InputId>,
    output_by_name: HashMap<String, u32>,
    /// Mailboxes serving on-chip channels (the tail of
    /// `shared.channels` holds the per-chip-pair aggregates).
    onchip_mailboxes: usize,
    cycle: u64,
}

/// Folds tiles onto `workers` threads chip-major. Each chip's tiles go
/// to a contiguous group of workers sized proportionally to the chip's
/// tile count (every chip gets at least one worker); with fewer workers
/// than chips, whole chips round-robin over workers so a chip's tiles
/// stay within one worker. Within a group, tiles fold round-robin.
fn worker_groups(tile_chip: &[u32], workers: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); workers];
    if workers == 0 || tile_chip.is_empty() {
        return out;
    }
    let nchips = tile_chip.iter().map(|&c| c as usize + 1).max().unwrap();
    let mut by_chip: Vec<Vec<usize>> = vec![Vec::new(); nchips];
    for (t, &c) in tile_chip.iter().enumerate() {
        by_chip[c as usize].push(t);
    }
    by_chip.retain(|v| !v.is_empty());
    if workers < by_chip.len() {
        for (ci, tiles) in by_chip.iter().enumerate() {
            out[ci % workers].extend(tiles.iter().copied());
        }
        return out;
    }
    let mut next = 0usize; // first worker of the current group
    let mut tiles_left = tile_chip.len();
    let mut chips_left = by_chip.len();
    for tiles in &by_chip {
        let workers_left = workers - next;
        let share = (tiles.len() * workers_left).div_ceil(tiles_left);
        let share = share.clamp(1, workers_left - (chips_left - 1));
        for (k, &t) in tiles.iter().enumerate() {
            out[next + k % share].push(t);
        }
        next += share;
        tiles_left -= tiles.len();
        chips_left -= 1;
    }
    out
}

impl<'c> BspSimulator<'c> {
    /// Compiles `partition` into per-tile programs and spawns a
    /// persistent pool of `threads` workers (tiles are folded
    /// round-robin onto threads; the pool is reused by every
    /// [`run`](Self::run)).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(circuit: &'c Circuit, partition: &Partition, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        let routing = Routing::new(circuit, partition);

        // Input packing (shared, read-only during runs).
        let mut input_off = Vec::with_capacity(circuit.inputs.len());
        let mut iwords = 0u32;
        let mut input_by_name = HashMap::new();
        for (i, d) in circuit.inputs.iter().enumerate() {
            input_off.push(iwords);
            iwords += words_for(d.width) as u32;
            input_by_name.insert(d.name.clone(), InputId(i as u32));
        }

        // Register homes: owner tile + offset among that tile's own regs.
        let mut reg_home = vec![
            RegHome {
                tile: u32::MAX,
                off: 0,
                words: 0
            };
            circuit.regs.len()
        ];
        let mut tile_reg_words = vec![0u32; partition.processes.len()];
        for route in &routing.reg_routes {
            // reg_routes is in RegId order, so per-tile offsets pack in
            // RegId order too.
            if route.producer == u32::MAX {
                continue;
            }
            let t = route.producer as usize;
            reg_home[route.reg.index()] = RegHome {
                tile: route.producer,
                off: tile_reg_words[t],
                words: route.words,
            };
            tile_reg_words[t] += route.words;
        }

        // Array homes: first holder, or a spare copy of the initial
        // contents for arrays no process references.
        let array_init: Vec<Vec<u64>> = circuit
            .arrays
            .iter()
            .map(|a| {
                let w = words_for(a.width);
                let mut buf = vec![0u64; w * a.depth as usize];
                if let Some(init) = &a.init {
                    for (i, v) in init.iter().enumerate() {
                        buf[i * w..(i + 1) * w].copy_from_slice(v.words());
                    }
                }
                buf
            })
            .collect();
        let array_home: Vec<ArrayHome> = routing
            .array_holders
            .iter()
            .enumerate()
            .map(|(ai, holders)| match holders.first() {
                Some(&tile) => {
                    let p = &partition.processes[tile as usize];
                    let slot = p
                        .arrays
                        .binary_search(&parendi_rtl::ArrayId(ai as u32))
                        .expect("holder lists the array") as u32;
                    ArrayHome::Held { tile, slot }
                }
                None => ArrayHome::Spare(array_init[ai].clone()),
            })
            .collect();

        // Mailboxes. On-chip channels get one double-buffered mailbox per
        // tile pair; off-chip channels are aggregated into one wider
        // mailbox per ordered chip pair, each channel owning a disjoint
        // segment (`chan_map` translates a routing channel id into its
        // mailbox index and segment base).
        let mut chan_map = vec![(0u32, 0u32); routing.channels.len()];
        let mut channels: Vec<Mailbox> = Vec::new();
        for (ci, ch) in routing.channels.iter().enumerate() {
            if ch.class == ChannelClass::OnChip {
                chan_map[ci] = (channels.len() as u32, 0);
                channels.push(Mailbox::new(ch.words() as usize));
            }
        }
        let onchip_mailboxes = channels.len();
        let mut pair_index: HashMap<(u32, u32), usize> = HashMap::new();
        let mut pair_words: Vec<u32> = Vec::new();
        for (ci, ch) in routing.channels.iter().enumerate() {
            if ch.class == ChannelClass::OffChip {
                let pair = (
                    routing.tile_chip[ch.from as usize],
                    routing.tile_chip[ch.to as usize],
                );
                let pi = *pair_index.entry(pair).or_insert_with(|| {
                    pair_words.push(0);
                    pair_words.len() - 1
                });
                chan_map[ci] = ((onchip_mailboxes + pi) as u32, pair_words[pi]);
                pair_words[pi] += ch.words();
            }
        }
        channels.extend(pair_words.iter().map(|&w| Mailbox::new(w as usize)));
        // Preload epoch-0 register slots with initial values so cycle 0
        // observes the power-on state.
        for route in &routing.reg_routes {
            for hop in &route.hops {
                let init = circuit.regs[route.reg.index()].init.words();
                let (mb, base) = chan_map[hop.channel as usize];
                let off = (base + hop.word_off) as usize;
                // SAFETY: construction is single-threaded and offsets
                // stay inside the sized buffer.
                unsafe {
                    let dst = channels[mb as usize].write_base(0).add(off);
                    std::ptr::copy_nonoverlapping(init.as_ptr(), dst, init.len());
                }
            }
        }

        // Compile-time route indexes, built once: (array, port) → route
        // and per-array route ranges (port_routes is (array, port)
        // sorted), so program building never rescans `port_routes`.
        let mut port_route_of: HashMap<(u32, u32), u32> = HashMap::new();
        for (i, r) in routing.port_routes.iter().enumerate() {
            port_route_of.insert((r.array.0, r.port), i as u32);
        }
        let mut array_route_range = vec![(0u32, 0u32); circuit.arrays.len()];
        let mut i = 0;
        while i < routing.port_routes.len() {
            let a = routing.port_routes[i].array.index();
            let start = i;
            while i < routing.port_routes.len() && routing.port_routes[i].array.index() == a {
                i += 1;
            }
            array_route_range[a] = (start as u32, i as u32);
        }

        // Per-tile programs and state.
        let programs: Vec<Program> = partition
            .processes
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                build_program(
                    circuit,
                    partition,
                    &routing,
                    pi as u32,
                    p,
                    &reg_home,
                    &chan_map,
                    &port_route_of,
                    &array_route_range,
                )
            })
            .collect();

        // Output homes: the owning tile (pinned by the routing layer)
        // plus the arena offset its program computes the value at.
        let mut output_home = vec![
            OutputHome {
                tile: u32::MAX,
                off: 0
            };
            circuit.outputs.len()
        ];
        for (pi, prog) in programs.iter().enumerate() {
            for &(oi, off) in &prog.outputs {
                debug_assert_eq!(routing.output_tiles[oi as usize], pi as u32);
                output_home[oi as usize] = OutputHome {
                    tile: pi as u32,
                    off,
                };
            }
        }
        let output_by_name: HashMap<String, u32> = circuit
            .outputs
            .iter()
            .enumerate()
            .map(|(i, o)| (o.name.clone(), i as u32))
            .collect();
        let tiles: Vec<Mutex<TileState>> = programs
            .iter()
            .enumerate()
            .map(|(pi, prog)| {
                let mut arena = vec![0u64; prog.arena_words];
                for (off, words) in &prog.const_init {
                    arena[*off as usize..*off as usize + words.len()].copy_from_slice(words);
                }
                let mut reg_cur = vec![0u64; tile_reg_words[pi] as usize];
                for (ri, home) in reg_home.iter().enumerate() {
                    if home.tile == pi as u32 {
                        reg_cur[home.off as usize..(home.off + home.words) as usize]
                            .copy_from_slice(circuit.regs[ri].init.words());
                    }
                }
                let arrays = partition.processes[pi]
                    .arrays
                    .iter()
                    .map(|a| array_init[a.index()].clone())
                    .collect();
                Mutex::new(TileState {
                    arena,
                    reg_cur,
                    arrays,
                })
            })
            .collect();

        let pool_threads = if programs.len() <= 1 {
            1
        } else {
            threads.min(programs.len())
        };
        let worker_count = if pool_threads > 1 { pool_threads } else { 0 };
        let tile_count = programs.len();
        let shared = Arc::new(Shared {
            programs,
            tiles,
            channels,
            inputs: RwLock::new(vec![0u64; iwords as usize]),
            phase_barrier: PhaseBarrier::new(pool_threads.max(1)),
            gate: Barrier::new(worker_count + 1),
            done: Barrier::new(worker_count + 1),
            cmd_cycles: AtomicU64::new(0),
            cmd_start: AtomicU64::new(0),
            cmd_timed: AtomicBool::new(false),
            exit: AtomicBool::new(false),
            offchip_spin: AtomicU32::new(0),
            phase_ns: (0..worker_count.max(1))
                .map(|_| Mutex::new((0, 0, 0)))
                .collect(),
            tile_ns: (0..tile_count).map(|_| Mutex::new((0, 0, 0))).collect(),
        });
        let groups = worker_groups(&routing.tile_chip, worker_count);
        let workers = groups
            .into_iter()
            .enumerate()
            .map(|(t, mine)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bsp-worker-{t}"))
                    .spawn(move || worker_loop(&shared, t, mine))
                    .expect("spawn BSP worker")
            })
            .collect();

        BspSimulator {
            circuit,
            shared,
            workers,
            reg_home,
            array_home,
            output_home,
            input_off,
            input_by_name,
            output_by_name,
            onchip_mailboxes,
            cycle: 0,
        }
    }

    /// Number of completed RTL cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of tiles (processes) being simulated.
    pub fn tiles(&self) -> usize {
        self.shared.programs.len()
    }

    /// Number of mailboxes carrying traffic: per-tile-pair on-chip boxes
    /// plus per-chip-pair off-chip aggregates.
    pub fn channels(&self) -> usize {
        self.shared.channels.len()
    }

    /// Number of per-chip-pair aggregate mailboxes (zero on single-chip
    /// partitions).
    pub fn offchip_channels(&self) -> usize {
        self.shared.channels.len() - self.onchip_mailboxes
    }

    /// Sets the artificial per-word delay (in spin-loop iterations)
    /// charged while flushing off-chip mailboxes, modeling the roughly
    /// order-of-magnitude slower cross-chip link. The benches sweep this
    /// to reproduce the `m×b` off-chip cost effect (Fig. 5 right);
    /// functional results are unaffected. Takes effect from the next
    /// [`run`](Self::run).
    pub fn set_offchip_spin_per_word(&mut self, spins: u32) {
        self.shared.offchip_spin.store(spins, Ordering::Relaxed);
    }

    /// Drives an input (held until changed).
    ///
    /// # Panics
    ///
    /// Panics if the width does not match.
    pub fn set_input(&mut self, id: InputId, value: &Bits) {
        let decl = &self.circuit.inputs[id.index()];
        assert_eq!(decl.width, value.width(), "input {} width", decl.name);
        let off = self.input_off[id.index()] as usize;
        let mut inputs = self.shared.inputs.write().unwrap();
        inputs[off..off + value.words().len()].copy_from_slice(value.words());
    }

    /// Convenience: drive input `name` with a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if no such input exists.
    pub fn poke(&mut self, name: &str, value: u64) {
        let id = *self
            .input_by_name
            .get(name)
            .unwrap_or_else(|| panic!("no input {name}"));
        let width = self.circuit.inputs[id.index()].width;
        self.set_input(id, &Bits::from_u64(width, value));
    }

    /// The current value of a register.
    pub fn reg_value(&self, id: RegId) -> Bits {
        let r = &self.circuit.regs[id.index()];
        let home = self.reg_home[id.index()];
        assert!(home.tile != u32::MAX, "register {} has no producer", r.name);
        let tile = self.shared.tiles[home.tile as usize].lock().unwrap();
        Bits::from_words(
            r.width,
            &tile.reg_cur[home.off as usize..(home.off + home.words) as usize],
        )
    }

    /// The current value of primary output `name`, or `None` if no such
    /// output exists — the engine counterpart of the reference
    /// interpreter's `output()`.
    ///
    /// Output cones are computed every cycle (their fibers run like any
    /// other), but the arena holds *pre-latch* values from the last
    /// cycle; this replays the owning tile's step program against the
    /// current architectural state (own registers, array copies, and the
    /// current-epoch mailbox slots for remote registers), so the value
    /// reflects all completed cycles and the current inputs, exactly
    /// like the interpreter after `step`.
    pub fn peek_output(&self, name: &str) -> Option<Bits> {
        let &oi = self.output_by_name.get(name)?;
        let home = self.output_home[oi as usize];
        assert!(home.tile != u32::MAX, "output {name} has no owning tile");
        let width = self.circuit.width(self.circuit.outputs[oi as usize].node);
        let shared = &self.shared;
        let inputs = shared.inputs.read().unwrap();
        let mut tile = shared.tiles[home.tile as usize].lock().unwrap();
        run_steps(
            &shared.programs[home.tile as usize],
            &mut tile,
            &inputs,
            &shared.channels,
            self.cycle,
        );
        let off = home.off as usize;
        Some(Bits::from_words(
            width,
            &tile.arena[off..off + words_for(width)],
        ))
    }

    /// An element of an array.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn array_value(&self, id: parendi_rtl::ArrayId, index: u32) -> Bits {
        let a = &self.circuit.arrays[id.index()];
        assert!(index < a.depth);
        let w = words_for(a.width);
        match &self.array_home[id.index()] {
            ArrayHome::Held { tile, slot } => {
                let t = self.shared.tiles[*tile as usize].lock().unwrap();
                Bits::from_words(
                    a.width,
                    &t.arrays[*slot as usize][index as usize * w..][..w],
                )
            }
            ArrayHome::Spare(buf) => Bits::from_words(a.width, &buf[index as usize * w..][..w]),
        }
    }

    /// Runs `cycles` RTL cycles in parallel. Returns wall-clock seconds.
    ///
    /// The cycle loop runs untimed — no per-cycle clock reads.
    pub fn run(&mut self, cycles: u64) -> f64 {
        self.run_inner(cycles, false).total_s
    }

    /// Runs `cycles` RTL cycles and reports per-phase timings (the
    /// measured counterpart of the modeled `t_comp`/`t_comm`+`t_sync`
    /// split), including the per-tile histograms of
    /// [`BspPhases::per_tile`]. Timed runs cost roughly one clock read
    /// per tile per sub-phase per cycle (timestamps chain tile-to-tile,
    /// so that read is counted once, inside the following tile's
    /// interval); use [`run`](Self::run) for throughput measurements.
    pub fn run_timed(&mut self, cycles: u64) -> BspPhases {
        self.run_inner(cycles, true)
    }

    fn run_inner(&mut self, cycles: u64, timed: bool) -> BspPhases {
        let start = Instant::now();
        if cycles == 0 {
            return BspPhases::default();
        }
        // The straggler worker's (compute, offchip, exchange) ns: phases
        // stay paired per worker so the split sums to one worker's real
        // wall time.
        let (mut comp_ns, mut off_ns, mut exch_ns) = (0u64, 0u64, 0u64);
        let mut per_tile = Vec::new();
        if self.workers.is_empty() {
            let shared = &self.shared;
            let spin = shared.offchip_spin.load(Ordering::Relaxed);
            let any_off = shared.programs.iter().any(|p| p.has_offchip());
            let inputs = shared.inputs.read().unwrap();
            let mut guards: Vec<_> = shared.tiles.iter().map(|t| t.lock().unwrap()).collect();
            let mut tile_ns = vec![(0u64, 0u64, 0u64); guards.len()];
            for c in self.cycle..self.cycle + cycles {
                // Timestamps chain: each tile's interval ends where the
                // next begins, so the phase windows contain one clock
                // read per tile, not two, and per-tile times sum to the
                // worker phase exactly.
                let t0 = timed.then(Instant::now);
                let mut mark = t0;
                for (k, (prog, tile)) in shared.programs.iter().zip(guards.iter_mut()).enumerate() {
                    compute_phase(prog, tile, &inputs, &shared.channels, c);
                    if let Some(m) = mark {
                        let now = Instant::now();
                        tile_ns[k].0 += now.duration_since(m).as_nanos() as u64;
                        mark = Some(now);
                    }
                }
                let t1 = mark;
                if any_off {
                    for (k, (prog, tile)) in
                        shared.programs.iter().zip(guards.iter_mut()).enumerate()
                    {
                        if !prog.has_offchip() {
                            continue;
                        }
                        offchip_phase(prog, tile, &shared.channels, c, spin);
                        if let Some(m) = mark {
                            let now = Instant::now();
                            tile_ns[k].1 += now.duration_since(m).as_nanos() as u64;
                            mark = Some(now);
                        }
                    }
                }
                // With no cross-chip traffic the sub-phase is skipped
                // outright, keeping offchip_s exactly zero.
                let t2 = mark;
                for (k, (prog, tile)) in shared.programs.iter().zip(guards.iter_mut()).enumerate() {
                    exchange_phase(prog, tile, &shared.channels, c);
                    if let Some(m) = mark {
                        let now = Instant::now();
                        tile_ns[k].2 += now.duration_since(m).as_nanos() as u64;
                        mark = Some(now);
                    }
                }
                if let (Some(t0), Some(t1), Some(t2), Some(end)) = (t0, t1, t2, mark) {
                    comp_ns += t1.duration_since(t0).as_nanos() as u64;
                    off_ns += t2.duration_since(t1).as_nanos() as u64;
                    exch_ns += end.duration_since(t2).as_nanos() as u64;
                }
            }
            if timed {
                per_tile = tile_ns
                    .iter()
                    .map(|&(c, o, e)| TilePhases {
                        compute_s: c as f64 * 1e-9,
                        offchip_s: o as f64 * 1e-9,
                        exchange_s: e as f64 * 1e-9,
                    })
                    .collect();
            }
        } else {
            self.shared.cmd_cycles.store(cycles, Ordering::SeqCst);
            self.shared.cmd_start.store(self.cycle, Ordering::SeqCst);
            self.shared.cmd_timed.store(timed, Ordering::SeqCst);
            self.shared.gate.wait();
            self.shared.done.wait();
            if timed {
                // Straggler = the worker with the most real work
                // (compute + flush). Totals can't rank workers: barrier
                // waits absorb the slack, equalizing every worker's
                // comp+off+exch span up to wakeup jitter.
                for slot in &self.shared.phase_ns {
                    let (c, o, e) = *slot.lock().unwrap();
                    if c + o > comp_ns + off_ns {
                        (comp_ns, off_ns, exch_ns) = (c, o, e);
                    }
                }
                per_tile = self
                    .shared
                    .tile_ns
                    .iter()
                    .map(|slot| {
                        let (c, o, e) = *slot.lock().unwrap();
                        TilePhases {
                            compute_s: c as f64 * 1e-9,
                            offchip_s: o as f64 * 1e-9,
                            exchange_s: e as f64 * 1e-9,
                        }
                    })
                    .collect();
            }
        }
        self.cycle += cycles;
        BspPhases {
            total_s: start.elapsed().as_secs_f64(),
            compute_s: comp_ns as f64 * 1e-9,
            offchip_s: off_ns as f64 * 1e-9,
            exchange_s: exch_ns as f64 * 1e-9,
            per_tile,
        }
    }
}

impl Drop for BspSimulator<'_> {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shared.exit.store(true, Ordering::SeqCst);
            self.shared.gate.wait();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

/// The persistent worker entry: a worker that unwound mid-cycle would
/// leave every other thread blocked at a barrier forever, so engine
/// bugs become a loud abort (the default panic hook has already printed
/// the message and location) instead of a silent hang.
fn worker_loop(shared: &Shared, t: usize, mine: Vec<usize>) {
    let body = std::panic::AssertUnwindSafe(|| worker_body(shared, t, &mine));
    if std::panic::catch_unwind(body).is_err() {
        eprintln!("BSP worker {t} panicked; aborting (a hung barrier would deadlock the run)");
        std::process::abort();
    }
}

/// The worker run loop: park at the gate, execute a run over this
/// worker's chip-major tile group `mine`, report.
fn worker_body(shared: &Shared, t: usize, mine: &[usize]) {
    let any_off = mine.iter().any(|&pi| shared.programs[pi].has_offchip());
    loop {
        shared.gate.wait();
        if shared.exit.load(Ordering::SeqCst) {
            return;
        }
        let cycles = shared.cmd_cycles.load(Ordering::SeqCst);
        let start = shared.cmd_start.load(Ordering::SeqCst);
        let timed = shared.cmd_timed.load(Ordering::SeqCst);
        let spin = shared.offchip_spin.load(Ordering::Relaxed);
        {
            // One lock per tile per run; the steady-state cycle loop
            // below acquires no locks and allocates nothing.
            let inputs = shared.inputs.read().unwrap();
            let mut guards: Vec<_> = mine
                .iter()
                .map(|&pi| shared.tiles[pi].lock().unwrap())
                .collect();
            let (mut comp_ns, mut off_ns, mut exch_ns) = (0u64, 0u64, 0u64);
            let mut tile_ns = vec![(0u64, 0u64, 0u64); mine.len()];
            for c in start..start + cycles {
                // Timestamps chain tile to tile (see `run_inner`): one
                // clock read per tile lands inside the phase windows,
                // and per-tile times sum to the worker phase exactly.
                let t0 = timed.then(Instant::now);
                let mut mark = t0;
                for (k, (guard, &pi)) in guards.iter_mut().zip(mine).enumerate() {
                    compute_phase(&shared.programs[pi], guard, &inputs, &shared.channels, c);
                    if let Some(m) = mark {
                        let now = Instant::now();
                        tile_ns[k].0 += now.duration_since(m).as_nanos() as u64;
                        mark = Some(now);
                    }
                }
                // Off-chip flush: a distinct sub-phase so the cross-chip
                // volume is timed apart from compute. It needs no
                // barrier — it writes epoch-c+1 segments nobody reads
                // until after barrier 1. A group with no cross-chip
                // traffic skips it outright, keeping offchip_s zero.
                let t1 = mark;
                if any_off {
                    for (k, (guard, &pi)) in guards.iter_mut().zip(mine).enumerate() {
                        if !shared.programs[pi].has_offchip() {
                            continue;
                        }
                        offchip_phase(&shared.programs[pi], guard, &shared.channels, c, spin);
                        if let Some(m) = mark {
                            let now = Instant::now();
                            tile_ns[k].1 += now.duration_since(m).as_nanos() as u64;
                            mark = Some(now);
                        }
                    }
                }
                // exchange_s starts *before* barrier 1 so the straggler
                // wait — the measured `t_sync` — lands in the exchange
                // column, matching the BspPhases contract.
                let t2 = mark;
                if let (Some(t0), Some(t1), Some(t2)) = (t0, t1, t2) {
                    comp_ns += t1.duration_since(t0).as_nanos() as u64;
                    off_ns += t2.duration_since(t1).as_nanos() as u64;
                }
                // Barrier 1: all mailboxes for epoch c+1 are filled.
                shared.phase_barrier.wait();
                let mut emark = timed.then(Instant::now);
                for (k, (guard, &pi)) in guards.iter_mut().zip(mine).enumerate() {
                    exchange_phase(&shared.programs[pi], guard, &shared.channels, c);
                    if let Some(m) = emark {
                        let now = Instant::now();
                        tile_ns[k].2 += now.duration_since(m).as_nanos() as u64;
                        emark = Some(now);
                    }
                }
                // Barrier 2: every array copy has applied the records.
                shared.phase_barrier.wait();
                if let Some(t2) = t2 {
                    exch_ns += t2.elapsed().as_nanos() as u64;
                }
            }
            if timed {
                *shared.phase_ns[t].lock().unwrap() = (comp_ns, off_ns, exch_ns);
                for (k, &pi) in mine.iter().enumerate() {
                    *shared.tile_ns[pi].lock().unwrap() = tile_ns[k];
                }
            }
        }
        shared.done.wait();
    }
}

/// Runs one tile's step program at cycle `c`, filling the arena with
/// this cycle's combinational values (reads the tile's own registers and
/// array copies plus epoch-`c` mailbox slots; writes nothing outside the
/// arena). Also the replay engine behind `peek_output`.
fn run_steps(prog: &Program, tile: &mut TileState, inputs: &[u64], channels: &[Mailbox], c: u64) {
    let read_parity = (c & 1) as usize;
    let TileState {
        arena,
        reg_cur,
        arrays,
    } = tile;
    for step in &prog.steps {
        match *step {
            Step::Input { dst, src, nw } => {
                let (d, s) = (dst as usize, src as usize);
                arena[d..d + nw as usize].copy_from_slice(&inputs[s..s + nw as usize]);
            }
            Step::RegOwn { dst, src, nw } => {
                let (d, s) = (dst as usize, src as usize);
                arena[d..d + nw as usize].copy_from_slice(&reg_cur[s..s + nw as usize]);
            }
            Step::RegMail { dst, ch, src, nw } => {
                // SAFETY: epoch discipline — no writer of `read_parity`
                // exists during the computation phase (see Mailbox).
                let buf = unsafe { channels[ch as usize].read(read_parity) };
                let (d, s) = (dst as usize, src as usize);
                arena[d..d + nw as usize].copy_from_slice(&buf[s..s + nw as usize]);
            }
            Step::ArrayRead {
                dst,
                arr,
                idx,
                idx_w,
                nw,
                depth,
            } => {
                let index = word::fold_index(&arena[idx as usize..(idx + idx_w) as usize]);
                let d = dst as usize;
                if index < depth as u64 {
                    let s = index as usize * nw as usize;
                    let a = &arrays[arr as usize];
                    arena[d..d + nw as usize].copy_from_slice(&a[s..s + nw as usize]);
                } else {
                    arena[d..d + nw as usize].fill(0);
                }
            }
            _ => eval_op(arena, step),
        }
    }
}

/// Computation phase for one tile at cycle `c`: run the step program,
/// latch own registers, push outgoing *on-chip* mailbox traffic for
/// epoch `c+1` (cross-chip traffic is flushed by [`offchip_phase`]).
fn compute_phase(
    prog: &Program,
    tile: &mut TileState,
    inputs: &[u64],
    channels: &[Mailbox],
    c: u64,
) {
    run_steps(prog, tile, inputs, channels, c);
    let write_parity = ((c & 1) ^ 1) as usize;
    let TileState { arena, reg_cur, .. } = tile;
    // Latch own registers: tile-local, nobody else reads them.
    for rc in &prog.commits {
        let (d, s) = (rc.dst as usize, rc.local as usize);
        reg_cur[d..d + rc.nw as usize].copy_from_slice(&arena[s..s + rc.nw as usize]);
    }
    // Push outgoing register values into epoch c+1 mailboxes.
    for send in &prog.sends {
        push_reg_send(send, arena, channels, write_parity);
    }
    // Stage port records for every on-chip remote holder.
    for ps in &prog.port_sends {
        stage_port_record(ps, arena, channels, write_parity);
    }
}

/// Copies one outbound register value into its mailbox segment.
///
/// All mailbox stores go through the raw [`Mailbox::write_base`]
/// pointer: aggregate chip-pair mailboxes are written concurrently by
/// several worker groups (into disjoint segments), so no `&mut` over a
/// buffer may ever exist.
#[inline]
fn push_reg_send(send: &RegSend, arena: &[u64], channels: &[Mailbox], write_parity: usize) {
    // SAFETY: epoch discipline — no reader of `write_parity` exists
    // during this phase, and this thread exclusively owns the segment
    // `[dst, dst + nw)` (compile-time channel layout).
    unsafe {
        let base = channels[send.ch as usize].write_base(write_parity);
        std::ptr::copy_nonoverlapping(
            arena.as_ptr().add(send.local as usize),
            base.add(send.dst as usize),
            send.nw as usize,
        );
    }
}

/// Copies one port record `(enable, index, data)` into every destination
/// slot of `ps` (same aliasing rules as [`push_reg_send`]).
#[inline]
fn stage_port_record(ps: &PortSend, arena: &[u64], channels: &[Mailbox], write_parity: usize) {
    let en = arena[ps.en as usize] & 1;
    let idx = word::fold_index(&arena[ps.idx as usize..(ps.idx + ps.idx_w) as usize]);
    let data = &arena[ps.data as usize..(ps.data + ps.nw) as usize];
    for &(ch, off) in &ps.dests {
        // SAFETY: epoch discipline — no reader of `write_parity` exists
        // during this phase, and this thread exclusively owns the record
        // segment at `off` (compile-time channel layout).
        unsafe {
            let slot = channels[ch as usize]
                .write_base(write_parity)
                .add(off as usize);
            *slot = en;
            *slot.add(1) = idx;
            std::ptr::copy_nonoverlapping(
                data.as_ptr(),
                slot.add(PORT_RECORD_HEADER_WORDS as usize),
                ps.nw as usize,
            );
        }
    }
}

/// Off-chip flush sub-phase for one tile at cycle `c`: copy cross-chip
/// register values and port records into the epoch-`c+1` chip-pair
/// aggregate mailboxes, spinning `spin_per_word` iterations per word to
/// model the slower link (0 = flush at memory speed).
fn offchip_phase(prog: &Program, tile: &mut TileState, channels: &[Mailbox], c: u64, spin: u32) {
    let write_parity = ((c & 1) ^ 1) as usize;
    let arena = &tile.arena;
    for send in &prog.offchip_sends {
        push_reg_send(send, arena, channels, write_parity);
        spin_delay(send.nw as u64 * spin as u64);
    }
    for ps in &prog.offchip_port_sends {
        stage_port_record(ps, arena, channels, write_parity);
        let words = (PORT_RECORD_HEADER_WORDS + ps.nw) as u64 * ps.dests.len() as u64;
        spin_delay(words * spin as u64);
    }
}

/// Burns roughly `iters` spin-loop iterations (the off-chip delay knob).
#[inline]
fn spin_delay(iters: u64) {
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

/// Communication phase for one tile at cycle `c`: apply all staged port
/// records (own and remote) to the tile's array copies in global
/// `(array, port)` order.
fn exchange_phase(prog: &Program, tile: &mut TileState, channels: &[Mailbox], c: u64) {
    let record_parity = ((c & 1) ^ 1) as usize;
    let TileState { arena, arrays, .. } = tile;
    for ap in &prog.applies {
        let nw = ap.nw as usize;
        let (en, idx, data): (u64, u64, &[u64]) = match ap.src {
            RecSrc::Own {
                en,
                idx,
                idx_w,
                data,
            } => (
                arena[en as usize] & 1,
                word::fold_index(&arena[idx as usize..(idx + idx_w) as usize]),
                &arena[data as usize..data as usize + nw],
            ),
            RecSrc::Mail { ch, off } => {
                // SAFETY: after barrier 1 nobody writes `record_parity`.
                let buf = unsafe { channels[ch as usize].read(record_parity) };
                let off = off as usize;
                (
                    buf[off] & 1,
                    buf[off + 1],
                    &buf[off + PORT_RECORD_HEADER_WORDS as usize..][..nw],
                )
            }
        };
        if en == 1 && idx < ap.depth as u64 {
            let dst = idx as usize * nw;
            arrays[ap.arr as usize][dst..dst + nw].copy_from_slice(data);
        }
    }
}

/// Evaluates a pure compiled op on the arena (operands strictly precede
/// the destination, so the arena splits into read/write halves).
fn eval_op(arena: &mut [u64], step: &Step) {
    match *step {
        Step::Un {
            op,
            dst,
            a,
            w,
            aw,
            anw,
        } => {
            let (src, dst_tail) = arena.split_at_mut(dst as usize);
            let out = &mut dst_tail[..words_for(w)];
            let av = &src[a as usize..(a + anw) as usize];
            match op {
                UnOp::Not => word::not(out, av, w),
                UnOp::Neg => word::neg(out, av, w),
                UnOp::RedAnd => out[0] = word::red_and(av, aw) as u64,
                UnOp::RedOr => out[0] = word::red_or(av) as u64,
                UnOp::RedXor => out[0] = word::red_xor(av) as u64,
            }
        }
        Step::Bin {
            op,
            dst,
            a,
            b,
            w,
            aw,
            anw,
            bnw,
        } => {
            let (src, dst_tail) = arena.split_at_mut(dst as usize);
            let out = &mut dst_tail[..words_for(w)];
            let av = &src[a as usize..(a + anw) as usize];
            let bv = &src[b as usize..(b + bnw) as usize];
            match op {
                BinOp::And => word::and(out, av, bv, w),
                BinOp::Or => word::or(out, av, bv, w),
                BinOp::Xor => word::xor(out, av, bv, w),
                BinOp::Add => word::add(out, av, bv, w),
                BinOp::Sub => word::sub(out, av, bv, w),
                BinOp::Mul => word::mul(out, av, bv, w),
                BinOp::Eq => out[0] = word::eq(av, bv) as u64,
                BinOp::Ne => out[0] = !word::eq(av, bv) as u64,
                BinOp::LtU => out[0] = word::lt_u(av, bv) as u64,
                BinOp::LtS => out[0] = word::lt_s(av, bv, aw) as u64,
                BinOp::LeU => out[0] = !word::lt_u(bv, av) as u64,
                BinOp::LeS => out[0] = !word::lt_s(bv, av, aw) as u64,
                BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                    let sh = word::shift_amount(bv, aw);
                    match op {
                        BinOp::Shl => word::shl(out, av, sh, w),
                        BinOp::Lshr => word::lshr(out, av, sh, w),
                        _ => word::ashr(out, av, sh, w),
                    }
                }
            }
        }
        Step::Mux { dst, sel, t, f, nw } => {
            let (src, dst_tail) = arena.split_at_mut(dst as usize);
            let out = &mut dst_tail[..nw as usize];
            let s = src[sel as usize] & 1 == 1;
            let pick = if s { t } else { f };
            word::copy(out, &src[pick as usize..(pick + nw) as usize]);
        }
        Step::Slice { dst, a, lo, w, anw } => {
            let (src, dst_tail) = arena.split_at_mut(dst as usize);
            let out = &mut dst_tail[..words_for(w)];
            word::slice(out, &src[a as usize..(a + anw) as usize], lo + w - 1, lo);
        }
        Step::Zext { dst, a, w, anw } => {
            let (src, dst_tail) = arena.split_at_mut(dst as usize);
            let out = &mut dst_tail[..words_for(w)];
            word::zext(out, &src[a as usize..(a + anw) as usize], w);
        }
        Step::Sext { dst, a, aw, w, anw } => {
            let (src, dst_tail) = arena.split_at_mut(dst as usize);
            let out = &mut dst_tail[..words_for(w)];
            word::sext(out, &src[a as usize..(a + anw) as usize], aw, w);
        }
        Step::Concat {
            dst,
            hi,
            lo,
            w,
            low_w,
            hnw,
            lnw,
        } => {
            let (src, dst_tail) = arena.split_at_mut(dst as usize);
            let hv = &src[hi as usize..(hi + hnw) as usize];
            let lv = &src[lo as usize..(lo + lnw) as usize];
            let out = &mut dst_tail[..words_for(w)];
            word::concat(out, hv, lv, low_w);
        }
        _ => unreachable!("sources handled by the caller"),
    }
}

/// Compiles one process into a self-contained [`Program`].
///
/// `chan_map` translates a routing channel id into the engine's
/// `(mailbox, segment base)`; `port_route_of` and `array_route_range`
/// are the compile-time route indexes built once in
/// [`BspSimulator::new`] so this runs in O(program size), not
/// O(tiles × ports²).
#[allow(clippy::too_many_arguments)]
fn build_program(
    circuit: &Circuit,
    partition: &Partition,
    routing: &Routing,
    pi: u32,
    p: &parendi_core::Process,
    reg_home: &[RegHome],
    chan_map: &[(u32, u32)],
    port_route_of: &HashMap<(u32, u32), u32>,
    array_route_range: &[(u32, u32)],
) -> Program {
    let slot_of = |hop: &parendi_core::routing::Hop| -> (u32, u32) {
        let (mb, base) = chan_map[hop.channel as usize];
        (mb, base + hop.word_off)
    };
    // Mail slots for remote registers this tile reads.
    let mut mail_slot: HashMap<u32, (u32, u32)> = HashMap::new();
    for route in &routing.reg_routes {
        for hop in &route.hops {
            if hop.tile == pi {
                mail_slot.insert(route.reg.0, slot_of(hop));
            }
        }
    }
    let arrays = &p.arrays;
    let array_slot = |a: parendi_rtl::ArrayId| -> u32 {
        arrays
            .binary_search(&a)
            .expect("tile holds read/written arrays") as u32
    };

    let mut local: HashMap<u32, u32> = HashMap::new();
    let mut words = 0u32;
    let mut steps = Vec::new();
    let mut const_init = Vec::new();
    for nid in p.nodes.iter() {
        let node = &circuit.nodes[nid as usize];
        let w = node.width;
        let nw = words_for(w) as u32;
        let dst = words;
        local.insert(nid, dst);
        words += nw;
        let lo = |id: parendi_rtl::NodeId| local[&id.0];
        let opw = |id: parendi_rtl::NodeId| words_for(circuit.width(id)) as u32;
        match &node.kind {
            NodeKind::Const(b) => const_init.push((dst, b.words().to_vec())),
            NodeKind::Input(i) => {
                let src = (0..i.index())
                    .map(|k| words_for(circuit.inputs[k].width) as u32)
                    .sum();
                steps.push(Step::Input { dst, src, nw });
            }
            NodeKind::RegRead(r) => {
                let home = reg_home[r.index()];
                if home.tile == pi {
                    steps.push(Step::RegOwn {
                        dst,
                        src: home.off,
                        nw,
                    });
                } else {
                    let (ch, src) = mail_slot[&r.0];
                    steps.push(Step::RegMail { dst, ch, src, nw });
                }
            }
            NodeKind::ArrayRead { array, index } => steps.push(Step::ArrayRead {
                dst,
                arr: array_slot(*array),
                idx: lo(*index),
                idx_w: opw(*index),
                nw,
                depth: circuit.arrays[array.index()].depth,
            }),
            NodeKind::Un(op, a) => steps.push(Step::Un {
                op: *op,
                dst,
                a: lo(*a),
                w,
                aw: circuit.width(*a),
                anw: opw(*a),
            }),
            NodeKind::Bin(op, a, b) => steps.push(Step::Bin {
                op: *op,
                dst,
                a: lo(*a),
                b: lo(*b),
                w,
                aw: circuit.width(*a),
                anw: opw(*a),
                bnw: opw(*b),
            }),
            NodeKind::Mux { sel, t, f } => steps.push(Step::Mux {
                dst,
                sel: lo(*sel),
                t: lo(*t),
                f: lo(*f),
                nw,
            }),
            NodeKind::Slice { src, lo: slo } => steps.push(Step::Slice {
                dst,
                a: lo(*src),
                lo: *slo,
                w,
                anw: opw(*src),
            }),
            NodeKind::Zext(a) => steps.push(Step::Zext {
                dst,
                a: lo(*a),
                w,
                anw: opw(*a),
            }),
            NodeKind::Sext(a) => steps.push(Step::Sext {
                dst,
                a: lo(*a),
                aw: circuit.width(*a),
                w,
                anw: opw(*a),
            }),
            NodeKind::Concat { hi, lo: l } => steps.push(Step::Concat {
                dst,
                hi: lo(*hi),
                lo: lo(*l),
                w,
                low_w: circuit.width(*l),
                hnw: opw(*hi),
                lnw: opw(*l),
            }),
        }
    }

    // Own register latches and outgoing sends (split by channel class),
    // own port records, and the outputs this tile computes.
    let mut commits = Vec::new();
    let mut sends = Vec::new();
    let mut offchip_sends = Vec::new();
    let mut port_sends = Vec::new();
    let mut offchip_port_sends = Vec::new();
    let mut outputs = Vec::new();
    let mut own_port: HashMap<(u32, u32), RecSrc> = HashMap::new();
    let mut fibers: Vec<_> = p.fibers.clone();
    fibers.sort_unstable();
    for &f in &fibers {
        match partition.fiber_sinks[f.index()] {
            parendi_graph::fiber::SinkKind::Reg(r) => {
                let reg = &circuit.regs[r.index()];
                let next = reg.next.expect("validated circuit");
                let home = reg_home[r.index()];
                debug_assert_eq!(home.tile, pi);
                let nw = words_for(reg.width) as u32;
                commits.push(RegCommit {
                    local: local[&next.0],
                    dst: home.off,
                    nw,
                });
                for hop in &routing.reg_routes[r.index()].hops {
                    let (ch, dst) = slot_of(hop);
                    let send = RegSend {
                        local: local[&next.0],
                        ch,
                        dst,
                        nw,
                    };
                    if routing.hop_crosses_chip(hop) {
                        offchip_sends.push(send);
                    } else {
                        sends.push(send);
                    }
                }
            }
            parendi_graph::fiber::SinkKind::ArrayPort { array, port } => {
                let a = &circuit.arrays[array.index()];
                let wp = &a.write_ports[port as usize];
                let nw = words_for(a.width) as u32;
                let ri = port_route_of[&(array.0, port)];
                let route = &routing.port_routes[ri as usize];
                let (off_dests, on_dests): (Vec<_>, Vec<_>) =
                    route.hops.iter().partition(|h| routing.hop_crosses_chip(h));
                let en = local[&wp.enable.0];
                let idx = local[&wp.index.0];
                let idx_w = words_for(circuit.width(wp.index)) as u32;
                let data = local[&wp.data.0];
                for (dests, out) in [
                    (on_dests, &mut port_sends),
                    (off_dests, &mut offchip_port_sends),
                ] {
                    if dests.is_empty() {
                        continue;
                    }
                    out.push(PortSend {
                        en,
                        idx,
                        idx_w,
                        data,
                        nw,
                        dests: dests.iter().map(|&h| slot_of(h)).collect(),
                    });
                }
                own_port.insert(
                    (array.0, port),
                    RecSrc::Own {
                        en,
                        idx,
                        idx_w,
                        data,
                    },
                );
            }
            parendi_graph::fiber::SinkKind::Output(oi) => {
                let node = circuit.outputs[oi as usize].node;
                outputs.push((oi, local[&node.0]));
            }
        }
    }
    commits.sort_by_key(|c| c.dst);

    // Apply list: every port of every held array, in (array, port) order
    // (each array's routes read off the precomputed range).
    let mut applies = Vec::new();
    for (slot, &a) in p.arrays.iter().enumerate() {
        let arr = &circuit.arrays[a.index()];
        let nw = words_for(arr.width) as u32;
        let (start, end) = array_route_range[a.index()];
        for route in &routing.port_routes[start as usize..end as usize] {
            let src = match own_port.get(&(a.0, route.port)) {
                Some(&own) => own,
                None => {
                    let hop = route
                        .hops
                        .iter()
                        .find(|h| h.tile == pi)
                        .expect("holder receives every remote port record");
                    let (ch, off) = slot_of(hop);
                    RecSrc::Mail { ch, off }
                }
            };
            applies.push(Apply {
                arr: slot as u32,
                nw,
                depth: arr.depth,
                src,
            });
        }
    }

    Program {
        steps,
        arena_words: words as usize,
        const_init,
        commits,
        sends,
        offchip_sends,
        port_sends,
        offchip_port_sends,
        applies,
        outputs,
    }
}
