//! Gang simulation quickstart: one compiled design, many scenarios.
//!
//! Compiles the seeded PRNG bank once, then runs 8 lanes in lockstep
//! with a *different seed per lane* — a miniature seed farm. Every
//! lane's state is checked against the software golden model, the
//! aggregate scenario throughput is printed next to a single-lane run,
//! and one lane's waveform is dumped to a VCD for debugging.
//!
//! ```sh
//! cargo run --release --example gang_sweep
//! # then open /tmp/gang_lane3.vcd in GTKWave
//! ```

use parendi::core::{compile, PartitionConfig};
use parendi::designs::prng;
use parendi::rtl::{Bits, RegId};
use parendi::sim::{dump_vcd_lane, BspSimulator, GangSimulator, StimulusSet};
use std::fs::File;
use std::io::BufWriter;

fn main() -> std::io::Result<()> {
    let generators = 16u32;
    let lanes = 8usize;
    let circuit = prng::build_seeded_bank(generators);
    let mut cfg = PartitionConfig::with_tiles(8);
    cfg.tiles_per_chip = 4; // two chips, so lane traffic crosses the gateway
    let comp = compile(&circuit, &cfg).expect("bank compiles");
    println!(
        "sprng{generators}: {} tiles on {} chips, {lanes} lanes over one compile",
        comp.partition.tiles_used(),
        comp.partition.chips
    );

    // Divergent seeds per lane, loaded through the reseed port for one
    // cycle, then free-running.
    let lane_seed = |l: usize| 0xC0FF_EE00_0000_0000u64 | (l as u64).wrapping_mul(0xDEAD_BEEF);
    let mut stim = StimulusSet::new(lanes as u32);
    for l in 0..lanes as u32 {
        stim.drive(0, l, "reseed", Bits::from_u64(1, 1));
        stim.drive(0, l, "seed", Bits::from_u64(64, lane_seed(l as usize)));
        stim.drive(1, l, "reseed", Bits::from_u64(1, 0));
    }

    let post = 1000u64;
    let mut gang = GangSimulator::new(&circuit, &comp.partition, 4, lanes);
    gang.run_stimulus(1 + post, &stim);

    // Every lane's every generator must sit on its golden state.
    for l in 0..lanes {
        for g in 0..generators {
            assert_eq!(
                gang.reg_value_lane(RegId(g), l).to_u64(),
                prng::soft_seeded_state(g, lane_seed(l), post),
                "lane {l} generator {g}"
            );
        }
    }
    println!(
        "all {} streams match the software golden model",
        lanes as u32 * generators
    );

    // Aggregate throughput vs a single-lane engine run.
    let cycles = 2000u64;
    let mut single = BspSimulator::new(&circuit, &comp.partition, 4);
    single.run(100);
    let ph1 = single.run_timed(cycles);
    let phl = gang.run_timed(cycles);
    println!(
        "single-lane {:.0} kcyc/s | gang x{lanes} {:.0} lane-kcyc/s ({:.2}x aggregate)",
        ph1.lane_cycles_per_s() / 1e3,
        phl.lane_cycles_per_s() / 1e3,
        phl.lane_cycles_per_s() / ph1.lane_cycles_per_s().max(1e-12),
    );

    // Waveform-debug one lane of the gang (lanes advance together; only
    // lane 3's values are recorded).
    let vcd_path = "/tmp/gang_lane3.vcd";
    dump_vcd_lane(&mut gang, 3, 50, BufWriter::new(File::create(vcd_path)?))?;
    println!("wrote 50 cycles of lane 3's waveform to {vcd_path}");
    Ok(())
}
