//! Gang lane sweep: aggregate scenario throughput of the gang engine
//! vs the single-scenario BSP engine, over one compiled partition.
//!
//! The gang engine runs L independent stimulus lanes in lockstep with
//! lane-strided state, so each dispatched step is amortized L ways.
//! This bin sweeps L on at least two designs and prints **aggregate
//! lane-cycles/sec** (scenario-cycles per second summed over lanes)
//! next to the single-lane engine — the gang acceptance criterion is
//! that the aggregate improves with lane count.
//!
//! A microbench at the end shows what the shared `nw == 1` single-word
//! fast path buys over the general slice kernels: the same op sequence
//! evaluated through `parendi_rtl::bits::word` (one-word slices, carry
//! loops, bounds checks) vs plain masked `u64` arithmetic — the inner
//! loop both engines now run for single-word steps.
//!
//! Env knobs: `PARENDI_QUICK=1` shrinks the sweep to the CI smoke shape
//! (2 chips × lanes {1, 4}); `PARENDI_GANG_LANES` overrides the lane
//! list (comma-separated).

use parendi_bench::quick;
use parendi_core::{compile, Compilation, PartitionConfig};
use parendi_designs::{prng, Benchmark};
use parendi_rtl::bits::word;
use parendi_rtl::Circuit;
use parendi_sim::{BspSimulator, GangSimulator};
use std::hint::black_box;
use std::time::Instant;

fn lane_sweep() -> Vec<usize> {
    if let Ok(v) = std::env::var("PARENDI_GANG_LANES") {
        let lanes: Vec<usize> = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
        if !lanes.is_empty() {
            return lanes;
        }
    }
    if quick() {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    }
}

fn compile_two_chips(circuit: &Circuit, tiles: u32) -> Compilation {
    let mut cfg = PartitionConfig::with_tiles(tiles);
    cfg.tiles_per_chip = tiles.div_ceil(2).max(1); // 2 chips: exercise the off-chip flush
    compile(circuit, &cfg).expect("bench design compiles")
}

fn sweep_design(name: &str, circuit: &Circuit, tiles: u32, threads: usize, cycles: u64) {
    let comp = compile_two_chips(circuit, tiles);
    println!(
        "\n== {name} ({} tiles, {} chips, {threads} threads, {cycles} cycles) ==",
        comp.partition.tiles_used(),
        comp.partition.chips,
    );
    println!(
        "{:>6} {:>12} {:>14} {:>9}",
        "lanes", "wall µs/cyc", "lane-kcyc/s", "vs 1-lane"
    );
    let mut single = BspSimulator::new(circuit, &comp.partition, threads);
    single.run(30); // warm the pool
    let ph = single.run_timed(cycles);
    let base = ph.lane_cycles_per_s();
    println!(
        "{:>6} {:>12.2} {:>14.1} {:>9} (single-scenario BspSimulator)",
        1,
        ph.total_s * 1e6 / cycles as f64,
        base / 1e3,
        "-"
    );
    for lanes in lane_sweep() {
        let mut gang = GangSimulator::new(circuit, &comp.partition, threads, lanes);
        gang.run(30);
        let ph = gang.run_timed(cycles);
        println!(
            "{:>6} {:>12.2} {:>14.1} {:>8.2}x",
            lanes,
            ph.total_s * 1e6 / cycles as f64,
            ph.lane_cycles_per_s() / 1e3,
            ph.lane_cycles_per_s() / base.max(1e-12),
        );
    }
}

/// One round of representative single-word ops through the slice
/// kernels (the pre-fast-path cost of an `nw == 1` step).
#[inline(never)]
fn kernel_round(a: u64, b: u64) -> u64 {
    let (av, bv) = ([a], [b]);
    let mut out = [0u64];
    word::add(&mut out, &av, &bv, 32);
    let s = out;
    word::xor(&mut out, &s, &bv, 32);
    let x = out;
    word::mul(&mut out, &x, &av, 32);
    let m = out;
    let sh = word::shift_amount(&bv, 32) & 31;
    word::lshr(&mut out, &m, sh, 32);
    out[0] ^ word::lt_u(&av, &bv) as u64
}

/// The same ops as plain masked `u64` arithmetic (the fast path).
#[inline(never)]
fn scalar_round(a: u64, b: u64) -> u64 {
    let mask = 0xffff_ffffu64;
    let s = a.wrapping_add(b) & mask;
    let x = s ^ b;
    let m = x.wrapping_mul(a) & mask;
    let sh = (b as u32).min(32) & 31;
    (m >> sh) ^ (a < b) as u64
}

fn fast_path_delta() {
    let iters: u64 = if quick() { 2_000_000 } else { 10_000_000 };
    let time = |f: &dyn Fn(u64, u64) -> u64| -> f64 {
        let mut acc = 0x9E37_79B9u64;
        let t = Instant::now();
        for i in 0..iters {
            acc = f(black_box(acc), black_box(i | 1));
        }
        black_box(acc);
        t.elapsed().as_secs_f64() / iters as f64
    };
    let kern = time(&kernel_round);
    let scal = time(&scalar_round);
    println!("\nnw==1 fast-path delta (5-op round, {iters} iters):");
    println!(
        "  slice kernels {:>7.2} ns/round | scalar u64 {:>7.2} ns/round | {:.2}x",
        kern * 1e9,
        scal * 1e9,
        kern / scal.max(1e-12),
    );
    println!("  (both engines now take the scalar path for single-word steps;");
    println!("   the gang engine additionally amortizes the step dispatch over lanes)");
}

fn main() {
    let threads = 4usize;
    let cycles: u64 = if quick() { 300 } else { 1000 };
    println!("Gang lane sweep: aggregate scenario-cycles/sec vs lane count");

    // Design 1: the seeded PRNG bank — the seed-farm workload gang
    // execution exists for (tiny fibers, dispatch-dominated).
    let bank = prng::build_seeded_bank(32);
    sweep_design("sprng32 (seed farm)", &bank, 16, threads, cycles);

    // Design 2: a mesh NoC — real cross-tile and cross-chip traffic
    // rides the lane-strided mailboxes.
    let mesh = Benchmark::Sr(if quick() { 3 } else { 4 }).build();
    sweep_design("sr mesh", &mesh, 16, threads, cycles);

    fast_path_delta();

    println!("\nShape check: lane-kcyc/s rises with lanes on both designs — one");
    println!("step dispatch feeds L lanes, so aggregate throughput grows until");
    println!("memory bandwidth, not dispatch, is the limiter.");
}
