//! Fig. 10: scaling across 1–4 IPUs. Crossing chips adds expensive
//! off-chip exchange and sync, so gains are positive but far from
//! linear — and sometimes fewer chips win.
//!
//! Beyond the modeled sweep, a *measured* section runs the real BSP
//! engine at host scale with chips mapped to worker groups: cross-chip
//! traffic rides per-chip-pair aggregate mailboxes flushed in a
//! separately-timed sub-phase, and a per-word delay models the slower
//! off-chip link, reproducing the `m×b` effect live.

use parendi_bench::{
    calibrate_offchip_spin, ipu_point, lr_max, quick, sr_max, write_bench_json, BenchRecord,
    TILE_SWEEP,
};
use parendi_core::{compile, PartitionConfig};
use parendi_designs::Benchmark;
use parendi_machine::ipu::IpuConfig;
use parendi_sim::{BspSimulator, GangSimulator, TransportChoice};

/// The off-chip transport backends the measured section sweeps: the
/// record `engine` tag and the backend. The in-process backend keeps
/// the plain `bsp` tag so baselines stay comparable across PRs.
const TRANSPORTS: [(&str, TransportChoice); 3] = [
    ("bsp", TransportChoice::InProcess),
    ("bsp-shm", TransportChoice::SharedMem),
    ("bsp-tcp", TransportChoice::Tcp),
];

fn main() {
    let ipu = IpuConfig::m2000();
    let benches = [
        Benchmark::Sr(sr_max()),
        Benchmark::Lr(lr_max().saturating_sub(2).max(2)),
        Benchmark::Lr(lr_max()),
    ];
    println!("Fig. 10: speedup vs a single IPU");
    print!("{:>6}", "IPUs");
    for b in &benches {
        print!(" {:>10}", b.name());
    }
    println!();
    let circuits: Vec<_> = benches.iter().map(|b| b.build()).collect();
    let base: Vec<f64> = circuits
        .iter()
        .map(|c| ipu_point(c, TILE_SWEEP[0], &ipu).khz)
        .collect();
    for (i, &tiles) in TILE_SWEEP.iter().enumerate() {
        print!("{:>6}", i + 1);
        for (c, b) in circuits.iter().zip(&base) {
            let p = ipu_point(c, tiles, &ipu);
            print!(" {:>10.2}", p.khz / b);
        }
        println!();
    }
    println!("\nAt the reproduction's scale single-chip totals are ~1k cycles, below");
    println!("the off-chip latency floor (Fig. 5 right), so crossing chips never pays:");
    println!("the paper's own \"fewer IPUs can produce marginal gains\" regime.");

    // Extrapolation to paper scale: the paper's sr15 has ~188x our fiber
    // count; comp scales linearly with design size while the measured
    // cut/sync terms are taken from our compilations unchanged.
    const SCALE: f64 = 188.0;
    println!("\nExtrapolated to paper-size designs (comp x{SCALE:.0}, measured comm/sync):");
    print!("{:>6}", "IPUs");
    for b in &benches {
        print!(" {:>10}", b.name());
    }
    println!();
    let base_x: Vec<f64> = circuits
        .iter()
        .map(|c| {
            let p = ipu_point(c, TILE_SWEEP[0], &ipu);
            1.0 / (p.timings.comp * SCALE + p.timings.comm + p.timings.sync)
        })
        .collect();
    for (i, &tiles) in TILE_SWEEP.iter().enumerate() {
        print!("{:>6}", i + 1);
        for (c, b) in circuits.iter().zip(&base_x) {
            let p = ipu_point(c, tiles, &ipu);
            let rate = 1.0 / (p.timings.comp * SCALE + p.timings.comm + p.timings.sync);
            print!(" {:>10.2}", rate / b);
        }
        println!();
    }
    println!("\nShape check: at paper scale, 4 IPUs yield positive but sublinear");
    println!("gains (the paper reports +60% for lr9 at 4 chips).");

    // Measured engine: the same chip-count sweep executed for real at
    // host scale. One worker group per chip; the off-chip column is the
    // timed flush of the per-chip-pair aggregate mailboxes. The spin
    // knob is no longer a swept magic number: it is *fitted* once to
    // the modeled off-chip link (offchip_bytes_per_cycle /
    // offchip_contention, scaled into host time by a calibration run),
    // so the measured flush column and the modeled volume cost print in
    // shared units — modeled IPU cycles per RTL cycle.
    let cal = calibrate_offchip_spin(&ipu);
    println!(
        "\nOff-chip calibration: {} spins/word (exact {:.2}; link {:.1} B/model-cyc / \
         contention {:.2}; host {:.2} ns per model cycle; {:.0} Mspin/s)",
        cal.spins_per_word,
        cal.spins_per_word_exact,
        ipu.offchip_bytes_per_cycle,
        ipu.offchip_contention,
        cal.host_s_per_model_cycle * 1e9,
        cal.spin_hz / 1e6,
    );
    let design = Benchmark::Sr(if quick() { 3 } else { 4 });
    let circuit = design.build();
    let per_chip = 8u32;
    let threads = 4usize;
    let cycles: u64 = if quick() { 200 } else { 500 };
    let chip_sweep: &[u32] = if quick() { &[1, 2] } else { &[1, 2, 4] };
    println!(
        "\nMeasured engine ({}, {per_chip} tiles/chip, {threads} threads, calibrated \
         {} spins/word off-chip):",
        design.name(),
        cal.spins_per_word,
    );
    println!(
        "{:>6} {:>6} {:>11} {:>11} {:>12} {:>12} {:>10} {:>12} {:>12} {:>9}",
        "chips",
        "tiles",
        "offchipKiB",
        "comp/cyc",
        "onchip/cyc",
        "offchip/cyc",
        "ovlp/cyc",
        "meas(mcyc)",
        "model(mcyc)",
        "kcyc/s"
    );
    // The last sweep point's compilation and timings double as the
    // single-lane baseline of the gang comparison below.
    let mut last_point = None;
    let mut records = Vec::new();
    // Per chip count: (per-backend kcyc/s triple, transport bytes).
    let mut transport_rows: Vec<(u32, Vec<f64>, u64)> = Vec::new();
    for &chips in chip_sweep {
        let mut cfg = PartitionConfig::with_tiles(per_chip * chips);
        cfg.tiles_per_chip = per_chip;
        let comp = compile(&circuit, &cfg).expect("host-scale compile");
        // The same partition under every transport backend. All three
        // must land on bit-identical outputs (checked below); the
        // in-process run provides the detailed phase row.
        let mut ph = None;
        let mut rates = Vec::new();
        let mut outputs: Option<Vec<_>> = None;
        let mut bytes = 0u64;
        for &(tag, backend) in &TRANSPORTS {
            let mut sim = BspSimulator::with_transport(&circuit, &comp.partition, threads, backend);
            sim.set_offchip_spin_per_word(cal.spins_per_word);
            sim.run(50); // warm the persistent pool
            let p = sim.run_timed(cycles);
            let outs: Vec<_> = circuit
                .outputs
                .iter()
                .map(|o| sim.peek_output(&o.name).expect("design output"))
                .collect();
            match &outputs {
                None => outputs = Some(outs),
                Some(first) => assert_eq!(
                    first, &outs,
                    "transport {tag} diverged from {} at {chips} chips",
                    TRANSPORTS[0].0
                ),
            }
            bytes = sim.offchip_bytes_sent();
            rates.push(cycles as f64 / p.total_s / 1e3);
            records.push(
                BenchRecord::from_phases(
                    "fig10",
                    design.name(),
                    tag,
                    false,
                    comp.partition.chips,
                    comp.partition.tiles_used(),
                    1,
                    threads as u32,
                    cycles,
                    cycles as f64 / p.total_s,
                    &p,
                )
                .with_metrics(sim.metrics_snapshot()),
            );
            if ph.is_none() {
                ph = Some(p);
            }
        }
        transport_rows.push((chips, rates, bytes));
        let ph = ph.expect("at least one backend ran");
        // Shared units: the measured link occupancy converted to model
        // cycles next to the model's throughput term for the same
        // volume (the fixed off-chip latency is the model's separate
        // floor; it has no engine counterpart and is excluded from both
        // columns). Since the flush/compute overlap, the straggler's
        // link time is its residual wait plus whatever compute hid
        // (`overlap_s`) — together the full serialized occupancy the
        // model charges, printed whole so the columns stay comparable.
        let link_s = ph.offchip_s + ph.overlap_s;
        let meas_model_cycles = cal.host_s_to_model_cycles(link_s / cycles as f64);
        let model_volume_cycles = comp.plan.offchip_total_bytes as f64 * ipu.offchip_contention
            / ipu.offchip_bytes_per_cycle;
        println!(
            "{:>6} {:>6} {:>11.2} {:>9.2}µs {:>10.2}µs {:>10.2}µs {:>8.2}µs {:>12.1} {:>12.1} {:>9.1}",
            chips,
            comp.partition.tiles_used(),
            comp.plan.offchip_total_bytes as f64 / 1024.0,
            ph.compute_s * 1e6 / cycles as f64,
            ph.exchange_s * 1e6 / cycles as f64,
            ph.offchip_s * 1e6 / cycles as f64,
            ph.overlap_s * 1e6 / cycles as f64,
            meas_model_cycles,
            model_volume_cycles,
            cycles as f64 / ph.total_s / 1e3,
        );
        last_point = Some((chips, comp, ph));
    }
    println!("\nTransport backends (same partition; outputs checked bit-identical per row):");
    print!("{:>6} {:>12}", "chips", "movedKiB");
    for &(tag, _) in &TRANSPORTS {
        print!(" {:>12}", format!("{tag} kc/s"));
    }
    println!();
    for (chips, rates, bytes) in &transport_rows {
        print!("{:>6} {:>12.2}", chips, *bytes as f64 / 1024.0);
        for r in rates {
            print!(" {r:>12.1}");
        }
        println!();
    }
    println!("\nShape check: the measured off-chip column is zero at 1 chip and grows");
    println!("with the modeled cross-chip volume once chips > 1; ovlp/cyc is the");
    println!("modeled link time the eager flush hid under compute. meas(mcyc) and");
    println!("model(mcyc) share units (modeled IPU cycles per RTL cycle, volume term");
    println!("only); at this reproduction's tiny volumes the measured side is mostly");
    println!("per-record flush bookkeeping, so expect meas >> model until designs");
    println!("move enough bytes for the calibrated per-word term to dominate.");

    // Gang throughput next to the single-lane engine: the sweep's last
    // point (compilation and timed single-lane phases) is reused as the
    // baseline — same partition, same calibrated spin. Aggregate
    // lane-cycles/sec beats the single-lane engine because each
    // dispatched step amortizes over all lanes.
    let (chips, comp, ph1) = last_point.expect("non-empty chip sweep");
    let lanes = 4usize;
    let mut gang = GangSimulator::new(&circuit, &comp.partition, threads, lanes);
    gang.set_offchip_spin_per_word(cal.spins_per_word);
    gang.run(50);
    let phl = gang.run_timed(cycles);
    println!(
        "\nGang engine at {chips} chips ({lanes} lanes, off-chip bytes x{lanes} = {:.2} KiB):",
        comp.plan
            .scaled_by_lanes(lanes as u32, false)
            .offchip_total_bytes as f64
            / 1024.0,
    );
    println!(
        "  single-lane {:>9.1} lane-kcyc/s | gang {:>9.1} lane-kcyc/s ({:.2}x aggregate)",
        ph1.lane_cycles_per_s() / 1e3,
        phl.lane_cycles_per_s() / 1e3,
        phl.lane_cycles_per_s() / ph1.lane_cycles_per_s().max(1e-12),
    );
    records.push(
        BenchRecord::from_phases(
            "fig10",
            design.name(),
            "gang",
            false,
            chips,
            comp.partition.tiles_used(),
            lanes as u32,
            threads as u32,
            cycles,
            cycles as f64 / phl.total_s,
            &phl,
        )
        .with_metrics(gang.metrics_snapshot()),
    );
    match write_bench_json("fig10", &records) {
        Ok(path) => println!("\nwrote {} ({} records)", path.display(), records.len()),
        Err(e) => println!("\ncould not write BENCH_fig10.json: {e}"),
    }
}
