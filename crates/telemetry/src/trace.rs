//! Event tracing: fixed-capacity, lock-free per-track span buffers
//! drained at run end into Chrome trace-event JSON (loadable in
//! Perfetto or `chrome://tracing`).
//!
//! The design center is the overhead story. A track's [`TraceBuf`] is
//! a single-writer bounded buffer: the hot path writes one 40-byte
//! slot and does one `Release` store — no allocation, no locking, no
//! syscalls. When tracing is off the engine holds no sink at all, so
//! the per-span cost collapses to a branch on a `None`. A full buffer
//! saturates (new events are counted as dropped, never spilled), which
//! keeps both the memory bound and the drain soundness trivial: slots
//! below the published length are never written again, so a drain
//! races with nothing.

use std::cell::UnsafeCell;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Events retained per track when [`TraceConfig::capacity`] is left 0.
const DEFAULT_CAPACITY: usize = 1 << 16;

/// Granularity of the recorded spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Tracing disabled: the engine keeps no sink and the hot loop's
    /// only residue is a branch on a `None`.
    #[default]
    Off,
    /// One merged span per contiguous run of same-kind work per worker
    /// (compute, off-chip, exchange, barrier) — a handful of events
    /// per worker per cycle.
    Phase,
    /// One span per tile per sub-phase, tagged with the global tile id
    /// — the straggler view. Costs one clock read per tile per
    /// sub-phase, the same price `run_timed` already pays.
    Tile,
}

/// Trace configuration handed to the engine at build time.
#[derive(Clone, Debug, Default)]
pub struct TraceConfig {
    pub level: TraceLevel,
    /// Events retained per track; 0 means the default (65536). A full
    /// track saturates and counts further events as dropped.
    pub capacity: usize,
    /// When set, the engine writes the Chrome JSON here when it is
    /// dropped (the trace can also be drained explicitly at any time).
    pub path: Option<PathBuf>,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Phase-level spans, in-memory only.
    pub fn phase() -> Self {
        TraceConfig {
            level: TraceLevel::Phase,
            ..Self::default()
        }
    }

    /// Tile-level spans, in-memory only.
    pub fn tile() -> Self {
        TraceConfig {
            level: TraceLevel::Tile,
            ..Self::default()
        }
    }

    /// Sets the auto-write path.
    pub fn with_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Sets the per-track event capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    pub fn is_off(&self) -> bool {
        self.level == TraceLevel::Off
    }

    /// Reads `PARENDI_TRACE` (an output path; unset, empty, or `0`
    /// disables tracing) and `PARENDI_TRACE_LEVEL` (`phase` | `tile`,
    /// default `tile`). Because one process may build many engines
    /// (the fig bins sweep backends and chip counts), the second and
    /// later env-configured engines get a numbered path — `out.json`,
    /// `out.1.json`, `out.2.json`, … — instead of clobbering the first.
    pub fn from_env() -> Self {
        let path = match std::env::var("PARENDI_TRACE") {
            Ok(v) if !v.is_empty() && v != "0" => v,
            _ => return Self::off(),
        };
        let level = match std::env::var("PARENDI_TRACE_LEVEL").as_deref() {
            Ok("phase") => TraceLevel::Phase,
            _ => TraceLevel::Tile,
        };
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = if n == 0 {
            PathBuf::from(path)
        } else {
            numbered_path(Path::new(&path), n)
        };
        TraceConfig {
            level,
            capacity: 0,
            path: Some(path),
        }
    }
}

/// `out.json` → `out.{n}.json` (or `out` → `out.{n}`).
fn numbered_path(path: &Path, n: usize) -> PathBuf {
    match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => path.with_extension(format!("{n}.{ext}")),
        None => path.with_extension(n.to_string()),
    }
}

/// What a span measures. The discriminant indexes
/// [`TrackSummary::ns_by_kind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// A tile program's compute phase.
    Compute = 0,
    /// Copying a tile's off-chip send segments into the pair
    /// aggregates (staging or direct).
    OffchipFlush = 1,
    /// The modeled link residual the worker actually waited out (the
    /// part compute did not overlap).
    OverlapResidual = 2,
    /// A transport writer pushing one frame into its socket.
    TransportSend = 3,
    /// Blocking until the cycle's inbound frames arrived.
    TransportRecv = 4,
    /// Waiting on the phase barrier (either of the two per cycle).
    BarrierWait = 5,
    /// A tile program's on-chip exchange phase.
    Exchange = 6,
}

/// Number of [`SpanKind`] variants.
pub const SPAN_KINDS: usize = 7;

impl SpanKind {
    pub const ALL: [SpanKind; SPAN_KINDS] = [
        SpanKind::Compute,
        SpanKind::OffchipFlush,
        SpanKind::OverlapResidual,
        SpanKind::TransportSend,
        SpanKind::TransportRecv,
        SpanKind::BarrierWait,
        SpanKind::Exchange,
    ];

    /// Stable event name in the emitted JSON.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::OffchipFlush => "offchip_flush",
            SpanKind::OverlapResidual => "overlap_residual",
            SpanKind::TransportSend => "transport_send",
            SpanKind::TransportRecv => "transport_recv",
            SpanKind::BarrierWait => "barrier_wait",
            SpanKind::Exchange => "exchange",
        }
    }

    /// Event category (`cat`) in the emitted JSON.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::OffchipFlush | SpanKind::OverlapResidual => "offchip",
            SpanKind::TransportSend | SpanKind::TransportRecv => "transport",
            SpanKind::BarrierWait => "sync",
            SpanKind::Exchange => "exchange",
        }
    }
}

/// The [`TraceEvent::tile`] value of worker-scoped spans (barrier
/// waits, transport waits, phase-level merges).
pub const NO_TILE: u32 = u32::MAX;

/// One recorded span, timestamped against the sink's epoch.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub kind: SpanKind,
    /// Global tile id, or [`NO_TILE`] for worker-scoped spans.
    pub tile: u32,
    /// BSP cycle the span belongs to.
    pub cycle: u64,
    /// Nanoseconds since [`TraceSink::epoch`].
    pub start_ns: u64,
    pub dur_ns: u64,
}

impl TraceEvent {
    const ZERO: TraceEvent = TraceEvent {
        kind: SpanKind::Compute,
        tile: NO_TILE,
        cycle: 0,
        start_ns: 0,
        dur_ns: 0,
    };
}

/// One track's event store: a fixed-capacity single-writer buffer.
///
/// Exactly one thread may call [`push`](TraceBuf::push) (the worker or
/// transport writer that owns the track); any thread may
/// [`snapshot`](TraceBuf::snapshot) concurrently. The buffer saturates
/// when full. Cache-line aligned so adjacent tracks' write cursors
/// never share a line.
#[repr(align(64))]
pub struct TraceBuf {
    slots: Box<[UnsafeCell<TraceEvent>]>,
    /// Published event count. Slots below it are immutable forever.
    len: AtomicUsize,
    /// Events rejected because the buffer was full.
    dropped: AtomicU64,
}

// SAFETY: the single-writer discipline documented on the type — a slot
// is written exactly once, before the `Release` store that publishes
// it, and `snapshot` only reads slots below an `Acquire`-loaded length.
unsafe impl Sync for TraceBuf {}

impl TraceBuf {
    pub fn new(capacity: usize) -> Self {
        TraceBuf {
            slots: (0..capacity.max(1))
                .map(|_| UnsafeCell::new(TraceEvent::ZERO))
                .collect(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records one span. Single-writer: only the owning thread may
    /// call this. Never allocates, locks, or blocks.
    pub fn push(&self, ev: TraceEvent) {
        let n = self.len.load(Ordering::Relaxed);
        if n == self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: this thread is the sole writer and slot `n` is not
        // yet published, so no reader can observe the write.
        unsafe { *self.slots[n].get() = ev };
        self.len.store(n + 1, Ordering::Release);
    }

    /// Events published so far.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events rejected after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out the published events, oldest first. Safe to call
    /// while the writer is still pushing (late events are simply not
    /// yet included).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let n = self.len.load(Ordering::Acquire);
        // SAFETY: slots below the Acquire-loaded length were fully
        // written before their Release publication and are never
        // written again.
        (0..n).map(|i| unsafe { *self.slots[i].get() }).collect()
    }
}

struct Track {
    name: String,
    buf: Arc<TraceBuf>,
}

/// Aggregate view of one track, for phase-share tables.
#[derive(Clone, Debug)]
pub struct TrackSummary {
    pub name: String,
    pub events: usize,
    pub dropped: u64,
    /// Total nanoseconds per span kind, indexed by `SpanKind as usize`.
    pub ns_by_kind: [u64; SPAN_KINDS],
}

impl TrackSummary {
    /// Total nanoseconds across all kinds.
    pub fn total_ns(&self) -> u64 {
        self.ns_by_kind.iter().sum()
    }

    /// This kind's share of the track's total span time (0 when the
    /// track is empty).
    pub fn share(&self, kind: SpanKind) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.ns_by_kind[kind as usize] as f64 / total as f64
        }
    }
}

/// The per-engine trace collector: owns the epoch, hands out one
/// [`TraceBuf`] per track (engine workers register at spawn, transport
/// writer threads at connect), and drains everything into Chrome
/// trace-event JSON.
pub struct TraceSink {
    level: TraceLevel,
    capacity: usize,
    path: Option<PathBuf>,
    epoch: Instant,
    tracks: Mutex<Vec<Track>>,
}

impl TraceSink {
    /// Builds a sink for the config, or `None` when tracing is off —
    /// the `None` is what the hot path branches on.
    pub fn new(cfg: &TraceConfig) -> Option<Arc<TraceSink>> {
        if cfg.is_off() {
            return None;
        }
        Some(Arc::new(TraceSink {
            level: cfg.level,
            capacity: if cfg.capacity == 0 {
                DEFAULT_CAPACITY
            } else {
                cfg.capacity
            },
            path: cfg.path.clone(),
            epoch: Instant::now(),
            tracks: Mutex::new(Vec::new()),
        }))
    }

    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// The instant all event timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds since the epoch (for writers that time themselves).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Creates a new track and returns its buffer; the caller's thread
    /// becomes the track's sole writer.
    pub fn register(&self, name: &str) -> Arc<TraceBuf> {
        let buf = Arc::new(TraceBuf::new(self.capacity));
        self.tracks
            .lock()
            .expect("trace track registry")
            .push(Track {
                name: name.to_string(),
                buf: Arc::clone(&buf),
            });
        buf
    }

    /// Snapshots every track (name, events oldest-first).
    pub fn tracks(&self) -> Vec<(String, Vec<TraceEvent>)> {
        self.tracks
            .lock()
            .expect("trace track registry")
            .iter()
            .map(|t| (t.name.clone(), t.buf.snapshot()))
            .collect()
    }

    /// Per-track time-by-kind aggregates.
    pub fn track_summaries(&self) -> Vec<TrackSummary> {
        self.tracks
            .lock()
            .expect("trace track registry")
            .iter()
            .map(|t| {
                let events = t.buf.snapshot();
                let mut ns_by_kind = [0u64; SPAN_KINDS];
                for ev in &events {
                    ns_by_kind[ev.kind as usize] += ev.dur_ns;
                }
                TrackSummary {
                    name: t.name.clone(),
                    events: events.len(),
                    dropped: t.buf.dropped(),
                    ns_by_kind,
                }
            })
            .collect()
    }

    /// Total events dropped across all tracks (saturated buffers).
    pub fn total_dropped(&self) -> u64 {
        self.tracks
            .lock()
            .expect("trace track registry")
            .iter()
            .map(|t| t.buf.dropped())
            .sum()
    }

    /// A human-readable warning when any track dropped events (its
    /// ring buffer saturated), or `None` when the trace is complete.
    /// Callers surface this so a truncated trace is never mistaken
    /// for a quiet run.
    pub fn drop_warning(&self) -> Option<String> {
        let dropped = self.total_dropped();
        (dropped > 0).then(|| {
            format!(
                "{dropped} trace event(s) dropped (per-track buffer saturated) — \
                 the trace is incomplete; raise TraceConfig::with_capacity, \
                 or use PARENDI_TRACE_LEVEL=phase for fewer events"
            )
        })
    }

    /// Serializes every track as Chrome trace-event JSON: one `M`
    /// thread-name metadata event per track, then one `X` complete
    /// event per span (`ts`/`dur` in microseconds), one event per
    /// line. `pid` is always 1; `tid` is the track index + 1.
    pub fn chrome_json(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for (idx, (name, events)) in self.tracks().into_iter().enumerate() {
            let tid = idx + 1;
            lines.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
            for ev in events {
                let ts = ev.start_ns as f64 / 1000.0;
                let dur = ev.dur_ns as f64 / 1000.0;
                let tile = if ev.tile == NO_TILE {
                    String::new()
                } else {
                    format!(",\"tile\":{}", ev.tile)
                };
                lines.push(format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\
                     \"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{\"cycle\":{}{tile}}}}}",
                    ev.kind.name(),
                    ev.kind.category(),
                    ev.cycle,
                ));
            }
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&lines.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    /// Writes the Chrome JSON to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.chrome_json().as_bytes())
    }

    /// Writes to the configured path, if any; returns it when written.
    pub fn write_configured(&self) -> std::io::Result<Option<&Path>> {
        match &self.path {
            Some(p) => self.write(p).map(|()| Some(p.as_path())),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, start_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            kind,
            tile: NO_TILE,
            cycle: 7,
            start_ns,
            dur_ns,
        }
    }

    /// The buffer saturates at capacity and counts the overflow; the
    /// published prefix survives intact.
    #[test]
    fn trace_buf_saturates_and_counts_drops() {
        let buf = TraceBuf::new(4);
        for i in 0..6 {
            buf.push(ev(SpanKind::Compute, i * 10, 5));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 2);
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 4);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.start_ns, i as u64 * 10);
        }
    }

    /// A concurrent drain sees a clean prefix of the pushed events —
    /// the Release/Acquire pair on the length is the whole protocol.
    #[test]
    fn trace_buf_concurrent_snapshot_sees_prefix() {
        let buf = Arc::new(TraceBuf::new(1024));
        let writer = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                for i in 0..1024 {
                    buf.push(ev(SpanKind::Exchange, i, 1));
                }
            })
        };
        for _ in 0..100 {
            let snap = buf.snapshot();
            for (i, e) in snap.iter().enumerate() {
                assert_eq!(e.start_ns, i as u64, "torn or reordered slot");
            }
        }
        writer.join().unwrap();
        assert_eq!(buf.snapshot().len(), 1024);
    }

    /// The emitted JSON is one metadata line per track plus one `X`
    /// line per span, with microsecond timestamps.
    #[test]
    fn chrome_json_shape() {
        let sink = TraceSink::new(&TraceConfig::tile()).expect("sink");
        let a = sink.register("engine-worker-0");
        a.push(TraceEvent {
            kind: SpanKind::Compute,
            tile: 3,
            cycle: 0,
            start_ns: 1500,
            dur_ns: 2500,
        });
        a.push(ev(SpanKind::BarrierWait, 4000, 1000));
        let b = sink.register("transport-tcp-0");
        b.push(ev(SpanKind::TransportSend, 2000, 500));
        let json = sink.chrome_json();
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"engine-worker-0\"}"));
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"transport-tcp-0\"}"));
        assert!(
            json.contains("\"name\":\"compute\",\"cat\":\"compute\",\"ts\":1.500,\"dur\":2.500")
        );
        assert!(json.contains("\"args\":{\"cycle\":0,\"tile\":3}"));
        // Worker-scoped spans omit the tile arg.
        assert!(json.contains("\"name\":\"barrier_wait\",\"cat\":\"sync\",\"ts\":4.000"));
        assert!(!json.contains("\"tile\":4294967295"));
        // Exactly one comma-terminated line per event (5 lines total).
        assert_eq!(json.lines().count(), 2 + 5);
    }

    /// Summaries aggregate span time by kind per track.
    #[test]
    fn track_summaries_aggregate_by_kind() {
        let sink = TraceSink::new(&TraceConfig::phase()).expect("sink");
        let t = sink.register("w0");
        t.push(ev(SpanKind::Compute, 0, 30));
        t.push(ev(SpanKind::Compute, 40, 10));
        t.push(ev(SpanKind::BarrierWait, 50, 60));
        let s = &sink.track_summaries()[0];
        assert_eq!(s.name, "w0");
        assert_eq!(s.events, 3);
        assert_eq!(s.ns_by_kind[SpanKind::Compute as usize], 40);
        assert_eq!(s.ns_by_kind[SpanKind::BarrierWait as usize], 60);
        assert_eq!(s.total_ns(), 100);
        assert!((s.share(SpanKind::BarrierWait) - 0.6).abs() < 1e-12);
    }

    /// `TraceSink::new` is the off-branch: no sink, no cost.
    #[test]
    fn off_config_builds_no_sink() {
        assert!(TraceSink::new(&TraceConfig::off()).is_none());
        assert!(TraceConfig::default().is_off());
        assert!(!TraceConfig::tile().is_off());
    }

    /// Numbered paths keep multi-engine processes from clobbering one
    /// output file.
    #[test]
    fn numbered_paths_insert_before_extension() {
        assert_eq!(
            numbered_path(Path::new("out.json"), 2),
            PathBuf::from("out.2.json")
        );
        assert_eq!(
            numbered_path(Path::new("dir/trace"), 1),
            PathBuf::from("dir/trace.1")
        );
    }
}
