//! Executable point-to-point routing: who sends what to whom, at which
//! mailbox offset.
//!
//! [`Routing`] is the compiled form of the BSP communication phase. For
//! every register and every array write port it records the producer
//! tile, the explicit list of consumer tiles, and — per consumer — the
//! pre-resolved word offset inside the producer→consumer *channel*
//! buffer. The execution engine (`parendi-sim`'s `BspSimulator`) copies
//! straight through these offsets with no locks and no allocation, and
//! the [`ExchangePlan`] cost figures are a derived view
//! ([`Routing::exchange_plan`]) of the very same structure, so the cost
//! model and the engine can never disagree about what moves.
//!
//! # Channel layout
//!
//! Each ordered tile pair with traffic gets one [`ChannelSpec`]. Its
//! buffer is laid out as:
//!
//! ```text
//! [ register section: one slot per routed register, RegId order ]
//! [ port section: one record per routed write port, (array, port) order ]
//! ```
//!
//! A port record is `enable` (1 word), `index` (1 word), then
//! `data_words` words of data — [`PORT_RECORD_HEADER_WORDS`] + data.

use crate::exchange::ExchangePlan;
use crate::partition::Partition;
use parendi_graph::fiber::{SinkKind, PORT_RECORD_OVERHEAD_BYTES};
use parendi_rtl::bits::words_for;
use parendi_rtl::{ArrayId, Circuit, RegId};
use std::collections::HashMap;

/// Mailbox words occupied by a port record before its data: the enable
/// word and the (range-folded) index word.
pub const PORT_RECORD_HEADER_WORDS: u32 = 2;

/// Whether a channel stays on one chip or crosses a chip boundary.
///
/// Derived from [`Routing::tile_chip`] at compile time: a channel is
/// [`OffChip`](ChannelClass::OffChip) iff its producer and consumer
/// tiles live on different chips. The execution engine uses the class to
/// pick the mailbox fabric (per-tile-pair on-chip boxes vs the wider
/// per-chip-pair aggregates) and the derived [`ExchangePlan`] uses it to
/// attribute bytes to the off-chip `m×b` cost, so the engine and the
/// model can never disagree about which traffic crosses chips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelClass {
    /// Producer and consumer share a chip.
    OnChip,
    /// The channel crosses a chip boundary (an order of magnitude
    /// slower on the real machine — Fig. 5 right).
    OffChip,
}

/// One delivery of a value: which tile receives it, over which channel,
/// at which word offset inside the channel buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Consumer tile.
    pub tile: u32,
    /// Index into [`Routing::channels`].
    pub channel: u32,
    /// Word offset of the slot within the channel buffer.
    pub word_off: u32,
}

/// Where one register's next-value travels each cycle.
#[derive(Clone, Debug)]
pub struct RegRoute {
    /// The register.
    pub reg: RegId,
    /// Tile computing its next-value (`u32::MAX` if unowned, which a
    /// validated circuit never produces).
    pub producer: u32,
    /// Value width in 64-bit words.
    pub words: u32,
    /// Remote consumers (the producer reads its own copy locally).
    pub hops: Vec<Hop>,
}

/// Where one array write port's `(enable, index, data)` record travels.
#[derive(Clone, Debug)]
pub struct PortRoute {
    /// The array written.
    pub array: ArrayId,
    /// Port index within the array's `write_ports`.
    pub port: u32,
    /// Tile computing the port's cone.
    pub producer: u32,
    /// Data width in 64-bit words.
    pub data_words: u32,
    /// Remote holders of the array (the producer applies its own record
    /// locally); `word_off` points at the record's enable word.
    pub hops: Vec<Hop>,
}

/// One producer→consumer mailbox buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Producer tile.
    pub from: u32,
    /// Consumer tile.
    pub to: u32,
    /// Words of the register section.
    pub reg_words: u32,
    /// Words of the port-record section.
    pub port_words: u32,
    /// Whether the channel crosses a chip boundary.
    pub class: ChannelClass,
}

impl ChannelSpec {
    /// Total buffer size in words.
    pub fn words(&self) -> u32 {
        self.reg_words + self.port_words
    }
}

/// The complete point-to-point exchange of a partition.
#[derive(Clone, Debug)]
pub struct Routing {
    /// Number of tiles.
    pub tiles: u32,
    /// Chip of each tile.
    pub tile_chip: Vec<u32>,
    /// All channels with traffic, sorted by `(from, to)`.
    pub channels: Vec<ChannelSpec>,
    /// One route per register, indexed by `RegId`.
    pub reg_routes: Vec<RegRoute>,
    /// One route per array write port, in `(array, port)` order.
    pub port_routes: Vec<PortRoute>,
    /// Tiles holding a copy of each array, indexed by `ArrayId` (sorted).
    pub array_holders: Vec<Vec<u32>>,
    /// Tile computing each primary output's cone, indexed by output id
    /// (`u32::MAX` if no process owns the output fiber, which a complete
    /// partition never produces). Output values never enter the
    /// exchange — they back the engine's `peek_output` testbench API.
    pub output_tiles: Vec<u32>,
}

impl Routing {
    /// Compiles the exchange of `partition`.
    pub fn new(circuit: &Circuit, partition: &Partition) -> Self {
        let tiles = partition.processes.len() as u32;
        let tile_chip: Vec<u32> = partition.processes.iter().map(|p| p.chip).collect();

        // Producers.
        let mut reg_producer = vec![u32::MAX; circuit.regs.len()];
        let mut port_producer: HashMap<(u32, u32), u32> = HashMap::new();
        let mut output_tiles = vec![u32::MAX; circuit.outputs.len()];
        for (pi, p) in partition.processes.iter().enumerate() {
            for &f in &p.fibers {
                match partition.fiber_sinks[f.index()] {
                    SinkKind::Reg(r) => reg_producer[r.index()] = pi as u32,
                    SinkKind::ArrayPort { array, port } => {
                        port_producer.insert((array.0, port), pi as u32);
                    }
                    SinkKind::Output(o) => output_tiles[o as usize] = pi as u32,
                }
            }
        }

        // Consumers: remote readers per register, holder tiles per array.
        let mut reg_consumers: Vec<Vec<u32>> = vec![Vec::new(); circuit.regs.len()];
        let mut array_holders: Vec<Vec<u32>> = vec![Vec::new(); circuit.arrays.len()];
        for (pi, p) in partition.processes.iter().enumerate() {
            for &r in &p.regs_read {
                let w = reg_producer[r.index()];
                if w != u32::MAX && w != pi as u32 {
                    reg_consumers[r.index()].push(pi as u32);
                }
            }
            for &a in &p.arrays {
                array_holders[a.index()].push(pi as u32);
            }
        }

        // Pass 1: discover channels and size their register sections.
        let mut chan_index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut channels: Vec<ChannelSpec> = Vec::new();
        let mut chan_of = |from: u32, to: u32, channels: &mut Vec<ChannelSpec>| -> u32 {
            *chan_index.entry((from, to)).or_insert_with(|| {
                let class = if tile_chip[from as usize] == tile_chip[to as usize] {
                    ChannelClass::OnChip
                } else {
                    ChannelClass::OffChip
                };
                channels.push(ChannelSpec {
                    from,
                    to,
                    reg_words: 0,
                    port_words: 0,
                    class,
                });
                channels.len() as u32 - 1
            })
        };
        for (ri, consumers) in reg_consumers.iter().enumerate() {
            let producer = reg_producer[ri];
            let words = words_for(circuit.regs[ri].width) as u32;
            for &c in consumers {
                let ch = chan_of(producer, c, &mut channels);
                channels[ch as usize].reg_words += words;
            }
        }
        for (ai, a) in circuit.arrays.iter().enumerate() {
            let data_words = words_for(a.width) as u32;
            for port in 0..a.write_ports.len() as u32 {
                let Some(&producer) = port_producer.get(&(ai as u32, port)) else {
                    continue;
                };
                for &h in &array_holders[ai] {
                    if h == producer {
                        continue;
                    }
                    let ch = chan_of(producer, h, &mut channels);
                    channels[ch as usize].port_words += PORT_RECORD_HEADER_WORDS + data_words;
                }
            }
        }

        // Canonical channel order; remap indices.
        let mut order: Vec<u32> = (0..channels.len() as u32).collect();
        order.sort_by_key(|&i| (channels[i as usize].from, channels[i as usize].to));
        let mut remap = vec![0u32; channels.len()];
        for (new, &old) in order.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut sorted = channels.clone();
        for (&old, ch) in order.iter().zip(sorted.iter_mut()) {
            *ch = channels[old as usize];
        }
        let channels = sorted;
        let chan_index: HashMap<(u32, u32), u32> = chan_index
            .into_iter()
            .map(|(k, v)| (k, remap[v as usize]))
            .collect();

        // Pass 2: assign slot offsets. Registers pack from offset 0 in
        // RegId order; port records pack after the register section in
        // (array, port) order.
        let mut reg_fill = vec![0u32; channels.len()];
        let mut reg_routes = Vec::with_capacity(circuit.regs.len());
        for (ri, consumers) in reg_consumers.iter().enumerate() {
            let producer = reg_producer[ri];
            let words = words_for(circuit.regs[ri].width) as u32;
            let mut hops = Vec::with_capacity(consumers.len());
            for &c in consumers {
                let ch = chan_index[&(producer, c)];
                hops.push(Hop {
                    tile: c,
                    channel: ch,
                    word_off: reg_fill[ch as usize],
                });
                reg_fill[ch as usize] += words;
            }
            reg_routes.push(RegRoute {
                reg: RegId(ri as u32),
                producer,
                words,
                hops,
            });
        }
        let mut port_fill: Vec<u32> = channels.iter().map(|c| c.reg_words).collect();
        let mut port_routes = Vec::new();
        for (ai, a) in circuit.arrays.iter().enumerate() {
            let data_words = words_for(a.width) as u32;
            for port in 0..a.write_ports.len() as u32 {
                let Some(&producer) = port_producer.get(&(ai as u32, port)) else {
                    continue;
                };
                let mut hops = Vec::new();
                for &h in &array_holders[ai] {
                    if h == producer {
                        continue;
                    }
                    let ch = chan_index[&(producer, h)];
                    hops.push(Hop {
                        tile: h,
                        channel: ch,
                        word_off: port_fill[ch as usize],
                    });
                    port_fill[ch as usize] += PORT_RECORD_HEADER_WORDS + data_words;
                }
                port_routes.push(PortRoute {
                    array: ArrayId(ai as u32),
                    port,
                    producer,
                    data_words,
                    hops,
                });
            }
        }
        debug_assert!(channels
            .iter()
            .zip(&port_fill)
            .all(|(c, &f)| f == c.words()));

        Routing {
            tiles,
            tile_chip,
            channels,
            reg_routes,
            port_routes,
            array_holders,
            output_tiles,
        }
    }

    /// Whether the hop travels over an off-chip channel.
    pub fn hop_crosses_chip(&self, hop: &Hop) -> bool {
        self.channels[hop.channel as usize].class == ChannelClass::OffChip
    }

    /// The channel index for the ordered pair `(from, to)`, if any.
    pub fn channel(&self, from: u32, to: u32) -> Option<u32> {
        self.channels
            .binary_search_by_key(&(from, to), |c| (c.from, c.to))
            .ok()
            .map(|i| i as u32)
    }

    /// Total words flowing out of each tile per cycle (fanout included) —
    /// the executable counterpart of `tile_out_bytes / 8`.
    pub fn tile_out_words(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.tiles as usize];
        for c in &self.channels {
            out[c.from as usize] += c.words() as u64;
        }
        out
    }

    /// Derives the per-cycle [`ExchangePlan`] cost figures from the
    /// routes. This is the *only* computation of exchange volumes in the
    /// workspace: the engine executes the same hops this sums over.
    pub fn exchange_plan(&self, circuit: &Circuit, differential: bool) -> ExchangePlan {
        let n = self.tiles as usize;
        let mut out = ExchangePlan {
            tile_out_bytes: vec![0; n],
            tile_in_bytes: vec![0; n],
            tile_out_bit1_bytes: vec![0; n],
            tile_in_bit1_bytes: vec![0; n],
            ..Default::default()
        };

        // Register routes: every hop moves the full value. Single-bit
        // registers are tracked separately — they are the slots a
        // packed-lane gang moves at 64 scenarios per word, and
        // `ExchangePlan::scaled_by_lanes` scales them by packed words.
        for route in &self.reg_routes {
            if route.producer == u32::MAX {
                continue;
            }
            let bytes = route.words as u64 * 8;
            let bit1 = circuit.regs[route.reg.index()].width == 1;
            let (mut crosses_tile, mut crosses_chip) = (false, false);
            for hop in &route.hops {
                crosses_tile = true;
                out.tile_out_bytes[route.producer as usize] += bytes;
                out.tile_in_bytes[hop.tile as usize] += bytes;
                if bit1 {
                    out.tile_out_bit1_bytes[route.producer as usize] += bytes;
                    out.tile_in_bit1_bytes[hop.tile as usize] += bytes;
                }
                if self.hop_crosses_chip(hop) {
                    out.offchip_total_bytes += bytes;
                    if bit1 {
                        out.offchip_bit1_bytes += bytes;
                    }
                    crosses_chip = true;
                }
            }
            if crosses_tile {
                out.onchip_cut_bytes += bytes;
                if bit1 {
                    out.onchip_cut_bit1_bytes += bytes;
                }
            }
            if crosses_chip {
                out.offchip_cut_bytes += bytes;
                if bit1 {
                    out.offchip_cut_bit1_bytes += bytes;
                }
            }
        }

        // Port routes: differential records (or whole-array transfers
        // with the optimization disabled) to every remote holder.
        let mut pi = 0usize;
        for (ai, a) in circuit.arrays.iter().enumerate() {
            let full_bytes = a.size_bytes();
            let (mut crossed_tile, mut crossed_chip) = (false, false);
            let mut diff_sum = 0u64;
            while pi < self.port_routes.len() && self.port_routes[pi].array.index() == ai {
                let route = &self.port_routes[pi];
                pi += 1;
                let diff_bytes = route.data_words as u64 * 8 + PORT_RECORD_OVERHEAD_BYTES;
                diff_sum += diff_bytes;
                let payload = if differential { diff_bytes } else { full_bytes };
                for hop in &route.hops {
                    crossed_tile = true;
                    out.tile_out_bytes[route.producer as usize] += payload;
                    out.tile_in_bytes[hop.tile as usize] += payload;
                    if self.hop_crosses_chip(hop) {
                        out.offchip_total_bytes += payload;
                        crossed_chip = true;
                    }
                }
            }
            let cut = if differential { diff_sum } else { full_bytes };
            if crossed_tile {
                out.onchip_cut_bytes += cut;
            }
            if crossed_chip {
                out.offchip_cut_bytes += cut;
            }
        }

        out.max_tile_onchip_bytes = (0..n)
            .map(|i| out.tile_out_bytes[i] + out.tile_in_bytes[i])
            .max()
            .unwrap_or(0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use crate::stages::compile;
    use parendi_rtl::Builder;

    fn ring(n: usize) -> Circuit {
        let mut b = Builder::new("ring");
        let regs: Vec<_> = (0..n).map(|i| b.reg(format!("r{i}"), 16, 0)).collect();
        for i in 0..n {
            let prev = regs[(i + n - 1) % n].q();
            let k = b.lit(16, 3);
            let v = b.add(prev, k);
            b.connect(regs[i], v);
        }
        b.finish().unwrap()
    }

    #[test]
    fn ring_routes_point_to_point() {
        let c = ring(8);
        let comp = compile(&c, &PartitionConfig::with_tiles(8)).unwrap();
        let routing = &comp.routing;
        assert_eq!(routing.tiles, 8);
        // Every register has exactly one remote consumer (the next ring
        // element lives on another tile at 8 tiles / 8 fibers).
        for route in &routing.reg_routes {
            assert!(route.producer != u32::MAX);
            assert_eq!(route.hops.len(), 1, "ring reg fans out to one tile");
            assert_ne!(route.hops[0].tile, route.producer);
        }
        // Channel offsets tile the buffers exactly.
        for (ci, ch) in routing.channels.iter().enumerate() {
            let mut covered = vec![false; ch.words() as usize];
            for route in &routing.reg_routes {
                for hop in &route.hops {
                    if hop.channel == ci as u32 {
                        for w in hop.word_off..hop.word_off + route.words {
                            assert!(!covered[w as usize], "overlapping slot");
                            covered[w as usize] = true;
                        }
                    }
                }
            }
            assert!(covered.iter().all(|&c| c), "holes in channel {ci}");
        }
    }

    #[test]
    fn plan_is_derived_from_routes() {
        let c = ring(16);
        let mut cfg = PartitionConfig::with_tiles(8);
        cfg.tiles_per_chip = 4;
        let comp = compile(&c, &cfg).unwrap();
        let replanned = comp.routing.exchange_plan(&c, cfg.differential_exchange);
        assert_eq!(comp.plan.tile_out_bytes, replanned.tile_out_bytes);
        assert_eq!(comp.plan.tile_in_bytes, replanned.tile_in_bytes);
        assert_eq!(
            comp.plan.max_tile_onchip_bytes,
            replanned.max_tile_onchip_bytes
        );
        assert_eq!(comp.plan.offchip_total_bytes, replanned.offchip_total_bytes);
        // The executable word volume matches the modeled byte volume.
        let out_words = comp.routing.tile_out_words();
        for (tile, &words) in out_words.iter().enumerate() {
            let reg_and_record_bytes = words * 8;
            // Modeled bytes add the 4+1 record overhead over a plain
            // 2-word header, so they need not be equal — but a tile
            // sends words iff the model charges it bytes.
            assert_eq!(
                reg_and_record_bytes > 0,
                comp.plan.tile_out_bytes[tile] > 0,
                "tile {tile}"
            );
        }
    }

    #[test]
    fn array_records_route_to_every_holder() {
        let mut b = Builder::new("mem");
        // Writer fiber on one tile, reader fibers elsewhere.
        let waddr = b.reg("waddr", 4, 0);
        let one = b.lit(4, 1);
        let winc = b.add(waddr.q(), one);
        b.connect(waddr, winc);
        let mem = b.array("m", 32, 16);
        let data = b.lit(32, 0xabcd);
        let en = b.lit(1, 1);
        b.array_write(mem, waddr.q(), data, en);
        for i in 0..3 {
            let r = b.reg(format!("r{i}"), 32, 0);
            let idx = b.lit(4, i as u64);
            let v = b.array_read(mem, idx);
            let nx = b.add(v, r.q());
            b.connect(r, nx);
        }
        let c = b.finish().unwrap();
        let comp = compile(&c, &PartitionConfig::with_tiles(8)).unwrap();
        let routing = &comp.routing;
        assert_eq!(routing.port_routes.len(), 1);
        let route = &routing.port_routes[0];
        let holders = &routing.array_holders[0];
        assert!(holders.len() >= 2, "readers must hold copies: {holders:?}");
        assert_eq!(
            route.hops.len(),
            holders.iter().filter(|&&h| h != route.producer).count(),
            "one record per remote holder"
        );
        for hop in &route.hops {
            let ch = &routing.channels[hop.channel as usize];
            assert_eq!((ch.from, ch.to), (route.producer, hop.tile));
            assert!(hop.word_off >= ch.reg_words, "records live after registers");
        }
    }
}
