//! VCD (Value Change Dump) waveform export.
//!
//! Dumps every register and primary output each cycle, emitting only
//! changed values as the VCD format intends. Output loads in GTKWave or
//! any other waveform viewer. Samples come from the reference
//! interpreter ([`VcdWriter::sample`], [`dump_vcd`]) or from **one
//! selected lane** of a scenario-parallel gang run
//! ([`VcdWriter::sample_gang_lane`], [`dump_vcd_lane`]) — waveform
//! debugging works on gang simulations one lane at a time.

use crate::gang::GangSimulator;
use crate::interp::Simulator;
use parendi_rtl::bits::Bits;
use parendi_rtl::{Circuit, NodeId, RegId};
use std::io::{self, Write};

/// Canonical VCD binary: leading zeros trimmed (but at least one digit).
fn trimmed_binary(v: &Bits) -> String {
    let full = format!("{v:b}");
    let t = full.trim_start_matches('0');
    if t.is_empty() {
        "0".into()
    } else {
        t.into()
    }
}

/// Streams simulator state to a VCD file.
pub struct VcdWriter<W: Write> {
    out: W,
    /// (vcd id, reg) pairs.
    regs: Vec<(String, RegId)>,
    /// (vcd id, output node) pairs.
    outputs: Vec<(String, NodeId)>,
    last: Vec<Option<Bits>>,
    time: u64,
}

fn vcd_id(mut n: usize) -> String {
    // Printable-character identifier, base 94 starting at '!'.
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break s;
        }
        n -= 1;
    }
}

impl<W: Write> VcdWriter<W> {
    /// Writes the VCD header for `circuit` and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W, circuit: &Circuit) -> io::Result<Self> {
        writeln!(out, "$date today $end")?;
        writeln!(out, "$version parendi-sim $end")?;
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {} $end", circuit.name.replace(' ', "_"))?;
        let mut regs = Vec::new();
        let mut outputs = Vec::new();
        let mut n = 0usize;
        for (i, r) in circuit.regs.iter().enumerate() {
            let id = vcd_id(n);
            n += 1;
            writeln!(
                out,
                "$var reg {} {} {} $end",
                r.width,
                id,
                r.name.replace(' ', "_")
            )?;
            regs.push((id, RegId(i as u32)));
        }
        for o in &circuit.outputs {
            let id = vcd_id(n);
            n += 1;
            let w = circuit.width(o.node);
            writeln!(
                out,
                "$var wire {} {} {} $end",
                w,
                id,
                o.name.replace(' ', "_")
            )?;
            outputs.push((id, o.node));
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        Ok(VcdWriter {
            out,
            last: vec![None; regs.len() + outputs.len()],
            regs,
            outputs,
            time: 0,
        })
    }

    /// Records the simulator's current state as one timestep.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn sample(&mut self, sim: &Simulator<'_>) -> io::Result<()> {
        writeln!(self.out, "#{}", self.time)?;
        self.time += 1;
        let mut slot = 0usize;
        for (id, reg) in &self.regs {
            let v = sim.reg_value(*reg);
            Self::emit(&mut self.out, &mut self.last, slot, id, v)?;
            slot += 1;
        }
        for (id, node) in &self.outputs {
            let v = sim.peek_node(*node);
            Self::emit(&mut self.out, &mut self.last, slot, id, v)?;
            slot += 1;
        }
        Ok(())
    }

    /// Records one lane of a gang simulation as one timestep: the same
    /// registers and outputs the interpreter path dumps, read back
    /// through the gang's per-lane API (outputs in one bulk peek, so
    /// each owning tile replays once per timestep, not once per output).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range for `sim`, or if the writer was
    /// built for a different circuit.
    pub fn sample_gang_lane(&mut self, sim: &GangSimulator<'_>, lane: usize) -> io::Result<()> {
        writeln!(self.out, "#{}", self.time)?;
        self.time += 1;
        let mut slot = 0usize;
        for (id, reg) in &self.regs {
            let v = sim.reg_value_lane(*reg, lane);
            Self::emit(&mut self.out, &mut self.last, slot, id, v)?;
            slot += 1;
        }
        // The writer's outputs are in `circuit.outputs` order — exactly
        // the index order of the bulk peek.
        let values = sim.peek_outputs_lane(lane);
        assert_eq!(values.len(), self.outputs.len(), "same circuit");
        for ((id, _), v) in self.outputs.iter().zip(values) {
            Self::emit(&mut self.out, &mut self.last, slot, id, v)?;
            slot += 1;
        }
        Ok(())
    }

    /// Emits one value-change line if `v` differs from the last sample.
    fn emit(
        out: &mut W,
        last: &mut [Option<Bits>],
        slot: usize,
        id: &str,
        v: Bits,
    ) -> io::Result<()> {
        if last[slot].as_ref() != Some(&v) {
            writeln!(out, "b{} {}", trimmed_binary(&v), id)?;
            last[slot] = Some(v);
        }
        Ok(())
    }
}

/// Runs `cycles` cycles of `sim`, dumping a VCD trace into `out`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn dump_vcd<W: Write>(sim: &mut Simulator<'_>, cycles: u64, out: W) -> io::Result<()> {
    let mut vcd = VcdWriter::new(out, sim_circuit(sim))?;
    vcd.sample(sim)?;
    for _ in 0..cycles {
        sim.step();
        vcd.sample(sim)?;
    }
    Ok(())
}

fn sim_circuit<'c>(sim: &Simulator<'c>) -> &'c Circuit {
    sim.circuit()
}

/// Runs `cycles` cycles of one lane of a gang simulation, dumping that
/// lane's VCD trace into `out`. **All** lanes advance (lanes run in
/// lockstep); only `lane`'s values are recorded — rerun with another
/// lane index to capture a different scenario from the same gang.
///
/// # Errors
///
/// Propagates I/O errors.
///
/// # Panics
///
/// Panics if `lane` is out of range for `sim`.
pub fn dump_vcd_lane<W: Write>(
    sim: &mut GangSimulator<'_>,
    lane: usize,
    cycles: u64,
    out: W,
) -> io::Result<()> {
    let mut vcd = VcdWriter::new(out, sim.circuit())?;
    vcd.sample_gang_lane(sim, lane)?;
    for _ in 0..cycles {
        sim.run(1);
        vcd.sample_gang_lane(sim, lane)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_rtl::Builder;

    fn counter() -> Circuit {
        let mut b = Builder::new("cnt");
        let r = b.reg("count", 4, 0);
        let one = b.lit(4, 1);
        let n = b.add(r.q(), one);
        b.connect(r, n);
        b.output("q", r.q());
        b.finish().unwrap()
    }

    #[test]
    fn vcd_structure_and_changes() {
        let c = counter();
        let mut sim = Simulator::new(&c);
        let mut buf = Vec::new();
        dump_vcd(&mut sim, 5, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$timescale 1ns $end"));
        assert!(text.contains("$var reg 4 ! count $end"));
        assert!(text.contains("$enddefinitions $end"));
        // 6 timesteps (initial + 5).
        for t in 0..=5 {
            assert!(text.contains(&format!("#{t}\n")), "missing timestep {t}");
        }
        // Counter value 3 appears at some point.
        assert!(
            text.contains("b11 !"),
            "value change for 3 missing:\n{text}"
        );
    }

    #[test]
    fn unchanged_values_are_not_re_emitted() {
        // A register that never changes should appear once after t0.
        let mut b = Builder::new("hold");
        let r = b.reg("frozen", 8, 0x5a);
        b.connect(r, r.q());
        let c = b.finish().unwrap();
        let mut sim = Simulator::new(&c);
        let mut buf = Vec::new();
        dump_vcd(&mut sim, 10, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let emissions = text.matches("b1011010 !").count();
        assert_eq!(
            emissions, 1,
            "frozen register dumped more than once:\n{text}"
        );
    }

    #[test]
    fn gang_lane_dump_matches_reference_dump() {
        use crate::gang::GangSimulator;
        use parendi_core::{compile, PartitionConfig};

        // Two gang lanes of a counter with a load input: lane 0 keeps
        // counting, lane 1 is reloaded mid-run. Lane 0's dump must be
        // byte-identical to the interpreter's dump (same stimulus), and
        // lane 1's must differ (its own scenario).
        let mut b = Builder::new("cnt");
        let load = b.input("load", 1);
        let ld = b.input("ldval", 4);
        let r = b.reg("count", 4, 0);
        let one = b.lit(4, 1);
        let n = b.add(r.q(), one);
        let nx = b.mux(load, ld, n);
        b.connect(r, nx);
        b.output("q", r.q());
        let c = b.finish().unwrap();

        let mut reference = Simulator::new(&c);
        let mut ref_buf = Vec::new();
        dump_vcd(&mut reference, 8, &mut ref_buf).unwrap();

        let comp = compile(&c, &PartitionConfig::with_tiles(2)).unwrap();
        let mut gang = GangSimulator::new(&c, &comp.partition, 2, 2);
        gang.poke_lane("load", 1, 1);
        gang.poke_lane("ldval", 1, 9);
        let mut lane0 = Vec::new();
        dump_vcd_lane(&mut gang, 0, 8, &mut lane0).unwrap();
        assert_eq!(
            String::from_utf8(lane0).unwrap(),
            String::from_utf8(ref_buf).unwrap(),
            "lane 0 (default stimulus) must dump exactly the reference trace"
        );

        // Replay lane 1 from a fresh gang (the first dump advanced it).
        let mut gang = GangSimulator::new(&c, &comp.partition, 2, 2);
        gang.poke_lane("load", 1, 1);
        gang.poke_lane("ldval", 1, 9);
        let mut lane1 = Vec::new();
        dump_vcd_lane(&mut gang, 1, 8, &mut lane1).unwrap();
        let text = String::from_utf8(lane1).unwrap();
        assert!(
            text.contains("b1001 !"),
            "lane 1 holds the loaded value 9:\n{text}"
        );
    }

    #[test]
    fn vcd_ids_are_printable_and_unique() {
        let ids: Vec<String> = (0..200).map(vcd_id).collect();
        let unique: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
        assert!(ids
            .iter()
            .all(|s| s.chars().all(|c| ('!'..='~').contains(&c))));
    }
}
