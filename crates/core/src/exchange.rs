//! Exchange planning: what each tile sends and receives every cycle.
//!
//! After partitioning, every register (and array write port) whose value
//! is consumed on another tile contributes to the BSP communication
//! phase. The differential-exchange optimization (§5.2) replaces
//! whole-array transfers with per-port `(index, data, enable)` records,
//! using the static bound on writes per cycle.
//!
//! Since the point-to-point refactor, the volumes reported here are a
//! *derived view* of the executable [`crate::routing::Routing`]: the
//! planner sums bytes over exactly the hops the BSP engine executes, so
//! the cost model and the engine cannot diverge. [`plan`] remains as a
//! convenience wrapper that compiles a throwaway routing.

use crate::partition::Partition;
use crate::routing::Routing;
use parendi_rtl::Circuit;

/// Per-cycle communication volumes implied by a partition.
///
/// The `*_bit1_*` companions record the share contributed by
/// **single-bit registers** — the slots a packed-lane gang bit-packs 64
/// scenarios deep — so [`scaled_by_lanes`](Self::scaled_by_lanes) can
/// count packed words instead of `lanes ×` words for them.
#[derive(Clone, Debug, Default)]
pub struct ExchangePlan {
    /// Bytes each tile sends per cycle (fanout included).
    pub tile_out_bytes: Vec<u64>,
    /// Bytes each tile receives per cycle.
    pub tile_in_bytes: Vec<u64>,
    /// Worst per-tile on-chip traffic (out + in), driving the on-chip
    /// exchange cost (Fig. 5 left: cost follows `b`).
    pub max_tile_onchip_bytes: u64,
    /// Total bytes crossing chip boundaries, driving the off-chip cost
    /// (Fig. 5 right: cost follows `m×b`).
    pub offchip_total_bytes: u64,
    /// Unique value bytes crossing tile boundaries (Table 3 "Int.",
    /// fanout excluded).
    pub onchip_cut_bytes: u64,
    /// Unique value bytes crossing chip boundaries (Table 3 "Ext.").
    pub offchip_cut_bytes: u64,
    /// Share of `tile_out_bytes` carried by 1-bit registers.
    pub tile_out_bit1_bytes: Vec<u64>,
    /// Share of `tile_in_bytes` carried by 1-bit registers.
    pub tile_in_bit1_bytes: Vec<u64>,
    /// Share of `offchip_total_bytes` carried by 1-bit registers.
    pub offchip_bit1_bytes: u64,
    /// Share of `onchip_cut_bytes` carried by 1-bit registers.
    pub onchip_cut_bit1_bytes: u64,
    /// Share of `offchip_cut_bytes` carried by 1-bit registers.
    pub offchip_cut_bit1_bytes: u64,
}

impl ExchangePlan {
    /// Total fanout-included bytes sent per cycle.
    pub fn total_sent(&self) -> u64 {
        self.tile_out_bytes.iter().sum()
    }

    /// The plan of a **gang** run at `lanes` scenario lanes: every lane
    /// moves its own copy of every routed value (the executable
    /// counterpart — `parendi_sim::gang` — carries `lanes` lane-major
    /// copies of every mailbox buffer and flushes all of them per
    /// cycle).
    ///
    /// With `packed = false` every volume scales linearly with the lane
    /// count. With `packed = true` the 1-bit register share scales by
    /// **packed words** instead: a bit-packed gang carries 64 lanes per
    /// `u64`, so a 1-bit slot moves `ceil(lanes / 64)` words total, not
    /// `lanes` — exactly what the packed engine's mailboxes flush.
    ///
    /// The *cut* figures scale too: they count unique value bytes, and
    /// lanes are independent scenarios, so a lane's values are unique to
    /// it (packed or not, the 1-bit *words* moved follow the same
    /// packing).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn scaled_by_lanes(&self, lanes: u32, packed: bool) -> ExchangePlan {
        assert!(lanes >= 1, "need at least one lane");
        let l = lanes as u64;
        // A 1-bit slot is one 8-byte word per lane when strided, and
        // `ceil(lanes / 64)` words total when packed.
        let pl = if packed { lanes.div_ceil(64) as u64 } else { l };
        let sc = |q: u64, q1: u64| (q - q1) * l + q1 * pl;
        let scv = |q: &[u64], q1: &[u64]| -> Vec<u64> {
            q.iter().zip(q1).map(|(&q, &q1)| sc(q, q1)).collect()
        };
        let tile_out_bytes = scv(&self.tile_out_bytes, &self.tile_out_bit1_bytes);
        let tile_in_bytes = scv(&self.tile_in_bytes, &self.tile_in_bit1_bytes);
        let max_tile_onchip_bytes = tile_out_bytes
            .iter()
            .zip(&tile_in_bytes)
            .map(|(&o, &i)| o + i)
            .max()
            .unwrap_or(0);
        ExchangePlan {
            max_tile_onchip_bytes,
            offchip_total_bytes: sc(self.offchip_total_bytes, self.offchip_bit1_bytes),
            onchip_cut_bytes: sc(self.onchip_cut_bytes, self.onchip_cut_bit1_bytes),
            offchip_cut_bytes: sc(self.offchip_cut_bytes, self.offchip_cut_bit1_bytes),
            tile_out_bytes,
            tile_in_bytes,
            tile_out_bit1_bytes: self.tile_out_bit1_bytes.iter().map(|b| b * pl).collect(),
            tile_in_bit1_bytes: self.tile_in_bit1_bytes.iter().map(|b| b * pl).collect(),
            offchip_bit1_bytes: self.offchip_bit1_bytes * pl,
            onchip_cut_bit1_bytes: self.onchip_cut_bit1_bytes * pl,
            offchip_cut_bit1_bytes: self.offchip_cut_bit1_bytes * pl,
        }
    }
}

/// Computes the [`ExchangePlan`] of `partition` by compiling its
/// point-to-point routing and summing bytes over the routed hops.
///
/// Callers that also need the routes themselves (the BSP engine, the
/// figure binaries) should build a [`Routing`] once and call
/// [`Routing::exchange_plan`] instead of paying for two compilations.
pub fn plan(circuit: &Circuit, partition: &Partition, differential: bool) -> ExchangePlan {
    Routing::new(circuit, partition).exchange_plan(circuit, differential)
}

#[cfg(test)]
mod tests {
    use crate::config::PartitionConfig;
    use crate::stages::compile;
    use parendi_rtl::Builder;

    #[test]
    fn lane_scaling_multiplies_every_volume() {
        let mut b = Builder::new("ring");
        let regs: Vec<_> = (0..8).map(|i| b.reg(format!("r{i}"), 16, 0)).collect();
        for i in 0..8 {
            let prev = regs[(i + 7) % 8].q();
            let k = b.lit(16, 3);
            let v = b.add(prev, k);
            b.connect(regs[i], v);
        }
        let c = b.finish().unwrap();
        let mut cfg = PartitionConfig::with_tiles(8);
        cfg.tiles_per_chip = 4;
        let comp = compile(&c, &cfg).unwrap();
        assert!(comp.plan.offchip_total_bytes > 0, "ring must cross chips");
        let scaled = comp.plan.scaled_by_lanes(16, false);
        assert_eq!(
            scaled.offchip_total_bytes,
            comp.plan.offchip_total_bytes * 16
        );
        assert_eq!(
            scaled.max_tile_onchip_bytes,
            comp.plan.max_tile_onchip_bytes * 16
        );
        assert_eq!(scaled.total_sent(), comp.plan.total_sent() * 16);
        assert_eq!(scaled.onchip_cut_bytes, comp.plan.onchip_cut_bytes * 16);
        // A 16-bit ring has no 1-bit registers: packed scaling is the
        // same as strided.
        let packed = comp.plan.scaled_by_lanes(16, true);
        assert_eq!(packed.offchip_total_bytes, scaled.offchip_total_bytes);
        assert_eq!(packed.tile_out_bytes, scaled.tile_out_bytes);
        // One lane is the identity.
        let one = comp.plan.scaled_by_lanes(1, false);
        assert_eq!(one.offchip_total_bytes, comp.plan.offchip_total_bytes);
        assert_eq!(one.tile_out_bytes, comp.plan.tile_out_bytes);
    }

    /// Packed lane scaling counts 1-bit register slots in packed words
    /// (`ceil(lanes / 64)` per slot), not `lanes ×` words — pinned on a
    /// ring of 1-bit registers crossing chips.
    #[test]
    fn packed_lane_scaling_counts_packed_words() {
        let mut b = Builder::new("bitring");
        let regs: Vec<_> = (0..8).map(|i| b.reg(format!("v{i}"), 1, 0)).collect();
        for i in 0..8 {
            let prev = regs[(i + 7) % 8].q();
            let inv = b.not(prev);
            b.connect(regs[i], inv);
        }
        let c = b.finish().unwrap();
        let mut cfg = PartitionConfig::with_tiles(8);
        cfg.tiles_per_chip = 4;
        let comp = compile(&c, &cfg).unwrap();
        assert!(comp.plan.offchip_total_bytes > 0, "ring must cross chips");
        // Every moved register is 1-bit wide here.
        assert_eq!(comp.plan.offchip_bit1_bytes, comp.plan.offchip_total_bytes);
        for lanes in [1u32, 63, 64, 65, 256] {
            let strided = comp.plan.scaled_by_lanes(lanes, false);
            let packed = comp.plan.scaled_by_lanes(lanes, true);
            let pw = lanes.div_ceil(64) as u64;
            assert_eq!(
                strided.offchip_total_bytes,
                comp.plan.offchip_total_bytes * lanes as u64
            );
            assert_eq!(
                packed.offchip_total_bytes,
                comp.plan.offchip_total_bytes * pw,
                "packed off-chip bytes at {lanes} lanes"
            );
            assert_eq!(packed.total_sent(), comp.plan.total_sent() * pw);
            assert_eq!(
                packed.max_tile_onchip_bytes,
                comp.plan.max_tile_onchip_bytes * pw
            );
        }
        // At 64+ lanes the packed plan is strictly cheaper.
        assert!(
            comp.plan.scaled_by_lanes(64, true).offchip_total_bytes
                < comp.plan.scaled_by_lanes(64, false).offchip_total_bytes
        );
    }
}
