//! `peek_output` readback: the BSP engine's primary-output view must
//! match the reference interpreter's `output()` at every step — outputs
//! used to be computed then dropped by the engine. Mirrors the interp
//! output tests (counter, mux, array read) plus multi-tile/multi-chip
//! shapes where the output cone reads remote registers through
//! mailboxes.

mod common;

use common::random_circuit;
use parendi_core::{compile, PartitionConfig};
use parendi_rtl::Builder;
use parendi_sim::{BspSimulator, Simulator};

/// Compiles for `tiles` (forcing 2 chips) and checks every output
/// against the reference over `cycles`, probing after each chunk.
fn check_outputs(circuit: &parendi_rtl::Circuit, tiles: u32, threads: usize, chunks: &[u64]) {
    let mut cfg = PartitionConfig::with_tiles(tiles);
    cfg.tiles_per_chip = tiles.div_ceil(2).max(1);
    let comp = compile(circuit, &cfg).expect("compiles");
    let mut reference = Simulator::new(circuit);
    let mut bsp = BspSimulator::new(circuit, &comp.partition, threads);
    for &chunk in chunks {
        reference.step_n(chunk);
        bsp.run(chunk);
        for o in &circuit.outputs {
            assert_eq!(
                bsp.peek_output(&o.name),
                reference.output(&o.name),
                "output {} diverged after {} cycles on {tiles} tiles / {threads} threads",
                o.name,
                bsp.cycle(),
            );
        }
    }
}

#[test]
fn counter_output_tracks_reference() {
    // Mirror of the interp counter test: an 8-bit counter wrapping.
    let mut b = Builder::new("counter");
    let r = b.reg("c", 8, 0);
    let k = b.lit(8, 5);
    let n = b.add(r.q(), k);
    b.connect(r, n);
    b.output("q", r.q());
    let c = b.finish().unwrap();
    let comp = compile(&c, &PartitionConfig::with_tiles(2)).unwrap();
    let mut bsp = BspSimulator::new(&c, &comp.partition, 1);
    assert_eq!(bsp.peek_output("q").unwrap().to_u64(), 0, "power-on state");
    bsp.run(1);
    assert_eq!(bsp.peek_output("q").unwrap().to_u64(), 5);
    bsp.run(50);
    assert_eq!(bsp.peek_output("q").unwrap().to_u64(), 255); // 51 steps × 5
    assert!(bsp.peek_output("nope").is_none(), "unknown name is None");
}

#[test]
fn mux_output_follows_input() {
    // Mirror of the interp mux test: output switches with a poked input.
    let mut b = Builder::new("mux");
    let sel = b.input("sel", 1);
    let a = b.lit(16, 0xaaaa);
    let bb = b.lit(16, 0xbbbb);
    let m = b.mux(sel, a, bb);
    b.output("o", m);
    // A register so the circuit has a fiber beyond the output's.
    let r = b.reg("r", 16, 0);
    let nx = b.add(r.q(), m);
    b.connect(r, nx);
    let c = b.finish().unwrap();
    let comp = compile(&c, &PartitionConfig::with_tiles(2)).unwrap();
    let mut reference = Simulator::new(&c);
    let mut bsp = BspSimulator::new(&c, &comp.partition, 2);
    for v in [0u64, 1, 1, 0] {
        reference.poke("sel", v);
        bsp.poke("sel", v);
        reference.step_n(1);
        bsp.run(1);
        let expect = if v == 1 { 0xaaaa } else { 0xbbbb };
        assert_eq!(bsp.peek_output("o").unwrap().to_u64(), expect);
        assert_eq!(bsp.peek_output("o"), reference.output("o"));
    }
}

#[test]
fn array_read_output_sees_exchanged_writes() {
    // Output reads an array another tile's port writes: the readback
    // must observe the differential exchange, like the interp array
    // test observes its own writes.
    let mut b = Builder::new("mem_out");
    let waddr = b.reg("waddr", 4, 0);
    let one = b.lit(4, 1);
    let winc = b.add(waddr.q(), one);
    b.connect(waddr, winc);
    let mem = b.array("m", 32, 16);
    let data = b.zext(waddr.q(), 32);
    let en = b.lit(1, 1);
    b.array_write(mem, waddr.q(), data, en);
    let probe = b.input("probe", 4);
    let rd = b.array_read(mem, probe);
    b.output("q", rd);
    // Extra reader fibers so the array has several holders.
    for i in 0..2 {
        let r = b.reg(format!("r{i}"), 32, 0);
        let idx = b.lit(4, i as u64);
        let v = b.array_read(mem, idx);
        let nx = b.add(v, r.q());
        b.connect(r, nx);
    }
    let c = b.finish().unwrap();
    let mut cfg = PartitionConfig::with_tiles(4);
    cfg.tiles_per_chip = 2; // writer and readers on separate chips
    let comp = compile(&c, &cfg).unwrap();
    let mut reference = Simulator::new(&c);
    let mut bsp = BspSimulator::new(&c, &comp.partition, 2);
    for probe in [0u64, 1, 3, 7] {
        reference.poke("probe", probe);
        bsp.poke("probe", probe);
        reference.step_n(3);
        bsp.run(3);
        assert_eq!(
            bsp.peek_output("q"),
            reference.output("q"),
            "probe {probe} after {} cycles",
            bsp.cycle()
        );
    }
}

#[test]
fn random_circuits_with_outputs_match() {
    // Random soups (the shared generator exposes every register plus a
    // mixed combinational cone as outputs) across tile, chip, and
    // thread shapes, probed at uneven chunk boundaries.
    for seed in [11u64, 29, 63] {
        let c = random_circuit(seed, 10, 50);
        assert!(!c.outputs.is_empty(), "generator must emit outputs");
        for &(tiles, threads) in &[(1u32, 1usize), (4, 2), (9, 4), (9, 8)] {
            check_outputs(&c, tiles, threads, &[1, 2, 37, 88]);
        }
    }
}
