//! The `bitcoin` benchmark: a fully pipelined double-SHA-256 miner.
//!
//! One pipeline stage per compression round (64 stages per hash, two
//! hashes chained), each carrying the 8-word state and a 16-word message
//! schedule window. This is the classic FPGA miner structure the paper
//! benchmarks \[5\], and the reason bitcoin's fibers are "roughly
//! balanced" (§4.3, Fig. 6b): every stage is the same size.

use parendi_rtl::{Builder, Circuit, Signal};

/// SHA-256 round constants.
pub const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 initial hash state.
pub const IV: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

fn rotr(b: &mut Builder, x: Signal, n: u32) -> Signal {
    b.rotr(x, n)
}

fn small_sigma0(b: &mut Builder, x: Signal) -> Signal {
    let r7 = rotr(b, x, 7);
    let r18 = rotr(b, x, 18);
    let s3 = b.lshri(x, 3);
    let t = b.xor(r7, r18);
    b.xor(t, s3)
}

fn small_sigma1(b: &mut Builder, x: Signal) -> Signal {
    let r17 = rotr(b, x, 17);
    let r19 = rotr(b, x, 19);
    let s10 = b.lshri(x, 10);
    let t = b.xor(r17, r19);
    b.xor(t, s10)
}

fn big_sigma0(b: &mut Builder, x: Signal) -> Signal {
    let a = rotr(b, x, 2);
    let c = rotr(b, x, 13);
    let d = rotr(b, x, 22);
    let t = b.xor(a, c);
    b.xor(t, d)
}

fn big_sigma1(b: &mut Builder, x: Signal) -> Signal {
    let a = rotr(b, x, 6);
    let c = rotr(b, x, 11);
    let d = rotr(b, x, 25);
    let t = b.xor(a, c);
    b.xor(t, d)
}

fn ch(b: &mut Builder, e: Signal, f: Signal, g: Signal) -> Signal {
    let ef = b.and(e, f);
    let ne = b.not(e);
    let ng = b.and(ne, g);
    b.xor(ef, ng)
}

fn maj(b: &mut Builder, x: Signal, y: Signal, z: Signal) -> Signal {
    let xy = b.and(x, y);
    let xz = b.and(x, z);
    let yz = b.and(y, z);
    let t = b.xor(xy, xz);
    b.xor(t, yz)
}

/// Elaborates a fully pipelined SHA-256 compression: 64 stages, one
/// round each, message schedule computed in flight.
///
/// Returns the 8 digest words (IV added) and the delayed valid bit.
/// Latency is exactly 64 cycles.
pub fn sha256_pipeline(
    b: &mut Builder,
    scope: &str,
    block: &[Signal; 16],
    valid_in: Signal,
) -> ([Signal; 8], Signal) {
    b.push_scope(scope);
    let mut state: Vec<Signal> = IV.iter().map(|&h| b.lit(32, h as u64)).collect();
    let mut window: Vec<Signal> = block.to_vec();
    let mut valid = valid_in;
    for (t, &k) in K.iter().enumerate() {
        // Round t from the incoming state/window.
        let (a, bb, c, d, e, f, g, h) = (
            state[0], state[1], state[2], state[3], state[4], state[5], state[6], state[7],
        );
        let kt = b.lit(32, k as u64);
        let wt = window[0];
        let s1 = big_sigma1(b, e);
        let chv = ch(b, e, f, g);
        let t1a = b.add(h, s1);
        let t1b = b.add(t1a, chv);
        let t1c = b.add(t1b, kt);
        let t1 = b.add(t1c, wt);
        let s0 = big_sigma0(b, a);
        let mjv = maj(b, a, bb, c);
        let t2 = b.add(s0, mjv);
        let new_a = b.add(t1, t2);
        let new_e = b.add(d, t1);
        let next_state = [new_a, a, bb, c, new_e, e, f, g];
        // Schedule extension: W[t+16] from the current window.
        let sig1 = small_sigma1(b, window[14]);
        let sig0 = small_sigma0(b, window[1]);
        let wa = b.add(sig1, window[9]);
        let wb = b.add(wa, sig0);
        let new_w = b.add(wb, window[0]);

        // Pipeline registers for stage t.
        b.push_scope(format!("s{t}"));
        let mut latched_state = Vec::with_capacity(8);
        for (i, &v) in next_state.iter().enumerate() {
            let r = b.reg(format!("h{i}"), 32, 0);
            b.connect(r, v);
            latched_state.push(r.q());
        }
        let mut latched_window = Vec::with_capacity(16);
        for i in 0..16 {
            let v = if i < 15 { window[i + 1] } else { new_w };
            let r = b.reg(format!("w{i}"), 32, 0);
            b.connect(r, v);
            latched_window.push(r.q());
        }
        let vr = b.reg("valid", 1, 0);
        b.connect(vr, valid);
        valid = vr.q();
        b.pop_scope();

        state = latched_state;
        window = latched_window;
    }
    // Final digest: add the IV.
    let mut digest = [state[0]; 8];
    for i in 0..8 {
        let iv = b.lit(32, IV[i] as u64);
        digest[i] = b.add(state[i], iv);
    }
    b.pop_scope();
    (digest, valid)
}

/// Configuration of the bitcoin miner design.
#[derive(Clone, Debug)]
pub struct MinerConfig {
    /// 12 fixed header words; word 12 is the nonce, 13..16 are padding.
    pub header: [u32; 12],
    /// The digest's first word must be strictly below this target.
    pub target: u32,
    /// Starting nonce.
    pub start_nonce: u32,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            header: [0x50415245; 12],
            target: 1 << 24,
            start_nonce: 0,
        }
    }
}

/// Message words 13..16 for our 52-byte single-block message: `0x80`
/// terminator then the 416-bit length.
pub const PAD13: u32 = 0x8000_0000;
/// Padding word 14.
pub const PAD14: u32 = 0;
/// Padding word 15 (bit length of 13 words).
pub const PAD15: u32 = 416;

/// Second-block padding for hashing a 32-byte digest.
pub const PAD2_8: u32 = 0x8000_0000;
/// Bit length of an 8-word message.
pub const PAD2_15: u32 = 256;

/// Builds the double-SHA-256 miner into an existing builder.
///
/// Pipeline: nonce counter → SHA-256 → SHA-256 → target compare. A
/// `found` register latches the first passing nonce.
pub fn build_miner_into(b: &mut Builder, cfg: &MinerConfig) {
    let nonce = b.reg("nonce", 32, cfg.start_nonce as u64);
    let one = b.lit(32, 1);
    let n1 = b.add(nonce.q(), one);
    b.connect(nonce, n1);

    let mut block1 = [nonce.q(); 16];
    for (i, &h) in cfg.header.iter().enumerate() {
        block1[i] = b.lit(32, h as u64);
    }
    block1[12] = nonce.q();
    block1[13] = b.lit(32, PAD13 as u64);
    block1[14] = b.lit(32, PAD14 as u64);
    block1[15] = b.lit(32, PAD15 as u64);
    let always = b.lit(1, 1);
    let (digest1, v1) = sha256_pipeline(b, "sha_a", &block1, always);

    let zero32 = b.lit(32, 0);
    let mut block2 = [zero32; 16];
    block2[..8].copy_from_slice(&digest1);
    block2[8] = b.lit(32, PAD2_8 as u64);
    block2[15] = b.lit(32, PAD2_15 as u64);
    let (digest2, v2) = sha256_pipeline(b, "sha_b", &block2, v1);

    // The nonce that produced the digest leaving the pipe: two 64-stage
    // pipelines behind the counter.
    let latency = b.lit(32, 128);
    let lagged = b.sub(nonce.q(), latency);

    let target = b.lit(32, cfg.target as u64);
    let below = b.lt_u(digest2[0], target);
    let hit = b.and(below, v2);

    let found = b.reg("found", 1, 0);
    let found_next = b.or(found.q(), hit);
    b.connect(found, found_next);
    let not_found_yet = b.lnot(found.q());
    let latch_en = b.and(hit, not_found_yet);
    let found_nonce = b.reg("found_nonce", 32, 0);
    let fn_next = b.mux(latch_en, lagged, found_nonce.q());
    b.connect(found_nonce, fn_next);

    b.output("found", found.q());
    b.output("found_nonce", found_nonce.q());
    b.output("digest0", digest2[0]);
}

/// Builds the standalone `bitcoin` benchmark circuit.
pub fn build_miner(cfg: &MinerConfig) -> Circuit {
    let mut b = Builder::new("bitcoin");
    build_miner_into(&mut b, cfg);
    b.finish().expect("miner must validate")
}

/// Software SHA-256 compression of one 512-bit block (for verification).
pub fn soft_compress(state: [u32; 8], block: &[u32; 16]) -> [u32; 8] {
    let mut w = [0u32; 64];
    w[..16].copy_from_slice(block);
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = state;
    for t in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let mj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(mj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    [
        state[0].wrapping_add(a),
        state[1].wrapping_add(b),
        state[2].wrapping_add(c),
        state[3].wrapping_add(d),
        state[4].wrapping_add(e),
        state[5].wrapping_add(f),
        state[6].wrapping_add(g),
        state[7].wrapping_add(h),
    ]
}

/// Software double-SHA of the miner's message for nonce `n`.
pub fn soft_miner_digest(cfg: &MinerConfig, nonce: u32) -> [u32; 8] {
    let mut block1 = [0u32; 16];
    block1[..12].copy_from_slice(&cfg.header);
    block1[12] = nonce;
    block1[13] = PAD13;
    block1[14] = PAD14;
    block1[15] = PAD15;
    let d1 = soft_compress(IV, &block1);
    let mut block2 = [0u32; 16];
    block2[..8].copy_from_slice(&d1);
    block2[8] = PAD2_8;
    block2[15] = PAD2_15;
    soft_compress(IV, &block2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_sim::Simulator;

    #[test]
    fn soft_sha256_matches_fips_vector() {
        // SHA-256("abc") — FIPS 180-2 appendix B.1.
        let mut block = [0u32; 16];
        block[0] = 0x61626380;
        block[15] = 24;
        let d = soft_compress(IV, &block);
        assert_eq!(
            d,
            [
                0xba7816bf, 0x8f01cfea, 0x414140de, 0x5dae2223, 0xb00361a3, 0x96177a9c, 0xb410ff61,
                0xf20015ad
            ]
        );
    }

    #[test]
    fn rtl_pipeline_matches_soft_compress() {
        // A standalone pipeline fed by constants.
        let mut b = Builder::new("sha_test");
        let words: Vec<Signal> = (0..16)
            .map(|i| b.lit(32, (0x01020304u32.wrapping_mul(i + 3)) as u64))
            .collect();
        let block: [Signal; 16] = words.try_into().unwrap();
        let hi = b.lit(1, 1);
        let (digest, valid) = sha256_pipeline(&mut b, "p", &block, hi);
        for (i, d) in digest.iter().enumerate() {
            b.output(format!("d{i}"), *d);
        }
        b.output("valid", valid);
        let c = b.finish().unwrap();
        let mut sim = Simulator::new(&c);
        sim.step_n(64);
        assert_eq!(sim.output("valid").unwrap().to_u64(), 1);
        let mut soft_block = [0u32; 16];
        for (i, w) in soft_block.iter_mut().enumerate() {
            *w = 0x01020304u32.wrapping_mul(i as u32 + 3);
        }
        let expect = soft_compress(IV, &soft_block);
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(
                sim.output(&format!("d{i}")).unwrap().to_u64() as u32,
                e,
                "digest word {i}"
            );
        }
    }

    #[test]
    fn miner_finds_a_valid_nonce() {
        // Easy target so a nonce lands within a few hundred attempts.
        let cfg = MinerConfig {
            target: 1 << 28,
            ..Default::default()
        };
        // Find the first passing nonce in software.
        let expect_nonce = (0u32..10_000)
            .find(|&n| soft_miner_digest(&cfg, n)[0] < cfg.target)
            .expect("target too hard for the test");
        let c = build_miner(&cfg);
        let mut sim = Simulator::new(&c);
        // Latency 128 + nonce index + slack.
        sim.step_n(expect_nonce as u64 + 128 + 8);
        assert_eq!(
            sim.output("found").unwrap().to_u64(),
            1,
            "miner never fired"
        );
        let got = sim.output("found_nonce").unwrap().to_u64() as u32;
        assert_eq!(got, expect_nonce, "wrong nonce");
        assert!(soft_miner_digest(&cfg, got)[0] < cfg.target);
    }

    /// `m_crit` = total fiber work / straggler fiber: the maximum useful
    /// parallelism before the straggler bounds `t_comp` (§4.3, Fig. 6a).
    fn m_crit(c: &parendi_rtl::Circuit) -> f64 {
        let costs = parendi_graph::CostModel::of(c);
        let fs = parendi_graph::extract_fibers(c, &costs);
        let straggler = fs.straggler().unwrap().1 as f64;
        let total: f64 = fs.fibers.iter().map(|f| f.ipu_cost as f64).sum();
        total / straggler
    }

    #[test]
    fn miner_scales_far_wider_than_pico() {
        // The paper's point (Fig. 6b/6c): bitcoin's balanced pipeline
        // stages admit hundreds-way parallelism, while pico's one giant
        // execute cone caps useful parallelism almost immediately.
        let miner = build_miner(&MinerConfig::default());
        let costs = parendi_graph::CostModel::of(&miner);
        let fs = parendi_graph::extract_fibers(&miner, &costs);
        assert!(
            fs.len() > 1000,
            "two 64-stage pipelines: {} fibers",
            fs.len()
        );

        let pico = crate::pico::build_pico(&crate::pico::PicoConfig::new(
            crate::isa::programs::fibonacci(8),
        ));
        let bc = m_crit(&miner);
        let pc = m_crit(&pico);
        assert!(
            bc > 20.0 * pc,
            "bitcoin m_crit {bc:.0} should dwarf pico's {pc:.1}"
        );
        assert!(
            bc > 100.0,
            "bitcoin should admit hundreds-way parallelism: {bc:.0}"
        );
    }
}
