//! The parallel BSP execution engine.
//!
//! Executes a compiled [`Partition`] on host threads with exactly the
//! structure of Fig. 3: a *computation* phase in which every process
//! evaluates its (possibly duplicated) cone into private memory, a
//! barrier, a *communication* phase in which newly computed register and
//! array-port values are published, and a second barrier. Functional
//! results are bit-identical to the reference [`Simulator`]
//! (`crate::interp`) — the engine is the correctness check for the
//! partitioner, not a model.
//!
//! [`Simulator`]: crate::interp::Simulator

use parendi_core::Partition;
use parendi_graph::fiber::SinkKind;
use parendi_rtl::bits::{word, words_for, Bits};
use parendi_rtl::{BinOp, Circuit, InputId, NodeKind, RegId, UnOp};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Barrier;

/// One resolved evaluation step of a process program.
#[derive(Clone, Debug)]
enum Step {
    /// Copy from the global input buffer.
    Input { dst: u32, src: u32, nw: u32 },
    /// Copy a register's current value from global state.
    RegRead { dst: u32, src: u32, nw: u32 },
    /// Combinational read of a global array.
    ArrayRead { dst: u32, array: u32, idx: u32, idx_w: u32, nw: u32 },
    /// Pure op on process-local values; `node` indexes the circuit for
    /// kind/width, `a`/`b`/`c` are local word offsets.
    Pure { node: u32, dst: u32, a: u32, b: u32, c: u32 },
}

/// A register value this process must publish.
#[derive(Clone, Copy, Debug)]
struct RegPublish {
    reg: u32,
    local: u32,
    global: u32,
    nw: u32,
}

/// An array write port this process owns.
#[derive(Clone, Copy, Debug)]
struct PortPublish {
    array: u32,
    port: u32,
    en: u32,
    idx: u32,
    idx_w: u32,
    data: u32,
    nw: u32,
}

/// A compiled per-tile program.
#[derive(Debug)]
struct Program {
    steps: Vec<Step>,
    arena_words: usize,
    const_init: Vec<(u32, Vec<u64>)>,
    regs: Vec<RegPublish>,
    ports: Vec<PortPublish>,
}

/// Mutable per-tile state (arena plus the publish staging buffers).
#[derive(Debug)]
struct TileState {
    arena: Vec<u64>,
    /// Latched register words, in `Program::regs` order.
    reg_stash: Vec<u64>,
    /// `(array, port, enable, index, data)` records.
    port_stash: Vec<(u32, u32, bool, u64, Vec<u64>)>,
}

/// Shared global state: register currents, arrays, inputs.
#[derive(Debug)]
struct Global {
    reg_cur: Vec<u64>,
    arrays: Vec<Vec<u64>>,
    inputs: Vec<u64>,
}

/// A parallel BSP simulator for a compiled partition.
pub struct BspSimulator<'c> {
    circuit: &'c Circuit,
    programs: Vec<Program>,
    tiles: Vec<Mutex<TileState>>,
    global: RwLock<Global>,
    reg_off: Vec<u32>,
    input_off: Vec<u32>,
    input_by_name: HashMap<String, InputId>,
    threads: usize,
    cycle: u64,
}

impl<'c> BspSimulator<'c> {
    /// Compiles `partition` into per-tile programs run on `threads` host
    /// threads (tiles are folded round-robin onto threads).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(circuit: &'c Circuit, partition: &Partition, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        let mut reg_off = Vec::with_capacity(circuit.regs.len());
        let mut rwords = 0u32;
        for r in &circuit.regs {
            reg_off.push(rwords);
            rwords += words_for(r.width) as u32;
        }
        let mut input_off = Vec::with_capacity(circuit.inputs.len());
        let mut iwords = 0u32;
        let mut input_by_name = HashMap::new();
        for (i, d) in circuit.inputs.iter().enumerate() {
            input_off.push(iwords);
            iwords += words_for(d.width) as u32;
            input_by_name.insert(d.name.clone(), InputId(i as u32));
        }
        let mut reg_cur = vec![0u64; rwords as usize];
        for (r, off) in circuit.regs.iter().zip(&reg_off) {
            let w = words_for(r.width);
            reg_cur[*off as usize..*off as usize + w].copy_from_slice(r.init.words());
        }
        let arrays = circuit
            .arrays
            .iter()
            .map(|a| {
                let w = words_for(a.width);
                let mut buf = vec![0u64; w * a.depth as usize];
                if let Some(init) = &a.init {
                    for (i, v) in init.iter().enumerate() {
                        buf[i * w..(i + 1) * w].copy_from_slice(v.words());
                    }
                }
                buf
            })
            .collect();

        let programs: Vec<Program> = partition
            .processes
            .iter()
            .map(|p| build_program(circuit, partition, p, &reg_off, &input_off))
            .collect();
        let tiles = programs
            .iter()
            .map(|p| {
                let mut arena = vec![0u64; p.arena_words];
                for (off, words) in &p.const_init {
                    arena[*off as usize..*off as usize + words.len()].copy_from_slice(words);
                }
                let reg_words: usize = p.regs.iter().map(|r| r.nw as usize).sum();
                Mutex::new(TileState {
                    arena,
                    reg_stash: vec![0; reg_words],
                    port_stash: Vec::with_capacity(p.ports.len()),
                })
            })
            .collect();
        BspSimulator {
            circuit,
            programs,
            tiles,
            global: RwLock::new(Global { reg_cur, arrays, inputs: vec![0u64; iwords as usize] }),
            reg_off,
            input_off,
            input_by_name,
            threads,
            cycle: 0,
        }
    }

    /// Number of completed RTL cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of tiles (processes) being simulated.
    pub fn tiles(&self) -> usize {
        self.programs.len()
    }

    /// Drives an input (held until changed).
    ///
    /// # Panics
    ///
    /// Panics if the width does not match.
    pub fn set_input(&mut self, id: InputId, value: &Bits) {
        let decl = &self.circuit.inputs[id.index()];
        assert_eq!(decl.width, value.width(), "input {} width", decl.name);
        let off = self.input_off[id.index()] as usize;
        let mut g = self.global.write();
        g.inputs[off..off + value.words().len()].copy_from_slice(value.words());
    }

    /// Convenience: drive input `name` with a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if no such input exists.
    pub fn poke(&mut self, name: &str, value: u64) {
        let id = *self.input_by_name.get(name).unwrap_or_else(|| panic!("no input {name}"));
        let width = self.circuit.inputs[id.index()].width;
        self.set_input(id, &Bits::from_u64(width, value));
    }

    /// The current value of a register.
    pub fn reg_value(&self, id: RegId) -> Bits {
        let r = &self.circuit.regs[id.index()];
        let off = self.reg_off[id.index()] as usize;
        let g = self.global.read();
        Bits::from_words(r.width, &g.reg_cur[off..off + words_for(r.width)])
    }

    /// An element of an array.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn array_value(&self, id: parendi_rtl::ArrayId, index: u32) -> Bits {
        let a = &self.circuit.arrays[id.index()];
        assert!(index < a.depth);
        let w = words_for(a.width);
        let g = self.global.read();
        Bits::from_words(a.width, &g.arrays[id.index()][index as usize * w..][..w])
    }

    /// Runs `cycles` RTL cycles in parallel. Returns wall-clock seconds.
    pub fn run(&mut self, cycles: u64) -> f64 {
        let start = std::time::Instant::now();
        if self.threads == 1 || self.programs.len() == 1 {
            for _ in 0..cycles {
                self.sequential_cycle();
            }
        } else {
            self.parallel_run(cycles);
        }
        self.cycle += cycles;
        start.elapsed().as_secs_f64()
    }

    fn sequential_cycle(&mut self) {
        let global = self.global.get_mut();
        for (prog, tile) in self.programs.iter().zip(&self.tiles) {
            compute_phase(self.circuit, prog, &mut tile.lock(), global);
        }
        let mut stashes: Vec<_> = self.tiles.iter().map(|t| t.lock()).collect();
        commit_phase(&self.programs, &mut stashes, global);
    }

    fn parallel_run(&mut self, cycles: u64) {
        let threads = self.threads.min(self.programs.len());
        let barrier = Barrier::new(threads);
        let circuit = self.circuit;
        let programs = &self.programs;
        let tiles = &self.tiles;
        let global = &self.global;
        crossbeam::scope(|scope| {
            for t in 0..threads {
                let barrier = &barrier;
                scope.spawn(move |_| {
                    let mine: Vec<usize> =
                        (t..programs.len()).step_by(threads).collect();
                    for _ in 0..cycles {
                        // Computation phase: read shared state, write
                        // private arenas and staging buffers.
                        {
                            let g = global.read();
                            for &pi in &mine {
                                compute_phase(
                                    circuit,
                                    &programs[pi],
                                    &mut tiles[pi].lock(),
                                    &g,
                                );
                            }
                        }
                        // Barrier 1: end of computation.
                        let leader = barrier.wait().is_leader();
                        // Communication phase: one writer publishes all
                        // staged values (the exchange).
                        if leader {
                            let mut g = global.write();
                            let mut stashes: Vec<_> =
                                tiles.iter().map(|t| t.lock()).collect();
                            commit_phase(programs, &mut stashes, &mut g);
                        }
                        // Barrier 2: end of communication.
                        barrier.wait();
                    }
                });
            }
        })
        .expect("BSP worker panicked");
    }
}

/// Evaluates one process's program against the shared state.
fn compute_phase(circuit: &Circuit, prog: &Program, tile: &mut TileState, g: &Global) {
    let arena = &mut tile.arena;
    for step in &prog.steps {
        match *step {
            Step::Input { dst, src, nw } => {
                let (d, s) = (dst as usize, src as usize);
                arena[d..d + nw as usize].copy_from_slice(&g.inputs[s..s + nw as usize]);
            }
            Step::RegRead { dst, src, nw } => {
                let (d, s) = (dst as usize, src as usize);
                arena[d..d + nw as usize].copy_from_slice(&g.reg_cur[s..s + nw as usize]);
            }
            Step::ArrayRead { dst, array, idx, idx_w, nw } => {
                let index = read_index(arena, idx as usize, idx_w as usize);
                let a = &g.arrays[array as usize];
                let depth = circuit.arrays[array as usize].depth as u64;
                let d = dst as usize;
                if index < depth {
                    let s = index as usize * nw as usize;
                    arena[d..d + nw as usize].copy_from_slice(&a[s..s + nw as usize]);
                } else {
                    arena[d..d + nw as usize].fill(0);
                }
            }
            Step::Pure { node, dst, a, b, c } => {
                eval_local(circuit, arena, node, dst, a, b, c);
            }
        }
    }
    // Latch next-values into the register stash.
    let mut off = 0usize;
    for r in &prog.regs {
        let nw = r.nw as usize;
        tile.reg_stash[off..off + nw]
            .copy_from_slice(&arena[r.local as usize..r.local as usize + nw]);
        off += nw;
    }
    // Stage array-port records (the differential exchange payload).
    tile.port_stash.clear();
    for p in &prog.ports {
        let en = arena[p.en as usize] & 1 == 1;
        let idx = read_index(arena, p.idx as usize, p.idx_w as usize);
        let data = arena[p.data as usize..p.data as usize + p.nw as usize].to_vec();
        tile.port_stash.push((p.array, p.port, en, idx, data));
    }
}

/// Publishes all staged values: registers swap to their new currents and
/// array ports apply in declaration order (last port wins).
fn commit_phase(
    programs: &[Program],
    stashes: &mut [parking_lot::MutexGuard<'_, TileState>],
    g: &mut Global,
) {
    for (prog, tile) in programs.iter().zip(stashes.iter()) {
        let mut off = 0usize;
        for r in &prog.regs {
            let nw = r.nw as usize;
            g.reg_cur[r.global as usize..r.global as usize + nw]
                .copy_from_slice(&tile.reg_stash[off..off + nw]);
            off += nw;
        }
    }
    // Deterministic port order across all tiles.
    let mut writes: Vec<&(u32, u32, bool, u64, Vec<u64>)> =
        stashes.iter().flat_map(|t| t.port_stash.iter()).collect();
    writes.sort_by_key(|w| (w.0, w.1));
    for &(array, _port, en, idx, ref data) in writes {
        if !en {
            continue;
        }
        let buf = &mut g.arrays[array as usize];
        let nw = data.len();
        let depth = buf.len() / nw.max(1);
        if (idx as usize) < depth {
            buf[idx as usize * nw..(idx as usize + 1) * nw].copy_from_slice(data);
        }
    }
}

fn read_index(arena: &[u64], off: usize, nw: usize) -> u64 {
    if arena[off + 1..off + nw].iter().any(|&x| x != 0) || arena[off] > u32::MAX as u64 {
        u64::MAX
    } else {
        arena[off]
    }
}

/// Evaluates a pure node with process-local operand offsets.
fn eval_local(circuit: &Circuit, arena: &mut [u64], node: u32, dst: u32, a: u32, b: u32, c: u32) {
    let n = &circuit.nodes[node as usize];
    let w = n.width;
    let nw = words_for(w);
    let (src, dst_tail) = arena.split_at_mut(dst as usize);
    let out = &mut dst_tail[..nw];
    let opw = |id: parendi_rtl::NodeId| words_for(circuit.width(id));
    match &n.kind {
        NodeKind::Un(op, arg) => {
            let av = &src[a as usize..a as usize + opw(*arg)];
            match op {
                UnOp::Not => word::not(out, av, w),
                UnOp::Neg => {
                    let zero = vec![0u64; av.len()];
                    word::sub(out, &zero, av, w);
                }
                UnOp::RedAnd => out[0] = word::red_and(av, circuit.width(*arg)) as u64,
                UnOp::RedOr => out[0] = word::red_or(av) as u64,
                UnOp::RedXor => out[0] = word::red_xor(av) as u64,
            }
        }
        NodeKind::Bin(op, na, nb) => {
            let aw = circuit.width(*na);
            let av = &src[a as usize..a as usize + opw(*na)];
            let bv = &src[b as usize..b as usize + opw(*nb)];
            match op {
                BinOp::And => word::and(out, av, bv, w),
                BinOp::Or => word::or(out, av, bv, w),
                BinOp::Xor => word::xor(out, av, bv, w),
                BinOp::Add => word::add(out, av, bv, w),
                BinOp::Sub => word::sub(out, av, bv, w),
                BinOp::Mul => word::mul(out, av, bv, w),
                BinOp::Eq => out[0] = word::eq(av, bv) as u64,
                BinOp::Ne => out[0] = !word::eq(av, bv) as u64,
                BinOp::LtU => out[0] = word::lt_u(av, bv) as u64,
                BinOp::LtS => out[0] = word::lt_s(av, bv, aw) as u64,
                BinOp::LeU => out[0] = !word::lt_u(bv, av) as u64,
                BinOp::LeS => out[0] = !word::lt_s(bv, av, aw) as u64,
                BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                    let sh = if bv[1..].iter().any(|&x| x != 0) || bv[0] > u32::MAX as u64 {
                        aw
                    } else {
                        (bv[0] as u32).min(aw)
                    };
                    match op {
                        BinOp::Shl => word::shl(out, av, sh, w),
                        BinOp::Lshr => word::lshr(out, av, sh, w),
                        _ => word::ashr(out, av, sh, w),
                    }
                }
            }
        }
        NodeKind::Mux { sel: _, t: nt, f: nf } => {
            let s = src[a as usize] & 1 == 1;
            let (src_off, n_id) = if s { (b, nt) } else { (c, nf) };
            word::copy(out, &src[src_off as usize..src_off as usize + opw(*n_id)]);
        }
        NodeKind::Slice { src: ns, lo } => {
            let sv = &src[a as usize..a as usize + opw(*ns)];
            word::slice(out, sv, lo + w - 1, *lo);
        }
        NodeKind::Zext(ns) => word::zext(out, &src[a as usize..a as usize + opw(*ns)], w),
        NodeKind::Sext(ns) => {
            word::sext(out, &src[a as usize..a as usize + opw(*ns)], circuit.width(*ns), w)
        }
        NodeKind::Concat { hi, lo } => {
            let hv = &src[a as usize..a as usize + opw(*hi)];
            let lv = &src[b as usize..b as usize + opw(*lo)];
            word::concat(out, hv, lv, circuit.width(*lo));
        }
        _ => unreachable!("sources are separate steps"),
    }
}

/// Compiles one process into a [`Program`] with local offsets.
fn build_program(
    circuit: &Circuit,
    partition: &Partition,
    p: &parendi_core::Process,
    reg_off: &[u32],
    input_off: &[u32],
) -> Program {
    let mut local: HashMap<u32, u32> = HashMap::new();
    let mut words = 0u32;
    let mut steps = Vec::new();
    let mut const_init = Vec::new();
    for nid in p.nodes.iter() {
        let node = &circuit.nodes[nid as usize];
        let nw = words_for(node.width) as u32;
        let dst = words;
        local.insert(nid, dst);
        words += nw;
        let lo = |id: parendi_rtl::NodeId| local[&id.0];
        match &node.kind {
            NodeKind::Const(b) => const_init.push((dst, b.words().to_vec())),
            NodeKind::Input(i) => {
                steps.push(Step::Input { dst, src: input_off[i.index()], nw })
            }
            NodeKind::RegRead(r) => {
                steps.push(Step::RegRead { dst, src: reg_off[r.index()], nw })
            }
            NodeKind::ArrayRead { array, index } => steps.push(Step::ArrayRead {
                dst,
                array: array.0,
                idx: lo(*index),
                idx_w: words_for(circuit.width(*index)) as u32,
                nw,
            }),
            NodeKind::Un(_, a) | NodeKind::Slice { src: a, .. } | NodeKind::Zext(a)
            | NodeKind::Sext(a) => {
                steps.push(Step::Pure { node: nid, dst, a: lo(*a), b: u32::MAX, c: u32::MAX })
            }
            NodeKind::Bin(_, a, b) | NodeKind::Concat { hi: a, lo: b } => {
                steps.push(Step::Pure { node: nid, dst, a: lo(*a), b: lo(*b), c: u32::MAX })
            }
            NodeKind::Mux { sel, t, f } => {
                steps.push(Step::Pure { node: nid, dst, a: lo(*sel), b: lo(*t), c: lo(*f) })
            }
        }
    }
    // Registers this process publishes.
    let mut regs = Vec::new();
    let mut ports = Vec::new();
    for &f in &p.fibers {
        match partition.fiber_sinks[f.index()] {
            SinkKind::Reg(r) => {
                let reg = &circuit.regs[r.index()];
                let next = reg.next.expect("validated circuit");
                regs.push(RegPublish {
                    reg: r.0,
                    local: local[&next.0],
                    global: reg_off[r.index()],
                    nw: words_for(reg.width) as u32,
                });
            }
            SinkKind::ArrayPort { array, port } => {
                let a = &circuit.arrays[array.index()];
                let wp = &a.write_ports[port as usize];
                ports.push(PortPublish {
                    array: array.0,
                    port,
                    en: local[&wp.enable.0],
                    idx: local[&wp.index.0],
                    idx_w: words_for(circuit.width(wp.index)) as u32,
                    data: local[&wp.data.0],
                    nw: words_for(a.width) as u32,
                });
            }
            SinkKind::Output(_) => {}
        }
    }
    regs.sort_by_key(|r| r.reg);
    ports.sort_by_key(|p| (p.array, p.port));
    Program { steps, arena_words: words as usize, const_init, regs, ports }
}
