//! Parallel BSP engine throughput: the same partitioned design executed
//! with 1 vs several host threads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parendi_core::{compile, PartitionConfig};
use parendi_designs::Benchmark;
use parendi_sim::BspSimulator;

fn bench_bsp(c: &mut Criterion) {
    let mut g = c.benchmark_group("bsp_engine");
    g.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    let circuit = Benchmark::Sr(4).build();
    let comp = compile(&circuit, &PartitionConfig::with_tiles(64)).expect("fits");
    for threads in [1usize, 4] {
        g.throughput(Throughput::Elements(50));
        g.bench_function(format!("sr4_64tiles_{threads}thr"), |b| {
            let mut sim = BspSimulator::new(&circuit, &comp.partition, threads);
            b.iter(|| sim.run(50));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bsp);
criterion_main!(benches);
