//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//! the [`proptest!`] and [`prop_compose!`] macros, [`Strategy`] for
//! integer ranges / [`Just`] / tuples / [`collection::vec`], [`any`],
//! and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Semantics: each test body runs for [`ProptestConfig::cases`] accepted
//! random cases drawn from a per-test deterministic RNG. There is **no
//! shrinking** — a failing case panics with the sampled inputs'
//! rendered assertion message. Set `PROPTEST_CASES` to override the case
//! count globally (e.g. `PROPTEST_CASES=8` for a quick CI smoke pass).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }.env_override()
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (overridable via `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }.env_override()
    }

    fn env_override(mut self) -> Self {
        if let Some(n) = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            self.cases = n;
        }
        self
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// The deterministic RNG driving sampling (xoshiro256**).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % span
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// A strategy backed by a closure (used by [`prop_compose!`]).
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Wraps a sampling closure into a [`Strategy`].
pub fn strategy_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive length range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy over `element` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface mirrored from the real crate.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]` running the body over random samples of its bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __config.cases.saturating_mul(50).max(1000),
                        "proptest shim: too many rejected cases in {}",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        Ok(()) => __accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}")
                        }
                    }
                }
            }
        )*
    };
}

/// Defines a function returning a composed [`Strategy`] (one or two
/// binding groups; the second group may depend on the first).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        fn $name:ident ()
            ( $($a:pat in $sa:expr),+ $(,)? )
            ( $($b:pat in $sb:expr),+ $(,)? )
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        fn $name() -> impl $crate::Strategy<Value = $out> {
            $crate::strategy_fn(move |__rng: &mut $crate::TestRng| {
                $(let $a = $crate::Strategy::sample(&($sa), __rng);)+
                $(let $b = $crate::Strategy::sample(&($sb), __rng);)+
                $body
            })
        }
    };
    (
        $(#[$meta:meta])*
        fn $name:ident ()
            ( $($a:pat in $sa:expr),+ $(,)? )
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        fn $name() -> impl $crate::Strategy<Value = $out> {
            $crate::strategy_fn(move |__rng: &mut $crate::TestRng| {
                $(let $a = $crate::Strategy::sample(&($sa), __rng);)+
                $body
            })
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr $(,)?) => {{
        let (__l, __r) = (&$l, &$r);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_eq failed: {:?} != {:?} ({} vs {})",
                __l, __r, stringify!($l), stringify!($r),
            )));
        }
    }};
    ($l:expr, $r:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$l, &$r);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_eq failed: {:?} != {:?}: {}",
                __l, __r, format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr $(,)?) => {{
        let (__l, __r) = (&$l, &$r);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_ne failed: both {:?}",
                __l,
            )));
        }
    }};
}

/// Rejects the current case (it does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in 0u64..=5, v in collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b <= 5);
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn assume_rejects((x, y) in (0u32..100, 0u32..100)) {
            prop_assume!(x != y);
            prop_assert_ne!(x, y);
        }
    }

    prop_compose! {
        fn pair()(hi in 1u32..10)(hi in Just(hi), lo in 0u32..10) -> (u32, u32) {
            (hi, lo % (hi + 1))
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn composed_dependent((hi, lo) in pair()) {
            prop_assert!(lo <= hi);
        }
    }
}
