//! Plan a nightly regression campaign: given a design and a test count,
//! compare ad-hoc vs fine-grained parallelism on a Dv4 x64 slice and an
//! IPU-POD4, with dollar costs (the paper's §6.4 / Fig. 13 analysis).
//!
//! ```sh
//! cargo run --release --example nightly_ci [n_tests]
//! ```

use parendi::baseline::VerilatorModel;
use parendi::core::{compile, PartitionConfig};
use parendi::designs::Benchmark;
use parendi::machine::ipu::IpuConfig;
use parendi::machine::pricing::{campaign_cost, CloudInstance};
use parendi::machine::x64::X64Config;
use parendi::sim::ipu_timings;

fn main() {
    let n_tests: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    let design = Benchmark::Sr(8);
    let circuit = design.build();
    println!(
        "campaign: {n_tests} tests of 1M cycles each on {}",
        design.name()
    );

    let dv4 = X64Config::dv4();
    let vm = VerilatorModel::new(&circuit);
    let x64_1t = vm.rate_khz(&dv4, 1);
    let (t, x64_best, _) = vm.best(&dv4, 16);

    let ipu = IpuConfig::m2000();
    let chip = compile(&circuit, &PartitionConfig::with_tiles(1472)).expect("fits");
    let ipu_chip = ipu_timings(&chip, &ipu).rate_khz(&ipu);
    let pod = compile(&circuit, &PartitionConfig::with_tiles(5888)).expect("fits");
    let ipu_pod = ipu_timings(&pod, &ipu).rate_khz(&ipu).max(ipu_chip);

    let slice = CloudInstance::dv4(16);
    let pod_inst = CloudInstance::ipu_pod4();
    let plans = [
        (
            "x64 ad-hoc (16 tests || 1T)",
            campaign_cost(&slice, n_tests, 1_000_000, x64_1t, 16),
        ),
        (
            "x64 fine  (serial, best T)",
            campaign_cost(&slice, n_tests, 1_000_000, x64_best, 1),
        ),
        (
            "ipu ad-hoc (4 tests || 1chip)",
            campaign_cost(&pod_inst, n_tests, 1_000_000, ipu_chip, 4),
        ),
        (
            "ipu fine  (serial, 4 chips)",
            campaign_cost(&pod_inst, n_tests, 1_000_000, ipu_pod, 1),
        ),
    ];
    println!("x64 rates: {x64_1t:.1} kHz @1T, {x64_best:.1} kHz @{t}T");
    println!("ipu rates: {ipu_chip:.1} kHz @1 chip, {ipu_pod:.1} kHz @4 chips\n");
    println!("{:<30} {:>10} {:>10}", "strategy", "hours", "USD");
    let mut best = &plans[0];
    for p in &plans {
        println!("{:<30} {:>10.3} {:>10.2}", p.0, p.1.hours, p.1.usd);
        if p.1.usd < best.1.usd {
            best = p;
        }
    }
    println!("\ncheapest: {} at ${:.2}", best.0, best.1.usd);
}
