//! Verilog emission: exports a [`Circuit`] as a synthesizable
//! single-module Verilog netlist.
//!
//! The reproduction's frontend is the builder eDSL, but designs must be
//! able to *leave* the system for cross-checking against conventional
//! simulators — the reverse of the paper's Verilog ingestion path.

use crate::ir::{BinOp, Circuit, NodeId, NodeKind, UnOp};
use std::fmt::Write;

fn ident(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

fn width_decl(width: u32) -> String {
    if width == 1 {
        String::new()
    } else {
        format!("[{}:0] ", width - 1)
    }
}

fn wire(id: NodeId) -> String {
    format!("n{}", id.0)
}

/// Renders `circuit` as a Verilog module with a `clk` port.
pub fn to_verilog(circuit: &Circuit) -> String {
    let mut v = String::new();
    let mut ports = vec!["clk".to_string()];
    ports.extend(circuit.inputs.iter().map(|i| ident(&i.name)));
    ports.extend(circuit.outputs.iter().map(|o| ident(&o.name)));
    let _ = writeln!(v, "module {}(", ident(&circuit.name));
    let _ = writeln!(v, "  {}", ports.join(",\n  "));
    let _ = writeln!(v, ");");
    let _ = writeln!(v, "  input wire clk;");
    for i in &circuit.inputs {
        let _ = writeln!(v, "  input wire {}{};", width_decl(i.width), ident(&i.name));
    }
    for o in &circuit.outputs {
        let w = circuit.width(o.node);
        let _ = writeln!(v, "  output wire {}{};", width_decl(w), ident(&o.name));
    }
    let _ = writeln!(v);
    for r in &circuit.regs {
        let _ = writeln!(
            v,
            "  reg {}{} = {}'h{:x};",
            width_decl(r.width),
            ident(&r.name),
            r.width,
            r.init
        );
    }
    for a in &circuit.arrays {
        let _ = writeln!(
            v,
            "  reg {}{} [0:{}];",
            width_decl(a.width),
            ident(&a.name),
            a.depth - 1
        );
    }
    let _ = writeln!(v);

    // Combinational nodes as wires + assigns.
    for (i, node) in circuit.nodes.iter().enumerate() {
        let id = NodeId(i as u32);
        let rhs = match &node.kind {
            NodeKind::Const(b) => format!("{}'h{:x}", node.width, b),
            NodeKind::Input(input) => ident(&circuit.inputs[input.index()].name),
            NodeKind::RegRead(r) => ident(&circuit.regs[r.index()].name),
            NodeKind::ArrayRead { array, index } => {
                format!(
                    "{}[{}]",
                    ident(&circuit.arrays[array.index()].name),
                    wire(*index)
                )
            }
            NodeKind::Un(op, a) => match op {
                UnOp::Not => format!("~{}", wire(*a)),
                UnOp::Neg => format!("-{}", wire(*a)),
                UnOp::RedAnd => format!("&{}", wire(*a)),
                UnOp::RedOr => format!("|{}", wire(*a)),
                UnOp::RedXor => format!("^{}", wire(*a)),
            },
            NodeKind::Bin(op, a, b) => {
                let (a, b) = (wire(*a), wire(*b));
                match op {
                    BinOp::And => format!("{a} & {b}"),
                    BinOp::Or => format!("{a} | {b}"),
                    BinOp::Xor => format!("{a} ^ {b}"),
                    BinOp::Add => format!("{a} + {b}"),
                    BinOp::Sub => format!("{a} - {b}"),
                    BinOp::Mul => format!("{a} * {b}"),
                    BinOp::Eq => format!("{a} == {b}"),
                    BinOp::Ne => format!("{a} != {b}"),
                    BinOp::LtU => format!("{a} < {b}"),
                    BinOp::LtS => format!("$signed({a}) < $signed({b})"),
                    BinOp::LeU => format!("{a} <= {b}"),
                    BinOp::LeS => format!("$signed({a}) <= $signed({b})"),
                    BinOp::Shl => format!("{a} << {b}"),
                    BinOp::Lshr => format!("{a} >> {b}"),
                    BinOp::Ashr => format!("$signed({a}) >>> {b}"),
                }
            }
            NodeKind::Mux { sel, t, f } => {
                format!("{} ? {} : {}", wire(*sel), wire(*t), wire(*f))
            }
            NodeKind::Slice { src, lo } => {
                format!("{}[{}:{}]", wire(*src), lo + node.width - 1, lo)
            }
            NodeKind::Zext(a) => {
                let aw = circuit.width(*a);
                if aw >= node.width {
                    format!("{}[{}:0]", wire(*a), node.width - 1)
                } else {
                    format!("{{{}'b0, {}}}", node.width - aw, wire(*a))
                }
            }
            NodeKind::Sext(a) => {
                let aw = circuit.width(*a);
                if aw >= node.width {
                    format!("{}[{}:0]", wire(*a), node.width - 1)
                } else {
                    format!(
                        "{{{{{}{{{}[{}]}}}}, {}}}",
                        node.width - aw,
                        wire(*a),
                        aw - 1,
                        wire(*a)
                    )
                }
            }
            NodeKind::Concat { hi, lo } => format!("{{{}, {}}}", wire(*hi), wire(*lo)),
        };
        let _ = writeln!(
            v,
            "  wire {}{} = {};",
            width_decl(node.width),
            wire(id),
            rhs
        );
    }
    let _ = writeln!(v);

    // Sequential logic.
    let _ = writeln!(v, "  always @(posedge clk) begin");
    for r in &circuit.regs {
        let _ = writeln!(
            v,
            "    {} <= {};",
            ident(&r.name),
            wire(r.next.expect("validated"))
        );
    }
    for a in &circuit.arrays {
        for p in &a.write_ports {
            let _ = writeln!(
                v,
                "    if ({}) {}[{}] <= {};",
                wire(p.enable),
                ident(&a.name),
                wire(p.index),
                wire(p.data)
            );
        }
    }
    let _ = writeln!(v, "  end");
    let _ = writeln!(v);
    for o in &circuit.outputs {
        let _ = writeln!(v, "  assign {} = {};", ident(&o.name), wire(o.node));
    }
    let _ = writeln!(v, "endmodule");
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn demo() -> Circuit {
        let mut b = Builder::new("demo");
        let en = b.input("en", 1);
        let r = b.reg("count", 8, 5);
        let one = b.lit(8, 1);
        let inc = b.add(r.q(), one);
        let nxt = b.mux(en, inc, r.q());
        b.connect(r, nxt);
        b.output("value", r.q());
        let mem = b.array("scratch", 8, 16);
        let idx = b.lit(4, 2);
        b.array_write(mem, idx, r.q(), en);
        b.finish().unwrap()
    }

    #[test]
    fn emits_complete_module() {
        let v = to_verilog(&demo());
        assert!(v.starts_with("module demo("));
        assert!(v.contains("input wire clk;"));
        assert!(v.contains("input wire en;"));
        assert!(v.contains("output wire [7:0] value;"));
        assert!(v.contains("reg [7:0] count = 8'h5;"));
        assert!(v.contains("reg [7:0] scratch [0:15];"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("count <= "));
        assert!(v.contains("scratch["));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn every_node_becomes_a_wire() {
        let c = demo();
        let v = to_verilog(&c);
        for i in 0..c.nodes.len() {
            assert!(v.contains(&format!(" n{i} ")), "node {i} missing");
        }
    }

    #[test]
    fn identifiers_are_sanitized() {
        let mut b = Builder::new("1bad.name");
        b.scoped("core0", |b| {
            let r = b.reg("x", 4, 0);
            b.connect(r, r.q());
        });
        let c = b.finish().unwrap();
        let v = to_verilog(&c);
        assert!(v.contains("module _1bad_name("));
        assert!(v.contains("core0_x"));
    }
}
