//! The parallel BSP execution engine: compiled point-to-point exchange.
//!
//! Executes a compiled [`Partition`] on host threads with exactly the
//! structure of Fig. 3: a *computation* phase in which every process
//! evaluates its (possibly duplicated) cone into private memory, a
//! barrier, a *communication* phase, and a second barrier. Functional
//! results are bit-identical to the reference [`Simulator`]
//! (`crate::interp`) — the engine is the correctness check for the
//! partitioner, not a model.
//!
//! The compiled per-tile programs, the mailbox fabric, and the phase
//! barrier live in `crate::engine` and are shared with the
//! scenario-parallel gang engine ([`crate::gang::GangSimulator`]): this
//! module is the single-scenario (one-lane) execution of that common
//! machinery.
//!
//! # Exchange architecture
//!
//! There is no shared mutable global state and no leader thread. Every
//! tile *owns* the registers and array copies it produces or holds, and
//! all cross-tile values move through the channels of the compiled
//! [`Routing`], laid out at compile time (register slots first, then
//! array write-port records). Channels come in the two classes the
//! machine distinguishes (Fig. 5): *on-chip* channels get one
//! double-buffered mailbox per producer→consumer tile pair, while
//! *off-chip* channels are aggregated into one **wider mailbox per
//! ordered chip pair** — every cross-chip channel owns a disjoint
//! segment of its chip-pair buffer, modeling the shared gateway link
//! that off-chip traffic funnels through.
//!
//! # Chip-group worker layout
//!
//! Tiles fold onto worker threads **chip-major**: each chip's tiles go
//! to a contiguous *group* of workers sized proportionally to the chip's
//! tile count (with fewer workers than chips, whole chips round-robin
//! over workers so a chip's tiles stay within one worker). A worker
//! therefore touches at most one chip whenever the pool is at least as
//! wide as the machine, which keeps each group's on-chip mailbox traffic
//! within the group and makes the off-chip flush a per-group act — the
//! host analogue of tiles sharing a chip's exchange fabric.
//!
//! The two epochs of a mailbox alternate by cycle parity. During cycle
//! `c` every worker, for each of its tiles:
//!
//! 1. runs the tile's step program, reading its own registers and array
//!    copies plus *epoch `c`* mailbox slots for remote registers;
//! 2. latches its own registers (tile-local, nobody else reads them);
//! 3. copies outgoing **on-chip** register values and `(enable, index,
//!    data)` port records into *epoch `c+1`* on-chip mailboxes;
//! 4. in a distinct, separately-timed **off-chip flush sub-phase**,
//!    copies cross-chip values into the epoch-`c+1` chip-pair
//!    aggregates, optionally spinning a configurable per-word delay
//!    ([`BspSimulator::set_offchip_spin_per_word`]) so benches can sweep
//!    the `m×b` off-chip cost the paper measures.
//!
//! Writers touch only epoch-`c+1` buffers while readers touch only
//! epoch-`c` buffers, so neither sub-phase needs locks or barriers
//! between them. After the first barrier, the communication phase has
//! every *holder* of an array apply the staged port records (its own
//! from its arena, remote ones from epoch-`c+1` mailboxes) in global
//! `(array, port)` order, keeping every copy bit-identical; the second
//! barrier ends the cycle. The only synchronization in the steady-state
//! loop is those two barriers: no locks are taken and no heap allocation
//! occurs. Per-tile `Mutex`es exist solely so the testbench API
//! (`poke`/`reg_value`/`array_value`/`peek_output`) can inspect state
//! between [`run`](BspSimulator::run) calls, and are locked once per
//! run, outside the cycle loop.
//!
//! Worker threads are spawned once in [`BspSimulator::new`] and persist
//! across `run()` calls (the figure binaries call `run` in a loop), so
//! repeated runs pay two barrier waits, not thread start-up.
//! [`run_timed`](BspSimulator::run_timed) reports the straggler worker's
//! compute / off-chip / on-chip exchange split plus per-tile phase
//! histograms ([`BspPhases::per_tile`]) — the measured counterpart of
//! Fig. 6's load-imbalance view.
//!
//! [`Simulator`]: crate::interp::Simulator
//! [`Routing`]: parendi_core::routing::Routing

use crate::engine::{
    eval_op, spin_delay, worker_groups, ArrayHome, Compiled, Mailbox, OutputHome, PhaseBarrier,
    PortSend, Program, RecSrc, RegHome, RegSend, Step,
};
use parendi_core::routing::PORT_RECORD_HEADER_WORDS;
use parendi_core::Partition;
use parendi_rtl::bits::{word, words_for, Bits};
use parendi_rtl::{Circuit, InputId, RegId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Mutable tile-owned state. Guarded by a `Mutex` purely for the
/// testbench API; workers lock it once per `run`, not per cycle.
#[derive(Debug)]
struct TileState {
    arena: Vec<u64>,
    /// This tile's own registers, packed in `RegId` order.
    reg_cur: Vec<u64>,
    /// Local copies of held arrays, in the process's sorted array order.
    arrays: Vec<Vec<u64>>,
}

/// One tile's phase seconds over a timed run (its share of the worker's
/// loop bodies; barrier waits are per-worker and excluded).
#[derive(Clone, Copy, Debug, Default)]
pub struct TilePhases {
    /// Seconds running the tile's step program (incl. latches and
    /// on-chip mailbox pushes).
    pub compute_s: f64,
    /// Seconds flushing the tile's cross-chip traffic (incl. the
    /// configured per-word delay).
    pub offchip_s: f64,
    /// Seconds applying staged port records to the tile's array copies.
    pub exchange_s: f64,
}

/// Per-run phase timings: the straggler worker's split plus per-tile
/// histograms.
///
/// The three phase columns come from the *single* worker with the
/// largest compute + off-chip flush time (the straggler — totals can't
/// rank workers because barrier waits absorb the slack), so
/// `compute_s + offchip_s + exchange_s` is that worker's real wall
/// time — phases are never paired across different workers.
///
/// `cycles` and `lanes` describe the run itself: the single-scenario
/// engine always reports one lane, while the gang engine reports its
/// lane count so [`lane_cycles_per_s`](Self::lane_cycles_per_s) — the
/// aggregate *scenario-cycles* per second — is comparable across both.
#[derive(Clone, Debug)]
pub struct BspPhases {
    /// Wall-clock seconds for the whole run.
    pub total_s: f64,
    /// Seconds the straggler worker spent in computation phases
    /// (step programs, register latches, on-chip mailbox pushes).
    pub compute_s: f64,
    /// Seconds the straggler worker spent flushing cross-chip traffic
    /// into the per-chip-pair aggregate mailboxes (zero on single-chip
    /// partitions).
    pub offchip_s: f64,
    /// Seconds the straggler worker spent in communication phases:
    /// record application plus both barrier waits.
    pub exchange_s: f64,
    /// Per-tile phase split, indexed by tile — the measured counterpart
    /// of the Fig. 6 straggler histograms. Empty for untimed runs (and
    /// for gang runs, which time at worker granularity).
    pub per_tile: Vec<TilePhases>,
    /// RTL cycles this run advanced.
    pub cycles: u64,
    /// Scenario lanes executed per cycle (1 for [`BspSimulator`]).
    pub lanes: u32,
}

impl Default for BspPhases {
    fn default() -> Self {
        BspPhases {
            total_s: 0.0,
            compute_s: 0.0,
            offchip_s: 0.0,
            exchange_s: 0.0,
            per_tile: Vec::new(),
            cycles: 0,
            lanes: 1,
        }
    }
}

impl BspPhases {
    /// Aggregate throughput in *lane-cycles* per second: every lane
    /// advances one RTL cycle per engine cycle, so a gang run at L lanes
    /// delivers `L × cycles / total_s` scenario-cycles per second. For
    /// the single-scenario engine this is plain cycles per second.
    pub fn lane_cycles_per_s(&self) -> f64 {
        if self.total_s > 0.0 {
            self.cycles as f64 * self.lanes as f64 / self.total_s
        } else {
            0.0
        }
    }
}

/// State shared between the simulator facade and the worker pool.
struct Shared {
    programs: Vec<Program>,
    tiles: Vec<Mutex<TileState>>,
    channels: Vec<Mailbox>,
    inputs: RwLock<Vec<u64>>,
    /// Workers-only phase barrier (two waits per cycle).
    phase_barrier: PhaseBarrier,
    /// Run hand-off: workers + the control thread.
    gate: Barrier,
    done: Barrier,
    cmd_cycles: AtomicU64,
    cmd_start: AtomicU64,
    cmd_timed: AtomicBool,
    exit: AtomicBool,
    /// Spin iterations per word charged to off-chip flushes.
    offchip_spin: AtomicU32,
    /// Per-worker (compute, offchip, exchange) ns of the last timed run.
    phase_ns: Vec<Mutex<(u64, u64, u64)>>,
    /// Per-tile (compute, offchip, exchange) ns of the last timed run.
    tile_ns: Vec<Mutex<(u64, u64, u64)>>,
}

/// A parallel BSP simulator for a compiled partition.
pub struct BspSimulator<'c> {
    circuit: &'c Circuit,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    reg_home: Vec<RegHome>,
    array_home: Vec<ArrayHome>,
    output_home: Vec<OutputHome>,
    input_off: Vec<u32>,
    input_by_name: HashMap<String, InputId>,
    output_by_name: HashMap<String, u32>,
    /// Mailboxes serving on-chip channels (the tail of
    /// `shared.channels` holds the per-chip-pair aggregates).
    onchip_mailboxes: usize,
    cycle: u64,
}

impl<'c> BspSimulator<'c> {
    /// Compiles `partition` into per-tile programs and spawns a
    /// persistent pool of `threads` workers (tiles are folded
    /// chip-major onto threads; the pool is reused by every
    /// [`run`](Self::run)).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(circuit: &'c Circuit, partition: &Partition, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        let Compiled {
            programs,
            reg_home,
            array_home,
            output_home,
            input_off,
            input_words,
            input_by_name,
            output_by_name,
            tile_reg_words,
            array_init,
            channels,
            onchip_mailboxes,
            tile_chip,
            ..
        } = Compiled::new(circuit, partition, 1);

        let tiles: Vec<Mutex<TileState>> = programs
            .iter()
            .enumerate()
            .map(|(pi, prog)| {
                let mut arena = vec![0u64; prog.arena_words];
                for (off, words) in &prog.const_init {
                    arena[*off as usize..*off as usize + words.len()].copy_from_slice(words);
                }
                let mut reg_cur = vec![0u64; tile_reg_words[pi] as usize];
                for (ri, home) in reg_home.iter().enumerate() {
                    if home.tile == pi as u32 {
                        reg_cur[home.off as usize..(home.off + home.words) as usize]
                            .copy_from_slice(circuit.regs[ri].init.words());
                    }
                }
                let arrays = partition.processes[pi]
                    .arrays
                    .iter()
                    .map(|a| array_init[a.index()].clone())
                    .collect();
                Mutex::new(TileState {
                    arena,
                    reg_cur,
                    arrays,
                })
            })
            .collect();

        let pool_threads = if programs.len() <= 1 {
            1
        } else {
            threads.min(programs.len())
        };
        let worker_count = if pool_threads > 1 { pool_threads } else { 0 };
        let tile_count = programs.len();
        let shared = Arc::new(Shared {
            programs,
            tiles,
            channels,
            inputs: RwLock::new(vec![0u64; input_words as usize]),
            phase_barrier: PhaseBarrier::new(pool_threads.max(1)),
            gate: Barrier::new(worker_count + 1),
            done: Barrier::new(worker_count + 1),
            cmd_cycles: AtomicU64::new(0),
            cmd_start: AtomicU64::new(0),
            cmd_timed: AtomicBool::new(false),
            exit: AtomicBool::new(false),
            offchip_spin: AtomicU32::new(0),
            phase_ns: (0..worker_count.max(1))
                .map(|_| Mutex::new((0, 0, 0)))
                .collect(),
            tile_ns: (0..tile_count).map(|_| Mutex::new((0, 0, 0))).collect(),
        });
        let groups = worker_groups(&tile_chip, worker_count);
        let workers = groups
            .into_iter()
            .enumerate()
            .map(|(t, mine)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bsp-worker-{t}"))
                    .spawn(move || worker_loop(&shared, t, mine))
                    .expect("spawn BSP worker")
            })
            .collect();

        BspSimulator {
            circuit,
            shared,
            workers,
            reg_home,
            array_home,
            output_home,
            input_off,
            input_by_name,
            output_by_name,
            onchip_mailboxes,
            cycle: 0,
        }
    }

    /// Number of completed RTL cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of tiles (processes) being simulated.
    pub fn tiles(&self) -> usize {
        self.shared.programs.len()
    }

    /// Number of mailboxes carrying traffic: per-tile-pair on-chip boxes
    /// plus per-chip-pair off-chip aggregates.
    pub fn channels(&self) -> usize {
        self.shared.channels.len()
    }

    /// Number of per-chip-pair aggregate mailboxes (zero on single-chip
    /// partitions).
    pub fn offchip_channels(&self) -> usize {
        self.shared.channels.len() - self.onchip_mailboxes
    }

    /// Sets the artificial per-word delay (in spin-loop iterations)
    /// charged while flushing off-chip mailboxes, modeling the roughly
    /// order-of-magnitude slower cross-chip link. The benches sweep this
    /// to reproduce the `m×b` off-chip cost effect (Fig. 5 right);
    /// functional results are unaffected. Takes effect from the next
    /// [`run`](Self::run).
    pub fn set_offchip_spin_per_word(&mut self, spins: u32) {
        self.shared.offchip_spin.store(spins, Ordering::Relaxed);
    }

    /// Drives an input (held until changed).
    ///
    /// # Panics
    ///
    /// Panics if the width does not match.
    pub fn set_input(&mut self, id: InputId, value: &Bits) {
        let decl = &self.circuit.inputs[id.index()];
        assert_eq!(decl.width, value.width(), "input {} width", decl.name);
        let off = self.input_off[id.index()] as usize;
        let mut inputs = self.shared.inputs.write().unwrap();
        inputs[off..off + value.words().len()].copy_from_slice(value.words());
    }

    /// Convenience: drive input `name` with a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if no such input exists.
    pub fn poke(&mut self, name: &str, value: u64) {
        let id = *self
            .input_by_name
            .get(name)
            .unwrap_or_else(|| panic!("no input {name}"));
        let width = self.circuit.inputs[id.index()].width;
        self.set_input(id, &Bits::from_u64(width, value));
    }

    /// The current value of a register.
    pub fn reg_value(&self, id: RegId) -> Bits {
        let r = &self.circuit.regs[id.index()];
        let home = self.reg_home[id.index()];
        assert!(home.tile != u32::MAX, "register {} has no producer", r.name);
        let tile = self.shared.tiles[home.tile as usize].lock().unwrap();
        Bits::from_words(
            r.width,
            &tile.reg_cur[home.off as usize..(home.off + home.words) as usize],
        )
    }

    /// The current value of primary output `name`, or `None` if no such
    /// output exists — the engine counterpart of the reference
    /// interpreter's `output()`.
    ///
    /// Output cones are computed every cycle (their fibers run like any
    /// other), but the arena holds *pre-latch* values from the last
    /// cycle; this replays the owning tile's step program against the
    /// current architectural state (own registers, array copies, and the
    /// current-epoch mailbox slots for remote registers), so the value
    /// reflects all completed cycles and the current inputs, exactly
    /// like the interpreter after `step`.
    pub fn peek_output(&self, name: &str) -> Option<Bits> {
        let &oi = self.output_by_name.get(name)?;
        let home = self.output_home[oi as usize];
        assert!(home.tile != u32::MAX, "output {name} has no owning tile");
        let width = self.circuit.width(self.circuit.outputs[oi as usize].node);
        let shared = &self.shared;
        let inputs = shared.inputs.read().unwrap();
        let mut tile = shared.tiles[home.tile as usize].lock().unwrap();
        run_steps(
            &shared.programs[home.tile as usize],
            &mut tile,
            &inputs,
            &shared.channels,
            self.cycle,
        );
        let off = home.off as usize;
        Some(Bits::from_words(
            width,
            &tile.arena[off..off + words_for(width)],
        ))
    }

    /// An element of an array.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn array_value(&self, id: parendi_rtl::ArrayId, index: u32) -> Bits {
        let a = &self.circuit.arrays[id.index()];
        assert!(index < a.depth);
        let w = words_for(a.width);
        match &self.array_home[id.index()] {
            ArrayHome::Held { tile, slot } => {
                let t = self.shared.tiles[*tile as usize].lock().unwrap();
                Bits::from_words(
                    a.width,
                    &t.arrays[*slot as usize][index as usize * w..][..w],
                )
            }
            ArrayHome::Spare(buf) => Bits::from_words(a.width, &buf[index as usize * w..][..w]),
        }
    }

    /// Runs `cycles` RTL cycles in parallel. Returns wall-clock seconds.
    ///
    /// The cycle loop runs untimed — no per-cycle clock reads.
    pub fn run(&mut self, cycles: u64) -> f64 {
        self.run_inner(cycles, false).total_s
    }

    /// Runs `cycles` RTL cycles and reports per-phase timings (the
    /// measured counterpart of the modeled `t_comp`/`t_comm`+`t_sync`
    /// split), including the per-tile histograms of
    /// [`BspPhases::per_tile`]. Timed runs cost roughly one clock read
    /// per tile per sub-phase per cycle (timestamps chain tile-to-tile,
    /// so that read is counted once, inside the following tile's
    /// interval); use [`run`](Self::run) for throughput measurements.
    pub fn run_timed(&mut self, cycles: u64) -> BspPhases {
        self.run_inner(cycles, true)
    }

    fn run_inner(&mut self, cycles: u64, timed: bool) -> BspPhases {
        let start = Instant::now();
        if cycles == 0 {
            return BspPhases::default();
        }
        // The straggler worker's (compute, offchip, exchange) ns: phases
        // stay paired per worker so the split sums to one worker's real
        // wall time.
        let (mut comp_ns, mut off_ns, mut exch_ns) = (0u64, 0u64, 0u64);
        let mut per_tile = Vec::new();
        if self.workers.is_empty() {
            let shared = &self.shared;
            let spin = shared.offchip_spin.load(Ordering::Relaxed);
            let any_off = shared.programs.iter().any(|p| p.has_offchip());
            let inputs = shared.inputs.read().unwrap();
            let mut guards: Vec<_> = shared.tiles.iter().map(|t| t.lock().unwrap()).collect();
            let mut tile_ns = vec![(0u64, 0u64, 0u64); guards.len()];
            for c in self.cycle..self.cycle + cycles {
                // Timestamps chain: each tile's interval ends where the
                // next begins, so the phase windows contain one clock
                // read per tile, not two, and per-tile times sum to the
                // worker phase exactly.
                let t0 = timed.then(Instant::now);
                let mut mark = t0;
                for (k, (prog, tile)) in shared.programs.iter().zip(guards.iter_mut()).enumerate() {
                    compute_phase(prog, tile, &inputs, &shared.channels, c);
                    if let Some(m) = mark {
                        let now = Instant::now();
                        tile_ns[k].0 += now.duration_since(m).as_nanos() as u64;
                        mark = Some(now);
                    }
                }
                let t1 = mark;
                if any_off {
                    for (k, (prog, tile)) in
                        shared.programs.iter().zip(guards.iter_mut()).enumerate()
                    {
                        if !prog.has_offchip() {
                            continue;
                        }
                        offchip_phase(prog, tile, &shared.channels, c, spin);
                        if let Some(m) = mark {
                            let now = Instant::now();
                            tile_ns[k].1 += now.duration_since(m).as_nanos() as u64;
                            mark = Some(now);
                        }
                    }
                }
                // With no cross-chip traffic the sub-phase is skipped
                // outright, keeping offchip_s exactly zero.
                let t2 = mark;
                for (k, (prog, tile)) in shared.programs.iter().zip(guards.iter_mut()).enumerate() {
                    exchange_phase(prog, tile, &shared.channels, c);
                    if let Some(m) = mark {
                        let now = Instant::now();
                        tile_ns[k].2 += now.duration_since(m).as_nanos() as u64;
                        mark = Some(now);
                    }
                }
                if let (Some(t0), Some(t1), Some(t2), Some(end)) = (t0, t1, t2, mark) {
                    comp_ns += t1.duration_since(t0).as_nanos() as u64;
                    off_ns += t2.duration_since(t1).as_nanos() as u64;
                    exch_ns += end.duration_since(t2).as_nanos() as u64;
                }
            }
            if timed {
                per_tile = tile_ns
                    .iter()
                    .map(|&(c, o, e)| TilePhases {
                        compute_s: c as f64 * 1e-9,
                        offchip_s: o as f64 * 1e-9,
                        exchange_s: e as f64 * 1e-9,
                    })
                    .collect();
            }
        } else {
            self.shared.cmd_cycles.store(cycles, Ordering::SeqCst);
            self.shared.cmd_start.store(self.cycle, Ordering::SeqCst);
            self.shared.cmd_timed.store(timed, Ordering::SeqCst);
            self.shared.gate.wait();
            self.shared.done.wait();
            if timed {
                // Straggler = the worker with the most real work
                // (compute + flush). Totals can't rank workers: barrier
                // waits absorb the slack, equalizing every worker's
                // comp+off+exch span up to wakeup jitter.
                for slot in &self.shared.phase_ns {
                    let (c, o, e) = *slot.lock().unwrap();
                    if c + o > comp_ns + off_ns {
                        (comp_ns, off_ns, exch_ns) = (c, o, e);
                    }
                }
                per_tile = self
                    .shared
                    .tile_ns
                    .iter()
                    .map(|slot| {
                        let (c, o, e) = *slot.lock().unwrap();
                        TilePhases {
                            compute_s: c as f64 * 1e-9,
                            offchip_s: o as f64 * 1e-9,
                            exchange_s: e as f64 * 1e-9,
                        }
                    })
                    .collect();
            }
        }
        self.cycle += cycles;
        BspPhases {
            total_s: start.elapsed().as_secs_f64(),
            compute_s: comp_ns as f64 * 1e-9,
            offchip_s: off_ns as f64 * 1e-9,
            exchange_s: exch_ns as f64 * 1e-9,
            per_tile,
            cycles,
            lanes: 1,
        }
    }
}

impl Drop for BspSimulator<'_> {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shared.exit.store(true, Ordering::SeqCst);
            self.shared.gate.wait();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

/// The persistent worker entry: a worker that unwound mid-cycle would
/// leave every other thread blocked at a barrier forever, so engine
/// bugs become a loud abort (the default panic hook has already printed
/// the message and location) instead of a silent hang.
fn worker_loop(shared: &Shared, t: usize, mine: Vec<usize>) {
    let body = std::panic::AssertUnwindSafe(|| worker_body(shared, t, &mine));
    if std::panic::catch_unwind(body).is_err() {
        eprintln!("BSP worker {t} panicked; aborting (a hung barrier would deadlock the run)");
        std::process::abort();
    }
}

/// The worker run loop: park at the gate, execute a run over this
/// worker's chip-major tile group `mine`, report.
fn worker_body(shared: &Shared, t: usize, mine: &[usize]) {
    let any_off = mine.iter().any(|&pi| shared.programs[pi].has_offchip());
    loop {
        shared.gate.wait();
        if shared.exit.load(Ordering::SeqCst) {
            return;
        }
        let cycles = shared.cmd_cycles.load(Ordering::SeqCst);
        let start = shared.cmd_start.load(Ordering::SeqCst);
        let timed = shared.cmd_timed.load(Ordering::SeqCst);
        let spin = shared.offchip_spin.load(Ordering::Relaxed);
        {
            // One lock per tile per run; the steady-state cycle loop
            // below acquires no locks and allocates nothing.
            let inputs = shared.inputs.read().unwrap();
            let mut guards: Vec<_> = mine
                .iter()
                .map(|&pi| shared.tiles[pi].lock().unwrap())
                .collect();
            let (mut comp_ns, mut off_ns, mut exch_ns) = (0u64, 0u64, 0u64);
            let mut tile_ns = vec![(0u64, 0u64, 0u64); mine.len()];
            for c in start..start + cycles {
                // Timestamps chain tile to tile (see `run_inner`): one
                // clock read per tile lands inside the phase windows,
                // and per-tile times sum to the worker phase exactly.
                let t0 = timed.then(Instant::now);
                let mut mark = t0;
                for (k, (guard, &pi)) in guards.iter_mut().zip(mine).enumerate() {
                    compute_phase(&shared.programs[pi], guard, &inputs, &shared.channels, c);
                    if let Some(m) = mark {
                        let now = Instant::now();
                        tile_ns[k].0 += now.duration_since(m).as_nanos() as u64;
                        mark = Some(now);
                    }
                }
                // Off-chip flush: a distinct sub-phase so the cross-chip
                // volume is timed apart from compute. It needs no
                // barrier — it writes epoch-c+1 segments nobody reads
                // until after barrier 1. A group with no cross-chip
                // traffic skips it outright, keeping offchip_s zero.
                let t1 = mark;
                if any_off {
                    for (k, (guard, &pi)) in guards.iter_mut().zip(mine).enumerate() {
                        if !shared.programs[pi].has_offchip() {
                            continue;
                        }
                        offchip_phase(&shared.programs[pi], guard, &shared.channels, c, spin);
                        if let Some(m) = mark {
                            let now = Instant::now();
                            tile_ns[k].1 += now.duration_since(m).as_nanos() as u64;
                            mark = Some(now);
                        }
                    }
                }
                // exchange_s starts *before* barrier 1 so the straggler
                // wait — the measured `t_sync` — lands in the exchange
                // column, matching the BspPhases contract.
                let t2 = mark;
                if let (Some(t0), Some(t1), Some(t2)) = (t0, t1, t2) {
                    comp_ns += t1.duration_since(t0).as_nanos() as u64;
                    off_ns += t2.duration_since(t1).as_nanos() as u64;
                }
                // Barrier 1: all mailboxes for epoch c+1 are filled.
                shared.phase_barrier.wait();
                let mut emark = timed.then(Instant::now);
                for (k, (guard, &pi)) in guards.iter_mut().zip(mine).enumerate() {
                    exchange_phase(&shared.programs[pi], guard, &shared.channels, c);
                    if let Some(m) = emark {
                        let now = Instant::now();
                        tile_ns[k].2 += now.duration_since(m).as_nanos() as u64;
                        emark = Some(now);
                    }
                }
                // Barrier 2: every array copy has applied the records.
                shared.phase_barrier.wait();
                if let Some(t2) = t2 {
                    exch_ns += t2.elapsed().as_nanos() as u64;
                }
            }
            if timed {
                *shared.phase_ns[t].lock().unwrap() = (comp_ns, off_ns, exch_ns);
                for (k, &pi) in mine.iter().enumerate() {
                    *shared.tile_ns[pi].lock().unwrap() = tile_ns[k];
                }
            }
        }
        shared.done.wait();
    }
}

/// Runs one tile's step program at cycle `c`, filling the arena with
/// this cycle's combinational values (reads the tile's own registers and
/// array copies plus epoch-`c` mailbox slots; writes nothing outside the
/// arena). Also the replay engine behind `peek_output`.
fn run_steps(prog: &Program, tile: &mut TileState, inputs: &[u64], channels: &[Mailbox], c: u64) {
    let read_parity = (c & 1) as usize;
    let TileState {
        arena,
        reg_cur,
        arrays,
    } = tile;
    for step in &prog.steps {
        match *step {
            Step::Input { dst, src, nw } => {
                let (d, s) = (dst as usize, src as usize);
                arena[d..d + nw as usize].copy_from_slice(&inputs[s..s + nw as usize]);
            }
            Step::RegOwn { dst, src, nw } => {
                let (d, s) = (dst as usize, src as usize);
                arena[d..d + nw as usize].copy_from_slice(&reg_cur[s..s + nw as usize]);
            }
            Step::RegMail { dst, ch, src, nw } => {
                // SAFETY: epoch discipline — no writer of `read_parity`
                // exists during the computation phase (see Mailbox).
                let buf = unsafe { channels[ch as usize].read(read_parity) };
                let (d, s) = (dst as usize, src as usize);
                arena[d..d + nw as usize].copy_from_slice(&buf[s..s + nw as usize]);
            }
            Step::ArrayRead {
                dst,
                arr,
                idx,
                idx_w,
                nw,
                depth,
            } => {
                let index = word::fold_index(&arena[idx as usize..(idx + idx_w) as usize]);
                let d = dst as usize;
                if index < depth as u64 {
                    let s = index as usize * nw as usize;
                    let a = &arrays[arr as usize];
                    arena[d..d + nw as usize].copy_from_slice(&a[s..s + nw as usize]);
                } else {
                    arena[d..d + nw as usize].fill(0);
                }
            }
            _ => eval_op(arena, step),
        }
    }
}

/// Computation phase for one tile at cycle `c`: run the step program,
/// latch own registers, push outgoing *on-chip* mailbox traffic for
/// epoch `c+1` (cross-chip traffic is flushed by [`offchip_phase`]).
fn compute_phase(
    prog: &Program,
    tile: &mut TileState,
    inputs: &[u64],
    channels: &[Mailbox],
    c: u64,
) {
    run_steps(prog, tile, inputs, channels, c);
    let write_parity = ((c & 1) ^ 1) as usize;
    let TileState { arena, reg_cur, .. } = tile;
    // Latch own registers: tile-local, nobody else reads them.
    for rc in &prog.commits {
        let (d, s) = (rc.dst as usize, rc.local as usize);
        reg_cur[d..d + rc.nw as usize].copy_from_slice(&arena[s..s + rc.nw as usize]);
    }
    // Push outgoing register values into epoch c+1 mailboxes.
    for send in &prog.sends {
        push_reg_send(send, arena, channels, write_parity);
    }
    // Stage port records for every on-chip remote holder.
    for ps in &prog.port_sends {
        stage_port_record(ps, arena, channels, write_parity);
    }
}

/// Copies one outbound register value into its mailbox segment.
///
/// All mailbox stores go through the raw [`Mailbox::write_base`]
/// pointer: aggregate chip-pair mailboxes are written concurrently by
/// several worker groups (into disjoint segments), so no `&mut` over a
/// buffer may ever exist.
#[inline]
fn push_reg_send(send: &RegSend, arena: &[u64], channels: &[Mailbox], write_parity: usize) {
    // SAFETY: epoch discipline — no reader of `write_parity` exists
    // during this phase, and this thread exclusively owns the segment
    // `[dst, dst + nw)` (compile-time channel layout).
    unsafe {
        let base = channels[send.ch as usize].write_base(write_parity);
        std::ptr::copy_nonoverlapping(
            arena.as_ptr().add(send.local as usize),
            base.add(send.dst as usize),
            send.nw as usize,
        );
    }
}

/// Copies one port record `(enable, index, data)` into every destination
/// slot of `ps` (same aliasing rules as [`push_reg_send`]).
#[inline]
fn stage_port_record(ps: &PortSend, arena: &[u64], channels: &[Mailbox], write_parity: usize) {
    let en = arena[ps.en as usize] & 1;
    let idx = word::fold_index(&arena[ps.idx as usize..(ps.idx + ps.idx_w) as usize]);
    let data = &arena[ps.data as usize..(ps.data + ps.nw) as usize];
    for &(ch, off) in &ps.dests {
        // SAFETY: epoch discipline — no reader of `write_parity` exists
        // during this phase, and this thread exclusively owns the record
        // segment at `off` (compile-time channel layout).
        unsafe {
            let slot = channels[ch as usize]
                .write_base(write_parity)
                .add(off as usize);
            *slot = en;
            *slot.add(1) = idx;
            std::ptr::copy_nonoverlapping(
                data.as_ptr(),
                slot.add(PORT_RECORD_HEADER_WORDS as usize),
                ps.nw as usize,
            );
        }
    }
}

/// Off-chip flush sub-phase for one tile at cycle `c`: copy cross-chip
/// register values and port records into the epoch-`c+1` chip-pair
/// aggregate mailboxes, spinning `spin_per_word` iterations per word to
/// model the slower link (0 = flush at memory speed).
fn offchip_phase(prog: &Program, tile: &mut TileState, channels: &[Mailbox], c: u64, spin: u32) {
    let write_parity = ((c & 1) ^ 1) as usize;
    let arena = &tile.arena;
    for send in &prog.offchip_sends {
        push_reg_send(send, arena, channels, write_parity);
        spin_delay(send.nw as u64 * spin as u64);
    }
    for ps in &prog.offchip_port_sends {
        stage_port_record(ps, arena, channels, write_parity);
        let words = (PORT_RECORD_HEADER_WORDS + ps.nw) as u64 * ps.dests.len() as u64;
        spin_delay(words * spin as u64);
    }
}

/// Communication phase for one tile at cycle `c`: apply all staged port
/// records (own and remote) to the tile's array copies in global
/// `(array, port)` order.
fn exchange_phase(prog: &Program, tile: &mut TileState, channels: &[Mailbox], c: u64) {
    let record_parity = ((c & 1) ^ 1) as usize;
    let TileState { arena, arrays, .. } = tile;
    for ap in &prog.applies {
        let nw = ap.nw as usize;
        let (en, idx, data): (u64, u64, &[u64]) = match ap.src {
            RecSrc::Own {
                en,
                idx,
                idx_w,
                data,
            } => (
                arena[en as usize] & 1,
                word::fold_index(&arena[idx as usize..(idx + idx_w) as usize]),
                &arena[data as usize..data as usize + nw],
            ),
            RecSrc::Mail { ch, off } => {
                // SAFETY: after barrier 1 nobody writes `record_parity`.
                let buf = unsafe { channels[ch as usize].read(record_parity) };
                let off = off as usize;
                (
                    buf[off] & 1,
                    buf[off + 1],
                    &buf[off + PORT_RECORD_HEADER_WORDS as usize..][..nw],
                )
            }
        };
        if en == 1 && idx < ap.depth as u64 {
            let dst = idx as usize * nw;
            arrays[ap.arr as usize][dst..dst + nw].copy_from_slice(data);
        }
    }
}
