//! Mine a (toy-difficulty) block on the pipelined double-SHA-256 design,
//! in parallel, and verify the nonce in software — then compare the
//! 1-tile and balanced many-tile IPU rates (the paper's Table 1 story).
//!
//! ```sh
//! cargo run --release --example bitcoin_miner
//! ```

use parendi::core::{compile, PartitionConfig};
use parendi::designs::sha256::{build_miner, soft_miner_digest, MinerConfig};
use parendi::machine::ipu::IpuConfig;
use parendi::sim::{ipu_timings, BspSimulator, Simulator};

fn main() {
    let cfg = MinerConfig {
        target: 1 << 27,
        ..Default::default()
    };
    let circuit = build_miner(&cfg);
    println!(
        "miner: {} nodes, {} registers (two 64-stage SHA-256 pipelines)",
        circuit.nodes.len(),
        circuit.regs.len()
    );

    // Run in parallel until the found flag rises.
    let comp = compile(&circuit, &PartitionConfig::with_tiles(128)).expect("compiles");
    let mut bsp = BspSimulator::new(&circuit, &comp.partition, 4);
    let mut reference = Simulator::new(&circuit);
    let mut nonce = None;
    for _ in 0..200 {
        bsp.run(64);
        reference.step_n(64);
        if reference.output("found").unwrap().to_u64() == 1 {
            nonce = Some(reference.output("found_nonce").unwrap().to_u64() as u32);
            break;
        }
    }
    let nonce = nonce.expect("target too hard for the demo");
    let digest = soft_miner_digest(&cfg, nonce);
    println!(
        "found nonce {nonce:#010x}; digest[0] = {:#010x} < {:#010x}",
        digest[0], cfg.target
    );
    assert!(
        digest[0] < cfg.target,
        "software double-SHA must confirm the nonce"
    );

    // Table-1-style rate comparison.
    let ipu = IpuConfig::m2000();
    let one = compile(&circuit, &PartitionConfig::with_tiles(1)).expect("fits");
    let par = compile(&circuit, &PartitionConfig::with_tiles(512)).expect("fits");
    let r1 = ipu_timings(&one, &ipu).rate_khz(&ipu);
    let rp = ipu_timings(&par, &ipu).rate_khz(&ipu);
    println!(
        "IPU model: {:.1} kHz on 1 tile vs {:.1} kHz on {} tiles ({:.1}x)",
        r1,
        rp,
        par.partition.tiles_used(),
        rp / r1
    );
}
