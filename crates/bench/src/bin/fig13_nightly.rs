//! Fig. 13 + §6.4: cloud cost comparison. One long simulation, then
//! nightly regression campaigns under ad-hoc vs fine-grained
//! parallelism on a Dv4 x64 instance and an IPU-POD4.

use parendi_baseline::VerilatorModel;
use parendi_bench::{best_ipu, ipu_point, sr_max};
use parendi_designs::Benchmark;
use parendi_machine::ipu::IpuConfig;
use parendi_machine::pricing::{campaign_cost, dv4_breakeven_ratio, simulate_cost, CloudInstance};
use parendi_machine::x64::X64Config;

fn main() {
    let design = Benchmark::Sr(sr_max());
    let c = design.build();
    let ipu = IpuConfig::m2000();
    let dv4 = X64Config::dv4();
    let vm = VerilatorModel::new(&c);

    let dv4_1t = vm.rate_khz(&dv4, 1);
    let (dv4_best_t, dv4_best, _) = vm.best(&dv4, 16);
    let ipu_best = best_ipu(&c, &ipu);
    let ipu_1chip = ipu_point(&c, 1472, &ipu);

    println!("§6.4 single long test: {} for 1e9 cycles", design.name());
    let pod = CloudInstance::ipu_pod4();
    let slice = CloudInstance::dv4(16);
    let r_ipu = simulate_cost(&pod, 1_000_000_000, ipu_best.khz);
    let r_dv4 = simulate_cost(&slice, 1_000_000_000, dv4_best);
    println!(
        "  IPU-POD4: {:.1} kHz -> {:.1} h, ${:.2}   (1 chip: {:.1} kHz)",
        ipu_best.khz, r_ipu.hours, r_ipu.usd, ipu_1chip.khz
    );
    println!(
        "  Dv4-16:   {:.1} kHz ({} threads) -> {:.1} h, ${:.2}",
        dv4_best, dv4_best_t, r_dv4.hours, r_dv4.usd
    );
    let ipu_vs_1t = ipu_best.khz / dv4_1t;
    println!(
        "  break-even: Dv4 needs s/t > {:.2} (IPU is {:.0}x the single thread)",
        dv4_breakeven_ratio(ipu_vs_1t),
        ipu_vs_1t
    );

    println!("\nFig. 13: nightly campaigns of 1M-cycle tests (time h / cost $)");
    println!(
        "{:>6} | {:>9} {:>8} | {:>9} {:>8} | {:>9} {:>8} | {:>9} {:>8}",
        "N", "x64adh-h", "$", "x64fine-h", "$", "ipuadh-h", "$", "ipufine-h", "$"
    );
    for n in [16u32, 32, 64, 128, 256, 512] {
        // x64 ad-hoc: one test per core, 16 in parallel, single-thread rate.
        let xa = campaign_cost(&slice, n, 1_000_000, dv4_1t, 16);
        // x64 fine: 16 threads per test, tests serial.
        let xf = campaign_cost(&slice, n, 1_000_000, dv4_best, 1);
        // IPU ad-hoc: one chip per test, 4 in parallel.
        let ia = campaign_cost(&pod, n, 1_000_000, ipu_1chip.khz, 4);
        // IPU fine: whole POD per test, serial.
        let if_ = campaign_cost(&pod, n, 1_000_000, ipu_best.khz, 1);
        println!(
            "{n:>6} | {:>9.2} {:>8.2} | {:>9.2} {:>8.2} | {:>9.2} {:>8.2} | {:>9.2} {:>8.2}",
            xa.hours, xa.usd, xf.hours, xf.usd, ia.hours, ia.usd, if_.hours, if_.usd
        );
    }
    println!("\nShape check: IPU ad-hoc is the cheapest IPU strategy; x64 fine-grained");
    println!("beats x64 ad-hoc when its self-speedup is high; the IPU costs less overall.");
}
