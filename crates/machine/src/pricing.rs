//! Cloud pricing model for the §6.4 cost comparison.
//!
//! The paper's numbers: GCore offered an IPU-POD4 classic (one M2000)
//! for $2.13/hour; a Microsoft Azure Dv4 (Xeon 8272CL) costs $0.048 per
//! core-hour. Compile time and cost are excluded, as in the paper.

use serde::{Deserialize, Serialize};

/// A rentable instance with an hourly price.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CloudInstance {
    /// Instance name.
    pub name: String,
    /// Price in USD per hour.
    pub usd_per_hour: f64,
}

impl CloudInstance {
    /// The IPU-POD4 classic instance (§6.4).
    pub fn ipu_pod4() -> Self {
        CloudInstance {
            name: "IPU-POD4".into(),
            usd_per_hour: 2.13,
        }
    }

    /// An Azure Dv4 slice with `cores` cores at $0.048/core-hour (§6.4).
    pub fn dv4(cores: u32) -> Self {
        CloudInstance {
            name: format!("Dv4-{cores}"),
            usd_per_hour: 0.048 * cores as f64,
        }
    }

    /// Cost of `hours` of use.
    pub fn cost(&self, hours: f64) -> f64 {
        self.usd_per_hour * hours
    }
}

/// Time and cost of one simulation campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostReport {
    /// Instance used.
    pub instance: String,
    /// Wall-clock hours.
    pub hours: f64,
    /// Total cost in USD.
    pub usd: f64,
}

/// Time/cost to simulate `cycles` RTL cycles at `rate_khz` on `instance`.
pub fn simulate_cost(instance: &CloudInstance, cycles: u64, rate_khz: f64) -> CostReport {
    let seconds = cycles as f64 / (rate_khz * 1e3);
    let hours = seconds / 3600.0;
    CostReport {
        instance: instance.name.clone(),
        hours,
        usd: instance.cost(hours),
    }
}

/// Time/cost to run `n_tests` independent tests of `cycles_per_test`
/// cycles with `parallel_tests` running at once, each at `rate_khz`.
pub fn campaign_cost(
    instance: &CloudInstance,
    n_tests: u32,
    cycles_per_test: u64,
    rate_khz: f64,
    parallel_tests: u32,
) -> CostReport {
    let waves = n_tests.div_ceil(parallel_tests.max(1)) as f64;
    let seconds_per_wave = cycles_per_test as f64 / (rate_khz * 1e3);
    let hours = waves * seconds_per_wave / 3600.0;
    CostReport {
        instance: instance.name.clone(),
        hours,
        usd: instance.cost(hours),
    }
}

/// The paper's break-even rule (§6.4): Dv4 with `t` threads at self-
/// relative speedup `s` beats the 4-IPU Parendi run only when
/// `s/t > ipu_speedup_vs_1thread * (dv4_core_price / ipu_price)`.
pub fn dv4_breakeven_ratio(ipu_speedup_vs_single_thread: f64) -> f64 {
    ipu_speedup_vs_single_thread * 0.048 / 2.13
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers() {
        // §6.4: sr15 for 1e9 cycles — 31.69 kHz on 4 IPUs ≈ 8.8 h, ≈ $19.
        let r = simulate_cost(&CloudInstance::ipu_pod4(), 1_000_000_000, 31.69);
        assert!((r.hours - 8.77).abs() < 0.1, "hours {}", r.hours);
        assert!((r.usd - 18.67).abs() < 1.0, "usd {}", r.usd);
        // Dv4 16-thread at 4.88 kHz ≈ 57 h, ≈ $43.7.
        let r = simulate_cost(&CloudInstance::dv4(16), 1_000_000_000, 4.88);
        assert!((r.hours - 56.9).abs() < 1.0, "hours {}", r.hours);
        assert!((r.usd - 43.7).abs() < 1.0, "usd {}", r.usd);
    }

    #[test]
    fn breakeven_matches_paper() {
        // 142.74× IPU-vs-1-thread speedup gives the paper's 3.2 threshold.
        let b = dv4_breakeven_ratio(142.74);
        assert!((b - 3.216).abs() < 0.01, "breakeven {b}");
    }

    #[test]
    fn campaign_waves() {
        let inst = CloudInstance::dv4(16);
        // 32 tests, 16 at a time = 2 waves.
        let seq = campaign_cost(&inst, 32, 1_000_000, 1.0, 16);
        let one = campaign_cost(&inst, 16, 1_000_000, 1.0, 16);
        assert!((seq.hours / one.hours - 2.0).abs() < 1e-9);
    }
}
