//! Fig. 10: scaling across 1–4 IPUs. Crossing chips adds expensive
//! off-chip exchange and sync, so gains are positive but far from
//! linear — and sometimes fewer chips win.

use parendi_bench::{ipu_point, lr_max, sr_max, TILE_SWEEP};
use parendi_designs::Benchmark;
use parendi_machine::ipu::IpuConfig;

fn main() {
    let ipu = IpuConfig::m2000();
    let benches = [
        Benchmark::Sr(sr_max()),
        Benchmark::Lr(lr_max().saturating_sub(2).max(2)),
        Benchmark::Lr(lr_max()),
    ];
    println!("Fig. 10: speedup vs a single IPU");
    print!("{:>6}", "IPUs");
    for b in &benches {
        print!(" {:>10}", b.name());
    }
    println!();
    let circuits: Vec<_> = benches.iter().map(|b| b.build()).collect();
    let base: Vec<f64> = circuits
        .iter()
        .map(|c| ipu_point(c, TILE_SWEEP[0], &ipu).khz)
        .collect();
    for (i, &tiles) in TILE_SWEEP.iter().enumerate() {
        print!("{:>6}", i + 1);
        for (c, b) in circuits.iter().zip(&base) {
            let p = ipu_point(c, tiles, &ipu);
            print!(" {:>10.2}", p.khz / b);
        }
        println!();
    }
    println!("\nAt the reproduction's scale single-chip totals are ~1k cycles, below");
    println!("the off-chip latency floor (Fig. 5 right), so crossing chips never pays:");
    println!("the paper's own \"fewer IPUs can produce marginal gains\" regime.");

    // Extrapolation to paper scale: the paper's sr15 has ~188x our fiber
    // count; comp scales linearly with design size while the measured
    // cut/sync terms are taken from our compilations unchanged.
    const SCALE: f64 = 188.0;
    println!("\nExtrapolated to paper-size designs (comp x{SCALE:.0}, measured comm/sync):");
    print!("{:>6}", "IPUs");
    for b in &benches {
        print!(" {:>10}", b.name());
    }
    println!();
    let base_x: Vec<f64> = circuits
        .iter()
        .map(|c| {
            let p = ipu_point(c, TILE_SWEEP[0], &ipu);
            1.0 / (p.timings.comp * SCALE + p.timings.comm + p.timings.sync)
        })
        .collect();
    for (i, &tiles) in TILE_SWEEP.iter().enumerate() {
        print!("{:>6}", i + 1);
        for (c, b) in circuits.iter().zip(&base_x) {
            let p = ipu_point(c, tiles, &ipu);
            let rate = 1.0 / (p.timings.comp * SCALE + p.timings.comm + p.timings.sync);
            print!(" {:>10.2}", rate / b);
        }
        println!();
    }
    println!("\nShape check: at paper scale, 4 IPUs yield positive but sublinear");
    println!("gains (the paper reports +60% for lr9 at 4 chips).");
}
