//! The CI perf-regression gate: parses the fresh `BENCH_*.json` files a
//! bench run just wrote and fails (exit 1) when any engine column
//! regressed beyond the noise tolerance against the checked-in
//! baselines.
//!
//! Usage: `bench_check [fresh-dir]` — `fresh-dir` defaults to
//! `$PARENDI_BENCH_DIR` (else `.`), the same place the figure/gang bins
//! write to, so CI can run it right after the smoke steps with the same
//! environment.
//!
//! Baselines: every `*.json` in the crate's `baselines/` directory
//! (currently `pre_pr4.json`, the pre-unification engine,
//! `post_pr5.json`, the packed-lane engine, `post_pr6.json`, the
//! SIMD/word-interleaved engine, `post_pr7.json`, the pluggable
//! off-chip transport engine with its `bsp-shm`/`bsp-tcp`-tagged
//! fig10/fig17 rows, and `post_pr10.json`, the serve-daemon rows —
//! `serve_load`'s cold/warm scenario throughput plus the traced
//! `perf_report` point), or a single file named by
//! `$PARENDI_BASELINE`. Rows match on `(bin, design, engine, packed,
//! simd, lanes, threads)` — the `simd` tag is empty on strided rows
//! and on pre-PR6 baselines, so old baselines keep gating the strided
//! columns; rows present on only one side are skipped, so quick-mode
//! sweeps and new columns never trip the gate.
//!
//! Tolerance: 25% by default, `$PARENDI_BENCH_TOLERANCE` overrides
//! (fractional, e.g. `0.4` for noisy shared runners). The comparison
//! logic lives in [`parendi_bench::check_regressions`], which unit
//! tests pin to fail on a synthetic regression.

use parendi_bench::{bench_tolerance, check_regressions, parse_bench_json, BenchRecord};
use std::path::{Path, PathBuf};

/// Reads every `BENCH_*.json` under `dir` into one record list.
fn read_fresh(dir: &Path) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    for p in paths {
        if let Ok(text) = std::fs::read_to_string(&p) {
            let recs = parse_bench_json(&text);
            println!("fresh: {} ({} records)", p.display(), recs.len());
            out.extend(recs);
        }
    }
    out
}

/// Reads the baseline set: `$PARENDI_BASELINE` if set, else every
/// `*.json` under the crate's checked-in `baselines/`.
fn read_baselines() -> Vec<BenchRecord> {
    if let Ok(path) = std::env::var("PARENDI_BASELINE") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let recs = parse_bench_json(&text);
        println!("baseline: {path} ({} records)", recs.len());
        return recs;
    }
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("baselines");
    let mut out = Vec::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for p in paths {
        if let Ok(text) = std::fs::read_to_string(&p) {
            let recs = parse_bench_json(&text);
            println!("baseline: {} ({} records)", p.display(), recs.len());
            out.extend(recs);
        }
    }
    out
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| std::env::var("PARENDI_BENCH_DIR").unwrap_or_else(|_| ".".to_string()));
    let fresh = read_fresh(Path::new(&dir));
    let base = read_baselines();
    let tol = bench_tolerance();
    if fresh.is_empty() {
        // A gate that silently passes with nothing to check would hide a
        // broken bench step.
        eprintln!("bench_check: no BENCH_*.json found in {dir}");
        std::process::exit(1);
    }
    let matched = base
        .iter()
        .filter(|b| {
            fresh.iter().any(|f| {
                f.bin == b.bin
                    && f.design == b.design
                    && f.engine == b.engine
                    && f.packed == b.packed
                    && f.simd == b.simd
                    && f.lanes == b.lanes
                    && f.threads == b.threads
            })
        })
        .count();
    println!(
        "bench_check: {} fresh records vs {} baseline rows ({} matched), tolerance {:.0}%",
        fresh.len(),
        base.len(),
        matched,
        tol * 100.0
    );
    if matched == 0 {
        // A join that matches nothing gates nothing: if the sweep
        // shapes or design keys drift away from every baseline row, the
        // gate must say so instead of printing OK.
        eprintln!("bench_check: no fresh record matches any baseline row — key drift?");
        std::process::exit(1);
    }
    let failures = check_regressions(&fresh, &base, tol);
    if failures.is_empty() {
        println!("bench_check: OK — no engine column regressed beyond the tolerance");
        return;
    }
    eprintln!("bench_check: PERF REGRESSION ({} rows):", failures.len());
    for f in &failures {
        eprintln!("  {f}");
    }
    std::process::exit(1);
}
