//! A mesh SoC of RISC-V cores simulated in parallel: builds sr3 (9
//! routers + 9 pico cores), compiles it for an IPU, runs it under BSP,
//! and reports NoC traffic and the per-phase cost breakdown.
//!
//! ```sh
//! cargo run --release --example riscv_soc
//! ```

use parendi::core::{compile, PartitionConfig};
use parendi::designs::noc::{build_mesh, MeshConfig};
use parendi::machine::ipu::IpuConfig;
use parendi::rtl::RegId;
use parendi::sim::{ipu_timings, BspSimulator};

fn main() {
    let circuit = build_mesh(&MeshConfig::small(3));
    let stats = parendi::rtl::stats(&circuit);
    println!(
        "sr3: {} nodes, {} registers, ~{} gates",
        stats.nodes, stats.regs, stats.gates
    );

    let comp = compile(&circuit, &PartitionConfig::with_tiles(256)).expect("compiles");
    println!(
        "{} fibers -> {} tiles, utilization {:.0}%",
        comp.fibers.len(),
        comp.partition.tiles_used(),
        100.0 * comp.partition.utilization()
    );

    let mut bsp = BspSimulator::new(&circuit, &comp.partition, 4);
    let secs = bsp.run(2000);
    println!("ran 2000 cycles on 4 host threads in {secs:.2}s");

    // Tally NoC statistics from the architectural state.
    let value = |name: &str| -> u64 {
        circuit
            .regs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.name.ends_with(name))
            .map(|(i, _)| bsp.reg_value(RegId(i as u32)).to_u64())
            .sum()
    };
    let injected = value(".injected");
    let delivered = value(".delivered");
    let retired = value(".retired");
    println!("NoC: {injected} flits injected, {delivered} delivered");
    println!("cores retired {retired} instructions in total");
    assert!(delivered > 0 && retired > 0, "the SoC must be alive");

    let ipu = IpuConfig::m2000();
    let t = ipu_timings(&comp, &ipu);
    println!(
        "IPU model: {:.1} kHz (comp {:.0}, comm {:.0}, sync {:.0})",
        t.rate_khz(&ipu),
        t.comp,
        t.comm,
        t.sync
    );
}
