//! The optimizer must shrink the real benchmark designs without
//! changing their behaviour (checked architecturally via the golden
//! models where available).

use parendi_designs::{isa, pico, sha256, Benchmark};
use parendi_rtl::optimize;
use parendi_sim::Simulator;

#[test]
fn miner_shrinks_substantially() {
    // The SHA-256 pipelines carry 128 K-constants and fixed padding
    // words: folding must collapse the constant block inputs. (Each
    // pipeline stage reads distinct registers, so CSE finds little —
    // the sigma shapes are structurally unique per stage.)
    let c = Benchmark::Bitcoin.build();
    let (o, stats) = optimize(&c);
    assert!(
        stats.folded >= 50,
        "constant padding/IV math must fold: {stats:?}"
    );
    assert!(stats.nodes_after < stats.nodes_before, "{stats:?}");
    o.validate().unwrap();
}

#[test]
fn optimized_miner_finds_the_same_nonce() {
    let cfg = sha256::MinerConfig {
        target: 1 << 28,
        ..Default::default()
    };
    let c = sha256::build_miner(&cfg);
    let (o, _) = optimize(&c);
    let expect = (0u32..10_000)
        .find(|&n| sha256::soft_miner_digest(&cfg, n)[0] < cfg.target)
        .expect("target reachable");
    let mut sim = Simulator::new(&o);
    sim.step_n(expect as u64 + 140);
    assert_eq!(sim.output("found").unwrap().to_u64(), 1);
    assert_eq!(sim.output("found_nonce").unwrap().to_u64() as u32, expect);
}

#[test]
fn optimized_pico_still_matches_golden() {
    let prog = isa::programs::fibonacci(11);
    let mut golden = isa::GoldenRv32::new(256);
    golden.run(&prog, 100_000);

    let c = pico::build_pico(&pico::PicoConfig::new(prog));
    let (o, stats) = optimize(&c);
    assert!(stats.nodes_after < stats.nodes_before);
    let halted = parendi_rtl::RegId(o.regs.iter().position(|r| r.name == "halted").unwrap() as u32);
    let rf =
        parendi_rtl::ArrayId(o.arrays.iter().position(|a| a.name == "regfile").unwrap() as u32);
    let mut sim = Simulator::new(&o);
    for _ in 0..20_000 {
        if sim.reg_value(halted).to_u64() == 1 {
            break;
        }
        sim.step();
    }
    assert_eq!(
        sim.reg_value(halted).to_u64(),
        1,
        "optimized core must still halt"
    );
    assert_eq!(
        sim.array_value(rf, isa::reg::A0).to_u64() as u32,
        golden.regs[10]
    );
}

#[test]
fn every_benchmark_survives_optimization() {
    for bench in [
        Benchmark::Vta,
        Benchmark::Mc,
        Benchmark::Sr(2),
        Benchmark::Prng(8),
        Benchmark::Rocket,
    ] {
        let c = bench.build();
        let (o, stats) = optimize(&c);
        assert!(o.validate().is_ok(), "{}: {stats:?}", bench.name());
        assert!(stats.nodes_after <= stats.nodes_before, "{}", bench.name());
    }
}
