//! The PRNG microbenchmark of §4.1 (Fig. 4): `n` independent xorshift64
//! generators, each one fiber of "three XORs and three shifts" \[37\].
//!
//! Because the generators never communicate, `t_comm = 0` and the design
//! isolates the synchronization term of Eq. 1.

use parendi_rtl::{Bits, Builder, Circuit};

/// Builds one xorshift64 fiber named `name` with the given seed.
pub fn build_xorshift_into(b: &mut Builder, name: &str, seed: u64) {
    let s = b.reg_init(name, Bits::from_u64(64, if seed == 0 { 1 } else { seed }));
    let t1 = b.shli(s.q(), 13);
    let x1 = b.xor(s.q(), t1);
    let t2 = b.lshri(x1, 7);
    let x2 = b.xor(x1, t2);
    let t3 = b.shli(x2, 17);
    let x3 = b.xor(x2, t3);
    b.connect(s, x3);
}

/// Builds the `n`-generator PRNG bank.
pub fn build_prng_bank(n: u32) -> Circuit {
    let mut b = Builder::new(format!("prng{n}"));
    for i in 0..n {
        build_xorshift_into(
            &mut b,
            &format!("g{i}"),
            0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1),
        );
    }
    b.finish().expect("prng bank must validate")
}

/// The software xorshift64 step, for verification.
pub fn soft_xorshift64(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_rtl::RegId;
    use parendi_sim::Simulator;

    #[test]
    fn generators_match_software_and_stay_independent() {
        let c = build_prng_bank(8);
        assert_eq!(c.regs.len(), 8);
        let mut sim = Simulator::new(&c);
        let seeds: Vec<u64> = (0..8).map(|i| sim.reg_value(RegId(i)).to_u64()).collect();
        sim.step_n(5);
        for (i, &seed) in seeds.iter().enumerate() {
            let mut s = seed;
            for _ in 0..5 {
                s = soft_xorshift64(s);
            }
            assert_eq!(sim.reg_value(RegId(i as u32)).to_u64(), s, "generator {i}");
        }
    }

    #[test]
    fn fibers_are_independent() {
        let c = build_prng_bank(16);
        let costs = parendi_graph::CostModel::of(&c);
        let fs = parendi_graph::extract_fibers(&c, &costs);
        assert_eq!(fs.len(), 16);
        let adj = parendi_graph::adjacency(&c, &fs);
        assert!(
            adj.neighbors.iter().all(|n| n.is_empty()),
            "PRNGs must not communicate"
        );
        assert!((fs.duplication_factor() - 1.0).abs() < 1e-9);
    }
}
