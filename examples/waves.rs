//! Dump a VCD waveform of a RISC-V core executing Fibonacci, plus the
//! equivalent Verilog netlist — the artifacts a hardware engineer would
//! pull out of a conventional flow.
//!
//! ```sh
//! cargo run --release --example waves
//! # then open /tmp/pico_fib.vcd in GTKWave, /tmp/pico_fib.v in an editor
//! ```

use parendi::designs::{isa, pico};
use parendi::rtl::{optimize, to_verilog};
use parendi::sim::{dump_vcd, Simulator};
use std::fs::File;
use std::io::{BufWriter, Write};

fn main() -> std::io::Result<()> {
    let circuit = pico::build_pico(&pico::PicoConfig::new(isa::programs::fibonacci(10)));
    let (optimized, stats) = optimize(&circuit);
    println!(
        "pico: {} nodes -> {} after optimization ({} folded, {} deduped)",
        stats.nodes_before, stats.nodes_after, stats.folded, stats.deduped
    );

    let vcd_path = "/tmp/pico_fib.vcd";
    let mut sim = Simulator::new(&optimized);
    dump_vcd(&mut sim, 300, BufWriter::new(File::create(vcd_path)?))?;
    println!("wrote {} cycles of waveform to {vcd_path}", sim.cycle());

    let v_path = "/tmp/pico_fib.v";
    let verilog = to_verilog(&circuit);
    File::create(v_path)?.write_all(verilog.as_bytes())?;
    println!(
        "wrote {} lines of Verilog to {v_path}",
        verilog.lines().count()
    );

    // Prove the run did the work: fib(10) = 55 in the register file.
    let rf = parendi::rtl::ArrayId(
        optimized
            .arrays
            .iter()
            .position(|a| a.name == "regfile")
            .unwrap() as u32,
    );
    println!(
        "a0 = {} (expected 55)",
        sim.array_value(rf, isa::reg::A0).to_u64()
    );
    Ok(())
}
