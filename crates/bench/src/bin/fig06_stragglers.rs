//! Fig. 6: straggler fibers and performance-scaling regions for the
//! three small designs (pico, bitcoin, rocket).
//!
//! (b) fiber computation-cycle distributions — both modeled (cost model
//! over extracted fibers) and *measured* (the BSP engine's per-tile
//! compute histogram, `BspPhases::per_tile`); (c) the per-cycle cost
//! breakdown as tiles double — imbalanced designs plateau at the
//! straggler almost immediately.

use parendi_bench::{ipu_point, quick, write_bench_json, BenchRecord};
use parendi_core::{compile, PartitionConfig};
use parendi_designs::Benchmark;
use parendi_graph::{extract_fibers, CostModel};
use parendi_machine::ipu::IpuConfig;
use parendi_sim::BspSimulator;

fn main() {
    let ipu = IpuConfig::m2000();
    let mut records = Vec::new();
    for bench in Benchmark::small_three() {
        let c = bench.build();
        let costs = CostModel::of(&c);
        let fs = extract_fibers(&c, &costs);
        let mut cyc: Vec<u64> = fs.fibers.iter().map(|f| f.ipu_cost).collect();
        cyc.sort_unstable();
        let total: u64 = cyc.iter().sum();
        println!("== {} ==", bench.name());
        println!(
            "Fig. 6b: {} fibers | min {} p50 {} p90 {} max {} | m_crit ~ {:.0}",
            cyc.len(),
            cyc[0],
            cyc[cyc.len() / 2],
            cyc[cyc.len() * 9 / 10],
            cyc[cyc.len() - 1],
            total as f64 / cyc[cyc.len() - 1] as f64,
        );

        // Measured counterpart: the engine's per-tile compute histogram
        // over a timed run — load imbalance observed live, next to the
        // modeled fiber-cost distribution above.
        let comp = compile(&c, &PartitionConfig::with_tiles(64)).expect("fits 64 tiles");
        let mut sim = BspSimulator::new(&c, &comp.partition, 4);
        sim.run(20); // warm the persistent pool
        let cycles: u64 = if quick() { 100 } else { 400 };
        let ph = sim.run_timed(cycles);
        records.push(BenchRecord::from_phases(
            "fig06",
            bench.name(),
            "bsp",
            false,
            comp.partition.chips,
            comp.partition.tiles_used(),
            1,
            4,
            cycles,
            cycles as f64 / ph.total_s,
            &ph,
        ));
        let mut ns: Vec<f64> = ph
            .per_tile
            .iter()
            .map(|t| t.compute_s * 1e9 / cycles as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        let max = ns[ns.len() - 1];
        println!(
            "Fig. 6b (measured, {} tiles): per-tile compute ns/cyc \
             min {:.0} p50 {:.0} p90 {:.0} max {:.0} | utilization {:.2}",
            ns.len(),
            ns[0],
            ns[ns.len() / 2],
            ns[ns.len() * 9 / 10],
            max,
            if max > 0.0 { mean / max } else { 1.0 },
        );
        println!(
            "Fig. 6c: {:>6} {:>10} {:>10} {:>10} {:>10}",
            "tiles", "t_comp", "t_comm", "t_sync", "norm-total"
        );
        let mut base_total = None;
        let mut tiles = 1u32;
        while tiles <= 1024 {
            let p = ipu_point(&c, tiles, &ipu);
            let total = p.timings.total();
            let base = *base_total.get_or_insert(total);
            println!(
                "        {:>6} {:>10.0} {:>10.0} {:>10.0} {:>10.3}",
                p.tiles_used,
                p.timings.comp,
                p.timings.comm,
                p.timings.sync,
                total / base
            );
            tiles *= 4;
        }
        println!();
    }
    match write_bench_json("fig06", &records) {
        Ok(path) => println!("wrote {} ({} records)\n", path.display(), records.len()),
        Err(e) => println!("could not write BENCH_fig06.json: {e}\n"),
    }
    println!("Shape check: pico plateaus immediately (giant straggler);");
    println!("bitcoin keeps reducing t_comp through hundreds of tiles.");
}
