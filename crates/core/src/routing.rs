//! Executable point-to-point routing: who sends what to whom, at which
//! mailbox offset.
//!
//! [`Routing`] is the compiled form of the BSP communication phase. For
//! every register and every array write port it records the producer
//! tile, the explicit list of consumer tiles, and — per consumer — the
//! pre-resolved word offset inside the producer→consumer *channel*
//! buffer. The execution engine (`parendi-sim`'s `BspSimulator`) copies
//! straight through these offsets with no locks and no allocation, and
//! the [`ExchangePlan`] cost figures are a derived view
//! ([`Routing::exchange_plan`]) of the very same structure, so the cost
//! model and the engine can never disagree about what moves.
//!
//! # Channel layout
//!
//! Each ordered tile pair with traffic gets one [`ChannelSpec`]. Its
//! buffer is laid out as:
//!
//! ```text
//! [ register section: one slot per routed register, RegId order ]
//! [ port section: one record per routed write port, (array, port) order ]
//! ```
//!
//! A port record is `enable` (1 word), `index` (1 word), then
//! `data_words` words of data — [`PORT_RECORD_HEADER_WORDS`] + data.

use crate::exchange::ExchangePlan;
use crate::partition::Partition;
use parendi_graph::fiber::{SinkKind, PORT_RECORD_OVERHEAD_BYTES};
use parendi_rtl::bits::words_for;
use parendi_rtl::{ArrayId, Circuit, RegId};
use std::collections::HashMap;

/// Mailbox words occupied by a port record before its data: the enable
/// word and the (range-folded) index word.
pub const PORT_RECORD_HEADER_WORDS: u32 = 2;

/// Whether a channel stays on one chip or crosses a chip boundary.
///
/// Derived from [`Routing::tile_chip`] at compile time: a channel is
/// [`OffChip`](ChannelClass::OffChip) iff its producer and consumer
/// tiles live on different chips. The execution engine uses the class to
/// pick the mailbox fabric (per-tile-pair on-chip boxes vs the wider
/// per-chip-pair aggregates) and the derived [`ExchangePlan`] uses it to
/// attribute bytes to the off-chip `m×b` cost, so the engine and the
/// model can never disagree about which traffic crosses chips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelClass {
    /// Producer and consumer share a chip.
    OnChip,
    /// The channel crosses a chip boundary (an order of magnitude
    /// slower on the real machine — Fig. 5 right).
    OffChip,
}

/// One delivery of a value: which tile receives it, over which channel,
/// at which word offset inside the channel buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Consumer tile.
    pub tile: u32,
    /// Index into [`Routing::channels`].
    pub channel: u32,
    /// Word offset of the slot within the channel buffer.
    pub word_off: u32,
}

/// Where one register's next-value travels each cycle.
#[derive(Clone, Debug)]
pub struct RegRoute {
    /// The register.
    pub reg: RegId,
    /// Tile computing its next-value (`u32::MAX` if unowned, which a
    /// validated circuit never produces).
    pub producer: u32,
    /// Value width in 64-bit words.
    pub words: u32,
    /// Remote consumers (the producer reads its own copy locally).
    pub hops: Vec<Hop>,
}

/// Where one array write port's `(enable, index, data)` record travels.
#[derive(Clone, Debug)]
pub struct PortRoute {
    /// The array written.
    pub array: ArrayId,
    /// Port index within the array's `write_ports`.
    pub port: u32,
    /// Tile computing the port's cone.
    pub producer: u32,
    /// Data width in 64-bit words.
    pub data_words: u32,
    /// Remote holders of the array (the producer applies its own record
    /// locally); `word_off` points at the record's enable word.
    pub hops: Vec<Hop>,
}

/// One producer→consumer mailbox buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Producer tile.
    pub from: u32,
    /// Consumer tile.
    pub to: u32,
    /// Words of the register section.
    pub reg_words: u32,
    /// Words of the port-record section.
    pub port_words: u32,
    /// Whether the channel crosses a chip boundary.
    pub class: ChannelClass,
}

impl ChannelSpec {
    /// Total buffer size in words.
    pub fn words(&self) -> u32 {
        self.reg_words + self.port_words
    }
}

/// One off-chip channel's slice of its chip-pair aggregate buffer.
///
/// Word counts are single-scenario (`lanes == 1`) words, exactly
/// [`ChannelSpec::words`]; an executing engine scales the physical
/// buffers by its lane count and packing, but the slice order and the
/// relative layout are fixed here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChipPairChannel {
    /// Index into [`Routing::channels`].
    pub channel: u32,
    /// Producer tile (on `from_chip`).
    pub from_tile: u32,
    /// Consumer tile (on `to_chip`).
    pub to_tile: u32,
    /// Words of the channel's register section.
    pub reg_words: u32,
    /// Words of the channel's port-record section.
    pub port_words: u32,
    /// First word of this channel's slice inside the pair aggregate.
    pub word_base: u32,
}

/// The aggregate buffer of one ordered chip pair: every off-chip
/// channel between the two chips, concatenated in channel-index order.
///
/// This is the unit a transport backend moves per cycle — one frame,
/// one shared-memory segment, one socket stream per ordered pair — and
/// the slice layout both endpoint processes must agree on. Pairs are
/// enumerated in first-appearance order over the `(from, to)`-sorted
/// channel list, which is exactly the order the execution engine
/// assigns its per-pair aggregate mailboxes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChipPairPlan {
    /// Producing chip.
    pub from_chip: u32,
    /// Consuming chip.
    pub to_chip: u32,
    /// Total aggregate size in single-scenario words.
    pub words: u32,
    /// The member channels; `word_base` slices tile `[0, words)` exactly.
    pub channels: Vec<ChipPairChannel>,
}

/// One chip's view of the off-chip exchange: every ordered chip pair it
/// produces into or consumes from. Both endpoint chips carry identical
/// copies of a shared pair, so two processes can each parse their own
/// plan and agree on every frame layout without further negotiation.
///
/// The plan serializes to a line-oriented text form ([`to_text`] /
/// [`from_text`]) so it can be handed to another process over a pipe,
/// a file, or a socket before the data path comes up.
///
/// [`to_text`]: ChipExchangePlan::to_text
/// [`from_text`]: ChipExchangePlan::from_text
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChipExchangePlan {
    /// The chip this plan describes.
    pub chip: u32,
    /// Every pair with `from_chip == chip` or `to_chip == chip`, in
    /// global pair order.
    pub pairs: Vec<ChipPairPlan>,
}

impl ChipExchangePlan {
    /// Serializes the plan to its text form. Round-trips exactly
    /// through [`from_text`](Self::from_text).
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "chip {}", self.chip).unwrap();
        for p in &self.pairs {
            writeln!(s, "pair {} {} words {}", p.from_chip, p.to_chip, p.words).unwrap();
            for c in &p.channels {
                writeln!(
                    s,
                    "  ch {} from {} to {} reg {} port {} base {}",
                    c.channel, c.from_tile, c.to_tile, c.reg_words, c.port_words, c.word_base
                )
                .unwrap();
            }
        }
        s
    }

    /// Parses the text form produced by [`to_text`](Self::to_text).
    /// Validates structure and slice layout (each pair's channel slices
    /// must tile `[0, words)` in order); any corruption is an `Err`.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut chip: Option<u32> = None;
        let mut pairs: Vec<ChipPairPlan> = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let err = |m: String| format!("line {}: {m}: {raw:?}", ln + 1);
            let toks: Vec<&str> = line.split_whitespace().collect();
            let num = |i: usize, what: &str| -> Result<u32, String> {
                toks.get(i)
                    .ok_or_else(|| err(format!("missing {what}")))?
                    .parse::<u32>()
                    .map_err(|_| err(format!("bad {what}")))
            };
            let kw = |i: usize, want: &str| -> Result<(), String> {
                if toks.get(i) == Some(&want) {
                    Ok(())
                } else {
                    Err(err(format!("expected `{want}`")))
                }
            };
            match toks.first() {
                Some(&"chip") => {
                    if chip.is_some() {
                        return Err(err("duplicate chip record".into()));
                    }
                    chip = Some(num(1, "chip id")?);
                }
                Some(&"pair") => {
                    kw(3, "words")?;
                    pairs.push(ChipPairPlan {
                        from_chip: num(1, "from chip")?,
                        to_chip: num(2, "to chip")?,
                        words: num(4, "word count")?,
                        channels: Vec::new(),
                    });
                }
                Some(&"ch") => {
                    kw(2, "from")?;
                    kw(4, "to")?;
                    kw(6, "reg")?;
                    kw(8, "port")?;
                    kw(10, "base")?;
                    let c = ChipPairChannel {
                        channel: num(1, "channel index")?,
                        from_tile: num(3, "from tile")?,
                        to_tile: num(5, "to tile")?,
                        reg_words: num(7, "reg words")?,
                        port_words: num(9, "port words")?,
                        word_base: num(11, "word base")?,
                    };
                    let p = pairs
                        .last_mut()
                        .ok_or_else(|| err("channel before any pair".into()))?;
                    let fill: u32 = p.channels.iter().map(|c| c.reg_words + c.port_words).sum();
                    if c.word_base != fill {
                        return Err(err(format!(
                            "channel slice at word {} but the aggregate is filled to {fill}",
                            c.word_base
                        )));
                    }
                    p.channels.push(c);
                }
                _ => return Err(err("unknown record".into())),
            }
        }
        let chip = chip.ok_or("missing chip record")?;
        for p in &pairs {
            let fill: u32 = p.channels.iter().map(|c| c.reg_words + c.port_words).sum();
            if fill != p.words {
                return Err(format!(
                    "pair {}->{}: channel slices fill {fill} of {} words",
                    p.from_chip, p.to_chip, p.words
                ));
            }
            if p.from_chip != chip && p.to_chip != chip {
                return Err(format!(
                    "pair {}->{} does not involve chip {chip}",
                    p.from_chip, p.to_chip
                ));
            }
        }
        Ok(ChipExchangePlan { chip, pairs })
    }
}

/// The complete point-to-point exchange of a partition.
#[derive(Clone, Debug)]
pub struct Routing {
    /// Number of tiles.
    pub tiles: u32,
    /// Chip of each tile.
    pub tile_chip: Vec<u32>,
    /// All channels with traffic, sorted by `(from, to)`.
    pub channels: Vec<ChannelSpec>,
    /// One route per register, indexed by `RegId`.
    pub reg_routes: Vec<RegRoute>,
    /// One route per array write port, in `(array, port)` order.
    pub port_routes: Vec<PortRoute>,
    /// Tiles holding a copy of each array, indexed by `ArrayId` (sorted).
    pub array_holders: Vec<Vec<u32>>,
    /// Tile computing each primary output's cone, indexed by output id
    /// (`u32::MAX` if no process owns the output fiber, which a complete
    /// partition never produces). Output values never enter the
    /// exchange — they back the engine's `peek_output` testbench API.
    pub output_tiles: Vec<u32>,
}

impl Routing {
    /// Compiles the exchange of `partition`.
    pub fn new(circuit: &Circuit, partition: &Partition) -> Self {
        let tiles = partition.processes.len() as u32;
        let tile_chip: Vec<u32> = partition.processes.iter().map(|p| p.chip).collect();

        // Producers.
        let mut reg_producer = vec![u32::MAX; circuit.regs.len()];
        let mut port_producer: HashMap<(u32, u32), u32> = HashMap::new();
        let mut output_tiles = vec![u32::MAX; circuit.outputs.len()];
        for (pi, p) in partition.processes.iter().enumerate() {
            for &f in &p.fibers {
                match partition.fiber_sinks[f.index()] {
                    SinkKind::Reg(r) => reg_producer[r.index()] = pi as u32,
                    SinkKind::ArrayPort { array, port } => {
                        port_producer.insert((array.0, port), pi as u32);
                    }
                    SinkKind::Output(o) => output_tiles[o as usize] = pi as u32,
                }
            }
        }

        // Consumers: remote readers per register, holder tiles per array.
        let mut reg_consumers: Vec<Vec<u32>> = vec![Vec::new(); circuit.regs.len()];
        let mut array_holders: Vec<Vec<u32>> = vec![Vec::new(); circuit.arrays.len()];
        for (pi, p) in partition.processes.iter().enumerate() {
            for &r in &p.regs_read {
                let w = reg_producer[r.index()];
                if w != u32::MAX && w != pi as u32 {
                    reg_consumers[r.index()].push(pi as u32);
                }
            }
            for &a in &p.arrays {
                array_holders[a.index()].push(pi as u32);
            }
        }

        // Pass 1: discover channels and size their register sections.
        let mut chan_index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut channels: Vec<ChannelSpec> = Vec::new();
        let mut chan_of = |from: u32, to: u32, channels: &mut Vec<ChannelSpec>| -> u32 {
            *chan_index.entry((from, to)).or_insert_with(|| {
                let class = if tile_chip[from as usize] == tile_chip[to as usize] {
                    ChannelClass::OnChip
                } else {
                    ChannelClass::OffChip
                };
                channels.push(ChannelSpec {
                    from,
                    to,
                    reg_words: 0,
                    port_words: 0,
                    class,
                });
                channels.len() as u32 - 1
            })
        };
        for (ri, consumers) in reg_consumers.iter().enumerate() {
            let producer = reg_producer[ri];
            let words = words_for(circuit.regs[ri].width) as u32;
            for &c in consumers {
                let ch = chan_of(producer, c, &mut channels);
                channels[ch as usize].reg_words += words;
            }
        }
        for (ai, a) in circuit.arrays.iter().enumerate() {
            let data_words = words_for(a.width) as u32;
            for port in 0..a.write_ports.len() as u32 {
                let Some(&producer) = port_producer.get(&(ai as u32, port)) else {
                    continue;
                };
                for &h in &array_holders[ai] {
                    if h == producer {
                        continue;
                    }
                    let ch = chan_of(producer, h, &mut channels);
                    channels[ch as usize].port_words += PORT_RECORD_HEADER_WORDS + data_words;
                }
            }
        }

        // Canonical channel order; remap indices.
        let mut order: Vec<u32> = (0..channels.len() as u32).collect();
        order.sort_by_key(|&i| (channels[i as usize].from, channels[i as usize].to));
        let mut remap = vec![0u32; channels.len()];
        for (new, &old) in order.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut sorted = channels.clone();
        for (&old, ch) in order.iter().zip(sorted.iter_mut()) {
            *ch = channels[old as usize];
        }
        let channels = sorted;
        let chan_index: HashMap<(u32, u32), u32> = chan_index
            .into_iter()
            .map(|(k, v)| (k, remap[v as usize]))
            .collect();

        // Pass 2: assign slot offsets. Registers pack from offset 0 in
        // RegId order; port records pack after the register section in
        // (array, port) order.
        let mut reg_fill = vec![0u32; channels.len()];
        let mut reg_routes = Vec::with_capacity(circuit.regs.len());
        for (ri, consumers) in reg_consumers.iter().enumerate() {
            let producer = reg_producer[ri];
            let words = words_for(circuit.regs[ri].width) as u32;
            let mut hops = Vec::with_capacity(consumers.len());
            for &c in consumers {
                let ch = chan_index[&(producer, c)];
                hops.push(Hop {
                    tile: c,
                    channel: ch,
                    word_off: reg_fill[ch as usize],
                });
                reg_fill[ch as usize] += words;
            }
            reg_routes.push(RegRoute {
                reg: RegId(ri as u32),
                producer,
                words,
                hops,
            });
        }
        let mut port_fill: Vec<u32> = channels.iter().map(|c| c.reg_words).collect();
        let mut port_routes = Vec::new();
        for (ai, a) in circuit.arrays.iter().enumerate() {
            let data_words = words_for(a.width) as u32;
            for port in 0..a.write_ports.len() as u32 {
                let Some(&producer) = port_producer.get(&(ai as u32, port)) else {
                    continue;
                };
                let mut hops = Vec::new();
                for &h in &array_holders[ai] {
                    if h == producer {
                        continue;
                    }
                    let ch = chan_index[&(producer, h)];
                    hops.push(Hop {
                        tile: h,
                        channel: ch,
                        word_off: port_fill[ch as usize],
                    });
                    port_fill[ch as usize] += PORT_RECORD_HEADER_WORDS + data_words;
                }
                port_routes.push(PortRoute {
                    array: ArrayId(ai as u32),
                    port,
                    producer,
                    data_words,
                    hops,
                });
            }
        }
        debug_assert!(channels
            .iter()
            .zip(&port_fill)
            .all(|(c, &f)| f == c.words()));

        Routing {
            tiles,
            tile_chip,
            channels,
            reg_routes,
            port_routes,
            array_holders,
            output_tiles,
        }
    }

    /// Whether the hop travels over an off-chip channel.
    pub fn hop_crosses_chip(&self, hop: &Hop) -> bool {
        self.channels[hop.channel as usize].class == ChannelClass::OffChip
    }

    /// The channel index for the ordered pair `(from, to)`, if any.
    pub fn channel(&self, from: u32, to: u32) -> Option<u32> {
        self.channels
            .binary_search_by_key(&(from, to), |c| (c.from, c.to))
            .ok()
            .map(|i| i as u32)
    }

    /// Total words flowing out of each tile per cycle (fanout included) —
    /// the executable counterpart of `tile_out_bytes / 8`.
    pub fn tile_out_words(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.tiles as usize];
        for c in &self.channels {
            out[c.from as usize] += c.words() as u64;
        }
        out
    }

    /// Derives each chip's serializable view of the off-chip exchange:
    /// one [`ChipExchangePlan`] per chip, with every ordered chip pair
    /// the chip touches and the per-channel slice layout of each pair's
    /// aggregate buffer.
    ///
    /// Pair enumeration and intra-pair channel order follow the channel
    /// index order (the list is sorted by `(from, to)`), which is the
    /// exact order the execution engine assigns its per-pair aggregate
    /// mailboxes — so a transport that frames `plan.pairs[i]` moves the
    /// engine's mailbox `onchip + i` and both views agree byte for byte.
    pub fn chip_exchange_plans(&self) -> Vec<ChipExchangePlan> {
        let chips = self.tile_chip.iter().copied().max().map_or(0, |m| m + 1);
        let mut pair_index: HashMap<(u32, u32), usize> = HashMap::new();
        let mut pairs: Vec<ChipPairPlan> = Vec::new();
        for (ci, ch) in self.channels.iter().enumerate() {
            if ch.class != ChannelClass::OffChip {
                continue;
            }
            let key = (
                self.tile_chip[ch.from as usize],
                self.tile_chip[ch.to as usize],
            );
            let pi = *pair_index.entry(key).or_insert_with(|| {
                pairs.push(ChipPairPlan {
                    from_chip: key.0,
                    to_chip: key.1,
                    words: 0,
                    channels: Vec::new(),
                });
                pairs.len() - 1
            });
            let p = &mut pairs[pi];
            p.channels.push(ChipPairChannel {
                channel: ci as u32,
                from_tile: ch.from,
                to_tile: ch.to,
                reg_words: ch.reg_words,
                port_words: ch.port_words,
                word_base: p.words,
            });
            p.words += ch.words();
        }
        let mut plans: Vec<ChipExchangePlan> = (0..chips)
            .map(|c| ChipExchangePlan {
                chip: c,
                pairs: Vec::new(),
            })
            .collect();
        for p in &pairs {
            plans[p.from_chip as usize].pairs.push(p.clone());
            plans[p.to_chip as usize].pairs.push(p.clone());
        }
        plans
    }

    /// Derives the per-cycle [`ExchangePlan`] cost figures from the
    /// routes. This is the *only* computation of exchange volumes in the
    /// workspace: the engine executes the same hops this sums over.
    pub fn exchange_plan(&self, circuit: &Circuit, differential: bool) -> ExchangePlan {
        let n = self.tiles as usize;
        let mut out = ExchangePlan {
            tile_out_bytes: vec![0; n],
            tile_in_bytes: vec![0; n],
            tile_out_bit1_bytes: vec![0; n],
            tile_in_bit1_bytes: vec![0; n],
            ..Default::default()
        };

        // Register routes: every hop moves the full value. Single-bit
        // registers are tracked separately — they are the slots a
        // packed-lane gang moves at 64 scenarios per word, and
        // `ExchangePlan::scaled_by_lanes` scales them by packed words.
        for route in &self.reg_routes {
            if route.producer == u32::MAX {
                continue;
            }
            let bytes = route.words as u64 * 8;
            let bit1 = circuit.regs[route.reg.index()].width == 1;
            let (mut crosses_tile, mut crosses_chip) = (false, false);
            for hop in &route.hops {
                crosses_tile = true;
                out.tile_out_bytes[route.producer as usize] += bytes;
                out.tile_in_bytes[hop.tile as usize] += bytes;
                if bit1 {
                    out.tile_out_bit1_bytes[route.producer as usize] += bytes;
                    out.tile_in_bit1_bytes[hop.tile as usize] += bytes;
                }
                if self.hop_crosses_chip(hop) {
                    out.offchip_total_bytes += bytes;
                    if bit1 {
                        out.offchip_bit1_bytes += bytes;
                    }
                    crosses_chip = true;
                }
            }
            if crosses_tile {
                out.onchip_cut_bytes += bytes;
                if bit1 {
                    out.onchip_cut_bit1_bytes += bytes;
                }
            }
            if crosses_chip {
                out.offchip_cut_bytes += bytes;
                if bit1 {
                    out.offchip_cut_bit1_bytes += bytes;
                }
            }
        }

        // Port routes: differential records (or whole-array transfers
        // with the optimization disabled) to every remote holder.
        let mut pi = 0usize;
        for (ai, a) in circuit.arrays.iter().enumerate() {
            let full_bytes = a.size_bytes();
            let (mut crossed_tile, mut crossed_chip) = (false, false);
            let mut diff_sum = 0u64;
            while pi < self.port_routes.len() && self.port_routes[pi].array.index() == ai {
                let route = &self.port_routes[pi];
                pi += 1;
                let diff_bytes = route.data_words as u64 * 8 + PORT_RECORD_OVERHEAD_BYTES;
                diff_sum += diff_bytes;
                let payload = if differential { diff_bytes } else { full_bytes };
                for hop in &route.hops {
                    crossed_tile = true;
                    out.tile_out_bytes[route.producer as usize] += payload;
                    out.tile_in_bytes[hop.tile as usize] += payload;
                    if self.hop_crosses_chip(hop) {
                        out.offchip_total_bytes += payload;
                        crossed_chip = true;
                    }
                }
            }
            let cut = if differential { diff_sum } else { full_bytes };
            if crossed_tile {
                out.onchip_cut_bytes += cut;
            }
            if crossed_chip {
                out.offchip_cut_bytes += cut;
            }
        }

        out.max_tile_onchip_bytes = (0..n)
            .map(|i| out.tile_out_bytes[i] + out.tile_in_bytes[i])
            .max()
            .unwrap_or(0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;
    use crate::stages::compile;
    use parendi_rtl::Builder;

    fn ring(n: usize) -> Circuit {
        let mut b = Builder::new("ring");
        let regs: Vec<_> = (0..n).map(|i| b.reg(format!("r{i}"), 16, 0)).collect();
        for i in 0..n {
            let prev = regs[(i + n - 1) % n].q();
            let k = b.lit(16, 3);
            let v = b.add(prev, k);
            b.connect(regs[i], v);
        }
        b.finish().unwrap()
    }

    #[test]
    fn ring_routes_point_to_point() {
        let c = ring(8);
        let comp = compile(&c, &PartitionConfig::with_tiles(8)).unwrap();
        let routing = &comp.routing;
        assert_eq!(routing.tiles, 8);
        // Every register has exactly one remote consumer (the next ring
        // element lives on another tile at 8 tiles / 8 fibers).
        for route in &routing.reg_routes {
            assert!(route.producer != u32::MAX);
            assert_eq!(route.hops.len(), 1, "ring reg fans out to one tile");
            assert_ne!(route.hops[0].tile, route.producer);
        }
        // Channel offsets tile the buffers exactly.
        for (ci, ch) in routing.channels.iter().enumerate() {
            let mut covered = vec![false; ch.words() as usize];
            for route in &routing.reg_routes {
                for hop in &route.hops {
                    if hop.channel == ci as u32 {
                        for w in hop.word_off..hop.word_off + route.words {
                            assert!(!covered[w as usize], "overlapping slot");
                            covered[w as usize] = true;
                        }
                    }
                }
            }
            assert!(covered.iter().all(|&c| c), "holes in channel {ci}");
        }
    }

    #[test]
    fn plan_is_derived_from_routes() {
        let c = ring(16);
        let mut cfg = PartitionConfig::with_tiles(8);
        cfg.tiles_per_chip = 4;
        let comp = compile(&c, &cfg).unwrap();
        let replanned = comp.routing.exchange_plan(&c, cfg.differential_exchange);
        assert_eq!(comp.plan.tile_out_bytes, replanned.tile_out_bytes);
        assert_eq!(comp.plan.tile_in_bytes, replanned.tile_in_bytes);
        assert_eq!(
            comp.plan.max_tile_onchip_bytes,
            replanned.max_tile_onchip_bytes
        );
        assert_eq!(comp.plan.offchip_total_bytes, replanned.offchip_total_bytes);
        // The executable word volume matches the modeled byte volume.
        let out_words = comp.routing.tile_out_words();
        for (tile, &words) in out_words.iter().enumerate() {
            let reg_and_record_bytes = words * 8;
            // Modeled bytes add the 4+1 record overhead over a plain
            // 2-word header, so they need not be equal — but a tile
            // sends words iff the model charges it bytes.
            assert_eq!(
                reg_and_record_bytes > 0,
                comp.plan.tile_out_bytes[tile] > 0,
                "tile {tile}"
            );
        }
    }

    #[test]
    fn chip_plans_round_trip_and_tile_the_aggregates() {
        let c = ring(16);
        let mut cfg = PartitionConfig::with_tiles(8);
        cfg.tiles_per_chip = 2; // 4 chips
        let comp = compile(&c, &cfg).unwrap();
        let routing = &comp.routing;
        let plans = routing.chip_exchange_plans();
        assert_eq!(plans.len(), 4);
        assert!(
            plans.iter().any(|p| !p.pairs.is_empty()),
            "a 16-ring over 4 chips must cross chips"
        );
        for (ci, plan) in plans.iter().enumerate() {
            assert_eq!(plan.chip, ci as u32);
            // Text round-trip is exact.
            let back = ChipExchangePlan::from_text(&plan.to_text()).unwrap();
            assert_eq!(&back, plan);
            for pair in &plan.pairs {
                assert_ne!(pair.from_chip, pair.to_chip);
                assert!(pair.from_chip == plan.chip || pair.to_chip == plan.chip);
                // Channel slices tile the aggregate exactly, in order.
                let mut fill = 0u32;
                for ch in &pair.channels {
                    assert_eq!(ch.word_base, fill, "slice gap or overlap");
                    assert_eq!(
                        routing.tile_chip[ch.from_tile as usize], pair.from_chip,
                        "producer tile on the wrong chip"
                    );
                    assert_eq!(routing.tile_chip[ch.to_tile as usize], pair.to_chip);
                    let spec = &routing.channels[ch.channel as usize];
                    assert_eq!((spec.from, spec.to), (ch.from_tile, ch.to_tile));
                    assert_eq!(spec.words(), ch.reg_words + ch.port_words);
                    fill += ch.reg_words + ch.port_words;
                }
                assert_eq!(fill, pair.words, "slices must fill the aggregate");
            }
        }
    }

    #[test]
    fn endpoint_chips_agree_on_shared_pairs() {
        let c = ring(16);
        let mut cfg = PartitionConfig::with_tiles(8);
        cfg.tiles_per_chip = 4; // 2 chips
        let comp = compile(&c, &cfg).unwrap();
        let plans = comp.routing.chip_exchange_plans();
        let mut shared = 0;
        for plan in &plans {
            for pair in &plan.pairs {
                let other = if pair.from_chip == plan.chip {
                    pair.to_chip
                } else {
                    pair.from_chip
                };
                // The peer chip's plan carries an identical copy: two
                // processes can parse their own plans independently and
                // agree on every frame layout.
                let peer = plans[other as usize]
                    .pairs
                    .iter()
                    .find(|p| (p.from_chip, p.to_chip) == (pair.from_chip, pair.to_chip))
                    .expect("peer chip missing the shared pair");
                assert_eq!(peer, pair);
                shared += 1;
            }
        }
        assert!(shared > 0, "two chips of a ring must exchange");
    }

    #[test]
    fn chip_plan_text_rejects_corruption() {
        let good = "chip 1\npair 0 1 words 4\n  ch 2 from 3 to 4 reg 4 port 0 base 0\n";
        let plan = ChipExchangePlan::from_text(good).unwrap();
        assert_eq!(plan.chip, 1);
        assert_eq!(plan.pairs.len(), 1);
        // Slice layout that does not tile the aggregate.
        assert!(ChipExchangePlan::from_text(
            "chip 1\npair 0 1 words 4\n  ch 2 from 3 to 4 reg 4 port 0 base 1\n"
        )
        .unwrap_err()
        .contains("filled"));
        // Undersized aggregate.
        assert!(ChipExchangePlan::from_text(
            "chip 1\npair 0 1 words 9\n  ch 2 from 3 to 4 reg 4 port 0 base 0\n"
        )
        .unwrap_err()
        .contains("fill 4 of 9"));
        // A pair the chip does not touch.
        assert!(ChipExchangePlan::from_text("chip 7\npair 0 1 words 0\n")
            .unwrap_err()
            .contains("does not involve chip 7"));
        // Structural salad.
        assert!(ChipExchangePlan::from_text("pair 0 1 words 0\n").is_err());
        assert!(
            ChipExchangePlan::from_text("chip 1\n  ch 0 from 0 to 1 reg 1 port 0 base 0\n")
                .unwrap_err()
                .contains("before any pair")
        );
        assert!(ChipExchangePlan::from_text("chip x\n")
            .unwrap_err()
            .contains("bad chip id"));
        assert!(ChipExchangePlan::from_text("bogus\n")
            .unwrap_err()
            .contains("unknown record"));
        assert!(ChipExchangePlan::from_text("")
            .unwrap_err()
            .contains("missing chip"));
    }

    #[test]
    fn array_records_route_to_every_holder() {
        let mut b = Builder::new("mem");
        // Writer fiber on one tile, reader fibers elsewhere.
        let waddr = b.reg("waddr", 4, 0);
        let one = b.lit(4, 1);
        let winc = b.add(waddr.q(), one);
        b.connect(waddr, winc);
        let mem = b.array("m", 32, 16);
        let data = b.lit(32, 0xabcd);
        let en = b.lit(1, 1);
        b.array_write(mem, waddr.q(), data, en);
        for i in 0..3 {
            let r = b.reg(format!("r{i}"), 32, 0);
            let idx = b.lit(4, i as u64);
            let v = b.array_read(mem, idx);
            let nx = b.add(v, r.q());
            b.connect(r, nx);
        }
        let c = b.finish().unwrap();
        let comp = compile(&c, &PartitionConfig::with_tiles(8)).unwrap();
        let routing = &comp.routing;
        assert_eq!(routing.port_routes.len(), 1);
        let route = &routing.port_routes[0];
        let holders = &routing.array_holders[0];
        assert!(holders.len() >= 2, "readers must hold copies: {holders:?}");
        assert_eq!(
            route.hops.len(),
            holders.iter().filter(|&&h| h != route.producer).count(),
            "one record per remote holder"
        );
        for hop in &route.hops {
            let ch = &routing.channels[hop.channel as usize];
            assert_eq!((ch.from, ch.to), (route.producer, hop.tile));
            assert!(hop.word_off >= ch.reg_words, "records live after registers");
        }
    }
}
