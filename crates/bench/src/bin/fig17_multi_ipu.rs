//! Fig. 17: multi-IPU partitioning strategies on 4 chips — partitioning
//! fibers *pre* merge (Parendi default) vs *post* merge vs ignoring chip
//! boundaries entirely (*none*).
//!
//! A *measured* section executes the strategies on the real BSP engine
//! at host scale: with the per-word off-chip delay engaged, the timed
//! flush of the chip-pair aggregate mailboxes tracks each strategy's
//! cross-chip volume — the live counterpart of the modeled ordering.

use parendi_bench::{lr_max, quick, sr_max, write_bench_json, BenchRecord};
use parendi_core::{compile, MultiChipStrategy, PartitionConfig};
use parendi_designs::Benchmark;
use parendi_machine::ipu::IpuConfig;
use parendi_sim::timing::{ipu_rate_khz, ipu_timings};
use parendi_sim::{BspSimulator, TransportChoice};

/// The off-chip transport backends the measured section sweeps (the
/// record `engine` tag and the backend); the in-process backend keeps
/// the plain `bsp` tag so baselines stay comparable across PRs.
const TRANSPORTS: [(&str, TransportChoice); 3] = [
    ("bsp", TransportChoice::InProcess),
    ("bsp-shm", TransportChoice::SharedMem),
    ("bsp-tcp", TransportChoice::Tcp),
];

/// Spin iterations per flushed word (the host stand-in for the slower
/// off-chip fabric), matching fig10's measured section.
const OFFCHIP_SPIN_PER_WORD: u32 = 64;

fn main() {
    let ipu = IpuConfig::m2000();
    println!("Fig. 17: 4-IPU strategies, rate normalized to `pre`");
    println!(
        "{:>8} {:>6} | {:>9} {:>11} {:>8}",
        "design", "strat", "kHz", "offchipKiB", "norm"
    );
    let benches = [
        Benchmark::Sr(sr_max().saturating_sub(5).max(2)),
        Benchmark::Sr(sr_max()),
        Benchmark::Lr(lr_max().saturating_sub(2).max(2)),
        Benchmark::Lr(lr_max()),
    ];
    for bench in benches {
        let c = bench.build();
        let mut base = None;
        for (label, mc) in [
            ("pre", MultiChipStrategy::Pre),
            ("post", MultiChipStrategy::Post),
            ("none", MultiChipStrategy::None),
        ] {
            let mut cfg = PartitionConfig::with_tiles(5888);
            cfg.multi_chip = mc;
            let comp = compile(&c, &cfg).expect("fits 4 IPUs");
            let khz = ipu_rate_khz(&comp, &ipu);
            let t = ipu_timings(&comp, &ipu);
            let _ = t;
            let b = *base.get_or_insert(khz);
            println!(
                "{:>8} {:>6} | {:>9.1} {:>11.1} {:>8.3}",
                bench.name(),
                label,
                khz,
                comp.plan.offchip_total_bytes as f64 / 1024.0,
                khz / b
            );
        }
        println!();
    }
    println!("Shape check: pre >= post >> none (the paper's Fig. 17 ordering);");
    println!("`none` pays a much larger off-chip volume.");

    // Measured engine: the three strategies executed for real at host
    // scale (chips → worker groups). The measured off-chip flush column
    // sits next to the modeled cross-chip volume driving it.
    let design = Benchmark::Sr(if quick() { 3 } else { 4 });
    let circuit = design.build();
    let chips = if quick() { 2u32 } else { 4 };
    let per_chip = 4u32;
    let threads = 4usize;
    let cycles: u64 = if quick() { 200 } else { 500 };
    println!(
        "\nMeasured engine ({}, {chips} chips x {per_chip} tiles, {threads} threads, \
         {OFFCHIP_SPIN_PER_WORD} spins/word off-chip):",
        design.name()
    );
    println!(
        "{:>6} | {:>11} {:>11} {:>12} {:>12} {:>9}",
        "strat", "offchipKiB", "comp/cyc", "onchip/cyc", "offchip/cyc", "kcyc/s"
    );
    let mut records = Vec::new();
    // Per strategy: the kcyc/s triple across transport backends.
    let mut transport_rows: Vec<(&str, Vec<f64>)> = Vec::new();
    for (label, mc) in [
        ("pre", MultiChipStrategy::Pre),
        ("post", MultiChipStrategy::Post),
        ("none", MultiChipStrategy::None),
    ] {
        let mut cfg = PartitionConfig::with_tiles(chips * per_chip);
        cfg.tiles_per_chip = per_chip;
        cfg.multi_chip = mc;
        let comp = compile(&circuit, &cfg).expect("host-scale compile");
        // The same partition under every transport backend; the
        // in-process run provides the detailed phase row.
        let mut main_ph = None;
        let mut rates = Vec::new();
        for &(tag, backend) in &TRANSPORTS {
            let mut sim = BspSimulator::with_transport(&circuit, &comp.partition, threads, backend);
            sim.set_offchip_spin_per_word(OFFCHIP_SPIN_PER_WORD);
            sim.run(50); // warm the persistent pool
            let ph = sim.run_timed(cycles);
            rates.push(cycles as f64 / ph.total_s / 1e3);
            records.push(BenchRecord::from_phases(
                "fig17",
                format!("{}-{label}", design.name()),
                tag,
                false,
                comp.partition.chips,
                comp.partition.tiles_used(),
                1,
                threads as u32,
                cycles,
                cycles as f64 / ph.total_s,
                &ph,
            ));
            if main_ph.is_none() {
                main_ph = Some(ph);
            }
        }
        let ph = main_ph.expect("at least one backend ran");
        // The off-chip column charges the *full* modeled link occupancy
        // (residual wait + the part the flush/compute overlap hid) so
        // it keeps tracking each strategy's cross-chip volume.
        println!(
            "{:>6} | {:>11.2} {:>9.2}µs {:>10.2}µs {:>10.2}µs {:>9.1}",
            label,
            comp.plan.offchip_total_bytes as f64 / 1024.0,
            ph.compute_s * 1e6 / cycles as f64,
            ph.exchange_s * 1e6 / cycles as f64,
            (ph.offchip_s + ph.overlap_s) * 1e6 / cycles as f64,
            cycles as f64 / ph.total_s / 1e3,
        );
        transport_rows.push((label, rates));
    }
    println!("\nTransport backends (same partitions, functionally bit-identical):");
    print!("{:>6}", "strat");
    for &(tag, _) in &TRANSPORTS {
        print!(" {:>12}", format!("{tag} kc/s"));
    }
    println!();
    for (label, rates) in &transport_rows {
        print!("{label:>6}");
        for r in rates {
            print!(" {r:>12.1}");
        }
        println!();
    }
    match write_bench_json("fig17", &records) {
        Ok(path) => println!("\nwrote {} ({} records)", path.display(), records.len()),
        Err(e) => println!("\ncould not write BENCH_fig17.json: {e}"),
    }
    println!("\nShape check: the measured off-chip column follows each strategy's");
    println!("modeled cross-chip volume (pre flushes the least, none the most).");
}
