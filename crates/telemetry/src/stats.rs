//! Static bytecode statistics: the opcode/width and adjacent-pair
//! histograms the engine compiles from its tile programs, promoted
//! from an opt-in stderr dump to a first-class queryable type so
//! report tools (`perf_report`) can print top-N opcodes without
//! re-parsing log output.

/// One opcode/width bucket of the static histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpcodeCount {
    pub name: String,
    /// The width class the compiler bucketed the opcode under (bit
    /// width for sized kernels, word counts for block copies).
    pub width: u32,
    /// Static occurrences across all tile programs.
    pub count: u64,
}

/// One adjacent-opcode-pair bucket (fusion candidates).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairCount {
    pub first: String,
    pub second: String,
    pub count: u64,
}

/// Aggregate static statistics of a compiled engine's bytecode.
#[derive(Clone, Debug, Default)]
pub struct CodeStats {
    /// Tile programs aggregated.
    pub tiles: usize,
    /// Total static instructions.
    pub total_ops: u64,
    /// Opcode/width buckets, descending by count (ties by name).
    pub opcodes: Vec<OpcodeCount>,
    /// Adjacent pairs, descending by count (ties by name).
    pub pairs: Vec<PairCount>,
}

impl CodeStats {
    /// Builds the sorted stats from raw histogram buckets.
    pub fn from_histograms(
        tiles: usize,
        total_ops: u64,
        opcodes: impl IntoIterator<Item = ((String, u32), u64)>,
        pairs: impl IntoIterator<Item = ((String, String), u64)>,
    ) -> Self {
        let mut opcodes: Vec<OpcodeCount> = opcodes
            .into_iter()
            .map(|((name, width), count)| OpcodeCount { name, width, count })
            .collect();
        opcodes.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.name.cmp(&b.name))
                .then(a.width.cmp(&b.width))
        });
        let mut pairs: Vec<PairCount> = pairs
            .into_iter()
            .map(|((first, second), count)| PairCount {
                first,
                second,
                count,
            })
            .collect();
        pairs.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.first.cmp(&b.first))
                .then_with(|| a.second.cmp(&b.second))
        });
        CodeStats {
            tiles,
            total_ops,
            opcodes,
            pairs,
        }
    }

    /// The `n` most frequent opcode buckets.
    pub fn top_opcodes(&self, n: usize) -> &[OpcodeCount] {
        &self.opcodes[..self.opcodes.len().min(n)]
    }

    /// The `n` most frequent adjacent pairs.
    pub fn top_pairs(&self, n: usize) -> &[PairCount] {
        &self.pairs[..self.pairs.len().min(n)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histograms_sort_descending_with_stable_ties() {
        let s = CodeStats::from_histograms(
            4,
            100,
            vec![
                (("and1".to_string(), 8), 5),
                (("xor1".to_string(), 1), 9),
                (("add1".to_string(), 32), 5),
            ],
            vec![
                (("and1".to_string(), "xor1".to_string()), 2),
                (("xor1".to_string(), "and1".to_string()), 7),
            ],
        );
        assert_eq!(s.tiles, 4);
        assert_eq!(s.total_ops, 100);
        let names: Vec<&str> = s.opcodes.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, ["xor1", "add1", "and1"]);
        assert_eq!(s.top_opcodes(2).len(), 2);
        assert_eq!(s.top_opcodes(10).len(), 3);
        assert_eq!(s.pairs[0].second, "and1");
        assert_eq!(s.top_pairs(1).len(), 1);
    }
}
