//! The serve wire protocol: length-prefixed `PSRV` frames carrying
//! line-oriented text payloads.
//!
//! Frame wire format (little-endian), following the `PRND` framing
//! discipline of the sim crate's TCP transport:
//!
//! ```text
//! magic  u32   0x50535256 ("PSRV")
//! kind   u32   frame kind (see [`kind`])
//! len    u32   payload length in bytes
//! data   len × u8
//! ```
//!
//! Requests: `SUBMIT` (a [`ScenarioBatch`]), `STATS`, `CLEAR`,
//! `SHUTDOWN`. Responses: zero or more `LANE` frames (one per
//! scenario, streamed **as each lane retires**, not at batch end),
//! an optional `VCD` frame, then exactly one terminal frame — `DONE`
//! (a [`BatchSummary`]) on success or `ERR` with a human-readable
//! message. `STATS` answers with one `STATS_REPLY` carrying the
//! daemon's metrics snapshot as flat JSON; `CLEAR` and `SHUTDOWN`
//! answer with one `DONE`.
//!
//! Payloads are line-oriented text (the repo's `to_text`/`from_text`
//! idiom — versionable, diffable in a hexdump, and free of
//! serialization dependencies). Every parser here is total: any byte
//! salad decodes to an `Err`, never a panic.

use parendi_rtl::bits::Bits;
use std::io::{ErrorKind, Read, Write};

/// Frame magic ("PSRV" read as a big-endian byte string).
pub const MAGIC: u32 = 0x5053_5256;
/// Header bytes: magic + kind + len.
pub const HEADER_BYTES: usize = 12;
/// Ceiling on a single payload — a corrupt length field must not OOM
/// the peer. Generous: the largest legitimate frame is a VCD slice.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Frame kinds. Requests are small integers, responses start at 10 so
/// a stray response can never parse as a request.
pub mod kind {
    /// Client → server: a [`super::ScenarioBatch`].
    pub const SUBMIT: u32 = 1;
    /// Client → server: request a metrics snapshot.
    pub const STATS: u32 = 2;
    /// Client → server: drop every cached compile.
    pub const CLEAR: u32 = 3;
    /// Client → server: stop the daemon after replying.
    pub const SHUTDOWN: u32 = 4;
    /// Server → client: one retired lane's outputs.
    pub const LANE: u32 = 10;
    /// Server → client: terminal success frame (a
    /// [`super::BatchSummary`] for submits).
    pub const DONE: u32 = 11;
    /// Server → client: metrics snapshot as flat JSON.
    pub const STATS_REPLY: u32 = 12;
    /// Server → client: terminal failure frame with a message.
    pub const ERR: u32 = 13;
    /// Server → client: one lane's VCD waveform slice.
    pub const VCD: u32 = 14;
}

/// Protocol failures, named by operation (the transport-layer idiom:
/// a refused socket, a corrupt header, and a server-side error are
/// different incidents and get different variants).
#[derive(Debug)]
pub enum ProtoError {
    /// An I/O fault; `context` names the failing operation.
    Io {
        /// What was being attempted.
        context: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A malformed frame or payload.
    Corrupt(String),
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The server answered with an `ERR` frame.
    Remote(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io { context, source } => write!(f, "{context}: {source}"),
            ProtoError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Encodes a frame header.
pub fn encode_header(kind: u32, len: u32) -> [u8; HEADER_BYTES] {
    let mut h = [0u8; HEADER_BYTES];
    h[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    h[4..8].copy_from_slice(&kind.to_le_bytes());
    h[8..12].copy_from_slice(&len.to_le_bytes());
    h
}

/// Decodes and validates a frame header. Returns `(kind, len)`. Total:
/// never panics, any byte salad is an `Err`.
pub fn decode_header(h: &[u8]) -> Result<(u32, u32), String> {
    if h.len() < HEADER_BYTES {
        return Err(format!(
            "short frame header: {} of {HEADER_BYTES} bytes",
            h.len()
        ));
    }
    let word = |r: std::ops::Range<usize>| -> u32 {
        u32::from_le_bytes(h[r].try_into().expect("4-byte slice"))
    };
    let magic = word(0..4);
    if magic != MAGIC {
        return Err(format!("bad frame magic {magic:#010x}"));
    }
    let kind = word(4..8);
    let len = word(8..12);
    if len as usize > MAX_PAYLOAD {
        return Err(format!("oversized frame: {len} bytes > {MAX_PAYLOAD}"));
    }
    Ok((kind, len))
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, kind: u32, payload: &[u8]) -> Result<(), ProtoError> {
    assert!(payload.len() <= MAX_PAYLOAD, "frame payload too large");
    let io = |source| ProtoError::Io {
        context: "write frame",
        source,
    };
    w.write_all(&encode_header(kind, payload.len() as u32))
        .map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.flush().map_err(io)
}

/// Reads one frame. A clean EOF **at a frame boundary** is
/// [`ProtoError::Closed`] (the peer hung up between requests); an EOF
/// mid-frame is corruption.
pub fn read_frame(r: &mut impl Read) -> Result<(u32, Vec<u8>), ProtoError> {
    let mut header = [0u8; HEADER_BYTES];
    let mut got = 0usize;
    while got < HEADER_BYTES {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(ProtoError::Closed),
            Ok(0) => {
                return Err(ProtoError::Corrupt(format!(
                    "eof inside frame header ({got} of {HEADER_BYTES} bytes)"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(source) => {
                return Err(ProtoError::Io {
                    context: "read frame header",
                    source,
                })
            }
        }
    }
    let (kind, len) = decode_header(&header).map_err(ProtoError::Corrupt)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|source| ProtoError::Io {
            context: "read frame payload",
            source,
        })?;
    Ok((kind, payload))
}

/// Whether 1-bit state should be bit-packed across lanes for a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackedChoice {
    /// Server decides: packed when the design is 1-bit-dominated and
    /// the gang is wide enough (see the lane-packing policy in
    /// `docs/SERVE.md`).
    Auto,
    /// Force packed layout.
    On,
    /// Force strided (unpacked) layout.
    Off,
}

impl PackedChoice {
    fn as_str(self) -> &'static str {
        match self {
            PackedChoice::Auto => "auto",
            PackedChoice::On => "on",
            PackedChoice::Off => "off",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(PackedChoice::Auto),
            "on" => Some(PackedChoice::On),
            "off" => Some(PackedChoice::Off),
            _ => None,
        }
    }
}

/// One scenario: a cycle horizon plus its input events. Events use
/// the [`StimulusSet`](parendi_sim::StimulusSet) convention — an event
/// at cycle `c` is driven *before* cycle `c` executes.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Cycles to run before the lane retires and its outputs stream
    /// back.
    pub cycles: u64,
    /// `(cycle, input name, value)` events.
    pub events: Vec<(u64, String, Bits)>,
}

/// A batch of scenarios over one design: the payload of a `SUBMIT`
/// frame. Designs travel as registry names
/// ([`Benchmark::parse`](parendi_designs::Benchmark::parse)), not
/// serialized circuits — the server owns the build and the client
/// stays thin.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioBatch {
    /// Design registry name (`sr3`, `prng8`, ...).
    pub design: String,
    /// Tile budget for the partition.
    pub tiles: u32,
    /// Packed-layout request.
    pub packed: PackedChoice,
    /// Stream this scenario's waveform back as a `VCD` frame.
    pub vcd_lane: Option<u32>,
    /// The scenarios; index = lane.
    pub scenarios: Vec<Scenario>,
}

impl ScenarioBatch {
    /// An empty batch for `design` under a `tiles`-tile partition.
    pub fn new(design: &str, tiles: u32) -> Self {
        ScenarioBatch {
            design: design.to_string(),
            tiles,
            packed: PackedChoice::Auto,
            vcd_lane: None,
            scenarios: Vec::new(),
        }
    }

    /// Appends a scenario running `cycles` cycles; returns its lane.
    pub fn scenario(&mut self, cycles: u64) -> u32 {
        self.scenarios.push(Scenario {
            cycles,
            events: Vec::new(),
        });
        (self.scenarios.len() - 1) as u32
    }

    /// Schedules `input` in `lane` to take `value` before cycle
    /// `cycle` executes.
    ///
    /// # Panics
    ///
    /// Panics if `lane` has no scenario yet.
    pub fn drive(&mut self, lane: u32, cycle: u64, input: &str, value: Bits) -> &mut Self {
        self.scenarios[lane as usize]
            .events
            .push((cycle, input.to_string(), value));
        self
    }

    /// Serializes the batch as line-oriented text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("design {}\n", self.design));
        out.push_str(&format!("tiles {}\n", self.tiles));
        out.push_str(&format!("packed {}\n", self.packed.as_str()));
        if let Some(l) = self.vcd_lane {
            out.push_str(&format!("vcd {l}\n"));
        }
        for sc in &self.scenarios {
            out.push_str(&format!("scenario {}\n", sc.cycles));
            for (cycle, input, value) in &sc.events {
                out.push_str(&format!(
                    "ev {cycle} {input} {} {:x}\n",
                    value.width(),
                    value
                ));
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses [`to_text`](Self::to_text) output. Total; `Err` carries
    /// a line-level description. Input names with whitespace are
    /// unsupported by the wire format (the builder rejects them long
    /// before a batch exists).
    pub fn from_text(s: &str) -> Result<Self, String> {
        let mut batch: Option<ScenarioBatch> = None;
        let mut tiles = None;
        let mut saw_end = false;
        for (ln, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if saw_end {
                return Err(format!("line {}: content after end", ln + 1));
            }
            let mut it = line.split_whitespace();
            let tag = it.next().expect("non-empty line");
            let fail = |m: &str| Err(format!("line {}: {m}: {line:?}", ln + 1));
            match tag {
                "design" => match it.next() {
                    Some(name) if it.next().is_none() && batch.is_none() => {
                        batch = Some(ScenarioBatch::new(name, 0));
                    }
                    _ => return fail("malformed design line"),
                },
                "tiles" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                    Some(t) if it.next().is_none() && t >= 1 => tiles = Some(t),
                    _ => return fail("malformed tiles line"),
                },
                "packed" => match it.next().and_then(PackedChoice::parse) {
                    Some(p) if it.next().is_none() => {
                        batch.as_mut().ok_or("packed before design")?.packed = p;
                    }
                    _ => return fail("malformed packed line"),
                },
                "vcd" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                    Some(l) if it.next().is_none() => {
                        batch.as_mut().ok_or("vcd before design")?.vcd_lane = Some(l);
                    }
                    _ => return fail("malformed vcd line"),
                },
                "scenario" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(c) if it.next().is_none() => {
                        batch.as_mut().ok_or("scenario before design")?.scenario(c);
                    }
                    _ => return fail("malformed scenario line"),
                },
                "ev" => {
                    let (Some(cycle), Some(input), Some(width), Some(hex), None) = (
                        it.next().and_then(|v| v.parse::<u64>().ok()),
                        it.next(),
                        it.next().and_then(|v| v.parse::<u32>().ok()),
                        it.next(),
                        it.next(),
                    ) else {
                        return fail("malformed ev line");
                    };
                    let value = match Bits::from_hex(width, hex) {
                        Ok(v) => v,
                        Err(e) => return fail(&format!("bad ev value ({e})")),
                    };
                    let b = batch.as_mut().ok_or("ev before design")?;
                    match b.scenarios.last_mut() {
                        Some(sc) => sc.events.push((cycle, input.to_string(), value)),
                        None => return fail("ev before any scenario"),
                    }
                }
                "end" => {
                    if it.next().is_some() {
                        return fail("malformed end line");
                    }
                    saw_end = true;
                }
                _ => return fail("unknown tag"),
            }
        }
        if !saw_end {
            return Err("missing end line".into());
        }
        let mut batch = batch.ok_or("missing design line")?;
        batch.tiles = tiles.ok_or("missing tiles line")?;
        if batch.scenarios.is_empty() {
            return Err("batch has no scenarios".into());
        }
        if let Some(l) = batch.vcd_lane {
            if l as usize >= batch.scenarios.len() {
                return Err(format!("vcd lane {l} has no scenario"));
            }
        }
        Ok(batch)
    }
}

/// One retired lane's outputs: the payload of a `LANE` frame.
#[derive(Clone, Debug, PartialEq)]
pub struct LaneResult {
    /// Scenario lane (batch scenario index).
    pub lane: u32,
    /// `(output name, value)` in `circuit.outputs` order.
    pub outputs: Vec<(String, Bits)>,
}

impl LaneResult {
    /// Serializes as line-oriented text.
    pub fn to_text(&self) -> String {
        let mut out = format!("lane {}\n", self.lane);
        for (name, v) in &self.outputs {
            out.push_str(&format!("out {name} {} {v:x}\n", v.width()));
        }
        out
    }

    /// Parses [`to_text`](Self::to_text) output.
    pub fn from_text(s: &str) -> Result<Self, String> {
        let mut lines = s.lines();
        let lane = lines
            .next()
            .and_then(|l| l.strip_prefix("lane "))
            .and_then(|v| v.trim().parse::<u32>().ok())
            .ok_or("malformed lane header")?;
        let mut outputs = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let (Some("out"), Some(name), Some(width), Some(hex), None) = (
                it.next(),
                it.next(),
                it.next().and_then(|v| v.parse::<u32>().ok()),
                it.next(),
                it.next(),
            ) else {
                return Err(format!("malformed out line: {line:?}"));
            };
            let v = Bits::from_hex(width, hex).map_err(|e| format!("bad out value ({e})"))?;
            outputs.push((name.to_string(), v));
        }
        Ok(LaneResult { lane, outputs })
    }
}

/// The terminal `DONE` payload of a submit: what the run cost and
/// where it came from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchSummary {
    /// The compile key digest the batch resolved to.
    pub key_digest: u64,
    /// Gang lanes actually compiled (scenarios rounded up to the lane
    /// bucket).
    pub gang_lanes: u32,
    /// Whether the gang ran bit-packed.
    pub packed: bool,
    /// Whether the compile came from the cache.
    pub cache_hit: bool,
    /// Compile seconds (the **original** compile for cache hits —
    /// what the hit saved, not what it cost).
    pub compile_s: f64,
    /// Engine seconds for this batch (instantiate + run + capture).
    pub run_s: f64,
    /// Scenarios retired.
    pub scenarios: u32,
}

impl BatchSummary {
    /// Serializes as line-oriented text.
    pub fn to_text(&self) -> String {
        format!(
            "key {:016x}\nlanes {}\npacked {}\ncache_hit {}\ncompile_s {:.9}\nrun_s {:.9}\nscenarios {}\n",
            self.key_digest,
            self.gang_lanes,
            self.packed as u32,
            self.cache_hit as u32,
            self.compile_s,
            self.run_s,
            self.scenarios
        )
    }

    /// Parses [`to_text`](Self::to_text) output.
    pub fn from_text(s: &str) -> Result<Self, String> {
        let mut key_digest = None;
        let mut gang_lanes = None;
        let mut packed = None;
        let mut cache_hit = None;
        let mut compile_s = None;
        let mut run_s = None;
        let mut scenarios = None;
        for line in s.lines() {
            let Some((tag, val)) = line.trim().split_once(' ') else {
                continue;
            };
            match tag {
                "key" => key_digest = u64::from_str_radix(val, 16).ok(),
                "lanes" => gang_lanes = val.parse().ok(),
                "packed" => packed = flag(val),
                "cache_hit" => cache_hit = flag(val),
                "compile_s" => compile_s = val.parse().ok(),
                "run_s" => run_s = val.parse().ok(),
                "scenarios" => scenarios = val.parse().ok(),
                _ => {}
            }
        }
        Ok(BatchSummary {
            key_digest: key_digest.ok_or("missing key")?,
            gang_lanes: gang_lanes.ok_or("missing lanes")?,
            packed: packed.ok_or("missing packed")?,
            cache_hit: cache_hit.ok_or("missing cache_hit")?,
            compile_s: compile_s.ok_or("missing compile_s")?,
            run_s: run_s.ok_or("missing run_s")?,
            scenarios: scenarios.ok_or("missing scenarios")?,
        })
    }
}

fn flag(s: &str) -> Option<bool> {
    match s {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_and_rejects_salad() {
        let h = encode_header(kind::SUBMIT, 40);
        assert_eq!(decode_header(&h), Ok((kind::SUBMIT, 40)));
        assert!(decode_header(&[0u8; 4]).is_err(), "short header");
        let mut bad = h;
        bad[0] ^= 0xff;
        assert!(decode_header(&bad).unwrap_err().contains("magic"));
        let oversized = encode_header(kind::SUBMIT, u32::MAX);
        assert!(decode_header(&oversized).unwrap_err().contains("oversized"));
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, kind::STATS, b"").unwrap();
        write_frame(&mut wire, kind::SUBMIT, b"hello").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), (kind::STATS, vec![]));
        assert_eq!(
            read_frame(&mut r).unwrap(),
            (kind::SUBMIT, b"hello".to_vec())
        );
        // Clean EOF at the boundary is Closed, not corruption.
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Closed)));
        // EOF mid-frame is corruption.
        let mut short = &wire[..HEADER_BYTES - 3];
        assert!(matches!(
            read_frame(&mut short),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn batch_round_trips() {
        let mut b = ScenarioBatch::new("sr3", 16);
        b.packed = PackedChoice::Off;
        let l0 = b.scenario(200);
        let l1 = b.scenario(100);
        b.drive(l0, 5, "in_a", Bits::from_u64(16, 0x3f));
        b.drive(l1, 0, "in_a", Bits::from_u64(16, 1));
        b.vcd_lane = Some(1);
        let text = b.to_text();
        assert_eq!(ScenarioBatch::from_text(&text), Ok(b));
    }

    #[test]
    fn batch_parser_rejects_malformed_input() {
        for bad in [
            "",
            "design sr3\ntiles 4\nend\n",             // no scenarios
            "design sr3\nscenario 5\nend\n",          // no tiles
            "tiles 4\nscenario 5\nend\n",             // no design
            "design sr3\ntiles 4\nscenario 5\n",      // no end
            "design sr3\ntiles 0\nscenario 5\nend\n", // zero tiles
            "design sr3\ntiles 4\nev 0 a 1 0\nscenario 5\nend\n", // ev before scenario
            "design sr3\ntiles 4\nscenario 5\nvcd 1\nend\n", // vcd lane out of range
            "design sr3\ntiles 4\nscenario 5\nend\njunk\n", // trailing junk
            "design sr3\ntiles 4\nscenario 5\nev 0 a 4 zz\nend\n", // bad hex
        ] {
            assert!(ScenarioBatch::from_text(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn lane_result_and_summary_round_trip() {
        let lr = LaneResult {
            lane: 3,
            outputs: vec![
                ("q".into(), Bits::from_u64(16, 0xbeef)),
                ("done".into(), Bits::from_u64(1, 1)),
            ],
        };
        assert_eq!(LaneResult::from_text(&lr.to_text()), Ok(lr));
        let s = BatchSummary {
            key_digest: 0xdead_beef_0123_4567,
            gang_lanes: 8,
            packed: true,
            cache_hit: false,
            compile_s: 1.5,
            run_s: 0.25,
            scenarios: 5,
        };
        assert_eq!(BatchSummary::from_text(&s.to_text()), Ok(s));
        assert!(BatchSummary::from_text("key zz\n").is_err());
        assert!(LaneResult::from_text("out q 4 0\n").is_err());
    }
}
