//! The gang engine must be bit-identical to the reference interpreter
//! **in every lane**, for every circuit, partition shape, thread count,
//! and lane count — scenario parallelism may never change scenario
//! semantics. Each lane gets its own input trace; the oracle is one
//! reference interpreter per lane replaying that lane's slice of the
//! trace.

mod common;

use common::{random_circuit, random_circuit_io};
use parendi_core::{compile, MultiChipStrategy, PartitionConfig};
use parendi_rtl::bits::Bits;
use parendi_rtl::{Circuit, RegId};
use parendi_sim::{GangSimulator, Simulator, StimulusSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random per-lane input trace: every input of every
/// lane is re-driven with ~30% probability per cycle, so lanes diverge
/// immediately and keep diverging.
fn random_stim(seed: u64, circuit: &Circuit, lanes: u32, cycles: u64) -> StimulusSet {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5717_AB1E);
    let mut stim = StimulusSet::new(lanes);
    for c in 0..cycles {
        for l in 0..lanes {
            for d in &circuit.inputs {
                if c == 0 || rng.random_bool(0.3) {
                    stim.drive(c, l, &d.name, Bits::from_u64(d.width, rng.random::<u64>()));
                }
            }
        }
    }
    stim
}

/// Replays lane `lane` of `stim` against a fresh reference interpreter.
fn reference_lane<'c>(
    circuit: &'c Circuit,
    stim: &StimulusSet,
    lane: u32,
    cycles: u64,
) -> Simulator<'c> {
    let mut sim = Simulator::new(circuit);
    for c in 0..cycles {
        stim.apply_lane(lane, c, &mut sim);
        sim.step();
    }
    sim
}

/// Runs a gang over `stim` and asserts every lane's registers, arrays,
/// and primary outputs equal its per-lane reference.
fn check_gang(
    circuit: &Circuit,
    cfg: &PartitionConfig,
    threads: usize,
    lanes: usize,
    cycles: u64,
    seed: u64,
) {
    let comp = compile(circuit, cfg).expect("compiles");
    let stim = random_stim(seed, circuit, lanes as u32, cycles);
    let mut gang = GangSimulator::new(circuit, &comp.partition, threads, lanes);
    gang.run_stimulus(cycles, &stim);
    assert_eq!(gang.cycle(), cycles);
    for lane in 0..lanes {
        let reference = reference_lane(circuit, &stim, lane as u32, cycles);
        for i in 0..circuit.regs.len() {
            assert_eq!(
                gang.reg_value_lane(RegId(i as u32), lane),
                reference.reg_value(RegId(i as u32)),
                "lane {lane}: reg {} diverged after {cycles} cycles on {threads} threads x {lanes} lanes",
                circuit.regs[i].name,
            );
        }
        for (ai, a) in circuit.arrays.iter().enumerate() {
            for idx in 0..a.depth {
                assert_eq!(
                    gang.array_value_lane(parendi_rtl::ArrayId(ai as u32), idx, lane),
                    reference.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                    "lane {lane}: array {}[{idx}] diverged",
                    a.name
                );
            }
        }
        for o in &circuit.outputs {
            assert_eq!(
                gang.peek_output_lane(&o.name, lane).expect("output exists"),
                reference.output(&o.name).expect("output exists"),
                "lane {lane}: output {} diverged",
                o.name
            );
        }
    }
}

/// The ISSUE's acceptance matrix: Pre/Post multi-chip distribution ×
/// 1/2/4/8 threads × 1/4/16 lanes, per-lane stimulus, array writes and
/// primary-output readback checked in every lane.
#[test]
fn gang_matrix_matches_reference_per_lane() {
    for seed in [11u64, 23] {
        let c = random_circuit_io(seed, 10, 50, 4);
        for mc in [MultiChipStrategy::Pre, MultiChipStrategy::Post] {
            let mut cfg = PartitionConfig::with_tiles(8);
            cfg.tiles_per_chip = 4; // force real multi-chip paths
            cfg.multi_chip = mc;
            for &threads in &[1usize, 2, 4, 8] {
                for &lanes in &[1usize, 4, 16] {
                    check_gang(&c, &cfg, threads, lanes, 25, seed);
                }
            }
        }
    }
}

/// Without inputs the lanes never diverge: every lane must equal the
/// single reference bit-for-bit (the lane-strided layout itself is
/// what's under test here, including the off-chip flush with the spin
/// delay engaged).
#[test]
fn input_free_gang_lanes_all_match_reference() {
    let c = random_circuit(7, 12, 60);
    let mut cfg = PartitionConfig::with_tiles(9);
    cfg.tiles_per_chip = 3;
    let comp = compile(&c, &cfg).expect("compiles");
    let mut reference = Simulator::new(&c);
    let mut gang = GangSimulator::new(&c, &comp.partition, 4, 8);
    gang.set_offchip_spin_per_word(8);
    reference.step_n(60);
    gang.run(60);
    for lane in 0..8 {
        for i in 0..c.regs.len() {
            assert_eq!(
                gang.reg_value_lane(RegId(i as u32), lane),
                reference.reg_value(RegId(i as u32)),
                "lane {lane}: reg {i}"
            );
        }
        for (ai, a) in c.arrays.iter().enumerate() {
            for idx in 0..a.depth {
                assert_eq!(
                    gang.array_value_lane(parendi_rtl::ArrayId(ai as u32), idx, lane),
                    reference.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                    "lane {lane}: array {}[{idx}]",
                    a.name
                );
            }
        }
    }
}

/// Epoch parity and the persistent worker pool must survive uneven
/// `run` chunking with inputs poked between chunks, in every lane.
#[test]
fn gang_chunked_runs_with_per_lane_pokes() {
    let c = random_circuit_io(3, 8, 40, 2);
    let mut cfg = PartitionConfig::with_tiles(6);
    cfg.tiles_per_chip = 3;
    let comp = compile(&c, &cfg).expect("compiles");
    let lanes = 4usize;
    let mut gang = GangSimulator::new(&c, &comp.partition, 3, lanes);
    let mut refs: Vec<Simulator> = (0..lanes).map(|_| Simulator::new(&c)).collect();
    let mut total = 0u64;
    for (k, chunk) in [1u64, 2, 61, 64].into_iter().enumerate() {
        for (l, r) in refs.iter_mut().enumerate() {
            let v = (k as u64 + 1) * 1000 + l as u64;
            r.poke("in1", v & 0xff);
            gang.poke_lane("in1", l, v & 0xff);
            r.step_n(chunk);
        }
        gang.run(chunk);
        total += chunk;
    }
    assert_eq!(gang.cycle(), total);
    for (l, r) in refs.iter().enumerate() {
        for i in 0..c.regs.len() {
            assert_eq!(
                gang.reg_value_lane(RegId(i as u32), l),
                r.reg_value(RegId(i as u32)),
                "lane {l}: reg {i} diverged after chunked runs"
            );
        }
    }
}

/// The broadcast `poke` must drive every lane, and `StimulusSet`
/// bookkeeping (horizon, lane bounds) must hold.
#[test]
fn gang_broadcast_poke_and_stimulus_bookkeeping() {
    let c = random_circuit_io(5, 6, 30, 2);
    let cfg = PartitionConfig::with_tiles(4);
    let comp = compile(&c, &cfg).expect("compiles");
    let mut gang = GangSimulator::new(&c, &comp.partition, 2, 3);
    gang.poke("in0", 1);
    gang.run(10);
    let a = gang.reg_value_lane(RegId(0), 0);
    for lane in 1..3 {
        assert_eq!(a, gang.reg_value_lane(RegId(0), lane), "broadcast poke");
    }

    let mut stim = StimulusSet::new(2);
    assert_eq!(stim.horizon(), 0);
    stim.drive(4, 1, "in0", Bits::from_u64(1, 1));
    stim.drive(2, 0, "in1", Bits::from_u64(8, 0x5a));
    assert_eq!(stim.lanes(), 2);
    assert_eq!(stim.horizon(), 5);
    assert_eq!(stim.events_at(2).count(), 1);
    assert_eq!(stim.events().len(), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: any random circuit, partition width, thread count, and
    /// lane count — every lane identical to its per-lane reference
    /// after a random number of cycles.
    #[test]
    fn gang_matches_reference(
        seed in 0u64..10_000,
        tiles in 1u32..10,
        threads in 1usize..5,
        lanes in 1usize..7,
        cycles in 1u64..30,
    ) {
        let c = random_circuit_io(seed, 8, 40, 3);
        let mut cfg = PartitionConfig::with_tiles(tiles);
        cfg.tiles_per_chip = (tiles.div_ceil(2)).max(1);
        check_gang(&c, &cfg, threads, lanes, cycles, seed);
    }
}
