//! The metrics registry: named counters/gauges over relaxed atomics,
//! registered once per compiled engine and exported as a serializable
//! [`MetricsSnapshot`] (text and JSON) that bench records embed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A named `u64` cell shared by handle: clones observe the same value.
/// Used both as a monotonically increasing counter (`inc`/`add`) and
/// as a gauge (`set`). All accesses are `Relaxed` — metrics are
/// statistics, not synchronization.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Gauge-style overwrite.
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Gauge-style decrement, saturating at zero (for depth/occupancy
    /// gauges like a server's queue depth, where an increment on entry
    /// is paired with a decrement on exit).
    pub fn sub(&self, n: u64) {
        // fetch_update over Relaxed: statistics, not synchronization —
        // same discipline as every other access on this cell.
        let _ = self
            .v
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A get-or-register name → [`Counter`] map. Registration takes a
/// lock; the returned handle is lock-free, so hot paths resolve their
/// counters once at build time and hold the handles.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<(String, Counter)>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it (at
    /// zero) on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut entries = self.entries.lock().expect("metrics registry");
        if let Some((_, c)) = entries.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::new();
        entries.push((name.to_string(), c.clone()));
        c
    }

    /// Gauge-style one-shot write (registers on first use).
    pub fn set(&self, name: &str, v: u64) {
        self.counter(name).set(v);
    }

    /// Point-in-time copy of every registered value, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(String, u64)> = self
            .entries
            .lock()
            .expect("metrics registry")
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        entries.sort();
        MetricsSnapshot { entries }
    }
}

/// A serializable point-in-time copy of a [`MetricsRegistry`]:
/// name/value pairs sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub entries: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// One `name value` line per entry.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (n, v) in &self.entries {
            out.push_str(&format!("{n} {v}\n"));
        }
        out
    }

    /// A flat JSON object, `{"name":value,...}` — the shape embedded
    /// as the `metrics` field of bench records.
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .entries
            .iter()
            .map(|(n, v)| format!("\"{n}\":{v}"))
            .collect();
        format!("{{{}}}", fields.join(","))
    }

    /// Parses the [`to_json`](Self::to_json) shape. Tolerant: unknown
    /// or malformed fields are skipped, so old readers survive new
    /// metric names and vice versa.
    pub fn parse_json(s: &str) -> MetricsSnapshot {
        let inner = s
            .trim()
            .trim_start_matches('{')
            .trim_end_matches('}')
            .trim();
        let mut entries = Vec::new();
        for field in inner.split(',') {
            let Some((name, value)) = field.split_once(':') else {
                continue;
            };
            let name = name.trim().trim_matches('"');
            if name.is_empty() {
                continue;
            }
            if let Ok(v) = value.trim().parse::<u64>() {
                entries.push((name.to_string(), v));
            }
        }
        entries.sort();
        MetricsSnapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Handles share the cell; re-registration returns the same cell.
    #[test]
    fn counters_share_by_handle() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("frames_sent");
        let b = reg.counter("frames_sent");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("frames_sent").get(), 4);
        a.set(10);
        assert_eq!(b.get(), 10);
    }

    /// Depth gauges pair `add` with `sub` and never underflow.
    #[test]
    fn sub_saturates_at_zero() {
        let c = Counter::new();
        c.add(3);
        c.sub(1);
        assert_eq!(c.get(), 2);
        c.sub(10);
        assert_eq!(c.get(), 0, "saturating, not wrapping");
    }

    /// Snapshots are sorted and round-trip through the JSON shape.
    #[test]
    fn snapshot_json_round_trips() {
        let reg = MetricsRegistry::new();
        reg.set("zeta", 7);
        reg.set("alpha", 0);
        reg.counter("mid").add(u64::MAX);
        let snap = reg.snapshot();
        assert_eq!(
            snap.entries
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            ["alpha", "mid", "zeta"]
        );
        let json = snap.to_json();
        assert_eq!(
            json,
            format!("{{\"alpha\":0,\"mid\":{},\"zeta\":7}}", u64::MAX)
        );
        assert_eq!(MetricsSnapshot::parse_json(&json), snap);
        assert_eq!(snap.get("zeta"), Some(7));
        assert_eq!(snap.get("nope"), None);
    }

    /// The parser shrugs off junk — forward/backward compatibility for
    /// bench baselines.
    #[test]
    fn parse_json_is_tolerant() {
        assert!(MetricsSnapshot::parse_json("{}").is_empty());
        assert!(MetricsSnapshot::parse_json("").is_empty());
        let s = MetricsSnapshot::parse_json("{\"ok\":1,\"bad\":\"x\",:3,\"neg\":-2}");
        assert_eq!(s.entries, vec![("ok".to_string(), 1)]);
    }

    /// Text export is one line per metric.
    #[test]
    fn text_export_shape() {
        let reg = MetricsRegistry::new();
        reg.set("a", 1);
        reg.set("b", 2);
        assert_eq!(reg.snapshot().to_text(), "a 1\nb 2\n");
    }
}
