//! The off-chip byte column over the designs corpus: every transport
//! backend must credit exactly the same `offchip_bytes_sent` for the
//! same compiled partition — the column counts whole per-chip-pair
//! aggregates per completed cycle, which no backend is allowed to
//! batch, coalesce, or pad differently. Checked at 2 and 4 chips, and
//! through the metrics registry as well as the direct accessor.

use parendi_core::{compile, PartitionConfig};
use parendi_designs::Benchmark;
use parendi_sim::{BspSimulator, TransportChoice};

const BACKENDS: [TransportChoice; 3] = [
    TransportChoice::InProcess,
    TransportChoice::SharedMem,
    TransportChoice::Tcp,
];

#[test]
fn corpus_designs_credit_identical_bytes_on_every_backend() {
    for (bench, per_chip, chips, cycles) in [
        (Benchmark::Pico, 6u32, 2u32, 40u64),
        (Benchmark::Sr(3), 5, 2, 30),
        (Benchmark::Pico, 3, 4, 40),
        (Benchmark::Sr(3), 3, 4, 30),
    ] {
        let c = bench.build();
        let mut cfg = PartitionConfig::with_tiles(per_chip * chips);
        cfg.tiles_per_chip = per_chip;
        let comp = compile(&c, &cfg).expect("corpus design compiles");
        assert_eq!(
            comp.partition.chips,
            chips,
            "{} must span {chips} chips at {per_chip} tiles/chip",
            bench.name()
        );
        // (accessor bytes, metrics bytes, metrics frames) per backend.
        let mut columns: Vec<(u64, u64, u64)> = Vec::new();
        for backend in BACKENDS {
            let mut sim = BspSimulator::with_transport(&c, &comp.partition, 3, backend);
            sim.run(cycles);
            let snap = sim.metrics_snapshot();
            columns.push((
                sim.offchip_bytes_sent(),
                snap.get("offchip_bytes_sent").unwrap_or(u64::MAX),
                snap.get("frames_sent").unwrap_or(u64::MAX),
            ));
        }
        let (bytes0, mbytes0, frames0) = columns[0];
        assert!(
            bytes0 > 0,
            "{} at {chips} chips must move bytes",
            bench.name()
        );
        assert_eq!(
            bytes0,
            mbytes0,
            "{}: metrics snapshot must mirror the byte accessor",
            bench.name()
        );
        // One frame per chip pair per completed cycle, on every backend.
        assert_eq!(
            frames0 % cycles,
            0,
            "{}: whole frames per cycle",
            bench.name()
        );
        for (i, &col) in columns.iter().enumerate() {
            assert_eq!(
                col,
                (bytes0, mbytes0, frames0),
                "{} at {chips} chips: backend {:?} diverged from {:?}",
                bench.name(),
                BACKENDS[i],
                BACKENDS[0],
            );
        }
    }
}
