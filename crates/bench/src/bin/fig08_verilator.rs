//! Fig. 8: Verilator's scaling profiles — (a) small designs hit the
//! synchronization wall, (b) chiplet/socket boundaries flatten large
//! designs, (c) ix3 and ae4 differ by architecture.

use parendi_baseline::VerilatorModel;
use parendi_bench::{lr_max, sr_max};
use parendi_designs::Benchmark;
use parendi_machine::x64::X64Config;

fn panel(title: &str, benches: &[Benchmark], threads: &[u32]) {
    let ix3 = X64Config::ix3();
    let ae4 = X64Config::ae4();
    println!("{title}");
    print!("{:>8}", "threads");
    for b in benches {
        print!(" {:>9}-ix3 {:>9}-ae4", b.name(), b.name());
    }
    println!();
    let models: Vec<VerilatorModel> = benches
        .iter()
        .map(|b| VerilatorModel::new(&b.build()))
        .collect();
    let base: Vec<(f64, f64)> = models
        .iter()
        .map(|m| (m.rate_khz(&ix3, 1), m.rate_khz(&ae4, 1)))
        .collect();
    for &t in threads {
        print!("{t:>8}");
        for (m, (b_ix3, b_ae4)) in models.iter().zip(&base) {
            print!(
                " {:>13.2} {:>13.2}",
                m.rate_khz(&ix3, t) / b_ix3,
                m.rate_khz(&ae4, t) / b_ae4
            );
        }
        println!();
    }
    println!();
}

fn main() {
    println!("Fig. 8: Verilator self-relative speedup vs threads\n");
    panel(
        "(a) small designs: sync-bound",
        &[Benchmark::Vta, Benchmark::Mc, Benchmark::Sr(3)],
        &[1, 2, 4, 6, 8],
    );
    let (sr, lr) = (sr_max(), lr_max());
    panel(
        "(b) large designs: chiplet/socket cliffs",
        &[
            Benchmark::Sr(sr),
            Benchmark::Lr(lr.saturating_sub(2).max(2)),
            Benchmark::Lr(lr),
        ],
        &[1, 4, 8, 12, 16, 20, 24, 28, 32],
    );
    panel(
        "(c) architecture differences",
        &[
            Benchmark::Sr(sr.min(6)),
            Benchmark::Sr(sr.min(9)),
            Benchmark::Lr(lr.min(4)),
        ],
        &[1, 2, 4, 8, 12, 16],
    );
    println!("Shape check: (a) flat beyond a few threads; (b) ae4 gains fade past 8");
    println!("threads/chiplet and ix3 past 28/socket; (c) profiles differ per host.");
}
