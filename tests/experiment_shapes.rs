//! Shape assertions for the paper's headline claims, run against the
//! same code paths the figure binaries use (EXPERIMENTS.md records the
//! full regenerated outputs).

use parendi::baseline::VerilatorModel;
use parendi::core::{compile, MultiChipStrategy, PartitionConfig};
use parendi::designs::Benchmark;
use parendi::machine::ipu::IpuConfig;
use parendi::machine::pricing::{simulate_cost, CloudInstance};
use parendi::machine::x64::X64Config;
use parendi::sim::ipu_rate_khz;

fn best_ipu_khz(circuit: &parendi::rtl::Circuit, ipu: &IpuConfig) -> f64 {
    [368u32, 736, 1472]
        .into_iter()
        .map(|t| {
            ipu_rate_khz(
                &compile(circuit, &PartitionConfig::with_tiles(t)).unwrap(),
                ipu,
            )
        })
        .fold(0.0, f64::max)
}

#[test]
fn speedup_grows_with_design_size() {
    // Fig. 7 / Fig. 11: Parendi's advantage over Verilator grows with N.
    let ipu = IpuConfig::m2000();
    let ix3 = X64Config::ix3();
    let mut speedups = Vec::new();
    for n in [2u32, 5, 8] {
        let c = Benchmark::Sr(n).build();
        let vm = VerilatorModel::new(&c);
        let (_, v_khz, _) = vm.best(&ix3, 32);
        speedups.push(best_ipu_khz(&c, &ipu) / v_khz);
    }
    assert!(
        speedups[0] < speedups[1] && speedups[1] < speedups[2],
        "speedup must grow with mesh size: {speedups:?}"
    );
    assert!(
        speedups[2] > 2.0,
        "sr8 speedup {} should exceed 2x",
        speedups[2]
    );
}

#[test]
fn small_designs_favour_verilator_single_thread() {
    // Table 1: pico/rocket single-thread Verilator beats parallel Parendi.
    let ipu = IpuConfig::m2000();
    let ix3 = X64Config::ix3();
    for bench in [Benchmark::Pico, Benchmark::Rocket] {
        let c = bench.build();
        let vm = VerilatorModel::new(&c);
        assert!(
            vm.rate_khz(&ix3, 1) > best_ipu_khz(&c, &ipu),
            "{}: Verilator 1T must win at this scale",
            bench.name()
        );
    }
}

#[test]
fn bitcoin_gains_orders_of_magnitude_from_tiles() {
    // Table 1: balanced fibers scale; 1 tile is far slower than many.
    let ipu = IpuConfig::m2000();
    let c = Benchmark::Bitcoin.build();
    let one = ipu_rate_khz(&compile(&c, &PartitionConfig::with_tiles(1)).unwrap(), &ipu);
    let many = best_ipu_khz(&c, &ipu);
    assert!(
        many > 10.0 * one,
        "bitcoin parallel {many:.0} vs single {one:.0}"
    );
}

#[test]
fn verilator_hits_chiplet_cliff_on_ae4() {
    // Fig. 8b: gains fade crossing the 8-core chiplet on ae4.
    let ae4 = X64Config::ae4();
    let c = Benchmark::Sr(8).build();
    let vm = VerilatorModel::new(&c);
    let r8 = vm.rate_khz(&ae4, 8);
    let r12 = vm.rate_khz(&ae4, 12);
    assert!(
        r12 < r8 * 1.15,
        "crossing the chiplet must not keep scaling: 8T {r8:.1} vs 12T {r12:.1}"
    );
}

#[test]
fn multi_chip_pre_beats_none() {
    // Fig. 17: chip-aware fiber partitioning wins on off-chip volume.
    let c = Benchmark::Sr(6).build();
    let mut volumes = std::collections::HashMap::new();
    for mc in [MultiChipStrategy::Pre, MultiChipStrategy::None] {
        let mut cfg = PartitionConfig::with_tiles(128);
        cfg.tiles_per_chip = 64;
        cfg.multi_chip = mc;
        let comp = compile(&c, &cfg).unwrap();
        volumes.insert(format!("{mc:?}"), comp.plan.offchip_total_bytes);
    }
    assert!(
        volumes["Pre"] < volumes["None"],
        "pre {} must cut less than none {}",
        volumes["Pre"],
        volumes["None"]
    );
}

#[test]
fn differential_exchange_reduces_traffic() {
    // §5.2: sending (index, data, enable) beats whole-array copies.
    let c = Benchmark::Pico.build();
    let mut with = PartitionConfig::with_tiles(8);
    with.differential_exchange = true;
    let mut without = PartitionConfig::with_tiles(8);
    without.differential_exchange = false;
    let t_with = compile(&c, &with).unwrap().plan.max_tile_onchip_bytes;
    let t_without = compile(&c, &without).unwrap().plan.max_tile_onchip_bytes;
    assert!(
        t_with * 4 < t_without,
        "diff exchange must shrink traffic: {t_with} vs {t_without}"
    );
}

#[test]
fn ipu_is_cheaper_for_long_simulations() {
    // §6.4: the IPU-POD4 undercuts a Dv4 slice on a long test.
    let ipu = IpuConfig::m2000();
    let dv4 = X64Config::dv4();
    let c = Benchmark::Sr(8).build();
    let vm = VerilatorModel::new(&c);
    let (_, dv4_khz, _) = vm.best(&dv4, 16);
    let ipu_khz = best_ipu_khz(&c, &ipu);
    let cost_ipu = simulate_cost(&CloudInstance::ipu_pod4(), 1_000_000_000, ipu_khz);
    let cost_dv4 = simulate_cost(&CloudInstance::dv4(16), 1_000_000_000, dv4_khz);
    assert!(
        cost_ipu.usd < cost_dv4.usd,
        "IPU ${:.2} must beat Dv4 ${:.2}",
        cost_ipu.usd,
        cost_dv4.usd
    );
}

#[test]
fn weak_scaling_flatter_on_ipu() {
    // Fig. 11: growing the design hurts the IPU rate less than x64.
    let ipu = IpuConfig::m2000();
    let ix3 = X64Config::ix3();
    let small = Benchmark::Sr(4).build();
    let large = Benchmark::Sr(8).build();
    let ipu_drop = best_ipu_khz(&small, &ipu) / best_ipu_khz(&large, &ipu);
    let vm_s = VerilatorModel::new(&small);
    let vm_l = VerilatorModel::new(&large);
    let x64_drop = vm_s.best(&ix3, 32).1 / vm_l.best(&ix3, 32).1;
    assert!(
        ipu_drop < x64_drop / 1.3,
        "IPU rate drop {ipu_drop:.2}x must be flatter than x64 {x64_drop:.2}x"
    );
}
