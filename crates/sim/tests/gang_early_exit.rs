//! Per-lane early exit: a retired lane's architectural state must
//! freeze bit-exactly while the surviving lanes keep matching their
//! references — and the gang must get *faster* when most lanes retire,
//! since every dispatched instruction sweeps fewer lanes.

mod common;

use common::random_circuit_io;
use parendi_core::{compile, PartitionConfig};
use parendi_rtl::bits::Bits;
use parendi_rtl::{Builder, RegId};
use parendi_sim::{GangSimulator, Simulator, StimulusSet};

/// A deterministic per-lane stimulus: every input of every lane is
/// re-driven on a lane-dependent schedule so lanes diverge immediately.
fn lane_stim(circuit: &parendi_rtl::Circuit, lanes: u32, cycles: u64) -> StimulusSet {
    let mut stim = StimulusSet::new(lanes);
    for c in 0..cycles {
        for l in 0..lanes {
            for (i, d) in circuit.inputs.iter().enumerate() {
                if c == 0 || (c + l as u64 + i as u64).is_multiple_of(3) {
                    let v = c
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((l as u64) << 17 | i as u64);
                    stim.drive(c, l, &d.name, Bits::from_u64(d.width, v));
                }
            }
        }
    }
    stim
}

/// Replays lane `lane` of `stim` against a fresh reference for `cycles`.
fn reference_lane<'c>(
    circuit: &'c parendi_rtl::Circuit,
    stim: &StimulusSet,
    lane: u32,
    cycles: u64,
) -> Simulator<'c> {
    let mut sim = Simulator::new(circuit);
    for c in 0..cycles {
        stim.apply_lane(lane, c, &mut sim);
        sim.step();
    }
    sim
}

/// Retiring a lane freezes its registers and arrays at the retirement
/// cycle, while every surviving lane stays bit-identical to its
/// reference through the rest of the run.
#[test]
fn finished_lane_freezes_and_survivors_keep_matching() {
    let c = random_circuit_io(21, 10, 50, 3);
    let mut cfg = PartitionConfig::with_tiles(8);
    cfg.tiles_per_chip = 4; // multi-chip: the off-chip flush skips retired lanes too
    let comp = compile(&c, &cfg).expect("compiles");
    let lanes = 4usize;
    let stim = lane_stim(&c, lanes as u32, 70);
    let mut gang = GangSimulator::new(&c, &comp.partition, 4, lanes);
    assert_eq!(gang.active_lanes(), lanes);

    gang.run_stimulus(20, &stim);
    // Lane 1 reaches its verdict at cycle 20: retire it.
    gang.finish_lane(1);
    assert!(!gang.lane_is_active(1));
    assert!(gang.lane_is_active(0));
    assert_eq!(gang.active_lanes(), lanes - 1);
    let frozen: Vec<Bits> = (0..c.regs.len())
        .map(|i| gang.reg_value_lane(RegId(i as u32), 1))
        .collect();
    let frozen_mem: Vec<Bits> = (0..c.arrays[0].depth)
        .map(|i| gang.array_value_lane(parendi_rtl::ArrayId(0), i, 1))
        .collect();

    // Run an *odd* number of cycles first: a retired lane's mailbox
    // epochs stop alternating, so output peeks must replay at the
    // freeze parity, not the live one.
    gang.run_stimulus(23, &stim);
    let ref20 = reference_lane(&c, &stim, 1, 20);
    for o in &c.outputs {
        assert_eq!(
            gang.peek_output_lane(&o.name, 1).expect("output exists"),
            ref20.output(&o.name).expect("output exists"),
            "retired lane output {} not frozen at odd parity",
            o.name
        );
    }
    gang.run_stimulus(27, &stim);
    assert_eq!(gang.cycle(), 70);

    // The retired lane froze exactly at its cycle-20 state (which the
    // reference reproduces by stopping there).
    for (i, expect) in frozen.iter().enumerate() {
        assert_eq!(
            &gang.reg_value_lane(RegId(i as u32), 1),
            expect,
            "retired lane reg {i} moved after finish_lane"
        );
        assert_eq!(
            expect,
            &ref20.reg_value(RegId(i as u32)),
            "frozen reg {i} is not the cycle-20 state"
        );
    }
    for idx in 0..c.arrays[0].depth {
        assert_eq!(
            gang.array_value_lane(parendi_rtl::ArrayId(0), idx, 1),
            frozen_mem[idx as usize],
            "retired lane mem[{idx}] moved after finish_lane"
        );
    }

    // Survivors ran the full 70 cycles bit-exactly.
    for lane in [0usize, 2, 3] {
        let reference = reference_lane(&c, &stim, lane as u32, 70);
        for i in 0..c.regs.len() {
            assert_eq!(
                gang.reg_value_lane(RegId(i as u32), lane),
                reference.reg_value(RegId(i as u32)),
                "surviving lane {lane}: reg {i} diverged"
            );
        }
        for idx in 0..c.arrays[0].depth {
            assert_eq!(
                gang.array_value_lane(parendi_rtl::ArrayId(0), idx, lane),
                reference.array_value(parendi_rtl::ArrayId(0), idx),
                "surviving lane {lane}: mem[{idx}] diverged"
            );
        }
    }

    // Retiring again is a no-op; retiring the rest leaves one lane.
    gang.finish_lane(1);
    gang.finish_lane(0);
    gang.finish_lane(2);
    assert_eq!(gang.active_lanes(), 1);
    // Timed runs report the *active* count so aggregate throughput
    // stays honest.
    let ph = gang.run_timed(5);
    assert_eq!(ph.lanes, 1);
}

/// A compute-heavy chain circuit: enough per-cycle work that lane
/// count dominates the run time.
fn mul_chain(regs: usize, depth: usize) -> parendi_rtl::Circuit {
    let mut b = Builder::new("chain");
    let rs: Vec<_> = (0..regs)
        .map(|i| b.reg(format!("r{i}"), 32, i as u64))
        .collect();
    for i in 0..regs {
        let mut v = rs[(i + 1) % regs].q();
        for k in 0..depth {
            let kk = b.lit(32, 0x9E37 + k as u64);
            let m = b.mul(v, kk);
            v = b.xor(m, rs[i].q());
        }
        b.connect(rs[i], v);
    }
    b.finish().unwrap()
}

/// Retiring almost every lane must speed the gang up: one surviving
/// lane sweeps 1/32nd of the state per dispatch. Wall-clock comparison
/// with best-of-N to shrug off scheduler noise.
#[test]
fn early_exit_raises_throughput() {
    let c = mul_chain(24, 12);
    let comp = compile(&c, &PartitionConfig::with_tiles(4)).expect("compiles");
    let lanes = 32usize;
    let cycles = 400u64;
    let mut gang = GangSimulator::new(&c, &comp.partition, 1, lanes);
    gang.run(50); // warm
    let t_full = (0..3).map(|_| gang.run(cycles)).fold(f64::MAX, f64::min);
    for l in 1..lanes {
        gang.finish_lane(l);
    }
    assert_eq!(gang.active_lanes(), 1);
    let t_one = (0..3).map(|_| gang.run(cycles)).fold(f64::MAX, f64::min);
    assert!(
        t_one < t_full,
        "1 active lane ({t_one:.6}s) must beat 32 active lanes ({t_full:.6}s)"
    );
    // And the reported aggregate accounts only the survivor.
    let ph = gang.run_timed(50);
    assert_eq!(ph.lanes, 1);
    assert!(ph.lane_cycles_per_s() > 0.0);
}

/// Gang timed runs now report per-tile phase histograms (they were
/// empty on the old gang engine): one entry per tile, with nonzero
/// compute somewhere.
#[test]
fn gang_timed_runs_populate_per_tile_histograms() {
    let c = random_circuit_io(9, 10, 50, 2);
    let mut cfg = PartitionConfig::with_tiles(6);
    cfg.tiles_per_chip = 3;
    let comp = compile(&c, &cfg).expect("compiles");
    for threads in [1usize, 3] {
        let mut gang = GangSimulator::new(&c, &comp.partition, threads, 4);
        gang.set_offchip_spin_per_word(4);
        gang.run(10);
        let ph = gang.run_timed(30);
        assert_eq!(
            ph.per_tile.len(),
            comp.partition.tiles_used() as usize,
            "one histogram entry per tile ({threads} threads)"
        );
        assert!(
            ph.per_tile.iter().any(|t| t.compute_s > 0.0),
            "some tile computed for a nonzero time"
        );
    }
}
