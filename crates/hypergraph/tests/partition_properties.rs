//! Partitioner invariants on random hypergraphs: block validity,
//! balance, cut consistency, and determinism.

use parendi_hypergraph::Hypergraph;
use proptest::prelude::*;

fn random_hypergraph(nodes: usize, edges: &[(u64, Vec<u32>)], weights: &[u64]) -> Hypergraph {
    let w: Vec<u64> = (0..nodes)
        .map(|i| weights[i % weights.len()].max(1))
        .collect();
    let mut hg = Hypergraph::new(w);
    for (weight, pins) in edges {
        let pins: Vec<u32> = pins.iter().map(|p| p % nodes as u32).collect();
        hg.add_edge(weight.max(&1).to_owned(), pins);
    }
    hg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_invariants(
        nodes in 2usize..200,
        edges in proptest::collection::vec(
            (1u64..50, proptest::collection::vec(any::<u32>(), 2..6)),
            0..300
        ),
        weights in proptest::collection::vec(1u64..20, 1..8),
        k in 1u32..9,
        seed in any::<u64>(),
    ) {
        let hg = random_hypergraph(nodes, &edges, &weights);
        let p = hg.partition(k, 0.1, seed);

        // Every node gets a valid block.
        prop_assert_eq!(p.parts.len(), nodes);
        prop_assert!(p.parts.iter().all(|&b| b < k), "block id out of range");
        // Reported weights are consistent.
        let mut recomputed = vec![0u64; k as usize];
        for (n, &b) in p.parts.iter().enumerate() {
            recomputed[b as usize] += hg.node_weights()[n];
        }
        prop_assert_eq!(&recomputed, &p.part_weights);
        prop_assert_eq!(recomputed.iter().sum::<u64>(), hg.total_weight());
        // Cut/connectivity consistency.
        prop_assert_eq!(p.cut, hg.cut(&p.parts));
        prop_assert!(p.connectivity >= p.cut);
        // Determinism.
        let q = hg.partition(k, 0.1, seed);
        prop_assert_eq!(p.parts, q.parts);
    }

    #[test]
    fn k1_is_uncut(
        nodes in 2usize..100,
        edges in proptest::collection::vec(
            (1u64..50, proptest::collection::vec(any::<u32>(), 2..5)),
            0..100
        ),
    ) {
        let hg = random_hypergraph(nodes, &edges, &[1]);
        let p = hg.partition(1, 0.1, 0);
        prop_assert_eq!(p.cut, 0);
        prop_assert_eq!(p.connectivity, 0);
        prop_assert!(p.parts.iter().all(|&b| b == 0));
    }

    #[test]
    fn unit_weight_balance(nodes in 16usize..256, k in 2u32..5, seed in any::<u64>()) {
        // A path graph with unit weights must balance within epsilon-ish.
        let mut hg = Hypergraph::new(vec![1; nodes]);
        for i in 0..nodes - 1 {
            hg.add_edge(1, vec![i as u32, i as u32 + 1]);
        }
        let p = hg.partition(k, 0.1, seed);
        let max = *p.part_weights.iter().max().unwrap() as f64;
        let avg = nodes as f64 / k as f64;
        prop_assert!(max <= (avg * 1.6).max(avg + 2.0), "imbalance {max} vs avg {avg}");
    }
}
