//! A minimal RV32I assembler for driving the RISC-V core designs.
//!
//! Encodes the RV32I subset implemented by [`crate::pico`] and
//! [`crate::rocket`] (no byte/halfword memory ops, no fences/CSRs) and
//! ships the small test programs the benchmark designs run.

/// Register aliases.
pub mod reg {
    /// x0: hardwired zero.
    pub const ZERO: u32 = 0;
    /// x1: return address.
    pub const RA: u32 = 1;
    /// x2: stack pointer.
    pub const SP: u32 = 2;
    /// x5-x7: temporaries.
    pub const T0: u32 = 5;
    /// Temporary t1.
    pub const T1: u32 = 6;
    /// Temporary t2.
    pub const T2: u32 = 7;
    /// x10-x11: arguments / return values.
    pub const A0: u32 = 10;
    /// Argument a1.
    pub const A1: u32 = 11;
    /// Argument a2.
    pub const A2: u32 = 12;
    /// Argument a3.
    pub const A3: u32 = 13;
    /// Saved register s0.
    pub const S0: u32 = 8;
    /// Saved register s1.
    pub const S1: u32 = 9;
}

fn imm12(imm: i32) -> u32 {
    assert!((-2048..=2047).contains(&imm), "imm12 out of range: {imm}");
    (imm as u32) & 0xfff
}

fn rtype(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn itype(imm: i32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (imm12(imm) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

/// `add rd, rs1, rs2`
pub fn add(rd: u32, rs1: u32, rs2: u32) -> u32 {
    rtype(0, rs2, rs1, 0b000, rd, 0b0110011)
}

/// `sub rd, rs1, rs2`
pub fn sub(rd: u32, rs1: u32, rs2: u32) -> u32 {
    rtype(0b0100000, rs2, rs1, 0b000, rd, 0b0110011)
}

/// `sll rd, rs1, rs2`
pub fn sll(rd: u32, rs1: u32, rs2: u32) -> u32 {
    rtype(0, rs2, rs1, 0b001, rd, 0b0110011)
}

/// `slt rd, rs1, rs2`
pub fn slt(rd: u32, rs1: u32, rs2: u32) -> u32 {
    rtype(0, rs2, rs1, 0b010, rd, 0b0110011)
}

/// `sltu rd, rs1, rs2`
pub fn sltu(rd: u32, rs1: u32, rs2: u32) -> u32 {
    rtype(0, rs2, rs1, 0b011, rd, 0b0110011)
}

/// `xor rd, rs1, rs2`
pub fn xor(rd: u32, rs1: u32, rs2: u32) -> u32 {
    rtype(0, rs2, rs1, 0b100, rd, 0b0110011)
}

/// `srl rd, rs1, rs2`
pub fn srl(rd: u32, rs1: u32, rs2: u32) -> u32 {
    rtype(0, rs2, rs1, 0b101, rd, 0b0110011)
}

/// `sra rd, rs1, rs2`
pub fn sra(rd: u32, rs1: u32, rs2: u32) -> u32 {
    rtype(0b0100000, rs2, rs1, 0b101, rd, 0b0110011)
}

/// `or rd, rs1, rs2`
pub fn or(rd: u32, rs1: u32, rs2: u32) -> u32 {
    rtype(0, rs2, rs1, 0b110, rd, 0b0110011)
}

/// `and rd, rs1, rs2`
pub fn and(rd: u32, rs1: u32, rs2: u32) -> u32 {
    rtype(0, rs2, rs1, 0b111, rd, 0b0110011)
}

/// `addi rd, rs1, imm`
pub fn addi(rd: u32, rs1: u32, imm: i32) -> u32 {
    itype(imm, rs1, 0b000, rd, 0b0010011)
}

/// `slti rd, rs1, imm`
pub fn slti(rd: u32, rs1: u32, imm: i32) -> u32 {
    itype(imm, rs1, 0b010, rd, 0b0010011)
}

/// `sltiu rd, rs1, imm`
pub fn sltiu(rd: u32, rs1: u32, imm: i32) -> u32 {
    itype(imm, rs1, 0b011, rd, 0b0010011)
}

/// `xori rd, rs1, imm`
pub fn xori(rd: u32, rs1: u32, imm: i32) -> u32 {
    itype(imm, rs1, 0b100, rd, 0b0010011)
}

/// `ori rd, rs1, imm`
pub fn ori(rd: u32, rs1: u32, imm: i32) -> u32 {
    itype(imm, rs1, 0b110, rd, 0b0010011)
}

/// `andi rd, rs1, imm`
pub fn andi(rd: u32, rs1: u32, imm: i32) -> u32 {
    itype(imm, rs1, 0b111, rd, 0b0010011)
}

/// `slli rd, rs1, sh`
pub fn slli(rd: u32, rs1: u32, sh: u32) -> u32 {
    itype(sh as i32, rs1, 0b001, rd, 0b0010011)
}

/// `srli rd, rs1, sh`
pub fn srli(rd: u32, rs1: u32, sh: u32) -> u32 {
    itype(sh as i32, rs1, 0b101, rd, 0b0010011)
}

/// `srai rd, rs1, sh`
pub fn srai(rd: u32, rs1: u32, sh: u32) -> u32 {
    itype((sh | 0x400) as i32, rs1, 0b101, rd, 0b0010011)
}

/// `lw rd, imm(rs1)`
pub fn lw(rd: u32, rs1: u32, imm: i32) -> u32 {
    itype(imm, rs1, 0b010, rd, 0b0000011)
}

/// `sw rs2, imm(rs1)`
pub fn sw(rs2: u32, rs1: u32, imm: i32) -> u32 {
    let imm = imm12(imm);
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (0b010 << 12) | ((imm & 0x1f) << 7) | 0b0100011
}

/// `lui rd, imm20` (imm is the upper 20 bits, pre-shifted right).
pub fn lui(rd: u32, imm20: u32) -> u32 {
    (imm20 << 12) | (rd << 7) | 0b0110111
}

/// `auipc rd, imm20`
pub fn auipc(rd: u32, imm20: u32) -> u32 {
    (imm20 << 12) | (rd << 7) | 0b0010111
}

fn btype(imm: i32, rs2: u32, rs1: u32, funct3: u32) -> u32 {
    assert!(
        (-4096..=4095).contains(&imm) && imm % 2 == 0,
        "b-imm out of range: {imm}"
    );
    let i = imm as u32;
    ((i >> 12) & 1) << 31
        | ((i >> 5) & 0x3f) << 25
        | rs2 << 20
        | rs1 << 15
        | funct3 << 12
        | ((i >> 1) & 0xf) << 8
        | ((i >> 11) & 1) << 7
        | 0b1100011
}

/// `beq rs1, rs2, offset`
pub fn beq(rs1: u32, rs2: u32, offset: i32) -> u32 {
    btype(offset, rs2, rs1, 0b000)
}

/// `bne rs1, rs2, offset`
pub fn bne(rs1: u32, rs2: u32, offset: i32) -> u32 {
    btype(offset, rs2, rs1, 0b001)
}

/// `blt rs1, rs2, offset`
pub fn blt(rs1: u32, rs2: u32, offset: i32) -> u32 {
    btype(offset, rs2, rs1, 0b100)
}

/// `bge rs1, rs2, offset`
pub fn bge(rs1: u32, rs2: u32, offset: i32) -> u32 {
    btype(offset, rs2, rs1, 0b101)
}

/// `bltu rs1, rs2, offset`
pub fn bltu(rs1: u32, rs2: u32, offset: i32) -> u32 {
    btype(offset, rs2, rs1, 0b110)
}

/// `bgeu rs1, rs2, offset`
pub fn bgeu(rs1: u32, rs2: u32, offset: i32) -> u32 {
    btype(offset, rs2, rs1, 0b111)
}

/// `jal rd, offset`
pub fn jal(rd: u32, offset: i32) -> u32 {
    assert!((-(1 << 20)..(1 << 20)).contains(&offset) && offset % 2 == 0);
    let i = offset as u32;
    ((i >> 20) & 1) << 31
        | ((i >> 1) & 0x3ff) << 21
        | ((i >> 11) & 1) << 20
        | ((i >> 12) & 0xff) << 12
        | rd << 7
        | 0b1101111
}

/// `jalr rd, rs1, imm`
pub fn jalr(rd: u32, rs1: u32, imm: i32) -> u32 {
    itype(imm, rs1, 0b000, rd, 0b1100111)
}

/// `nop`
pub fn nop() -> u32 {
    addi(0, 0, 0)
}

/// The convention for "done": an unconditional self-loop.
pub fn halt() -> u32 {
    jal(0, 0)
}

/// Loads a full 32-bit constant into `rd` (lui+addi pair).
pub fn li(rd: u32, value: u32) -> Vec<u32> {
    let lo = (value & 0xfff) as i32;
    let lo = if lo >= 2048 { lo - 4096 } else { lo };
    let hi = value.wrapping_sub(lo as u32) >> 12;
    if hi == 0 {
        vec![addi(rd, 0, lo)]
    } else {
        vec![lui(rd, hi), addi(rd, rd, lo)]
    }
}

/// Test programs used by the benchmark designs.
pub mod programs {
    use super::*;

    /// Iterative Fibonacci: leaves `fib(n)` in `a0` and stores it to
    /// data address 0, then halts.
    pub fn fibonacci(n: u32) -> Vec<u32> {
        let mut p = vec![
            addi(reg::T0, 0, 0),        // t0 = fib(i)
            addi(reg::T1, 0, 1),        // t1 = fib(i+1)
            addi(reg::T2, 0, n as i32), // t2 = counter
            // loop: (skip past the jal to the epilogue when t2 == 0)
            beq(reg::T2, reg::ZERO, 24), // while t2 != 0
            add(reg::A0, reg::T0, reg::T1),
            add(reg::T0, reg::T1, reg::ZERO),
            add(reg::T1, reg::A0, reg::ZERO),
            addi(reg::T2, reg::T2, -1),
            jal(0, -20),
            // done: a0 = fib(n+1); fix to fib(n) = t0
        ];
        p.push(add(reg::A0, reg::T0, reg::ZERO));
        p.push(sw(reg::A0, reg::ZERO, 0));
        p.push(halt());
        p
    }

    /// Sums data memory words `[0, n)` into `a0`, stores the sum at
    /// address `4*n`, then halts. Memory is pre-initialized by the test.
    pub fn sum_array(n: u32) -> Vec<u32> {
        vec![
            addi(reg::T0, 0, 0),              // t0 = i*4
            addi(reg::A0, 0, 0),              // a0 = sum
            addi(reg::T2, 0, (4 * n) as i32), // t2 = end offset
            // loop:
            beq(reg::T0, reg::T2, 20),
            lw(reg::T1, reg::T0, 0),
            add(reg::A0, reg::A0, reg::T1),
            addi(reg::T0, reg::T0, 4),
            jal(0, -16),
            // done:
            sw(reg::A0, reg::T0, 0), // mem[n] = sum
            halt(),
        ]
    }

    /// A small arithmetic torture loop: mixes shifts, logic, compares and
    /// memory traffic; result lands in `a0`. Runs `iters` iterations.
    pub fn mixed(iters: u32) -> Vec<u32> {
        let mut p = li(reg::S0, 0xdeadbeef);
        p.extend([
            addi(reg::T2, 0, iters as i32),
            addi(reg::A0, 0, 0),
            // loop:
            beq(reg::T2, reg::ZERO, 52),
            slli(reg::T0, reg::T2, 3),
            xor(reg::T0, reg::T0, reg::S0),
            srli(reg::T1, reg::T0, 5),
            add(reg::A0, reg::A0, reg::T1),
            sltu(reg::T1, reg::A0, reg::T0),
            add(reg::A0, reg::A0, reg::T1),
            sw(reg::A0, reg::ZERO, 16),
            lw(reg::T1, reg::ZERO, 16),
            sub(reg::A0, reg::A0, reg::T1),
            add(reg::A0, reg::A0, reg::T1),
            addi(reg::T2, reg::T2, -1),
            jal(0, -48),
            halt(),
        ]);
        p
    }
}

/// A tiny RV32I golden-model interpreter used to check the cores.
#[derive(Clone, Debug)]
pub struct GoldenRv32 {
    /// Register file.
    pub regs: [u32; 32],
    /// Program counter (byte address).
    pub pc: u32,
    /// Word-addressed data memory.
    pub dmem: Vec<u32>,
}

impl GoldenRv32 {
    /// Creates a golden model with `dmem_words` words of data memory.
    pub fn new(dmem_words: usize) -> Self {
        GoldenRv32 {
            regs: [0; 32],
            pc: 0,
            dmem: vec![0; dmem_words],
        }
    }

    /// Executes one instruction from `imem`. Returns false on halt
    /// (self-loop) or out-of-range PC.
    pub fn step(&mut self, imem: &[u32]) -> bool {
        let word = match imem.get((self.pc / 4) as usize) {
            Some(&w) => w,
            None => return false,
        };
        if word == halt() {
            return false;
        }
        let opcode = word & 0x7f;
        let rd = (word >> 7) & 0x1f;
        let rs1 = ((word >> 15) & 0x1f) as usize;
        let rs2 = ((word >> 20) & 0x1f) as usize;
        let funct3 = (word >> 12) & 0x7;
        let funct7 = word >> 25;
        let i_imm = (word as i32) >> 20;
        let s_imm = (((word >> 25) << 5 | ((word >> 7) & 0x1f)) as i32) << 20 >> 20;
        let b_imm = ((((word >> 31) & 1) << 12
            | ((word >> 7) & 1) << 11
            | ((word >> 25) & 0x3f) << 5
            | ((word >> 8) & 0xf) << 1) as i32)
            << 19
            >> 19;
        let u_imm = word & 0xfffff000;
        let j_imm = ((((word >> 31) & 1) << 20
            | ((word >> 12) & 0xff) << 12
            | ((word >> 20) & 1) << 11
            | ((word >> 21) & 0x3ff) << 1) as i32)
            << 11
            >> 11;
        let r1 = self.regs[rs1];
        let r2 = self.regs[rs2];
        let mut next_pc = self.pc.wrapping_add(4);
        let mut wb: Option<u32> = None;
        match opcode {
            0b0110111 => wb = Some(u_imm),
            0b0010111 => wb = Some(self.pc.wrapping_add(u_imm)),
            0b1101111 => {
                wb = Some(self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(j_imm as u32);
            }
            0b1100111 => {
                wb = Some(self.pc.wrapping_add(4));
                next_pc = r1.wrapping_add(i_imm as u32) & !1;
            }
            0b1100011 => {
                let taken = match funct3 {
                    0b000 => r1 == r2,
                    0b001 => r1 != r2,
                    0b100 => (r1 as i32) < (r2 as i32),
                    0b101 => (r1 as i32) >= (r2 as i32),
                    0b110 => r1 < r2,
                    _ => r1 >= r2,
                };
                if taken {
                    next_pc = self.pc.wrapping_add(b_imm as u32);
                }
            }
            0b0000011 => {
                let addr = r1.wrapping_add(i_imm as u32) / 4;
                wb = Some(self.dmem.get(addr as usize).copied().unwrap_or(0));
            }
            0b0100011 => {
                let addr = r1.wrapping_add(s_imm as u32) / 4;
                if let Some(slot) = self.dmem.get_mut(addr as usize) {
                    *slot = r2;
                }
            }
            0b0010011 => {
                let imm = i_imm as u32;
                let sh = imm & 0x1f;
                wb = Some(match funct3 {
                    0b000 => r1.wrapping_add(imm),
                    0b010 => ((r1 as i32) < (imm as i32)) as u32,
                    0b011 => (r1 < imm) as u32,
                    0b100 => r1 ^ imm,
                    0b110 => r1 | imm,
                    0b111 => r1 & imm,
                    0b001 => r1 << sh,
                    _ => {
                        if imm & 0x400 != 0 {
                            ((r1 as i32) >> sh) as u32
                        } else {
                            r1 >> sh
                        }
                    }
                });
            }
            0b0110011 => {
                let sh = r2 & 0x1f;
                wb = Some(match (funct3, funct7) {
                    (0b000, 0) => r1.wrapping_add(r2),
                    (0b000, _) => r1.wrapping_sub(r2),
                    (0b001, _) => r1 << sh,
                    (0b010, _) => ((r1 as i32) < (r2 as i32)) as u32,
                    (0b011, _) => (r1 < r2) as u32,
                    (0b100, _) => r1 ^ r2,
                    (0b101, 0) => r1 >> sh,
                    (0b101, _) => ((r1 as i32) >> sh) as u32,
                    (0b110, _) => r1 | r2,
                    _ => r1 & r2,
                });
            }
            _ => {}
        }
        if let Some(v) = wb {
            if rd != 0 {
                self.regs[rd as usize] = v;
            }
        }
        self.pc = next_pc;
        true
    }

    /// Runs until halt or `max_instructions`. Returns instructions retired.
    pub fn run(&mut self, imem: &[u32], max_instructions: u64) -> u64 {
        for i in 0..max_instructions {
            if !self.step(imem) {
                return i;
            }
        }
        max_instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_fibonacci() {
        let prog = programs::fibonacci(10);
        let mut g = GoldenRv32::new(64);
        g.run(&prog, 10_000);
        assert_eq!(g.regs[reg::A0 as usize], 55);
        assert_eq!(g.dmem[0], 55);
    }

    #[test]
    fn golden_sum_array() {
        let prog = programs::sum_array(5);
        let mut g = GoldenRv32::new(64);
        for i in 0..5 {
            g.dmem[i] = (i as u32 + 1) * 10;
        }
        g.run(&prog, 10_000);
        assert_eq!(g.regs[reg::A0 as usize], 150);
        assert_eq!(g.dmem[5], 150);
    }

    #[test]
    fn li_round_trips() {
        for v in [0u32, 1, 0x7ff, 0x800, 0xdead_beef, 0xffff_ffff, 0x8000_0000] {
            let prog: Vec<u32> = li(reg::A0, v).into_iter().chain([halt()]).collect();
            let mut g = GoldenRv32::new(4);
            g.run(&prog, 10);
            assert_eq!(g.regs[reg::A0 as usize], v, "li({v:#x})");
        }
    }

    #[test]
    fn encodings_have_correct_opcodes() {
        assert_eq!(add(1, 2, 3) & 0x7f, 0b0110011);
        assert_eq!(addi(1, 2, -5) & 0x7f, 0b0010011);
        assert_eq!(lw(1, 2, 8) & 0x7f, 0b0000011);
        assert_eq!(sw(1, 2, 8) & 0x7f, 0b0100011);
        assert_eq!(beq(1, 2, 8) & 0x7f, 0b1100011);
        assert_eq!(jal(1, 8) & 0x7f, 0b1101111);
        assert_eq!(nop(), 0x13);
    }

    #[test]
    fn branch_offsets_encode_negative() {
        // jal 0, -20 must round-trip through the golden model.
        let prog = vec![
            addi(reg::T0, 0, 3),
            // loop: t0 -= 1; if t0 != 0 goto loop
            addi(reg::T0, reg::T0, -1),
            bne(reg::T0, reg::ZERO, -4),
            halt(),
        ];
        let mut g = GoldenRv32::new(4);
        let retired = g.run(&prog, 100);
        assert_eq!(g.regs[reg::T0 as usize], 0);
        assert_eq!(retired, 1 + 3 * 2);
    }
}
