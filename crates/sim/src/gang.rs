//! Gang simulation: scenario-parallel BSP execution over one compiled
//! partition.
//!
//! The BSP engine of [`crate::bsp`] parallelizes *one* simulation across
//! many tiles; this module adds the second, stimulus-level dimension of
//! parallelism: a [`GangSimulator`] runs `L` **independent scenarios
//! (lanes)** of the same circuit in lockstep over one compiled
//! [`Partition`]. Regression sweeps, seed farms, and coverage runs need
//! thousands of short simulations of the same RTL far more often than
//! one enormous simulation — and a software full-cycle simulator pays
//! its biggest tax not in ALU work but in *per-op dispatch*: every
//! step of a tile program costs a match, bounds checks, and branch
//! mispredictions before a single data word moves.
//!
//! Gang execution amortizes that dispatch `L` ways. The per-tile
//! programs compiled by `crate::engine` are reused **unchanged**; what
//! changes is the state layout. Every buffer a program touches — value
//! arenas, register files, array copies, mailbox buffers, the input
//! buffer — is *lane-strided*: `lanes` copies of the single-lane layout
//! laid out lane-major (`[lane × words]`), so lane `l`'s copy of a
//! buffer of `W` words occupies `[l*W, (l+1)*W)`. One dispatched step
//! then executes a tight inner loop over all lanes; for the common
//! `nw == 1` single-word case that loop is pure `u64` arithmetic
//! through the same scalar kernels (the engine module's `un1`/`bin1`)
//! the single-scenario engine's fast path uses, so the two engines
//! cannot diverge semantically.
//!
//! Because every lane executes the same step sequence, the exchange
//! structure is identical across lanes: mailbox epochs, the off-chip
//! flush sub-phase, worker groups, and the two-barrier cycle of the
//! single-scenario engine all carry over verbatim — each mailbox buffer
//! simply carries `L` lane-major copies of its single-lane layout, and
//! the off-chip spin knob charges `L×` the words (every lane's traffic
//! crosses the modeled link).
//!
//! # Per-lane I/O
//!
//! Lanes are independent scenarios, so I/O is per-lane:
//! [`set_input_lane`](GangSimulator::set_input_lane) /
//! [`poke_lane`](GangSimulator::poke_lane) drive one lane's inputs
//! (the all-lane [`set_input`](GangSimulator::set_input) broadcasts),
//! [`reg_value_lane`](GangSimulator::reg_value_lane),
//! [`array_value_lane`](GangSimulator::array_value_lane) and
//! [`peek_output_lane`](GangSimulator::peek_output_lane) read one
//! lane's architectural state back. A [`StimulusSet`] bundles distinct
//! per-lane input traces and drives them cycle by cycle
//! ([`run_stimulus`](GangSimulator::run_stimulus)); the same trace can
//! be replayed against the reference interpreter one lane at a time
//! ([`StimulusSet::apply_lane`]) for bit-exact cross-checking.
//!
//! # Throughput accounting
//!
//! [`run_timed`](GangSimulator::run_timed) returns the same
//! [`BspPhases`] split as the single-scenario engine with
//! `lanes` set, so [`BspPhases::lane_cycles_per_s`] — aggregate
//! *scenario-cycles per second* — is directly comparable between a
//! single-lane `BspSimulator` run and a gang run. The `gang_lanes`
//! bench bin sweeps the lane count and prints both side by side.
//!
//! # Follow-ups recorded in ROADMAP.md
//!
//! * bit-packed 1-bit lanes (64 lanes per word for control-heavy nets);
//! * per-lane early exit (retire finished scenarios without stalling
//!   the gang);
//! * waveform capture currently replays one selected lane through
//!   [`crate::vcd::dump_vcd_lane`] — parallel multi-lane capture is
//!   untackled.
//!
//! [`Partition`]: parendi_core::Partition

use crate::bsp::BspPhases;
use crate::engine::{
    bin1, eval_op, sext1, spin_delay, un1, worker_groups, ArrayHome, Compiled, Mailbox, OutputHome,
    PhaseBarrier, PortSend, Program, RecSrc, RegHome, RegSend, Step,
};
use crate::interp::Simulator;
use parendi_core::routing::PORT_RECORD_HEADER_WORDS;
use parendi_core::Partition;
use parendi_rtl::bits::{top_word_mask, word, words_for, Bits};
use parendi_rtl::{Circuit, InputId, RegId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Lane-strided mutable state of one tile: `lanes` copies of the
/// single-lane layout, lane-major. Guarded by a `Mutex` purely for the
/// testbench API; workers lock it once per `run`, not per cycle.
#[derive(Debug)]
struct LaneTile {
    /// `lanes × aw` words of combinational values.
    arena: Vec<u64>,
    /// `lanes × rw` words: this tile's own registers, `RegId` order
    /// within each lane block.
    reg_cur: Vec<u64>,
    /// Local copies of held arrays, each `lanes × arr_words[i]` words.
    arrays: Vec<Vec<u64>>,
    /// Per-lane arena stride in words.
    aw: usize,
    /// Per-lane register-file stride in words.
    rw: usize,
    /// Per-lane words of each held array (depth × element words).
    arr_words: Vec<usize>,
}

/// State shared between the gang facade and its worker pool.
struct GangShared {
    programs: Vec<Program>,
    tiles: Vec<Mutex<LaneTile>>,
    channels: Vec<Mailbox>,
    /// Per-lane words of each mailbox (the lane stride of its buffers).
    mail_words: Vec<u32>,
    /// `lanes × input_stride` words, read-only during runs.
    inputs: RwLock<Vec<u64>>,
    /// Per-lane input-buffer stride in words.
    input_stride: usize,
    lanes: usize,
    phase_barrier: PhaseBarrier,
    gate: Barrier,
    done: Barrier,
    cmd_cycles: AtomicU64,
    cmd_start: AtomicU64,
    cmd_timed: AtomicBool,
    exit: AtomicBool,
    offchip_spin: AtomicU32,
    /// Per-worker (compute, offchip, exchange) ns of the last timed run.
    phase_ns: Vec<Mutex<(u64, u64, u64)>>,
}

/// A scenario-parallel BSP simulator: `lanes` independent simulations
/// of one circuit advancing in lockstep over one compiled partition.
pub struct GangSimulator<'c> {
    circuit: &'c Circuit,
    shared: Arc<GangShared>,
    workers: Vec<JoinHandle<()>>,
    reg_home: Vec<RegHome>,
    array_home: Vec<ArrayHome>,
    output_home: Vec<OutputHome>,
    /// Output ids grouped by owning tile, precomputed so bulk output
    /// peeks (one per VCD timestep) do no per-call grouping work.
    outputs_by_tile: Vec<(u32, Vec<u32>)>,
    input_off: Vec<u32>,
    input_by_name: HashMap<String, InputId>,
    output_by_name: HashMap<String, u32>,
    onchip_mailboxes: usize,
    cycle: u64,
}

impl<'c> GangSimulator<'c> {
    /// Compiles `partition` once and prepares `lanes` lane-strided
    /// copies of the simulation state, served by a persistent pool of
    /// `threads` workers (tiles fold chip-major, exactly like the
    /// single-scenario engine).
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `lanes` is zero.
    pub fn new(circuit: &'c Circuit, partition: &Partition, threads: usize, lanes: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        assert!(lanes >= 1, "need at least one lane");
        let Compiled {
            programs,
            reg_home,
            array_home,
            output_home,
            input_off,
            input_words,
            input_by_name,
            output_by_name,
            tile_reg_words,
            array_init,
            channels,
            mail_words,
            onchip_mailboxes,
            tile_chip,
            ..
        } = Compiled::new(circuit, partition, lanes);

        let tiles: Vec<Mutex<LaneTile>> = programs
            .iter()
            .enumerate()
            .map(|(pi, prog)| {
                let aw = prog.arena_words;
                let rw = tile_reg_words[pi] as usize;
                let mut arena = vec![0u64; aw * lanes];
                let mut reg_cur = vec![0u64; rw * lanes];
                for l in 0..lanes {
                    for (off, words) in &prog.const_init {
                        let d = l * aw + *off as usize;
                        arena[d..d + words.len()].copy_from_slice(words);
                    }
                    for (ri, home) in reg_home.iter().enumerate() {
                        if home.tile == pi as u32 {
                            let d = l * rw + home.off as usize;
                            reg_cur[d..d + home.words as usize]
                                .copy_from_slice(circuit.regs[ri].init.words());
                        }
                    }
                }
                let mut arr_words = Vec::new();
                let arrays = partition.processes[pi]
                    .arrays
                    .iter()
                    .map(|a| {
                        let init = &array_init[a.index()];
                        arr_words.push(init.len());
                        let mut buf = Vec::with_capacity(init.len() * lanes);
                        for _ in 0..lanes {
                            buf.extend_from_slice(init);
                        }
                        buf
                    })
                    .collect();
                Mutex::new(LaneTile {
                    arena,
                    reg_cur,
                    arrays,
                    aw,
                    rw,
                    arr_words,
                })
            })
            .collect();

        let pool_threads = if programs.len() <= 1 {
            1
        } else {
            threads.min(programs.len())
        };
        let worker_count = if pool_threads > 1 { pool_threads } else { 0 };
        let shared = Arc::new(GangShared {
            programs,
            tiles,
            channels,
            mail_words,
            inputs: RwLock::new(vec![0u64; input_words as usize * lanes]),
            input_stride: input_words as usize,
            lanes,
            phase_barrier: PhaseBarrier::new(pool_threads.max(1)),
            gate: Barrier::new(worker_count + 1),
            done: Barrier::new(worker_count + 1),
            cmd_cycles: AtomicU64::new(0),
            cmd_start: AtomicU64::new(0),
            cmd_timed: AtomicBool::new(false),
            exit: AtomicBool::new(false),
            offchip_spin: AtomicU32::new(0),
            phase_ns: (0..worker_count.max(1))
                .map(|_| Mutex::new((0, 0, 0)))
                .collect(),
        });
        let groups = worker_groups(&tile_chip, worker_count);
        let workers = groups
            .into_iter()
            .enumerate()
            .map(|(t, mine)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gang-worker-{t}"))
                    .spawn(move || gang_worker_loop(&shared, t, mine))
                    .expect("spawn gang worker")
            })
            .collect();

        let mut grouped: HashMap<u32, Vec<u32>> = HashMap::new();
        for (oi, home) in output_home.iter().enumerate() {
            assert!(home.tile != u32::MAX, "output {oi} has no owning tile");
            grouped.entry(home.tile).or_default().push(oi as u32);
        }
        let outputs_by_tile: Vec<(u32, Vec<u32>)> = grouped.into_iter().collect();

        GangSimulator {
            circuit,
            shared,
            workers,
            reg_home,
            array_home,
            output_home,
            outputs_by_tile,
            input_off,
            input_by_name,
            output_by_name,
            onchip_mailboxes,
            cycle: 0,
        }
    }

    /// Number of completed RTL cycles (identical across lanes — lanes
    /// advance in lockstep).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Number of scenario lanes running in lockstep.
    pub fn lanes(&self) -> usize {
        self.shared.lanes
    }

    /// Number of tiles (processes) being simulated.
    pub fn tiles(&self) -> usize {
        self.shared.programs.len()
    }

    /// Number of mailboxes carrying traffic: per-tile-pair on-chip boxes
    /// plus per-chip-pair off-chip aggregates.
    pub fn channels(&self) -> usize {
        self.shared.channels.len()
    }

    /// Number of per-chip-pair aggregate mailboxes (zero on single-chip
    /// partitions).
    pub fn offchip_channels(&self) -> usize {
        self.shared.channels.len() - self.onchip_mailboxes
    }

    /// Sets the artificial per-word delay (in spin-loop iterations)
    /// charged while flushing off-chip mailboxes. The gang flush charges
    /// it per lane per word — every lane's traffic crosses the modeled
    /// link. Functional results are unaffected.
    pub fn set_offchip_spin_per_word(&mut self, spins: u32) {
        self.shared.offchip_spin.store(spins, Ordering::Relaxed);
    }

    /// Drives an input in **one lane** (held until changed).
    ///
    /// # Panics
    ///
    /// Panics if the width does not match or `lane` is out of range.
    pub fn set_input_lane(&mut self, id: InputId, lane: usize, value: &Bits) {
        let decl = &self.circuit.inputs[id.index()];
        assert_eq!(decl.width, value.width(), "input {} width", decl.name);
        assert!(lane < self.shared.lanes, "lane {lane} out of range");
        let off = lane * self.shared.input_stride + self.input_off[id.index()] as usize;
        let mut inputs = self.shared.inputs.write().unwrap();
        inputs[off..off + value.words().len()].copy_from_slice(value.words());
    }

    /// Drives an input identically in **every lane**.
    ///
    /// # Panics
    ///
    /// Panics if the width does not match.
    pub fn set_input(&mut self, id: InputId, value: &Bits) {
        let decl = &self.circuit.inputs[id.index()];
        assert_eq!(decl.width, value.width(), "input {} width", decl.name);
        let base = self.input_off[id.index()] as usize;
        let stride = self.shared.input_stride;
        let mut inputs = self.shared.inputs.write().unwrap();
        for l in 0..self.shared.lanes {
            let off = l * stride + base;
            inputs[off..off + value.words().len()].copy_from_slice(value.words());
        }
    }

    /// Convenience: drive input `name` in one lane with a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if no such input exists or `lane` is out of range.
    pub fn poke_lane(&mut self, name: &str, lane: usize, value: u64) {
        let id = self.input_id(name);
        let width = self.circuit.inputs[id.index()].width;
        self.set_input_lane(id, lane, &Bits::from_u64(width, value));
    }

    /// Convenience: drive input `name` in every lane with a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if no such input exists.
    pub fn poke(&mut self, name: &str, value: u64) {
        let id = self.input_id(name);
        let width = self.circuit.inputs[id.index()].width;
        self.set_input(id, &Bits::from_u64(width, value));
    }

    fn input_id(&self, name: &str) -> InputId {
        *self
            .input_by_name
            .get(name)
            .unwrap_or_else(|| panic!("no input {name}"))
    }

    /// The current value of a register in `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn reg_value_lane(&self, id: RegId, lane: usize) -> Bits {
        let r = &self.circuit.regs[id.index()];
        let home = self.reg_home[id.index()];
        assert!(home.tile != u32::MAX, "register {} has no producer", r.name);
        assert!(lane < self.shared.lanes, "lane {lane} out of range");
        let tile = self.shared.tiles[home.tile as usize].lock().unwrap();
        let off = lane * tile.rw + home.off as usize;
        Bits::from_words(r.width, &tile.reg_cur[off..off + home.words as usize])
    }

    /// An element of an array in `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `index` or `lane` is out of range.
    pub fn array_value_lane(&self, id: parendi_rtl::ArrayId, index: u32, lane: usize) -> Bits {
        let a = &self.circuit.arrays[id.index()];
        assert!(index < a.depth);
        assert!(lane < self.shared.lanes, "lane {lane} out of range");
        let w = words_for(a.width);
        match &self.array_home[id.index()] {
            ArrayHome::Held { tile, slot } => {
                let t = self.shared.tiles[*tile as usize].lock().unwrap();
                let base = lane * t.arr_words[*slot as usize] + index as usize * w;
                Bits::from_words(a.width, &t.arrays[*slot as usize][base..][..w])
            }
            // Never written: identical in every lane.
            ArrayHome::Spare(buf) => Bits::from_words(a.width, &buf[index as usize * w..][..w]),
        }
    }

    /// The current value of primary output `name` in `lane`, or `None`
    /// if no such output exists — the gang counterpart of the reference
    /// interpreter's `output()` and the single-scenario engine's
    /// `peek_output`. Replays the owning tile's step program (all lanes)
    /// against current architectural state, then reads the lane's slot.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn peek_output_lane(&self, name: &str, lane: usize) -> Option<Bits> {
        let &oi = self.output_by_name.get(name)?;
        assert!(lane < self.shared.lanes, "lane {lane} out of range");
        let home = self.output_home[oi as usize];
        assert!(home.tile != u32::MAX, "output {name} has no owning tile");
        let width = self.circuit.width(self.circuit.outputs[oi as usize].node);
        let shared = &self.shared;
        let inputs = shared.inputs.read().unwrap();
        let mut tile = shared.tiles[home.tile as usize].lock().unwrap();
        gang_run_steps(
            &shared.programs[home.tile as usize],
            &mut tile,
            &inputs,
            shared.input_stride,
            &shared.channels,
            &shared.mail_words,
            shared.lanes,
            self.cycle,
        );
        let off = lane * tile.aw + home.off as usize;
        Some(Bits::from_words(
            width,
            &tile.arena[off..off + words_for(width)],
        ))
    }

    /// All primary outputs of `lane`, indexed like `circuit.outputs`.
    /// The bulk counterpart of
    /// [`peek_output_lane`](Self::peek_output_lane): each owning tile's
    /// step program is replayed **once**, however many outputs it
    /// computes — waveform sampling reads every output per timestep and
    /// must not pay one replay per output.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn peek_outputs_lane(&self, lane: usize) -> Vec<Bits> {
        assert!(lane < self.shared.lanes, "lane {lane} out of range");
        let shared = &self.shared;
        let inputs = shared.inputs.read().unwrap();
        let mut results: Vec<Option<Bits>> = vec![None; self.circuit.outputs.len()];
        for (t, ois) in &self.outputs_by_tile {
            let t = *t;
            let mut tile = shared.tiles[t as usize].lock().unwrap();
            gang_run_steps(
                &shared.programs[t as usize],
                &mut tile,
                &inputs,
                shared.input_stride,
                &shared.channels,
                &shared.mail_words,
                shared.lanes,
                self.cycle,
            );
            for &oi in ois {
                let home = self.output_home[oi as usize];
                let width = self.circuit.width(self.circuit.outputs[oi as usize].node);
                let off = lane * tile.aw + home.off as usize;
                results[oi as usize] = Some(Bits::from_words(
                    width,
                    &tile.arena[off..off + words_for(width)],
                ));
            }
        }
        results
            .into_iter()
            .map(|b| b.expect("complete partition owns every output"))
            .collect()
    }

    /// Runs `cycles` RTL cycles in every lane. Returns wall-clock
    /// seconds.
    pub fn run(&mut self, cycles: u64) -> f64 {
        self.run_inner(cycles, false).total_s
    }

    /// Runs `cycles` RTL cycles in every lane and reports the straggler
    /// worker's compute / off-chip / exchange split. `BspPhases::lanes`
    /// is set to the gang width, so
    /// [`BspPhases::lane_cycles_per_s`] reports aggregate
    /// scenario-cycles per second. Gang timing is per worker;
    /// `per_tile` histograms stay empty.
    pub fn run_timed(&mut self, cycles: u64) -> BspPhases {
        self.run_inner(cycles, true)
    }

    /// Runs `cycles` cycles, applying `stim`'s per-lane input events as
    /// the simulation reaches their (absolute) cycle stamps. Events
    /// scheduled at cycle `c` are driven *before* cycle `c` executes,
    /// matching the reference interpreter's poke-then-step convention.
    /// Event-free stretches run as one batched [`run`](Self::run) call
    /// (one worker-pool hand-off per stretch, not per cycle). Returns
    /// wall-clock seconds.
    ///
    /// # Panics
    ///
    /// Panics if `stim` was built for a different lane count or names an
    /// unknown input.
    pub fn run_stimulus(&mut self, cycles: u64, stim: &StimulusSet) -> f64 {
        assert_eq!(
            stim.lanes() as usize,
            self.shared.lanes,
            "stimulus lane count must match the gang"
        );
        let start = Instant::now();
        let end = self.cycle + cycles;
        // Group the window's events by cycle once, instead of scanning
        // the whole event list every cycle.
        let mut by_cycle: std::collections::BTreeMap<u64, Vec<&StimEvent>> =
            std::collections::BTreeMap::new();
        for ev in stim.events() {
            if ev.cycle >= self.cycle && ev.cycle < end {
                by_cycle.entry(ev.cycle).or_default().push(ev);
            }
        }
        for (&cyc, evs) in &by_cycle {
            if cyc > self.cycle {
                let gap = cyc - self.cycle;
                self.run(gap);
            }
            for ev in evs {
                let id = self.input_id(&ev.input);
                self.set_input_lane(id, ev.lane as usize, &ev.value);
            }
        }
        if end > self.cycle {
            let rest = end - self.cycle;
            self.run(rest);
        }
        start.elapsed().as_secs_f64()
    }

    fn run_inner(&mut self, cycles: u64, timed: bool) -> BspPhases {
        let start = Instant::now();
        let lanes = self.shared.lanes as u32;
        if cycles == 0 {
            return BspPhases {
                lanes,
                ..BspPhases::default()
            };
        }
        let (mut comp_ns, mut off_ns, mut exch_ns) = (0u64, 0u64, 0u64);
        if self.workers.is_empty() {
            let shared = &self.shared;
            let spin = shared.offchip_spin.load(Ordering::Relaxed);
            let any_off = shared.programs.iter().any(|p| p.has_offchip());
            let inputs = shared.inputs.read().unwrap();
            let mut guards: Vec<_> = shared.tiles.iter().map(|t| t.lock().unwrap()).collect();
            for c in self.cycle..self.cycle + cycles {
                let t0 = timed.then(Instant::now);
                for (prog, tile) in shared.programs.iter().zip(guards.iter_mut()) {
                    gang_compute_phase(
                        prog,
                        tile,
                        &inputs,
                        shared.input_stride,
                        &shared.channels,
                        &shared.mail_words,
                        shared.lanes,
                        c,
                    );
                }
                let t1 = timed.then(Instant::now);
                if any_off {
                    for (prog, tile) in shared.programs.iter().zip(guards.iter_mut()) {
                        if !prog.has_offchip() {
                            continue;
                        }
                        gang_offchip_phase(
                            prog,
                            tile,
                            &shared.channels,
                            &shared.mail_words,
                            shared.lanes,
                            c,
                            spin,
                        );
                    }
                }
                let t2 = timed.then(Instant::now);
                for (prog, tile) in shared.programs.iter().zip(guards.iter_mut()) {
                    gang_exchange_phase(
                        prog,
                        tile,
                        &shared.channels,
                        &shared.mail_words,
                        shared.lanes,
                        c,
                    );
                }
                if let (Some(t0), Some(t1), Some(t2)) = (t0, t1, t2) {
                    comp_ns += t1.duration_since(t0).as_nanos() as u64;
                    off_ns += t2.duration_since(t1).as_nanos() as u64;
                    exch_ns += t2.elapsed().as_nanos() as u64;
                }
            }
        } else {
            self.shared.cmd_cycles.store(cycles, Ordering::SeqCst);
            self.shared.cmd_start.store(self.cycle, Ordering::SeqCst);
            self.shared.cmd_timed.store(timed, Ordering::SeqCst);
            self.shared.gate.wait();
            self.shared.done.wait();
            if timed {
                // Straggler = the worker with the most real work (see
                // the single-scenario engine for why totals can't rank).
                for slot in &self.shared.phase_ns {
                    let (c, o, e) = *slot.lock().unwrap();
                    if c + o > comp_ns + off_ns {
                        (comp_ns, off_ns, exch_ns) = (c, o, e);
                    }
                }
            }
        }
        self.cycle += cycles;
        BspPhases {
            total_s: start.elapsed().as_secs_f64(),
            compute_s: comp_ns as f64 * 1e-9,
            offchip_s: off_ns as f64 * 1e-9,
            exchange_s: exch_ns as f64 * 1e-9,
            per_tile: Vec::new(),
            cycles,
            lanes,
        }
    }
}

impl Drop for GangSimulator<'_> {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shared.exit.store(true, Ordering::SeqCst);
            self.shared.gate.wait();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

/// One per-lane input event of a [`StimulusSet`].
#[derive(Clone, Debug)]
pub struct StimEvent {
    /// Absolute simulator cycle the drive takes effect before.
    pub cycle: u64,
    /// Destination lane.
    pub lane: u32,
    /// Input name.
    pub input: String,
    /// Driven value.
    pub value: Bits,
}

/// A bundle of distinct per-lane input traces: the stimulus-side half
/// of gang simulation. Each event drives one input of one lane before a
/// given (absolute) cycle executes; between events inputs hold their
/// value, exactly like `poke` on the reference interpreter.
///
/// The same set drives both engines: a gang run consumes it via
/// [`GangSimulator::run_stimulus`], and a reference check replays one
/// lane's slice of it against the interpreter via
/// [`apply_lane`](Self::apply_lane).
#[derive(Clone, Debug, Default)]
pub struct StimulusSet {
    lanes: u32,
    events: Vec<StimEvent>,
}

impl StimulusSet {
    /// An empty stimulus for `lanes` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: u32) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        StimulusSet {
            lanes,
            events: Vec::new(),
        }
    }

    /// The lane count this stimulus was built for.
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Schedules `input` in `lane` to take `value` before cycle `cycle`
    /// executes.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn drive(&mut self, cycle: u64, lane: u32, input: &str, value: Bits) -> &mut Self {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.events.push(StimEvent {
            cycle,
            lane,
            input: input.to_string(),
            value,
        });
        self
    }

    /// All scheduled events.
    pub fn events(&self) -> &[StimEvent] {
        &self.events
    }

    /// One cycle past the last scheduled event (0 when empty): the
    /// shortest run that consumes the whole trace.
    pub fn horizon(&self) -> u64 {
        self.events.iter().map(|e| e.cycle + 1).max().unwrap_or(0)
    }

    /// The events scheduled for `cycle`, in insertion order.
    pub fn events_at(&self, cycle: u64) -> impl Iterator<Item = &StimEvent> {
        self.events.iter().filter(move |e| e.cycle == cycle)
    }

    /// Applies lane `lane`'s events for `cycle` to a reference
    /// interpreter (call right before its `step` for that cycle) — the
    /// oracle side of a gang equivalence check.
    ///
    /// # Panics
    ///
    /// Panics if an event names an input the circuit doesn't have.
    pub fn apply_lane(&self, lane: u32, cycle: u64, sim: &mut Simulator<'_>) {
        for ev in self.events_at(cycle).filter(|e| e.lane == lane) {
            let id = sim
                .input_id(&ev.input)
                .unwrap_or_else(|| panic!("no input {}", ev.input));
            sim.set_input(id, &ev.value);
        }
    }
}

/// The persistent gang worker entry (same abort-on-panic contract as
/// the single-scenario engine: a hung barrier would deadlock the run).
fn gang_worker_loop(shared: &GangShared, t: usize, mine: Vec<usize>) {
    let body = std::panic::AssertUnwindSafe(|| gang_worker_body(shared, t, &mine));
    if std::panic::catch_unwind(body).is_err() {
        eprintln!("gang worker {t} panicked; aborting (a hung barrier would deadlock the run)");
        std::process::abort();
    }
}

/// The gang worker run loop: park at the gate, execute a run over this
/// worker's chip-major tile group `mine`, report.
fn gang_worker_body(shared: &GangShared, t: usize, mine: &[usize]) {
    let any_off = mine.iter().any(|&pi| shared.programs[pi].has_offchip());
    loop {
        shared.gate.wait();
        if shared.exit.load(Ordering::SeqCst) {
            return;
        }
        let cycles = shared.cmd_cycles.load(Ordering::SeqCst);
        let start = shared.cmd_start.load(Ordering::SeqCst);
        let timed = shared.cmd_timed.load(Ordering::SeqCst);
        let spin = shared.offchip_spin.load(Ordering::Relaxed);
        {
            // One lock per tile per run; the steady-state cycle loop
            // below acquires no locks and allocates nothing.
            let inputs = shared.inputs.read().unwrap();
            let mut guards: Vec<_> = mine
                .iter()
                .map(|&pi| shared.tiles[pi].lock().unwrap())
                .collect();
            let (mut comp_ns, mut off_ns, mut exch_ns) = (0u64, 0u64, 0u64);
            for c in start..start + cycles {
                let t0 = timed.then(Instant::now);
                for (guard, &pi) in guards.iter_mut().zip(mine) {
                    gang_compute_phase(
                        &shared.programs[pi],
                        guard,
                        &inputs,
                        shared.input_stride,
                        &shared.channels,
                        &shared.mail_words,
                        shared.lanes,
                        c,
                    );
                }
                let t1 = timed.then(Instant::now);
                if any_off {
                    for (guard, &pi) in guards.iter_mut().zip(mine) {
                        if !shared.programs[pi].has_offchip() {
                            continue;
                        }
                        gang_offchip_phase(
                            &shared.programs[pi],
                            guard,
                            &shared.channels,
                            &shared.mail_words,
                            shared.lanes,
                            c,
                            spin,
                        );
                    }
                }
                // exchange_s starts *before* barrier 1 so the straggler
                // wait lands in the exchange column (BspPhases contract).
                let t2 = timed.then(Instant::now);
                if let (Some(t0), Some(t1), Some(t2)) = (t0, t1, t2) {
                    comp_ns += t1.duration_since(t0).as_nanos() as u64;
                    off_ns += t2.duration_since(t1).as_nanos() as u64;
                }
                // Barrier 1: all mailboxes for epoch c+1 are filled.
                shared.phase_barrier.wait();
                for (guard, &pi) in guards.iter_mut().zip(mine) {
                    gang_exchange_phase(
                        &shared.programs[pi],
                        guard,
                        &shared.channels,
                        &shared.mail_words,
                        shared.lanes,
                        c,
                    );
                }
                // Barrier 2: every array copy has applied the records.
                shared.phase_barrier.wait();
                if let Some(t2) = t2 {
                    exch_ns += t2.elapsed().as_nanos() as u64;
                }
            }
            if timed {
                *shared.phase_ns[t].lock().unwrap() = (comp_ns, off_ns, exch_ns);
            }
        }
        shared.done.wait();
    }
}

/// Runs one tile's step program at cycle `c` **for every lane**: one
/// dispatch per step, a tight inner loop over lanes. Also the replay
/// engine behind `peek_output_lane`.
#[allow(clippy::too_many_arguments)]
fn gang_run_steps(
    prog: &Program,
    tile: &mut LaneTile,
    inputs: &[u64],
    input_stride: usize,
    channels: &[Mailbox],
    mail_words: &[u32],
    lanes: usize,
    c: u64,
) {
    let read_parity = (c & 1) as usize;
    let LaneTile {
        arena,
        reg_cur,
        arrays,
        aw,
        rw,
        arr_words,
    } = tile;
    let (aw, rw) = (*aw, *rw);
    for step in &prog.steps {
        match *step {
            Step::Input { dst, src, nw } => {
                let (d, s, n) = (dst as usize, src as usize, nw as usize);
                for l in 0..lanes {
                    let (db, sb) = (l * aw + d, l * input_stride + s);
                    arena[db..db + n].copy_from_slice(&inputs[sb..sb + n]);
                }
            }
            Step::RegOwn { dst, src, nw } => {
                let (d, s, n) = (dst as usize, src as usize, nw as usize);
                for l in 0..lanes {
                    let (db, sb) = (l * aw + d, l * rw + s);
                    arena[db..db + n].copy_from_slice(&reg_cur[sb..sb + n]);
                }
            }
            Step::RegMail { dst, ch, src, nw } => {
                // SAFETY: epoch discipline — no writer of `read_parity`
                // exists during the computation phase (see Mailbox).
                let buf = unsafe { channels[ch as usize].read(read_parity) };
                let mw = mail_words[ch as usize] as usize;
                let (d, s, n) = (dst as usize, src as usize, nw as usize);
                for l in 0..lanes {
                    let (db, sb) = (l * aw + d, l * mw + s);
                    arena[db..db + n].copy_from_slice(&buf[sb..sb + n]);
                }
            }
            Step::ArrayRead {
                dst,
                arr,
                idx,
                idx_w,
                nw,
                depth,
            } => {
                let words = arr_words[arr as usize];
                let a = &arrays[arr as usize];
                let (d, n) = (dst as usize, nw as usize);
                for l in 0..lanes {
                    let base = l * aw;
                    let index = word::fold_index(
                        &arena[base + idx as usize..base + (idx + idx_w) as usize],
                    );
                    let db = base + d;
                    if index < depth as u64 {
                        let sb = l * words + index as usize * n;
                        arena[db..db + n].copy_from_slice(&a[sb..sb + n]);
                    } else {
                        arena[db..db + n].fill(0);
                    }
                }
            }
            _ => eval_op_lanes(arena, aw, lanes, step),
        }
    }
}

/// Evaluates one pure compiled op across all lanes: the step (and op)
/// dispatch happens once, and single-word operations — the common case —
/// run the lanes through the scalar kernels shared with the
/// single-scenario engine's fast path, pure `u64` arithmetic with no
/// slicing. Multi-word operations fall back to the per-lane slice
/// kernels of [`eval_op`] on each lane's contiguous arena block.
fn eval_op_lanes(arena: &mut [u64], stride: usize, lanes: usize, step: &Step) {
    match *step {
        Step::Un {
            op,
            dst,
            a,
            w,
            aw,
            anw,
        } if anw == 1 && w <= 64 => {
            let (dst, a) = (dst as usize, a as usize);
            for l in 0..lanes {
                let b = l * stride;
                arena[b + dst] = un1(op, arena[b + a], w, aw);
            }
        }
        Step::Bin {
            op,
            dst,
            a,
            b,
            w,
            aw,
            anw,
            bnw,
        } if anw == 1 && bnw == 1 && w <= 64 => {
            let (dst, a, b) = (dst as usize, a as usize, b as usize);
            for l in 0..lanes {
                let base = l * stride;
                arena[base + dst] = bin1(op, arena[base + a], arena[base + b], w, aw);
            }
        }
        Step::Mux {
            dst,
            sel,
            t,
            f,
            nw: 1,
        } => {
            let (dst, sel, t, f) = (dst as usize, sel as usize, t as usize, f as usize);
            for l in 0..lanes {
                let b = l * stride;
                let pick = if arena[b + sel] & 1 == 1 { t } else { f };
                arena[b + dst] = arena[b + pick];
            }
        }
        Step::Slice {
            dst,
            a,
            lo,
            w,
            anw: 1,
        } => {
            let (dst, a) = (dst as usize, a as usize);
            let m = top_word_mask(w);
            for l in 0..lanes {
                let b = l * stride;
                arena[b + dst] = (arena[b + a] >> lo) & m;
            }
        }
        Step::Zext { dst, a, w, anw } if anw == 1 && w <= 64 => {
            let (dst, a) = (dst as usize, a as usize);
            let m = top_word_mask(w);
            for l in 0..lanes {
                let b = l * stride;
                arena[b + dst] = arena[b + a] & m;
            }
        }
        Step::Sext { dst, a, aw, w, anw } if anw == 1 && w <= 64 => {
            let (dst, a) = (dst as usize, a as usize);
            for l in 0..lanes {
                let b = l * stride;
                arena[b + dst] = sext1(arena[b + a], aw, w);
            }
        }
        Step::Concat {
            dst,
            hi,
            lo,
            w,
            low_w,
            hnw,
            lnw,
        } if hnw == 1 && lnw == 1 && w <= 64 => {
            let (dst, hi, lo) = (dst as usize, hi as usize, lo as usize);
            let m = top_word_mask(w);
            for l in 0..lanes {
                let b = l * stride;
                arena[b + dst] = (arena[b + lo] | (arena[b + hi] << low_w)) & m;
            }
        }
        _ => {
            for l in 0..lanes {
                eval_op(&mut arena[l * stride..(l + 1) * stride], step);
            }
        }
    }
}

/// Computation phase for one tile at cycle `c`, all lanes: run the step
/// program, latch own registers, push outgoing *on-chip* mailbox
/// traffic for epoch `c+1`.
#[allow(clippy::too_many_arguments)]
fn gang_compute_phase(
    prog: &Program,
    tile: &mut LaneTile,
    inputs: &[u64],
    input_stride: usize,
    channels: &[Mailbox],
    mail_words: &[u32],
    lanes: usize,
    c: u64,
) {
    gang_run_steps(
        prog,
        tile,
        inputs,
        input_stride,
        channels,
        mail_words,
        lanes,
        c,
    );
    let write_parity = ((c & 1) ^ 1) as usize;
    let LaneTile {
        arena,
        reg_cur,
        aw,
        rw,
        ..
    } = tile;
    let (aw, rw) = (*aw, *rw);
    // Latch own registers, every lane: tile-local, nobody else reads.
    for rc in &prog.commits {
        let (d, s, n) = (rc.dst as usize, rc.local as usize, rc.nw as usize);
        for l in 0..lanes {
            let (db, sb) = (l * rw + d, l * aw + s);
            reg_cur[db..db + n].copy_from_slice(&arena[sb..sb + n]);
        }
    }
    for send in &prog.sends {
        gang_push_reg_send(send, arena, aw, channels, mail_words, lanes, write_parity);
    }
    for ps in &prog.port_sends {
        gang_stage_port_record(ps, arena, aw, channels, mail_words, lanes, write_parity);
    }
}

/// Copies one outbound register value into its mailbox segment, every
/// lane (same raw-pointer aliasing rules as the single-scenario
/// engine's `push_reg_send`).
#[inline]
fn gang_push_reg_send(
    send: &RegSend,
    arena: &[u64],
    aw: usize,
    channels: &[Mailbox],
    mail_words: &[u32],
    lanes: usize,
    write_parity: usize,
) {
    let mw = mail_words[send.ch as usize] as usize;
    // SAFETY: epoch discipline — no reader of `write_parity` exists
    // during this phase, and this thread exclusively owns the segment
    // `[dst, dst + nw)` of every lane block (compile-time layout).
    unsafe {
        let base = channels[send.ch as usize].write_base(write_parity);
        for l in 0..lanes {
            std::ptr::copy_nonoverlapping(
                arena.as_ptr().add(l * aw + send.local as usize),
                base.add(l * mw + send.dst as usize),
                send.nw as usize,
            );
        }
    }
}

/// Copies one port record `(enable, index, data)` into every
/// destination slot of `ps`, every lane.
#[inline]
fn gang_stage_port_record(
    ps: &PortSend,
    arena: &[u64],
    aw: usize,
    channels: &[Mailbox],
    mail_words: &[u32],
    lanes: usize,
    write_parity: usize,
) {
    for l in 0..lanes {
        let b = l * aw;
        let en = arena[b + ps.en as usize] & 1;
        let idx = word::fold_index(&arena[b + ps.idx as usize..b + (ps.idx + ps.idx_w) as usize]);
        let data = &arena[b + ps.data as usize..b + (ps.data + ps.nw) as usize];
        for &(ch, off) in &ps.dests {
            let mw = mail_words[ch as usize] as usize;
            // SAFETY: epoch discipline — no reader of `write_parity`
            // exists during this phase, and this thread exclusively owns
            // the record segment at `off` in every lane block.
            unsafe {
                let slot = channels[ch as usize]
                    .write_base(write_parity)
                    .add(l * mw + off as usize);
                *slot = en;
                *slot.add(1) = idx;
                std::ptr::copy_nonoverlapping(
                    data.as_ptr(),
                    slot.add(PORT_RECORD_HEADER_WORDS as usize),
                    ps.nw as usize,
                );
            }
        }
    }
}

/// Off-chip flush sub-phase for one tile at cycle `c`, all lanes. The
/// spin delay charges per lane per word: every lane's traffic crosses
/// the modeled slower link.
fn gang_offchip_phase(
    prog: &Program,
    tile: &mut LaneTile,
    channels: &[Mailbox],
    mail_words: &[u32],
    lanes: usize,
    c: u64,
    spin: u32,
) {
    let write_parity = ((c & 1) ^ 1) as usize;
    let arena = &tile.arena;
    let aw = tile.aw;
    for send in &prog.offchip_sends {
        gang_push_reg_send(send, arena, aw, channels, mail_words, lanes, write_parity);
        spin_delay(send.nw as u64 * lanes as u64 * spin as u64);
    }
    for ps in &prog.offchip_port_sends {
        gang_stage_port_record(ps, arena, aw, channels, mail_words, lanes, write_parity);
        let words =
            (PORT_RECORD_HEADER_WORDS + ps.nw) as u64 * ps.dests.len() as u64 * lanes as u64;
        spin_delay(words * spin as u64);
    }
}

/// Communication phase for one tile at cycle `c`, all lanes: apply all
/// staged port records (own and remote) to the tile's array copies in
/// global `(array, port)` order, lane by lane.
fn gang_exchange_phase(
    prog: &Program,
    tile: &mut LaneTile,
    channels: &[Mailbox],
    mail_words: &[u32],
    lanes: usize,
    c: u64,
) {
    let record_parity = ((c & 1) ^ 1) as usize;
    let LaneTile {
        arena,
        arrays,
        aw,
        arr_words,
        ..
    } = tile;
    let aw = *aw;
    for ap in &prog.applies {
        let nw = ap.nw as usize;
        let words = arr_words[ap.arr as usize];
        let array = &mut arrays[ap.arr as usize];
        match ap.src {
            RecSrc::Own {
                en,
                idx,
                idx_w,
                data,
            } => {
                for l in 0..lanes {
                    let b = l * aw;
                    let e = arena[b + en as usize] & 1;
                    let i = word::fold_index(&arena[b + idx as usize..b + (idx + idx_w) as usize]);
                    if e == 1 && i < ap.depth as u64 {
                        let dst = l * words + i as usize * nw;
                        array[dst..dst + nw]
                            .copy_from_slice(&arena[b + data as usize..b + data as usize + nw]);
                    }
                }
            }
            RecSrc::Mail { ch, off } => {
                // SAFETY: after barrier 1 nobody writes `record_parity`.
                let buf = unsafe { channels[ch as usize].read(record_parity) };
                let mw = mail_words[ch as usize] as usize;
                let off = off as usize;
                for l in 0..lanes {
                    let rec = l * mw + off;
                    let e = buf[rec] & 1;
                    let i = buf[rec + 1];
                    if e == 1 && i < ap.depth as u64 {
                        let dst = l * words + i as usize * nw;
                        array[dst..dst + nw]
                            .copy_from_slice(&buf[rec + PORT_RECORD_HEADER_WORDS as usize..][..nw]);
                    }
                }
            }
        }
    }
}
