//! The parallel BSP simulator: the single-scenario facade over the
//! unified execution core.
//!
//! Executes a compiled [`Partition`] on host threads with exactly the
//! structure of Fig. 3: a *computation* phase in which every process
//! evaluates its (possibly duplicated) cone into private memory, a
//! barrier, a *communication* phase, and a second barrier. Functional
//! results are bit-identical to the reference [`Simulator`]
//! (`crate::interp`) — the engine is the correctness check for the
//! partitioner, not a model.
//!
//! Since the engine unification there is **no BSP-specific execution
//! code**: [`BspSimulator`] is the `lanes == 1` instantiation of the
//! lane-strided [`crate::exec::EngineCore`] shared with the
//! scenario-parallel gang engine ([`crate::gang::GangSimulator`]). The
//! worker loop, the phase functions, the off-chip flush, and the unsafe
//! epoch/aliasing discipline all live exactly once, in `crate::exec`;
//! the compile front-end (per-tile fused bytecode, mailbox fabric,
//! chip-major worker groups) lives in `crate::engine`. This module
//! only adapts the lane-indexed core API to the classic single-scenario
//! testbench surface and defines the public timing types.
//!
//! # Exchange architecture (executed by the core)
//!
//! There is no shared mutable global state and no leader thread. Every
//! tile *owns* the registers and array copies it produces or holds, and
//! all cross-tile values move through the channels of the compiled
//! [`Routing`], laid out at compile time. Channels come in the two
//! classes the machine distinguishes (Fig. 5): *on-chip* channels get
//! one double-buffered mailbox per producer→consumer tile pair, while
//! *off-chip* channels are aggregated into one **wider mailbox per
//! ordered chip pair**. Tiles fold onto worker threads **chip-major**,
//! and each worker's off-chip traffic is flushed eagerly per tile so
//! the modeled link transfer overlaps the remaining tiles' compute
//! (the hidden portion is reported as [`BspPhases::overlap_s`]).
//!
//! The only synchronization in the steady-state loop is the two phase
//! barriers: no locks are taken and no heap allocation occurs. Per-tile
//! `Mutex`es exist solely so the testbench API (`poke` / `reg_value` /
//! `array_value` / `peek_output`) can inspect state between
//! [`run`](BspSimulator::run) calls, and are locked once per run,
//! outside the cycle loop. Worker threads are spawned once in
//! [`BspSimulator::new`] and persist across `run()` calls.
//!
//! [`Simulator`]: crate::interp::Simulator
//! [`Routing`]: parendi_core::routing::Routing
//! [`Partition`]: parendi_core::Partition

use crate::exec::EngineCore;
use parendi_core::Partition;
use parendi_rtl::bits::Bits;
use parendi_rtl::{Circuit, InputId, RegId};

/// One tile's phase seconds over a timed run (its share of the worker's
/// loop bodies; barrier waits are per-worker and excluded).
#[derive(Clone, Copy, Debug, Default)]
pub struct TilePhases {
    /// Seconds running the tile's step program (incl. latches and
    /// on-chip mailbox pushes).
    pub compute_s: f64,
    /// Seconds flushing the tile's cross-chip traffic into the
    /// chip-pair aggregate mailboxes (memory copies; the modeled link
    /// occupancy is scheduled asynchronously and accounted per worker).
    pub offchip_s: f64,
    /// Seconds applying staged port records to the tile's array copies.
    pub exchange_s: f64,
}

/// Per-run phase timings: the straggler worker's split plus per-tile
/// histograms.
///
/// The phase columns come from the *single* worker with the largest
/// compute + off-chip flush time (the straggler — totals can't rank
/// workers because barrier waits absorb the slack), so
/// `compute_s + offchip_s + exchange_s` is that worker's real wall
/// time — phases are never paired across different workers.
///
/// `cycles` and `lanes` describe the run itself: the single-scenario
/// engine always reports one lane, while the gang engine reports its
/// *active* lane count (early-exited lanes stop counting), so
/// [`lane_cycles_per_s`](Self::lane_cycles_per_s) — the aggregate
/// *scenario-cycles* per second — is comparable across both.
#[derive(Clone, Debug)]
pub struct BspPhases {
    /// Wall-clock seconds for the whole run.
    pub total_s: f64,
    /// Seconds the straggler worker spent in computation phases
    /// (step programs, register latches, on-chip mailbox pushes).
    pub compute_s: f64,
    /// Seconds the straggler worker spent on cross-chip traffic: the
    /// flush copies plus the *residual* modeled link wait that the
    /// flush/compute overlap could not hide (zero on single-chip
    /// partitions).
    pub offchip_s: f64,
    /// Seconds the straggler worker spent in communication phases:
    /// record application plus both barrier waits.
    pub exchange_s: f64,
    /// Modeled off-chip link seconds hidden under subsequent tile
    /// compute by the eager flush — the time the flush/compute overlap
    /// recovered versus a serialized flush (zero when the spin model is
    /// off or nothing overlapped).
    pub overlap_s: f64,
    /// Per-tile phase split, indexed by tile — the measured counterpart
    /// of the Fig. 6 straggler histograms, populated for single-lane
    /// *and* gang runs.
    ///
    /// **Invariant**: populated only by *timed* runs
    /// ([`run_timed`](BspSimulator::run_timed)); untimed runs skip the
    /// per-tile clock reads *and* the histogram allocation entirely,
    /// so this is always empty after [`run`](BspSimulator::run).
    pub per_tile: Vec<TilePhases>,
    /// RTL cycles this run advanced.
    pub cycles: u64,
    /// Scenario lanes executed per cycle (1 for [`BspSimulator`];
    /// the active lane count for gang runs).
    pub lanes: u32,
}

impl Default for BspPhases {
    fn default() -> Self {
        BspPhases {
            total_s: 0.0,
            compute_s: 0.0,
            offchip_s: 0.0,
            exchange_s: 0.0,
            overlap_s: 0.0,
            per_tile: Vec::new(),
            cycles: 0,
            lanes: 1,
        }
    }
}

impl BspPhases {
    /// Aggregate throughput in *lane-cycles* per second: every active
    /// lane advances one RTL cycle per engine cycle, so a gang run at L
    /// active lanes delivers `L × cycles / total_s` scenario-cycles per
    /// second. For the single-scenario engine this is plain cycles per
    /// second.
    pub fn lane_cycles_per_s(&self) -> f64 {
        if self.total_s > 0.0 {
            self.cycles as f64 * self.lanes as f64 / self.total_s
        } else {
            0.0
        }
    }
}

/// A parallel BSP simulator for a compiled partition: one scenario,
/// many tiles. A thin facade over the unified lane-strided core at
/// `lanes == 1`.
pub struct BspSimulator<'c> {
    core: EngineCore<'c>,
}

impl<'c> BspSimulator<'c> {
    /// Compiles `partition` into per-tile fused bytecode and spawns a
    /// persistent pool of `threads` workers (tiles are folded
    /// chip-major onto threads; the pool is reused by every
    /// [`run`](Self::run)).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(circuit: &'c Circuit, partition: &Partition, threads: usize) -> Self {
        Self::with_transport(
            circuit,
            partition,
            threads,
            crate::transport::TransportChoice::from_env(),
        )
    }

    /// [`BspSimulator::new`] with an explicit off-chip transport
    /// backend (the plain constructor reads `PARENDI_TRANSPORT`). All
    /// backends are bit-exact; they differ in which memory-domain
    /// boundary the per-chip-pair aggregates cross and in the measured
    /// cost reported in [`BspPhases::offchip_s`].
    pub fn with_transport(
        circuit: &'c Circuit,
        partition: &Partition,
        threads: usize,
        transport: crate::transport::TransportChoice,
    ) -> Self {
        // A single-lane engine is always lane-major: the layouts
        // coincide at one lane and the scalar kernels are optimal.
        BspSimulator {
            core: EngineCore::with_transport(
                circuit,
                partition,
                threads,
                1,
                false,
                crate::engine::LayoutChoice::LaneMajor,
                transport,
            ),
        }
    }

    /// [`BspSimulator::with_transport`] with an explicit event-trace
    /// configuration (the other constructors read `PARENDI_TRACE` —
    /// see [`TraceConfig::from_env`](parendi_telemetry::TraceConfig)).
    /// Tracing never changes functional results; with
    /// [`TraceConfig::off`](parendi_telemetry::TraceConfig::off) the
    /// hot loop's only residue is a branch on a `None`.
    pub fn with_trace(
        circuit: &'c Circuit,
        partition: &Partition,
        threads: usize,
        transport: crate::transport::TransportChoice,
        trace: parendi_telemetry::TraceConfig,
    ) -> Self {
        BspSimulator {
            core: EngineCore::with_trace(
                circuit,
                partition,
                threads,
                1,
                false,
                crate::engine::LayoutChoice::LaneMajor,
                transport,
                trace,
            ),
        }
    }

    /// Short name of the off-chip transport backend in use.
    pub fn transport_name(&self) -> &'static str {
        self.core.transport_name()
    }

    /// Total bytes the off-chip transport has carried so far (whole
    /// per-chip-pair aggregates per completed cycle — comparable
    /// across backends; see [`crate::transport`]).
    pub fn offchip_bytes_sent(&self) -> u64 {
        self.core.offchip_bytes_sent()
    }

    /// Point-in-time copy of every engine metric (cycles, op mix,
    /// off-chip bytes/frames, barrier wait outcomes, lane occupancy —
    /// see [`parendi_telemetry::MetricsSnapshot`]).
    pub fn metrics_snapshot(&self) -> parendi_telemetry::MetricsSnapshot {
        self.core.metrics_snapshot()
    }

    /// Per-track span-time summaries of the event trace; empty when
    /// tracing is off.
    pub fn trace_summaries(&self) -> Vec<parendi_telemetry::TrackSummary> {
        self.core
            .trace()
            .map(|s| s.track_summaries())
            .unwrap_or_default()
    }

    /// The accumulated event trace as Chrome trace-event JSON
    /// (Perfetto-loadable), or `None` when tracing is off.
    pub fn trace_json(&self) -> Option<String> {
        self.core.trace().map(|s| s.chrome_json())
    }

    /// Writes the accumulated event trace to `path` as Chrome
    /// trace-event JSON. No-op returning `Ok(false)` when tracing is
    /// off.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<bool> {
        match self.core.trace() {
            Some(s) => s.write(path).map(|_| true),
            None => Ok(false),
        }
    }

    /// Static opcode/width and adjacent-pair statistics of the
    /// compiled bytecode (the `PARENDI_CODE_STATS` data, queryable).
    pub fn code_stats(&self) -> parendi_telemetry::CodeStats {
        self.core.code_stats()
    }

    /// Number of completed RTL cycles.
    pub fn cycle(&self) -> u64 {
        self.core.cycle
    }

    /// Number of tiles (processes) being simulated.
    pub fn tiles(&self) -> usize {
        self.core.tiles()
    }

    /// Number of mailboxes carrying traffic: per-tile-pair on-chip boxes
    /// plus per-chip-pair off-chip aggregates.
    pub fn channels(&self) -> usize {
        self.core.channels()
    }

    /// Number of per-chip-pair aggregate mailboxes (zero on single-chip
    /// partitions).
    pub fn offchip_channels(&self) -> usize {
        self.core.channels() - self.core.onchip_mailboxes
    }

    /// Sets the artificial per-word delay (in spin-loop iterations)
    /// charged to the modeled off-chip link while flushing cross-chip
    /// mailboxes. The link is asynchronous: its occupancy overlaps the
    /// worker's remaining tile compute, and only the residual is waited
    /// out (see [`BspPhases::overlap_s`]). Functional results are
    /// unaffected. Takes effect from the next [`run`](Self::run).
    pub fn set_offchip_spin_per_word(&mut self, spins: u32) {
        self.core.set_offchip_spin(spins);
    }

    /// Drives an input (held until changed).
    ///
    /// # Panics
    ///
    /// Panics if the width does not match.
    pub fn set_input(&mut self, id: InputId, value: &Bits) {
        self.core.set_input_all(id, value);
    }

    /// Convenience: drive input `name` with a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if no such input exists.
    pub fn poke(&mut self, name: &str, value: u64) {
        let id = self.core.input_id(name);
        let width = self.core.circuit.inputs[id.index()].width;
        self.set_input(id, &Bits::from_u64(width, value));
    }

    /// The current value of a register.
    pub fn reg_value(&self, id: RegId) -> Bits {
        self.core.reg_value_lane(id, 0)
    }

    /// The current value of primary output `name`, or `None` if no such
    /// output exists — the engine counterpart of the reference
    /// interpreter's `output()`.
    ///
    /// Output cones are computed every cycle (their fibers run like any
    /// other), but the arena holds *pre-latch* values from the last
    /// cycle; this replays the owning tile's bytecode against the
    /// current architectural state (own registers, array copies, and the
    /// current-epoch mailbox slots for remote registers), so the value
    /// reflects all completed cycles and the current inputs, exactly
    /// like the interpreter after `step`.
    pub fn peek_output(&self, name: &str) -> Option<Bits> {
        self.core.peek_output_lane(name, 0)
    }

    /// An element of an array.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn array_value(&self, id: parendi_rtl::ArrayId, index: u32) -> Bits {
        self.core.array_value_lane(id, index, 0)
    }

    /// Runs `cycles` RTL cycles in parallel. Returns wall-clock seconds.
    ///
    /// The cycle loop runs untimed — no per-cycle clock reads.
    pub fn run(&mut self, cycles: u64) -> f64 {
        self.core.run_inner(cycles, false).total_s
    }

    /// Runs `cycles` RTL cycles and reports per-phase timings (the
    /// measured counterpart of the modeled `t_comp`/`t_comm`+`t_sync`
    /// split), including the per-tile histograms of
    /// [`BspPhases::per_tile`]. Timed runs cost roughly one clock read
    /// per tile per sub-phase per cycle; use [`run`](Self::run) for
    /// throughput measurements.
    pub fn run_timed(&mut self, cycles: u64) -> BspPhases {
        self.core.run_inner(cycles, true)
    }

    /// Captures the complete engine state — registers, arrays, arenas,
    /// inputs, both parities of every mailbox, and the cycle count — as
    /// a restorable [`Snapshot`](crate::checkpoint::Snapshot). See
    /// [`crate::checkpoint`] for the format and guarantees.
    pub fn snapshot(&self) -> crate::checkpoint::Snapshot {
        self.core.snapshot()
    }

    /// Restores state captured by [`snapshot`](Self::snapshot) — on
    /// this simulator or a freshly built one over the same circuit and
    /// partition (any transport backend, any thread count). The next
    /// run continues bit-identically to a run that was never
    /// interrupted. Fails (leaving the engine untouched) when the
    /// snapshot does not fit.
    pub fn restore(
        &mut self,
        snap: &crate::checkpoint::Snapshot,
    ) -> Result<(), crate::checkpoint::SnapshotError> {
        self.core.restore(snap)
    }

    /// Periodic auto-checkpointing: every `every` absolute cycles,
    /// [`run`](Self::run) writes a snapshot to `path` (atomic
    /// tmp-and-rename). The programmatic twin of
    /// `PARENDI_CHECKPOINT=path:every`; functional results are
    /// unaffected — chunked runs are bit-identical to uninterrupted
    /// ones.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn set_auto_checkpoint(&mut self, path: impl Into<std::path::PathBuf>, every: u64) {
        self.core.set_auto_checkpoint(path.into(), every);
    }
}
