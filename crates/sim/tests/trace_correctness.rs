//! The event-trace contract: a traced run emits well-formed Chrome
//! trace-event JSON whose per-track spans are monotone and
//! non-overlapping, and tracing never perturbs functional results —
//! a traced run is bit-identical to an untraced one for every engine,
//! strategy, and thread count.

mod common;

use common::random_circuit_io;
use parendi_core::{compile, Compilation, MultiChipStrategy, PartitionConfig};
use parendi_rtl::{Circuit, RegId};
use parendi_sim::{BspSimulator, GangSimulator, TraceConfig, TransportChoice};

/// Compiles a small 2-chip partition of a random circuit.
fn compile_two_chip(c: &Circuit, mc: MultiChipStrategy) -> Compilation {
    let mut cfg = PartitionConfig::with_tiles(4);
    cfg.tiles_per_chip = 2;
    cfg.multi_chip = mc;
    let comp = compile(c, &cfg).expect("compiles");
    assert_eq!(comp.partition.chips, 2, "partition must span 2 chips");
    comp
}

/// One parsed `X` event from the emitted Chrome JSON.
struct Span {
    tid: u64,
    name: String,
    ts: f64,
    dur: f64,
    cycle: u64,
}

/// Pulls `"key":<number>` out of a single-event JSON line.
fn num_field(line: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().expect("numeric field")
}

/// Pulls `"key":"<string>"` out of a single-event JSON line.
fn str_field(line: &str, key: &str) -> String {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
    let rest = &line[at..];
    rest[..rest.find('"').expect("closing quote")].to_string()
}

/// Parses the emitted Chrome JSON into track names (by tid) and spans,
/// checking the structural shape along the way: the `traceEvents`
/// wrapper, one object per line, `M` metadata before any `X` event of
/// the same tid, balanced braces per line.
fn parse_chrome(json: &str) -> (Vec<(u64, String)>, Vec<Span>) {
    assert!(json.starts_with("{\"traceEvents\":[\n"), "wrapper open");
    assert!(json.ends_with("\n]}\n"), "wrapper close");
    let body = &json["{\"traceEvents\":[\n".len()..json.len() - "\n]}\n".len()];
    let mut tracks = Vec::new();
    let mut spans = Vec::new();
    for line in body.lines() {
        let line = line.strip_suffix(',').unwrap_or(line);
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "one object per line: {line}"
        );
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "balanced braces: {line}"
        );
        let tid = num_field(line, "tid") as u64;
        match str_field(line, "ph").as_str() {
            "M" => {
                assert_eq!(str_field(line, "name"), "thread_name");
                // The track name is in args: {"name":"..."} — last
                // name field on the line.
                let args_at = line.find("\"args\"").expect("metadata args");
                tracks.push((tid, str_field(&line[args_at..], "name")));
            }
            "X" => {
                assert!(
                    tracks.iter().any(|(t, _)| *t == tid),
                    "X event before its track metadata (tid {tid})"
                );
                spans.push(Span {
                    tid,
                    name: str_field(line, "name"),
                    ts: num_field(line, "ts"),
                    dur: num_field(line, "dur"),
                    cycle: num_field(line, "cycle") as u64,
                });
            }
            ph => panic!("unexpected event phase {ph:?}"),
        }
    }
    (tracks, spans)
}

/// Per-track spans must be monotone and non-overlapping: each span
/// starts no earlier than the previous one ended (within the 3-decimal
/// microsecond rounding of the serializer).
fn assert_tracks_monotone(spans: &[Span]) {
    const SLACK_US: f64 = 0.004;
    let tids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
    for tid in tids {
        let mut prev_end = f64::NEG_INFINITY;
        let mut prev_name = String::new();
        for s in spans.iter().filter(|s| s.tid == tid) {
            assert!(
                s.ts + SLACK_US >= prev_end,
                "tid {tid}: span {} @{} overlaps previous {} ending @{prev_end}",
                s.name,
                s.ts,
                prev_name,
            );
            prev_end = s.ts + s.dur;
            prev_name = s.name.clone();
        }
    }
}

/// Golden traced run: 2 workers, 4 cycles, tile-level spans. The
/// emitted JSON must be well-formed, name a track per worker, cover
/// every cycle, carry the expected span kinds, and keep every track
/// monotone.
#[test]
fn golden_two_worker_trace_is_wellformed_chrome_json() {
    let c = random_circuit_io(41, 8, 40, 2);
    let comp = compile_two_chip(&c, MultiChipStrategy::Post);
    let mut sim = BspSimulator::with_trace(
        &c,
        &comp.partition,
        2,
        TransportChoice::InProcess,
        TraceConfig::tile(),
    );
    sim.poke("in0", 5);
    sim.poke("in1", 9);
    sim.run(4);

    let json = sim.trace_json().expect("tracing is on");
    let (tracks, spans) = parse_chrome(&json);
    for w in 0..2 {
        assert!(
            tracks
                .iter()
                .any(|(_, n)| n == &format!("engine-worker-{w}")),
            "missing engine-worker-{w} track in {tracks:?}"
        );
    }
    assert!(!spans.is_empty(), "a traced run must record spans");
    let cycles: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.cycle).collect();
    assert_eq!(
        cycles.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2, 3],
        "spans must cover exactly the 4 executed cycles"
    );
    for kind in ["compute", "exchange", "barrier_wait"] {
        assert!(
            spans.iter().any(|s| s.name == kind),
            "expected at least one {kind} span"
        );
    }
    // Tile-level tracing on a 2-chip run must attribute off-chip work.
    assert!(
        spans.iter().any(|s| s.name == "offchip_flush"),
        "2-chip tile-level trace must record off-chip flushes"
    );
    assert_tracks_monotone(&spans);

    // The per-track summaries agree with the serialized span count.
    let summaries = sim.trace_summaries();
    let summary_events: usize = summaries.iter().map(|s| s.events).sum();
    assert_eq!(summary_events, spans.len());
    assert!(summaries.iter().all(|s| s.dropped == 0), "nothing dropped");
}

/// Phase-level tracing merges adjacent same-kind segments: the run
/// stays well-formed and monotone but emits strictly fewer spans than
/// the tile-level view of the same workload.
#[test]
fn phase_level_trace_is_coarser_and_still_monotone() {
    let c = random_circuit_io(41, 8, 40, 2);
    let comp = compile_two_chip(&c, MultiChipStrategy::Post);
    let mut counts = Vec::new();
    for cfg in [TraceConfig::tile(), TraceConfig::phase()] {
        let mut sim =
            BspSimulator::with_trace(&c, &comp.partition, 2, TransportChoice::InProcess, cfg);
        sim.poke("in0", 5);
        sim.poke("in1", 9);
        sim.run(4);
        let (_, spans) = parse_chrome(&sim.trace_json().expect("tracing on"));
        assert_tracks_monotone(&spans);
        // Phase-level spans are worker-scoped: no tile attribution.
        counts.push(spans.len());
    }
    assert!(
        counts[1] < counts[0],
        "phase-level must merge tile segments: tile {} vs phase {}",
        counts[0],
        counts[1]
    );
}

/// Tracing must never change what the engine computes: for every
/// strategy × engine × thread count, a tile-level traced run lands on
/// bit-identical registers and outputs to the untraced run.
#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    let cycles = 30u64;
    for mc in [MultiChipStrategy::Pre, MultiChipStrategy::Post] {
        let c = random_circuit_io(67, 10, 50, 2);
        let comp = compile_two_chip(&c, mc);
        for threads in [1usize, 4] {
            // BSP engine.
            let run_bsp = |trace: TraceConfig| {
                let mut s = BspSimulator::with_trace(
                    &c,
                    &comp.partition,
                    threads,
                    TransportChoice::InProcess,
                    trace,
                );
                s.poke("in0", 13);
                s.poke("in1", 0xfeed);
                s.run(cycles);
                let regs: Vec<_> = (0..c.regs.len())
                    .map(|i| s.reg_value(RegId(i as u32)))
                    .collect();
                let outs: Vec<_> = c
                    .outputs
                    .iter()
                    .map(|o| s.peek_output(&o.name).expect("output"))
                    .collect();
                (regs, outs)
            };
            let untraced = run_bsp(TraceConfig::off());
            let traced = run_bsp(TraceConfig::tile());
            assert_eq!(
                untraced, traced,
                "bsp {mc:?} {threads} threads: traced run diverged"
            );

            // Gang engine, multi-lane: every lane must agree.
            let lanes = 3usize;
            let run_gang = |trace: TraceConfig| {
                let mut g = GangSimulator::with_trace(
                    &c,
                    &comp.partition,
                    threads,
                    lanes,
                    false,
                    TransportChoice::InProcess,
                    trace,
                );
                for l in 0..lanes {
                    g.poke_lane("in0", l, 13 + l as u64);
                    g.poke_lane("in1", l, 0xfeed ^ l as u64);
                }
                g.run(cycles);
                let mut vals = Vec::new();
                for l in 0..lanes {
                    for i in 0..c.regs.len() {
                        vals.push(g.reg_value_lane(RegId(i as u32), l));
                    }
                }
                vals
            };
            let untraced = run_gang(TraceConfig::off());
            let traced = run_gang(TraceConfig::tile());
            assert_eq!(
                untraced, traced,
                "gang {mc:?} {threads} threads: traced run diverged"
            );
        }
    }
}

/// Every transport backend registers its spans on the shared sink: a
/// traced TCP run grows per-writer-thread transport tracks next to the
/// worker tracks, and all three backends stay monotone.
#[test]
fn traced_runs_cover_all_transports() {
    let c = random_circuit_io(19, 8, 40, 2);
    let comp = compile_two_chip(&c, MultiChipStrategy::Post);
    for backend in [
        TransportChoice::InProcess,
        TransportChoice::SharedMem,
        TransportChoice::Tcp,
    ] {
        let mut sim =
            BspSimulator::with_trace(&c, &comp.partition, 2, backend, TraceConfig::tile());
        sim.poke("in0", 1);
        sim.run(8);
        let name = sim.transport_name();
        let (tracks, spans) = parse_chrome(&sim.trace_json().expect("tracing on"));
        assert_tracks_monotone(&spans);
        assert!(
            spans.iter().any(|s| s.name == "compute"),
            "[{name}] worker spans present"
        );
        if backend == TransportChoice::Tcp {
            assert!(
                tracks.iter().any(|(_, n)| n.starts_with("transport-tcp-")),
                "[{name}] TCP writer threads must register trace tracks: {tracks:?}"
            );
        }
    }
}
