//! The structural RTL intermediate representation.
//!
//! A [`Circuit`] is a flat data-dependence graph: an append-only list of
//! combinational [`Node`]s plus the stateful elements they connect —
//! [`Register`]s and [`Array`]s (SRAM-like memories with explicit write
//! ports). Because nodes may only reference earlier nodes, the
//! combinational graph is acyclic *by construction*; registers and arrays
//! are the only cycle-breaking elements, exactly as in the paper's §3.2
//! data-dependence-graph formulation (each register is split into a
//! read-only *current* value and a write-only *next* value).
//!
//! Circuits are normally built through [`crate::builder::Builder`], which
//! maintains width invariants as it goes; [`Circuit::validate`] re-checks
//! them wholesale.

use crate::bits::Bits;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a combinational node within a [`Circuit`].
    NodeId
);
id_type!(
    /// Identifies a register within a [`Circuit`].
    RegId
);
id_type!(
    /// Identifies a memory array within a [`Circuit`].
    ArrayId
);
id_type!(
    /// Identifies a primary input within a [`Circuit`].
    InputId
);

/// Unary combinational operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// AND-reduction to 1 bit.
    RedAnd,
    /// OR-reduction to 1 bit.
    RedOr,
    /// XOR-reduction (parity) to 1 bit.
    RedXor,
}

/// Binary combinational operators.
///
/// Logic/arithmetic operators require equal operand widths and produce
/// that width; comparisons produce 1 bit; shifts take an arbitrary-width
/// shift amount and preserve the left operand's width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (truncated to operand width).
    Mul,
    /// Equality (1-bit result).
    Eq,
    /// Inequality (1-bit result).
    Ne,
    /// Unsigned less-than (1-bit result).
    LtU,
    /// Signed less-than (1-bit result).
    LtS,
    /// Unsigned less-or-equal (1-bit result).
    LeU,
    /// Signed less-or-equal (1-bit result).
    LeS,
    /// Logical shift left by a dynamic amount.
    Shl,
    /// Logical shift right by a dynamic amount.
    Lshr,
    /// Arithmetic shift right by a dynamic amount.
    Ashr,
}

impl BinOp {
    /// Whether this operator produces a 1-bit comparison result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::LtU | BinOp::LtS | BinOp::LeU | BinOp::LeS
        )
    }

    /// Whether this operator is a shift (right operand width is free).
    pub fn is_shift(self) -> bool {
        matches!(self, BinOp::Shl | BinOp::Lshr | BinOp::Ashr)
    }
}

/// The operation computed by a [`Node`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// A literal constant.
    Const(Bits),
    /// A primary input of the circuit.
    Input(InputId),
    /// The *current* (leading-edge) value of a register.
    RegRead(RegId),
    /// A combinational read port on an array.
    ArrayRead {
        /// The array being read.
        array: ArrayId,
        /// Element index (any width; out-of-range reads return zero).
        index: NodeId,
    },
    /// A unary operator.
    Un(UnOp, NodeId),
    /// A binary operator.
    Bin(BinOp, NodeId, NodeId),
    /// A two-way multiplexer: `if sel { t } else { f }`.
    Mux {
        /// 1-bit select.
        sel: NodeId,
        /// Value when `sel` is one.
        t: NodeId,
        /// Value when `sel` is zero.
        f: NodeId,
    },
    /// Bit extraction `src[lo + width - 1 .. lo]` (width is the node width).
    Slice {
        /// Source node.
        src: NodeId,
        /// Low bit index.
        lo: u32,
    },
    /// Zero-extension (or truncation) to the node width.
    Zext(NodeId),
    /// Sign-extension (or truncation) to the node width.
    Sext(NodeId),
    /// Concatenation `{hi, lo}`.
    Concat {
        /// High bits.
        hi: NodeId,
        /// Low bits.
        lo: NodeId,
    },
}

/// A combinational node: an operation plus its result width.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Node {
    /// The operation.
    pub kind: NodeKind,
    /// Result width in bits.
    pub width: u32,
}

impl Node {
    /// Visits every node this node depends on.
    pub fn for_each_operand(&self, mut f: impl FnMut(NodeId)) {
        match &self.kind {
            NodeKind::Const(_) | NodeKind::Input(_) | NodeKind::RegRead(_) => {}
            NodeKind::ArrayRead { index, .. } => f(*index),
            NodeKind::Un(_, a)
            | NodeKind::Slice { src: a, .. }
            | NodeKind::Zext(a)
            | NodeKind::Sext(a) => f(*a),
            NodeKind::Bin(_, a, b) | NodeKind::Concat { hi: a, lo: b } => {
                f(*a);
                f(*b);
            }
            NodeKind::Mux { sel, t, f: fv } => {
                f(*sel);
                f(*t);
                f(*fv);
            }
        }
    }

    /// Whether this node is a source (has no operands).
    pub fn is_source(&self) -> bool {
        matches!(
            self.kind,
            NodeKind::Const(_) | NodeKind::Input(_) | NodeKind::RegRead(_)
        )
    }
}

/// A clocked register.
#[derive(Clone, Debug)]
pub struct Register {
    /// Hierarchical name (scopes joined with `.`).
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Power-on value.
    pub init: Bits,
    /// The node computing the next value; `None` until connected.
    pub next: Option<NodeId>,
}

/// A write port on an [`Array`].
#[derive(Clone, Copy, Debug)]
pub struct WritePort {
    /// Element index to write.
    pub index: NodeId,
    /// Data to write.
    pub data: NodeId,
    /// 1-bit write enable.
    pub enable: NodeId,
}

/// A memory array (e.g. a register file or SRAM bank).
///
/// Reads are combinational ([`NodeKind::ArrayRead`]); writes happen at the
/// clock edge through [`WritePort`]s. When several enabled ports target
/// the same index in one cycle, the *last-declared* port wins.
#[derive(Clone, Debug)]
pub struct Array {
    /// Hierarchical name.
    pub name: String,
    /// Element width in bits.
    pub width: u32,
    /// Number of elements.
    pub depth: u32,
    /// Optional per-element initial contents (defaults to zeros).
    pub init: Option<Vec<Bits>>,
    /// Write ports, applied in declaration order.
    pub write_ports: Vec<WritePort>,
}

impl Array {
    /// Total data size of the array in bytes (width rounded up to words).
    pub fn size_bytes(&self) -> u64 {
        crate::bits::words_for(self.width) as u64 * 8 * self.depth as u64
    }
}

/// A primary input declaration.
#[derive(Clone, Debug)]
pub struct InputDecl {
    /// Name of the input.
    pub name: String,
    /// Width in bits.
    pub width: u32,
}

/// A primary output declaration.
#[derive(Clone, Debug)]
pub struct OutputDecl {
    /// Name of the output.
    pub name: String,
    /// The node driving this output.
    pub node: NodeId,
}

/// A complete RTL design as a data-dependence graph.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    /// Design name.
    pub name: String,
    /// Combinational nodes in topological (construction) order.
    pub nodes: Vec<Node>,
    /// Registers.
    pub regs: Vec<Register>,
    /// Memory arrays.
    pub arrays: Vec<Array>,
    /// Primary inputs.
    pub inputs: Vec<InputDecl>,
    /// Primary outputs.
    pub outputs: Vec<OutputDecl>,
}

/// An error found by [`Circuit::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtlError {
    /// A node's operand widths are inconsistent with its kind.
    WidthMismatch {
        /// The offending node.
        node: NodeId,
        /// Human-readable description.
        detail: String,
    },
    /// A node references a node at or after itself (graph not topological).
    ForwardReference {
        /// The offending node.
        node: NodeId,
    },
    /// A register's `next` was never connected.
    UnconnectedRegister {
        /// The offending register.
        reg: RegId,
    },
    /// An id is out of range.
    DanglingId {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::WidthMismatch { node, detail } => {
                write!(f, "width mismatch at {node:?}: {detail}")
            }
            RtlError::ForwardReference { node } => {
                write!(f, "node {node:?} references a later node")
            }
            RtlError::UnconnectedRegister { reg } => {
                write!(f, "register {reg:?} has no next-value connection")
            }
            RtlError::DanglingId { detail } => write!(f, "dangling id: {detail}"),
        }
    }
}

impl std::error::Error for RtlError {}

impl Circuit {
    /// Creates an empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The node table entry for `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The width of node `id`.
    #[inline]
    pub fn width(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].width
    }

    /// All *sink* nodes: register next-values plus array write-port
    /// index/data/enable nodes. These are the roots of fiber extraction.
    pub fn sink_nodes(&self) -> Vec<NodeId> {
        let mut sinks = Vec::new();
        for r in &self.regs {
            if let Some(n) = r.next {
                sinks.push(n);
            }
        }
        for a in &self.arrays {
            for p in &a.write_ports {
                sinks.push(p.index);
                sinks.push(p.data);
                sinks.push(p.enable);
            }
        }
        sinks
    }

    /// Total register state in bits.
    pub fn state_bits(&self) -> u64 {
        self.regs.iter().map(|r| r.width as u64).sum()
    }

    /// Total array state in bytes.
    pub fn array_bytes(&self) -> u64 {
        self.arrays.iter().map(|a| a.size_bytes()).sum()
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: width mismatches, forward
    /// references, unconnected registers, or out-of-range ids.
    pub fn validate(&self) -> Result<(), RtlError> {
        let n = self.nodes.len() as u32;
        let check_id = |at: NodeId, id: NodeId| {
            if id.0 >= at.0 {
                Err(RtlError::ForwardReference { node: at })
            } else {
                Ok(())
            }
        };
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            let mut op_err = None;
            node.for_each_operand(|op| {
                if op_err.is_none() {
                    op_err = check_id(id, op).err();
                }
            });
            if let Some(e) = op_err {
                return Err(e);
            }
            self.validate_node(id, node)?;
        }
        for (i, r) in self.regs.iter().enumerate() {
            let next = r.next.ok_or(RtlError::UnconnectedRegister {
                reg: RegId(i as u32),
            })?;
            if next.0 >= n {
                return Err(RtlError::DanglingId {
                    detail: format!("reg {} next {next:?}", r.name),
                });
            }
            if self.width(next) != r.width {
                return Err(RtlError::WidthMismatch {
                    node: next,
                    detail: format!(
                        "reg {} is {} bits but next is {}",
                        r.name,
                        r.width,
                        self.width(next)
                    ),
                });
            }
            if r.init.width() != r.width {
                return Err(RtlError::WidthMismatch {
                    node: next,
                    detail: format!("reg {} init width {}", r.name, r.init.width()),
                });
            }
        }
        for a in &self.arrays {
            if let Some(init) = &a.init {
                if init.len() != a.depth as usize || init.iter().any(|b| b.width() != a.width) {
                    return Err(RtlError::DanglingId {
                        detail: format!("array {} init shape mismatch", a.name),
                    });
                }
            }
            for p in &a.write_ports {
                for (what, id) in [("index", p.index), ("data", p.data), ("enable", p.enable)] {
                    if id.0 >= n {
                        return Err(RtlError::DanglingId {
                            detail: format!("array {} port {what} {id:?}", a.name),
                        });
                    }
                }
                if self.width(p.data) != a.width {
                    return Err(RtlError::WidthMismatch {
                        node: p.data,
                        detail: format!("array {} data width {}", a.name, self.width(p.data)),
                    });
                }
                if self.width(p.enable) != 1 {
                    return Err(RtlError::WidthMismatch {
                        node: p.enable,
                        detail: format!("array {} enable must be 1 bit", a.name),
                    });
                }
            }
        }
        for o in &self.outputs {
            if o.node.0 >= n {
                return Err(RtlError::DanglingId {
                    detail: format!("output {}", o.name),
                });
            }
        }
        Ok(())
    }

    fn validate_node(&self, id: NodeId, node: &Node) -> Result<(), RtlError> {
        let w = |nid: NodeId| self.width(nid);
        let err = |detail: String| Err(RtlError::WidthMismatch { node: id, detail });
        match &node.kind {
            NodeKind::Const(b) => {
                if b.width() != node.width {
                    return err(format!("const width {} vs node {}", b.width(), node.width));
                }
            }
            NodeKind::Input(i) => {
                let decl = self.inputs.get(i.index()).ok_or(RtlError::DanglingId {
                    detail: format!("{i:?}"),
                })?;
                if decl.width != node.width {
                    return err(format!("input {} width {}", decl.name, decl.width));
                }
            }
            NodeKind::RegRead(r) => {
                let reg = self.regs.get(r.index()).ok_or(RtlError::DanglingId {
                    detail: format!("{r:?}"),
                })?;
                if reg.width != node.width {
                    return err(format!("reg {} width {}", reg.name, reg.width));
                }
            }
            NodeKind::ArrayRead { array, .. } => {
                let arr = self.arrays.get(array.index()).ok_or(RtlError::DanglingId {
                    detail: format!("{array:?}"),
                })?;
                if arr.width != node.width {
                    return err(format!("array {} width {}", arr.name, arr.width));
                }
            }
            NodeKind::Un(op, a) => {
                let expect = match op {
                    UnOp::Not | UnOp::Neg => w(*a),
                    UnOp::RedAnd | UnOp::RedOr | UnOp::RedXor => 1,
                };
                if node.width != expect {
                    return err(format!("{op:?} produces {expect} bits"));
                }
            }
            NodeKind::Bin(op, a, b) => {
                if !op.is_shift() && w(*a) != w(*b) {
                    return err(format!("{op:?} operands {} vs {}", w(*a), w(*b)));
                }
                let expect = if op.is_comparison() { 1 } else { w(*a) };
                if node.width != expect {
                    return err(format!("{op:?} produces {expect} bits"));
                }
            }
            NodeKind::Mux { sel, t, f } => {
                if w(*sel) != 1 {
                    return err("mux select must be 1 bit".into());
                }
                if w(*t) != w(*f) || w(*t) != node.width {
                    return err(format!("mux arms {} vs {}", w(*t), w(*f)));
                }
            }
            NodeKind::Slice { src, lo } => {
                if lo + node.width > w(*src) {
                    return err(format!(
                        "slice [{}..{}] of {} bits",
                        lo + node.width - 1,
                        lo,
                        w(*src)
                    ));
                }
            }
            NodeKind::Zext(_) | NodeKind::Sext(_) => {}
            NodeKind::Concat { hi, lo } => {
                if node.width != w(*hi) + w(*lo) {
                    return err(format!("concat {} + {}", w(*hi), w(*lo)));
                }
            }
        }
        Ok(())
    }
}
