//! Exchange planning: what each tile sends and receives every cycle.
//!
//! After partitioning, every register (and array write port) whose value
//! is consumed on another tile contributes to the BSP communication
//! phase. The differential-exchange optimization (§5.2) replaces
//! whole-array transfers with per-port `(index, data, enable)` records,
//! using the static bound on writes per cycle.
//!
//! Since the point-to-point refactor, the volumes reported here are a
//! *derived view* of the executable [`crate::routing::Routing`]: the
//! planner sums bytes over exactly the hops the BSP engine executes, so
//! the cost model and the engine cannot diverge. [`plan`] remains as a
//! convenience wrapper that compiles a throwaway routing.

use crate::partition::Partition;
use crate::routing::Routing;
use parendi_rtl::Circuit;

/// Per-cycle communication volumes implied by a partition.
#[derive(Clone, Debug, Default)]
pub struct ExchangePlan {
    /// Bytes each tile sends per cycle (fanout included).
    pub tile_out_bytes: Vec<u64>,
    /// Bytes each tile receives per cycle.
    pub tile_in_bytes: Vec<u64>,
    /// Worst per-tile on-chip traffic (out + in), driving the on-chip
    /// exchange cost (Fig. 5 left: cost follows `b`).
    pub max_tile_onchip_bytes: u64,
    /// Total bytes crossing chip boundaries, driving the off-chip cost
    /// (Fig. 5 right: cost follows `m×b`).
    pub offchip_total_bytes: u64,
    /// Unique value bytes crossing tile boundaries (Table 3 "Int.",
    /// fanout excluded).
    pub onchip_cut_bytes: u64,
    /// Unique value bytes crossing chip boundaries (Table 3 "Ext.").
    pub offchip_cut_bytes: u64,
}

impl ExchangePlan {
    /// Total fanout-included bytes sent per cycle.
    pub fn total_sent(&self) -> u64 {
        self.tile_out_bytes.iter().sum()
    }

    /// The plan of a **gang** run at `lanes` scenario lanes: every lane
    /// moves its own copy of every routed value, so all byte volumes
    /// scale linearly with the lane count (the executable counterpart —
    /// `parendi_sim::gang` — carries `lanes` lane-major copies of every
    /// mailbox buffer and flushes all of them per cycle).
    ///
    /// The *cut* figures scale too: they count unique value bytes, and
    /// lanes are independent scenarios, so a lane's values are unique to
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn scaled_by_lanes(&self, lanes: u32) -> ExchangePlan {
        assert!(lanes >= 1, "need at least one lane");
        let l = lanes as u64;
        ExchangePlan {
            tile_out_bytes: self.tile_out_bytes.iter().map(|b| b * l).collect(),
            tile_in_bytes: self.tile_in_bytes.iter().map(|b| b * l).collect(),
            max_tile_onchip_bytes: self.max_tile_onchip_bytes * l,
            offchip_total_bytes: self.offchip_total_bytes * l,
            onchip_cut_bytes: self.onchip_cut_bytes * l,
            offchip_cut_bytes: self.offchip_cut_bytes * l,
        }
    }
}

/// Computes the [`ExchangePlan`] of `partition` by compiling its
/// point-to-point routing and summing bytes over the routed hops.
///
/// Callers that also need the routes themselves (the BSP engine, the
/// figure binaries) should build a [`Routing`] once and call
/// [`Routing::exchange_plan`] instead of paying for two compilations.
pub fn plan(circuit: &Circuit, partition: &Partition, differential: bool) -> ExchangePlan {
    Routing::new(circuit, partition).exchange_plan(circuit, differential)
}

#[cfg(test)]
mod tests {
    use crate::config::PartitionConfig;
    use crate::stages::compile;
    use parendi_rtl::Builder;

    #[test]
    fn lane_scaling_multiplies_every_volume() {
        let mut b = Builder::new("ring");
        let regs: Vec<_> = (0..8).map(|i| b.reg(format!("r{i}"), 16, 0)).collect();
        for i in 0..8 {
            let prev = regs[(i + 7) % 8].q();
            let k = b.lit(16, 3);
            let v = b.add(prev, k);
            b.connect(regs[i], v);
        }
        let c = b.finish().unwrap();
        let mut cfg = PartitionConfig::with_tiles(8);
        cfg.tiles_per_chip = 4;
        let comp = compile(&c, &cfg).unwrap();
        assert!(comp.plan.offchip_total_bytes > 0, "ring must cross chips");
        let scaled = comp.plan.scaled_by_lanes(16);
        assert_eq!(
            scaled.offchip_total_bytes,
            comp.plan.offchip_total_bytes * 16
        );
        assert_eq!(
            scaled.max_tile_onchip_bytes,
            comp.plan.max_tile_onchip_bytes * 16
        );
        assert_eq!(scaled.total_sent(), comp.plan.total_sent() * 16);
        assert_eq!(scaled.onchip_cut_bytes, comp.plan.onchip_cut_bytes * 16);
        // One lane is the identity.
        let one = comp.plan.scaled_by_lanes(1);
        assert_eq!(one.offchip_total_bytes, comp.plan.offchip_total_bytes);
        assert_eq!(one.tile_out_bytes, comp.plan.tile_out_bytes);
    }
}
