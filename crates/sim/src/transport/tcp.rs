//! TCP backend: completed pair aggregates travel as length-prefixed
//! frames over loopback sockets, one stream per ordered chip pair.
//!
//! Frame wire format (little-endian):
//!
//! ```text
//! magic  u32   0x50524e44 ("PRND")
//! pair   u32   ordered-pair index
//! cycle  u64   the BSP cycle the frame belongs to
//! words  u32   payload length in u64 words
//! data   words × u64
//! ```
//!
//! Each pair gets a dedicated writer thread fed through an unbounded
//! channel, so a publishing worker never blocks on a full socket
//! buffer — the lockstep barriers bound in-flight traffic to one
//! frame per pair, but a single frame can exceed the kernel's socket
//! buffers and a synchronous `write_all` from the worker could then
//! deadlock against its own pending receives. Receives are plain
//! blocking reads on the consumer end of the pair's stream.
//!
//! Failure behavior: connection setup and the frame path surface
//! typed [`TransportError`]s — a refused connect, a stalled handshake,
//! or a receive that exceeds the `PARENDI_TRANSPORT_TIMEOUT_MS` budget
//! (default 30 s, `0` = wait forever) names the failing operation
//! before the worker panics and the engine aborts (a hung barrier
//! would otherwise deadlock the run). [`decode_frame`] itself is total
//! and unit-tested on malformed input.

use super::{transport_timeout, ChipTransport, Staging, TransportError, TransportInit};
use crate::engine::Mailbox;
use parendi_telemetry::{SpanKind, TraceEvent, NO_TILE};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Frame magic ("PRND" little-endian).
const MAGIC: u32 = 0x5052_4e44;
/// Header bytes: magic + pair + cycle + words.
pub(crate) const HEADER_BYTES: usize = 20;

/// Encodes a frame header.
pub(crate) fn encode_header(pair: u32, cycle: u64, words: u32) -> [u8; HEADER_BYTES] {
    let mut h = [0u8; HEADER_BYTES];
    h[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    h[4..8].copy_from_slice(&pair.to_le_bytes());
    h[8..16].copy_from_slice(&cycle.to_le_bytes());
    h[16..20].copy_from_slice(&words.to_le_bytes());
    h
}

/// Decodes and validates a frame header against the receiver's
/// expectations. Returns the payload word count or a description of
/// the corruption. Total: never panics, any byte salad is an `Err`.
pub(crate) fn decode_frame(
    header: &[u8],
    want_pair: u32,
    want_cycle: u64,
    max_words: u32,
) -> Result<u32, String> {
    if header.len() < HEADER_BYTES {
        return Err(format!(
            "short frame header: {} of {HEADER_BYTES} bytes",
            header.len()
        ));
    }
    let word = |r: std::ops::Range<usize>| -> u32 {
        u32::from_le_bytes(header[r].try_into().expect("4-byte slice"))
    };
    let magic = word(0..4);
    if magic != MAGIC {
        return Err(format!("bad frame magic {magic:#010x}"));
    }
    let pair = word(4..8);
    if pair != want_pair {
        return Err(format!("frame for pair {pair}, expected {want_pair}"));
    }
    let cycle = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    if cycle != want_cycle {
        return Err(format!("frame for cycle {cycle}, expected {want_cycle}"));
    }
    let words = word(16..20);
    if words > max_words {
        return Err(format!("oversized frame: {words} words > {max_words}"));
    }
    Ok(words)
}

/// The TCP backend (see the module docs for the wire format).
pub(crate) struct Tcp {
    staging: Staging,
    /// Per pair: the sender half feeding the pair's writer thread.
    /// Dropped on engine drop so the writers exit.
    senders: Vec<Option<mpsc::Sender<Vec<u8>>>>,
    /// Per pair: the consumer end of the pair's stream plus a reusable
    /// receive scratch buffer (uncontended — one worker per pair).
    recvs: Vec<Mutex<(TcpStream, Vec<u8>)>>,
    /// Per worker: the pair indices it receives.
    recv_of: Vec<Vec<u32>>,
    writers: Vec<JoinHandle<()>>,
    /// The armed read-timeout budget in ms (0 = unbounded), echoed in
    /// timeout diagnostics.
    budget_ms: u64,
}

impl Tcp {
    /// Builds the backend, converting any setup fault into a panic
    /// naming the failed operation (setup runs on the constructing
    /// thread, before any worker exists — there is nobody to hand a
    /// `Result` to once the engine is running).
    pub(crate) fn new(init: TransportInit<'_>) -> Self {
        Self::try_new(init).unwrap_or_else(|e| panic!("tcp transport setup failed: {e}"))
    }

    /// Fallible setup path: bind/connect/handshake with the
    /// `PARENDI_TRANSPORT_TIMEOUT_MS` budget applied to each connect
    /// and to the accept + handshake loop.
    fn try_new(init: TransportInit<'_>) -> Result<Self, TransportError> {
        let staging = Staging::new(&init, true);
        let npairs = init.pairs.len();
        let timeout = transport_timeout();
        let budget_ms = timeout.map_or(0, |d| d.as_millis() as u64);
        // One loopback stream per ordered pair: connect-then-accept
        // with a pair-id handshake (accept order is not guaranteed to
        // match connect order).
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| TransportError::io("bind loopback listener", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| TransportError::io("query listener address", e))?;
        let mut send_streams: Vec<Option<TcpStream>> = Vec::with_capacity(npairs);
        for p in 0..npairs {
            let mut s = match timeout {
                Some(d) => TcpStream::connect_timeout(&addr, d).map_err(|e| {
                    if e.kind() == ErrorKind::TimedOut {
                        TransportError::Timeout {
                            context: format!("connect stream for pair {p}"),
                            ms: budget_ms,
                        }
                    } else {
                        TransportError::io(format!("connect stream for pair {p}"), e)
                    }
                })?,
                None => TcpStream::connect(addr)
                    .map_err(|e| TransportError::io(format!("connect stream for pair {p}"), e))?,
            };
            s.set_nodelay(true)
                .map_err(|e| TransportError::io(format!("set nodelay on pair {p}"), e))?;
            s.write_all(&(p as u32).to_le_bytes())
                .map_err(|e| TransportError::io(format!("send handshake for pair {p}"), e))?;
            send_streams.push(Some(s));
        }
        // Accept loop under the same budget: a nonblocking listener
        // polled against a deadline, so a peer that connects but never
        // completes the handshake cannot hang setup forever.
        let deadline = timeout.map(|d| Instant::now() + d);
        if deadline.is_some() {
            listener
                .set_nonblocking(true)
                .map_err(|e| TransportError::io("set listener nonblocking", e))?;
        }
        let mut recv_streams: Vec<Option<TcpStream>> = (0..npairs).map(|_| None).collect();
        for _ in 0..npairs {
            let mut s = loop {
                match listener.accept() {
                    Ok((s, _)) => break s,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            return Err(TransportError::Timeout {
                                context: "accept pair streams".into(),
                                ms: budget_ms,
                            });
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => return Err(TransportError::io("accept pair stream", e)),
                }
            };
            s.set_nonblocking(false)
                .map_err(|e| TransportError::io("set accepted stream blocking", e))?;
            // The read-timeout stays armed for the run: every frame
            // receive inherits the same budget (see `recv_frame`).
            s.set_read_timeout(timeout)
                .map_err(|e| TransportError::io("set read timeout", e))?;
            let mut id = [0u8; 4];
            s.read_exact(&mut id).map_err(|e| {
                if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) {
                    TransportError::Timeout {
                        context: "read pair handshake".into(),
                        ms: budget_ms,
                    }
                } else {
                    TransportError::io("read pair handshake", e)
                }
            })?;
            let p = u32::from_le_bytes(id) as usize;
            if p >= npairs {
                return Err(TransportError::Handshake(format!(
                    "peer announced pair {p}, only {npairs} pairs exist"
                )));
            }
            if recv_streams[p].is_some() {
                return Err(TransportError::Handshake(format!(
                    "duplicate handshake for pair {p}"
                )));
            }
            recv_streams[p] = Some(s);
        }
        // A dedicated writer per pair: publishing must never block a
        // worker on socket backpressure (see the module docs).
        let mut senders = Vec::with_capacity(npairs);
        let mut writers = Vec::with_capacity(npairs);
        for (p, stream) in send_streams.iter_mut().enumerate() {
            let mut stream = stream.take().expect("send stream built above");
            let (tx, rx) = mpsc::channel::<Vec<u8>>();
            senders.push(Some(tx));
            // When tracing, each writer gets its own track: the socket
            // writes happen off the worker timeline, so their spans
            // cannot live on a worker's track without overlapping it.
            let track = init
                .trace
                .as_ref()
                .map(|sink| (sink.register(&format!("transport-tcp-{p}")), sink.epoch()));
            writers.push(
                std::thread::Builder::new()
                    .name(format!("transport-tcp-{p}"))
                    .spawn(move || {
                        while let Ok(frame) = rx.recv() {
                            let start = track.as_ref().map(|_| std::time::Instant::now());
                            if stream.write_all(&frame).is_err() {
                                // Peer gone: the receiving worker will
                                // panic on its short read and abort
                                // the engine; just exit.
                                return;
                            }
                            if let (Some((buf, epoch)), Some(s)) = (&track, start) {
                                // Frame header bytes 8..16 carry the
                                // cycle (see `encode_header`).
                                let cycle =
                                    u64::from_le_bytes(frame[8..16].try_into().expect("header"));
                                buf.push(TraceEvent {
                                    kind: SpanKind::TransportSend,
                                    tile: NO_TILE,
                                    cycle,
                                    start_ns: s.duration_since(*epoch).as_nanos() as u64,
                                    dur_ns: s.elapsed().as_nanos() as u64,
                                });
                            }
                        }
                    })
                    .map_err(|e| {
                        TransportError::io(format!("spawn writer thread for pair {p}"), e)
                    })?,
            );
        }
        let recvs = recv_streams
            .into_iter()
            .map(|s| Mutex::new((s.expect("all pairs handshaken above"), Vec::new())))
            .collect();
        Ok(Tcp {
            staging,
            senders,
            recvs,
            recv_of: init.recv_of,
            writers,
            budget_ms,
        })
    }
}

/// Receives one frame for `pair` at `cycle` from `stream` into
/// `scratch` (resized to the payload), returning the payload word
/// count. A read that trips the armed socket read-timeout becomes
/// [`TransportError::Timeout`]; any other I/O fault becomes
/// [`TransportError::Io`]; header corruption becomes
/// [`TransportError::Frame`]. Generic over [`Read`] so the
/// timeout/corruption paths are unit-testable without sockets.
pub(crate) fn recv_frame(
    stream: &mut impl Read,
    scratch: &mut Vec<u8>,
    pair: u32,
    cycle: u64,
    max_words: u32,
    budget_ms: u64,
) -> Result<u32, TransportError> {
    let classify = |context: &str, e: std::io::Error| {
        if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) {
            TransportError::Timeout {
                context: format!("{context} for pair {pair}"),
                ms: budget_ms,
            }
        } else {
            TransportError::io(format!("{context} for pair {pair}"), e)
        }
    };
    let mut header = [0u8; HEADER_BYTES];
    stream
        .read_exact(&mut header)
        .map_err(|e| classify("read frame header", e))?;
    let got = decode_frame(&header, pair, cycle, max_words).map_err(TransportError::Frame)?;
    scratch.resize(got as usize * 8, 0);
    stream
        .read_exact(scratch)
        .map_err(|e| classify("read frame payload", e))?;
    Ok(got)
}

impl ChipTransport for Tcp {
    fn staging(&self) -> Option<&[Mailbox]> {
        self.staging.boxes()
    }

    fn tile_flushed(&self, tile: usize, parity: usize, cycle: u64) {
        self.staging.tile_flushed(tile, |p| {
            // SAFETY: the countdown completed through this thread's
            // AcqRel decrement — every producer's staging write is
            // visible and none remain.
            let payload = unsafe { self.staging.frame(p, parity) };
            let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len() * 8);
            frame.extend_from_slice(&encode_header(p as u32, cycle, payload.len() as u32));
            for &w in payload {
                frame.extend_from_slice(&w.to_le_bytes());
            }
            let sent = self.senders[p]
                .as_ref()
                .expect("senders live until drop")
                .send(frame);
            if sent.is_err() {
                // The writer exits only after a failed socket write.
                panic!("transport pair {p}: writer thread gone (peer closed the stream)");
            }
        });
    }

    fn complete_recvs(
        &self,
        who: usize,
        parity: usize,
        cycle: u64,
        channels: &[Mailbox],
        onchip: usize,
    ) {
        self.staging.credit_recvs(self.recv_of[who].len() as u64);
        for &p in &self.recv_of[who] {
            let p = p as usize;
            let words = self.staging.words(p);
            let mut guard = self.recvs[p].lock().expect("uncontended recv stream");
            let (stream, scratch) = &mut *guard;
            recv_frame(
                stream,
                scratch,
                p as u32,
                cycle,
                words as u32,
                self.budget_ms,
            )
            .unwrap_or_else(|e| panic!("{e}"));
            // SAFETY: epoch discipline — nobody reads `parity` of this
            // consumer box until after barrier 1, and this worker is
            // the pair's sole receiver.
            let dst = unsafe { channels[onchip + p].write_base(parity) };
            for (k, chunk) in scratch.chunks_exact(8).enumerate() {
                // SAFETY: k < scratch words <= words <= the box allocation.
                unsafe {
                    *dst.add(k) = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                }
            }
        }
    }

    fn bytes_sent(&self) -> u64 {
        self.staging.bytes()
    }

    fn resync(&self, channels: &[Mailbox], onchip: usize, _cycle: u64) {
        // The sockets are drained between runs (lockstep barriers
        // bound in-flight traffic to one frame per pair, all consumed
        // before a run returns), so only the staging mirror needs
        // rebuilding from the restored consumer boxes.
        self.staging.resync(channels, onchip);
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

impl Drop for Tcp {
    fn drop(&mut self) {
        for tx in &mut self.senders {
            tx.take();
        }
        for w in self.writers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Malformed and truncated frames must decode to errors, never
    /// panic or sneak through — the receiving worker turns the error
    /// into a controlled panic.
    #[test]
    fn malformed_frames_are_rejected() {
        let good = encode_header(3, 41, 16);
        assert_eq!(decode_frame(&good, 3, 41, 64), Ok(16));

        // Short header (truncated stream).
        assert!(decode_frame(&good[..HEADER_BYTES - 1], 3, 41, 64)
            .unwrap_err()
            .contains("short frame"));
        assert!(decode_frame(&[], 3, 41, 64).unwrap_err().contains("short"));

        // Corrupted magic.
        let mut bad = good;
        bad[0] ^= 0xff;
        assert!(decode_frame(&bad, 3, 41, 64)
            .unwrap_err()
            .contains("bad frame magic"));

        // Cross-wired pair.
        assert!(decode_frame(&good, 2, 41, 64)
            .unwrap_err()
            .contains("pair 3"));

        // Stale cycle (a skipped or replayed epoch).
        assert!(decode_frame(&good, 3, 40, 64)
            .unwrap_err()
            .contains("cycle 41"));

        // Payload larger than the pair aggregate.
        assert!(decode_frame(&good, 3, 41, 8)
            .unwrap_err()
            .contains("oversized"));
    }

    /// A reader that yields `n` bytes and then reports the socket
    /// read-timeout error a stalled `TcpStream` would.
    struct Stall {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for Stall {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "stalled"));
            }
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// A peer that stops sending mid-frame must surface as a typed
    /// timeout naming the budget, not a hang or a bare unwrap panic.
    #[test]
    fn stalled_reads_become_typed_timeouts() {
        let mut scratch = Vec::new();

        // Stall before the header: timeout on the header read.
        let mut s = Stall {
            data: Vec::new(),
            pos: 0,
        };
        match recv_frame(&mut s, &mut scratch, 7, 5, 64, 1234) {
            Err(TransportError::Timeout { context, ms }) => {
                assert!(context.contains("header"), "{context}");
                assert!(context.contains("pair 7"), "{context}");
                assert_eq!(ms, 1234);
            }
            other => panic!("expected timeout, got {other:?}"),
        }

        // Stall after the header: timeout on the payload read.
        let mut s = Stall {
            data: encode_header(7, 5, 2).to_vec(),
            pos: 0,
        };
        match recv_frame(&mut s, &mut scratch, 7, 5, 64, 50) {
            Err(TransportError::Timeout { context, .. }) => {
                assert!(context.contains("payload"), "{context}");
            }
            other => panic!("expected timeout, got {other:?}"),
        }

        // A corrupted header still classifies as a frame error.
        let mut bad = encode_header(7, 5, 2).to_vec();
        bad[0] ^= 0xff;
        bad.extend_from_slice(&[0u8; 16]);
        let mut s = Stall { data: bad, pos: 0 };
        assert!(matches!(
            recv_frame(&mut s, &mut scratch, 7, 5, 64, 50),
            Err(TransportError::Frame(_))
        ));

        // A complete frame decodes and fills the scratch buffer.
        let mut whole = encode_header(7, 5, 2).to_vec();
        whole.extend_from_slice(&1u64.to_le_bytes());
        whole.extend_from_slice(&2u64.to_le_bytes());
        let mut s = Stall {
            data: whole,
            pos: 0,
        };
        assert_eq!(recv_frame(&mut s, &mut scratch, 7, 5, 64, 50).unwrap(), 2);
        assert_eq!(scratch.len(), 16);
    }
}
