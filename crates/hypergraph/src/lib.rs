//! # parendi-hypergraph
//!
//! A self-contained multilevel hypergraph partitioner, standing in for
//! KaHyPar in the Parendi reproduction (paper §5.1 stage 2 and the
//! RepCut-style strategy of §6.6).
//!
//! The algorithm is the classic multilevel scheme:
//!
//! 1. **Coarsening** — heavy-edge matching contracts pairs of nodes that
//!    share high `w(e)/(|e|-1)` ratings until the graph is small.
//! 2. **Initial partitioning** — greedy balanced growth from random
//!    seeds, best of several tries.
//! 3. **Uncoarsening** — the partition is projected back level by level
//!    and improved with FM-style move refinement under a balance
//!    constraint.
//!
//! K-way partitions are produced by recursive bisection with
//! proportional weight targets.
//!
//! # Examples
//!
//! ```
//! use parendi_hypergraph::Hypergraph;
//!
//! // Two 3-cliques joined by one light edge: the cut should split them.
//! let mut hg = Hypergraph::new(vec![1; 6]);
//! hg.add_edge(10, vec![0, 1, 2]);
//! hg.add_edge(10, vec![3, 4, 5]);
//! hg.add_edge(1, vec![2, 3]);
//! let p = hg.partition(2, 0.1, 42);
//! assert_eq!(p.cut, 1);
//! assert_ne!(p.parts[0], p.parts[3]);
//! ```

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A weighted hypergraph.
#[derive(Clone, Debug)]
pub struct Hypergraph {
    node_weights: Vec<u64>,
    edge_weights: Vec<u64>,
    /// Pin list per edge (sorted, unique).
    pins: Vec<Vec<u32>>,
    /// Incident edge ids per node.
    incidence: Vec<Vec<u32>>,
}

/// The result of [`Hypergraph::partition`].
#[derive(Clone, Debug)]
pub struct PartitionResult {
    /// Block id per node.
    pub parts: Vec<u32>,
    /// Σ weight of hyperedges spanning more than one block.
    pub cut: u64,
    /// Σ `w(e) * (λ(e) - 1)` connectivity metric.
    pub connectivity: u64,
    /// Σ node weight per block.
    pub part_weights: Vec<u64>,
}

impl Hypergraph {
    /// Creates a hypergraph with the given node weights and no edges.
    pub fn new(node_weights: Vec<u64>) -> Self {
        let n = node_weights.len();
        Hypergraph {
            node_weights,
            edge_weights: Vec::new(),
            pins: Vec::new(),
            incidence: vec![Vec::new(); n],
        }
    }

    /// Adds a hyperedge over `pins` with the given weight.
    ///
    /// Duplicate pins are removed; edges with fewer than two distinct
    /// pins are ignored (they can never be cut).
    pub fn add_edge(&mut self, weight: u64, mut pins: Vec<u32>) {
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            return;
        }
        let id = self.pins.len() as u32;
        for &p in &pins {
            self.incidence[p as usize].push(id);
        }
        self.edge_weights.push(weight);
        self.pins.push(pins);
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_weights.len()
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.pins.len()
    }

    /// Total node weight.
    pub fn total_weight(&self) -> u64 {
        self.node_weights.iter().sum()
    }

    /// Node weights slice.
    pub fn node_weights(&self) -> &[u64] {
        &self.node_weights
    }

    /// Σ weight of edges whose pins span more than one block.
    pub fn cut(&self, parts: &[u32]) -> u64 {
        self.pins
            .iter()
            .zip(&self.edge_weights)
            .filter(|(pins, _)| {
                let first = parts[pins[0] as usize];
                pins.iter().any(|&p| parts[p as usize] != first)
            })
            .map(|(_, &w)| w)
            .sum()
    }

    /// Σ `w(e) * (λ(e) - 1)` where λ is the number of blocks an edge touches.
    pub fn connectivity(&self, parts: &[u32]) -> u64 {
        let mut seen = Vec::new();
        self.pins
            .iter()
            .zip(&self.edge_weights)
            .map(|(pins, &w)| {
                seen.clear();
                for &p in pins {
                    let b = parts[p as usize];
                    if !seen.contains(&b) {
                        seen.push(b);
                    }
                }
                w * (seen.len() as u64 - 1)
            })
            .sum()
    }

    /// Partitions into `k` blocks with `epsilon` allowed imbalance.
    ///
    /// Deterministic for a given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn partition(&self, k: u32, epsilon: f64, seed: u64) -> PartitionResult {
        assert!(k > 0, "k must be positive");
        let mut parts = vec![0u32; self.num_nodes()];
        if k > 1 && self.num_nodes() > 1 {
            let mut rng = StdRng::seed_from_u64(seed);
            let nodes: Vec<u32> = (0..self.num_nodes() as u32).collect();
            self.recurse(&nodes, k, 0, epsilon, &mut parts, &mut rng);
        }
        let mut part_weights = vec![0u64; k as usize];
        for (n, &p) in parts.iter().enumerate() {
            part_weights[p as usize] += self.node_weights[n];
        }
        PartitionResult {
            cut: self.cut(&parts),
            connectivity: self.connectivity(&parts),
            parts,
            part_weights,
        }
    }

    /// Recursive bisection on the sub-hypergraph induced by `nodes`,
    /// assigning blocks `base..base+k`.
    fn recurse(
        &self,
        nodes: &[u32],
        k: u32,
        base: u32,
        epsilon: f64,
        parts: &mut [u32],
        rng: &mut StdRng,
    ) {
        if k == 1 || nodes.len() <= 1 {
            for &n in nodes {
                parts[n as usize] = base;
            }
            return;
        }
        let k_left = k.div_ceil(2);
        let k_right = k / 2;
        let sub = SubGraph::induced(self, nodes);
        let total: u64 = sub.node_weights.iter().sum();
        let target0 = (total as f64 * k_left as f64 / k as f64).round() as u64;
        let cap0 = (target0 as f64 * (1.0 + epsilon)).ceil() as u64;
        let cap1 = ((total - target0) as f64 * (1.0 + epsilon)).ceil() as u64;
        let side = sub.bisect(target0, cap0, cap1, epsilon, rng);
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for (i, &n) in nodes.iter().enumerate() {
            if side[i] == 0 {
                left.push(n);
            } else {
                right.push(n);
            }
        }
        self.recurse(&left, k_left, base, epsilon, parts, rng);
        self.recurse(&right, k_right, base + k_left, epsilon, parts, rng);
    }
}

/// A self-contained working copy used during recursion/coarsening.
struct SubGraph {
    node_weights: Vec<u64>,
    edge_weights: Vec<u64>,
    pins: Vec<Vec<u32>>,
    incidence: Vec<Vec<u32>>,
}

impl SubGraph {
    fn induced(hg: &Hypergraph, nodes: &[u32]) -> SubGraph {
        let mut index_of: HashMap<u32, u32> = HashMap::with_capacity(nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            index_of.insert(n, i as u32);
        }
        let node_weights: Vec<u64> = nodes.iter().map(|&n| hg.node_weights[n as usize]).collect();
        let mut sub = SubGraph {
            node_weights,
            edge_weights: Vec::new(),
            pins: Vec::new(),
            incidence: vec![Vec::new(); nodes.len()],
        };
        let mut touched: Vec<u32> = nodes
            .iter()
            .flat_map(|&n| hg.incidence[n as usize].iter().copied())
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for e in touched {
            let pins: Vec<u32> = hg.pins[e as usize]
                .iter()
                .filter_map(|p| index_of.get(p).copied())
                .collect();
            sub.add_edge(hg.edge_weights[e as usize], pins);
        }
        sub
    }

    fn add_edge(&mut self, weight: u64, mut pins: Vec<u32>) {
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            return;
        }
        let id = self.pins.len() as u32;
        for &p in &pins {
            self.incidence[p as usize].push(id);
        }
        self.edge_weights.push(weight);
        self.pins.push(pins);
    }

    fn num_nodes(&self) -> usize {
        self.node_weights.len()
    }

    /// Bisects into sides 0/1 under the weight caps. Multilevel when large.
    #[allow(clippy::only_used_in_recursion)] // epsilon is part of the recursive contract
    fn bisect(
        &self,
        target0: u64,
        cap0: u64,
        cap1: u64,
        epsilon: f64,
        rng: &mut StdRng,
    ) -> Vec<u8> {
        const COARSE_LIMIT: usize = 160;
        if self.num_nodes() <= COARSE_LIMIT {
            let mut best: Option<(u64, Vec<u8>)> = None;
            for _ in 0..4 {
                let mut side = self.initial_bisection(target0, cap0, rng);
                self.fm_refine(&mut side, cap0, cap1);
                let cut = self.side_cut(&side);
                if best.as_ref().is_none_or(|(c, _)| cut < *c) {
                    best = Some((cut, side));
                }
            }
            return best.unwrap().1;
        }
        // Coarsen one level, solve, project, refine.
        let (coarse, map) = self.coarsen(rng);
        if coarse.num_nodes() >= self.num_nodes() {
            // Matching failed to shrink; fall back to flat solve.
            let mut side = self.initial_bisection(target0, cap0, rng);
            self.fm_refine(&mut side, cap0, cap1);
            return side;
        }
        let coarse_side = coarse.bisect(target0, cap0, cap1, epsilon, rng);
        let mut side: Vec<u8> = (0..self.num_nodes())
            .map(|n| coarse_side[map[n] as usize])
            .collect();
        self.fm_refine(&mut side, cap0, cap1);
        side
    }

    /// Heavy-edge matching contraction. Returns (coarse graph, fine→coarse map).
    fn coarsen(&self, rng: &mut StdRng) -> (SubGraph, Vec<u32>) {
        let n = self.num_nodes();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(rng);
        let mut mate: Vec<Option<u32>> = vec![None; n];
        // Rating of neighbour v from node u: Σ w(e)/(|e|-1) over shared edges.
        let mut rating: HashMap<u32, f64> = HashMap::new();
        // Cap coarse-node weight so one giant node cannot absorb everything.
        let max_nw = (self.node_weights.iter().sum::<u64>() / 8).max(1);
        for &u in &order {
            if mate[u as usize].is_some() {
                continue;
            }
            rating.clear();
            for &e in &self.incidence[u as usize] {
                let pins = &self.pins[e as usize];
                if pins.len() > 64 {
                    continue; // skip huge edges for speed; they rarely guide matching
                }
                let r = self.edge_weights[e as usize] as f64 / (pins.len() - 1) as f64;
                for &v in pins {
                    if v != u && mate[v as usize].is_none() {
                        *rating.entry(v).or_insert(0.0) += r;
                    }
                }
            }
            let best = rating
                .iter()
                .filter(|(&v, _)| {
                    self.node_weights[u as usize] + self.node_weights[v as usize] <= max_nw
                })
                // Deterministic tie-break on the node id: HashMap iteration
                // order must not leak into the partition.
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
                .map(|(&v, _)| v);
            if let Some(v) = best {
                mate[u as usize] = Some(v);
                mate[v as usize] = Some(u);
            }
        }
        // Build the coarse graph.
        let mut map = vec![u32::MAX; n];
        let mut coarse_weights = Vec::new();
        for u in 0..n {
            if map[u] != u32::MAX {
                continue;
            }
            let id = coarse_weights.len() as u32;
            map[u] = id;
            let mut w = self.node_weights[u];
            if let Some(v) = mate[u] {
                if map[v as usize] == u32::MAX {
                    map[v as usize] = id;
                    w += self.node_weights[v as usize];
                }
            }
            coarse_weights.push(w);
        }
        let mut coarse = SubGraph {
            incidence: vec![Vec::new(); coarse_weights.len()],
            node_weights: coarse_weights,
            edge_weights: Vec::new(),
            pins: Vec::new(),
        };
        // Merge identical coarse pin-sets.
        let mut edge_of: HashMap<Vec<u32>, usize> = HashMap::new();
        for (e, pins) in self.pins.iter().enumerate() {
            let mut cp: Vec<u32> = pins.iter().map(|&p| map[p as usize]).collect();
            cp.sort_unstable();
            cp.dedup();
            if cp.len() < 2 {
                continue;
            }
            if let Some(&idx) = edge_of.get(&cp) {
                coarse.edge_weights[idx] += self.edge_weights[e];
            } else {
                edge_of.insert(cp.clone(), coarse.pins.len());
                coarse.add_edge(self.edge_weights[e], cp);
            }
        }
        (coarse, map)
    }

    /// Greedy growth: random seed node grows side 0 along heavy edges
    /// until it reaches half the weight.
    fn initial_bisection(&self, target0: u64, cap0: u64, rng: &mut StdRng) -> Vec<u8> {
        let n = self.num_nodes();
        let target = target0.min(cap0);
        let mut side = vec![1u8; n];
        let mut weight0 = 0u64;
        let mut frontier: Vec<u32> = Vec::new();
        let seed = rng.random_range(0..n as u32);
        frontier.push(seed);
        let mut in_frontier = vec![false; n];
        in_frontier[seed as usize] = true;
        while weight0 < target {
            let u = match frontier.pop() {
                Some(u) => u,
                None => {
                    // Disconnected: pick any remaining unvisited side-1 node
                    // (and mark it visited so an over-cap node cannot be
                    // re-selected forever).
                    match (0..n as u32).find(|&v| side[v as usize] == 1 && !in_frontier[v as usize])
                    {
                        Some(v) => {
                            in_frontier[v as usize] = true;
                            v
                        }
                        None => break,
                    }
                }
            };
            if side[u as usize] == 0 {
                continue;
            }
            if weight0 + self.node_weights[u as usize] > cap0 {
                continue;
            }
            side[u as usize] = 0;
            weight0 += self.node_weights[u as usize];
            for &e in &self.incidence[u as usize] {
                for &v in &self.pins[e as usize] {
                    if side[v as usize] == 1 && !in_frontier[v as usize] {
                        in_frontier[v as usize] = true;
                        frontier.push(v);
                    }
                }
            }
        }
        side
    }

    fn side_cut(&self, side: &[u8]) -> u64 {
        self.pins
            .iter()
            .zip(&self.edge_weights)
            .filter(|(pins, _)| {
                let s = side[pins[0] as usize];
                pins.iter().any(|&p| side[p as usize] != s)
            })
            .map(|(_, &w)| w)
            .sum()
    }

    /// FM-style pass-based refinement with rollback to the best prefix.
    fn fm_refine(&self, side: &mut [u8], cap0: u64, cap1: u64) {
        let n = self.num_nodes();
        if n < 2 {
            return;
        }
        let caps = [cap0, cap1];
        for _pass in 0..3 {
            // Pin counts per side per edge.
            let mut count: Vec<[u32; 2]> = self
                .pins
                .iter()
                .map(|pins| {
                    let ones = pins.iter().filter(|&&p| side[p as usize] == 1).count() as u32;
                    [pins.len() as u32 - ones, ones]
                })
                .collect();
            let mut weights = [0u64, 0u64];
            for (u, &s) in side.iter().enumerate() {
                weights[s as usize] += self.node_weights[u];
            }
            let gain = |u: usize, side: &[u8], count: &[[u32; 2]]| -> i64 {
                let from = side[u] as usize;
                let to = 1 - from;
                let mut g = 0i64;
                for &e in &self.incidence[u] {
                    let c = count[e as usize];
                    let w = self.edge_weights[e as usize] as i64;
                    if c[from] == 1 && c[to] > 0 {
                        g += w; // this move uncuts e
                    }
                    if c[to] == 0 {
                        g -= w; // this move cuts e
                    }
                }
                g
            };
            let mut locked = vec![false; n];
            let mut moves: Vec<(u32, i64)> = Vec::new();
            let mut cum = 0i64;
            let mut best_cum = 0i64;
            let mut best_len = 0usize;
            for _step in 0..n.min(512) {
                // Pick the best feasible unlocked move (linear scan keeps
                // the implementation simple; graphs here are modest).
                let mut best: Option<(usize, i64)> = None;
                for u in 0..n {
                    if locked[u] {
                        continue;
                    }
                    let to = 1 - side[u] as usize;
                    if weights[to] + self.node_weights[u] > caps[to] {
                        continue;
                    }
                    let g = gain(u, side, &count);
                    if best.is_none_or(|(_, bg)| g > bg) {
                        best = Some((u, g));
                    }
                }
                let Some((u, g)) = best else { break };
                if g < 0 && cum + g < best_cum - (self.edge_weights.iter().sum::<u64>() as i64) {
                    break; // hopeless
                }
                let from = side[u] as usize;
                let to = 1 - from;
                for &e in &self.incidence[u] {
                    count[e as usize][from] -= 1;
                    count[e as usize][to] += 1;
                }
                weights[from] -= self.node_weights[u];
                weights[to] += self.node_weights[u];
                side[u] = to as u8;
                locked[u] = true;
                cum += g;
                moves.push((u as u32, g));
                if cum > best_cum {
                    best_cum = cum;
                    best_len = moves.len();
                }
            }
            // Roll back past the best prefix.
            for &(u, _) in moves[best_len..].iter().rev() {
                let u = u as usize;
                side[u] = 1 - side[u];
            }
            if best_cum <= 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Hypergraph {
        let mut hg = Hypergraph::new(vec![1; n]);
        for i in 0..n {
            hg.add_edge(1, vec![i as u32, ((i + 1) % n) as u32]);
        }
        hg
    }

    #[test]
    fn ring_bisection_cuts_two_edges() {
        let hg = ring(64);
        let p = hg.partition(2, 0.05, 1);
        assert_eq!(p.cut, 2, "a ring bisection must cut exactly two edges");
        let imbalance = p.part_weights.iter().max().unwrap() - p.part_weights.iter().min().unwrap();
        assert!(imbalance <= 4, "imbalance {imbalance} too high");
    }

    #[test]
    fn two_clusters_split_cleanly() {
        // Two dense 20-cliques with a single light bridge.
        let mut hg = Hypergraph::new(vec![1; 40]);
        for c in 0..2u32 {
            let base = c * 20;
            for i in 0..20 {
                for j in i + 1..20 {
                    hg.add_edge(4, vec![base + i, base + j]);
                }
            }
        }
        hg.add_edge(1, vec![0, 39]);
        let p = hg.partition(2, 0.1, 7);
        assert_eq!(p.cut, 1);
        for i in 0..20 {
            assert_eq!(p.parts[i], p.parts[0]);
            assert_eq!(p.parts[20 + i], p.parts[20]);
        }
    }

    #[test]
    fn kway_respects_counts_and_balance() {
        let hg = ring(128);
        for k in [3u32, 4, 7] {
            let p = hg.partition(k, 0.1, 3);
            assert_eq!(p.part_weights.len(), k as usize);
            assert!(
                p.part_weights.iter().all(|&w| w > 0),
                "empty block at k={k}"
            );
            let max = *p.part_weights.iter().max().unwrap() as f64;
            let avg = 128.0 / k as f64;
            assert!(max <= avg * 1.35, "k={k} max block {max} vs avg {avg}");
        }
    }

    #[test]
    fn hyperedges_with_many_pins() {
        // Groups of 8 nodes bound by one strong hyperedge each.
        let mut hg = Hypergraph::new(vec![1; 64]);
        for g in 0..8u32 {
            hg.add_edge(16, (0..8).map(|i| g * 8 + i).collect());
        }
        // weak chain between groups
        for g in 0..7u32 {
            hg.add_edge(1, vec![g * 8, (g + 1) * 8]);
        }
        let p = hg.partition(4, 0.1, 11);
        // No strong group edge should be cut.
        for g in 0..8usize {
            let b = p.parts[g * 8];
            for i in 1..8 {
                assert_eq!(p.parts[g * 8 + i], b, "group {g} split");
            }
        }
    }

    #[test]
    fn connectivity_at_least_cut() {
        let hg = ring(32);
        let p = hg.partition(4, 0.1, 5);
        assert!(p.connectivity >= p.cut);
    }

    #[test]
    fn multilevel_path_used_for_large_graphs() {
        // 2048-node ring exercises coarsening.
        let hg = ring(2048);
        let p = hg.partition(2, 0.05, 9);
        assert!(p.cut <= 8, "multilevel ring cut {} too poor", p.cut);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let hg = ring(100);
        let a = hg.partition(4, 0.1, 13);
        let b = hg.partition(4, 0.1, 13);
        assert_eq!(a.parts, b.parts);
    }

    #[test]
    fn degenerate_inputs() {
        let hg = Hypergraph::new(vec![5]);
        let p = hg.partition(2, 0.1, 0);
        assert_eq!(p.parts, vec![0]);
        assert_eq!(p.cut, 0);
        let empty = Hypergraph::new(vec![]);
        let p = empty.partition(3, 0.1, 0);
        assert!(p.parts.is_empty());
    }
}
