//! # parendi-baseline
//!
//! A Verilator-like full-cycle baseline on the x64 machine model — the
//! comparator for every speedup the paper reports (§6).
//!
//! Verilator compiles the whole design into straight-line code and, when
//! multithreaded, schedules fine-grained macro-tasks across threads with
//! point-to-point synchronization. We model it as:
//!
//! * **single thread** — the total instruction stream at the host's
//!   effective IPC, degraded by the working-set miss factor (RTL code
//!   and data have reuse distances of a whole simulated cycle, §3.1);
//! * **multi thread** — fibers are packed into per-thread macro-tasks
//!   with a locality-preserving balanced partition (Verilator's
//!   scheduler also works from the module structure), plus the x64
//!   barrier/communication costs of §4.1–4.2.
//!
//! The shapes this produces — no speedup for small designs, chiplet and
//! socket cliffs, a superlinear region for cache-resident working sets —
//! are the ones Figs. 4, 8 and Table 3 report.

#![warn(missing_docs)]

use parendi_graph::cost::CostModel;
use parendi_graph::fiber::{extract_fibers, FiberSet};
use parendi_machine::x64::{X64Config, X64Timings};
use parendi_rtl::bits::words_for;
use parendi_rtl::Circuit;

/// A Verilator-like performance model of one design.
#[derive(Debug)]
pub struct VerilatorModel {
    /// Total x64 instructions per simulated cycle (Table 3 column #I).
    pub total_instrs: u64,
    /// Estimated working set: code plus touched data, bytes (Table 3 MiB).
    pub working_set_bytes: u64,
    /// Per-fiber instruction costs, in construction order.
    fiber_instrs: Vec<u64>,
    /// Per-fiber output bytes (for cross-thread traffic).
    fiber_out_bytes: Vec<u64>,
    /// Fiber adjacency encoded as (writer fiber, reader fiber) pairs via
    /// registers, used to price cross-thread traffic.
    edges: Vec<(u32, u32, u64)>,
}

impl VerilatorModel {
    /// Builds the model for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let costs = CostModel::of(circuit);
        let fibers = extract_fibers(circuit, &costs);
        Self::from_parts(circuit, &costs, &fibers)
    }

    /// Builds the model from already-extracted fibers.
    pub fn from_parts(circuit: &Circuit, costs: &CostModel, fibers: &FiberSet) -> Self {
        // Verilator evaluates each node once (no duplication): the
        // single-thread stream is the deduplicated sum.
        let total_instrs = costs.total_x64_instrs();
        let code_bytes: u64 = costs.x64_instrs.iter().map(|&i| i as u64 * 4).sum();
        let data_bytes: u64 = costs.data_bytes.iter().map(|&b| b as u64).sum();
        let array_bytes = circuit.array_bytes();
        let working_set_bytes = code_bytes + data_bytes + array_bytes;

        let fiber_instrs: Vec<u64> = fibers.fibers.iter().map(|f| f.x64_cost).collect();
        let fiber_out_bytes: Vec<u64> = fibers.fibers.iter().map(|f| f.out_bytes as u64).collect();

        // Register edges: writer fiber -> each reader fiber.
        let adj = parendi_graph::analysis::adjacency(circuit, fibers);
        let mut edges = Vec::new();
        for (ri, readers) in adj.reg_readers.iter().enumerate() {
            if let Some(w) = adj.reg_writer[ri] {
                let bytes = words_for(circuit.regs[ri].width) as u64 * 8;
                for &r in readers {
                    if r != w {
                        edges.push((w.0, r.0, bytes));
                    }
                }
            }
        }
        VerilatorModel {
            total_instrs,
            working_set_bytes,
            fiber_instrs,
            fiber_out_bytes,
            edges,
        }
    }

    /// Number of fibers (macro-task atoms).
    pub fn fibers(&self) -> usize {
        self.fiber_instrs.len()
    }

    /// Locality-preserving balanced assignment of fibers to `threads`
    /// contiguous blocks (fiber construction order follows the module
    /// structure, so contiguity is locality).
    pub fn thread_assignment(&self, threads: u32) -> Vec<u32> {
        let threads = threads.max(1) as u64;
        let total: u64 = self.fiber_instrs.iter().sum();
        let target = total.div_ceil(threads).max(1);
        let mut assign = vec![0u32; self.fiber_instrs.len()];
        let mut t = 0u64;
        let mut acc = 0u64;
        for (i, &c) in self.fiber_instrs.iter().enumerate() {
            if acc >= target && t + 1 < threads {
                t += 1;
                acc = 0;
            }
            assign[i] = t as u32;
            acc += c;
        }
        assign
    }

    /// The per-cycle cost breakdown with `threads` threads on `host`.
    pub fn timings(&self, host: &X64Config, threads: u32) -> X64Timings {
        let threads = threads.clamp(1, host.total_cores());
        let assign = self.thread_assignment(threads);
        let mut per_thread = vec![0u64; threads as usize];
        for (i, &t) in assign.iter().enumerate() {
            per_thread[t as usize] += self.fiber_instrs[i];
        }
        let max_thread = per_thread.iter().copied().max().unwrap_or(0);
        let mut cross_bytes = 0u64;
        if threads > 1 {
            for &(w, r, bytes) in &self.edges {
                if assign[w as usize] != assign[r as usize] {
                    cross_bytes += bytes;
                }
            }
        }
        let comp = host.comp_cycles(max_thread, self.working_set_bytes, threads);
        let comm = host.comm_cycles(cross_bytes, threads);
        let sync = if threads > 1 {
            host.sync_cycles(threads) as f64
        } else {
            0.0
        };
        X64Timings { comp, comm, sync }
    }

    /// Simulation rate in kHz with `threads` threads on `host`.
    pub fn rate_khz(&self, host: &X64Config, threads: u32) -> f64 {
        self.timings(host, threads).rate_khz(host)
    }

    /// Scans thread counts (the paper sweeps 2..=32 step 2, plus 1) and
    /// returns `(best_threads, best_khz, self_relative_gain)`.
    pub fn best(&self, host: &X64Config, max_threads: u32) -> (u32, f64, f64) {
        let single = self.rate_khz(host, 1);
        let mut best = (1u32, single);
        let mut t = 2;
        while t <= max_threads.min(host.total_cores()) {
            let r = self.rate_khz(host, t);
            if r > best.1 {
                best = (t, r);
            }
            t += 2;
        }
        (best.0, best.1, best.1 / single)
    }

    /// Verilator-equivalent binary size estimate in bytes.
    pub fn binary_bytes(&self) -> u64 {
        self.total_instrs * 4
    }

    /// Unused-fiber escape hatch for tests: total output bytes of all
    /// fibers (proxy for exchangeable state).
    pub fn total_out_bytes(&self) -> u64 {
        self.fiber_out_bytes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_rtl::Builder;

    /// A design with `n` loosely-coupled blocks of `depth` multiplies.
    fn blocks(n: usize, depth: usize) -> Circuit {
        let mut b = Builder::new("blocks");
        let mut prev_q = None;
        for i in 0..n {
            let r = b.reg(format!("r{i}"), 32, i as u64 + 1);
            let mut v = r.q();
            for _ in 0..depth {
                v = b.mul(v, v);
            }
            if let Some(pq) = prev_q {
                v = b.xor(v, pq);
            }
            b.connect(r, v);
            prev_q = Some(r.q());
        }
        b.finish().unwrap()
    }

    #[test]
    fn small_designs_do_not_scale() {
        // §4.1 / Fig. 8a: tiny designs lose to synchronization.
        let c = blocks(8, 2);
        let m = VerilatorModel::new(&c);
        let ix3 = X64Config::ix3();
        let (best_t, _khz, gain) = m.best(&ix3, 32);
        assert!(
            gain < 1.5,
            "a tiny design must not scale: gain {gain} at {best_t} threads"
        );
    }

    #[test]
    fn large_designs_scale_well() {
        // Fig. 8b: large designs reach large self-speedups.
        let c = blocks(20_000, 8);
        let m = VerilatorModel::new(&c);
        let ix3 = X64Config::ix3();
        let (best_t, _khz, gain) = m.best(&ix3, 32);
        assert!(
            gain > 4.0,
            "large design gain only {gain} at {best_t} threads"
        );
        assert!(best_t >= 8);
    }

    #[test]
    fn assignment_is_balanced_and_contiguous() {
        let c = blocks(100, 3);
        let m = VerilatorModel::new(&c);
        let assign = m.thread_assignment(4);
        // Contiguous: thread ids are non-decreasing.
        assert!(assign.windows(2).all(|w| w[0] <= w[1]));
        // All four threads used.
        assert_eq!(*assign.last().unwrap(), 3);
        let mut per = [0u64; 4];
        for (i, &t) in assign.iter().enumerate() {
            per[t as usize] += m.fiber_instrs[i];
        }
        let max = *per.iter().max().unwrap() as f64;
        let min = *per.iter().min().unwrap() as f64;
        assert!(max / min < 2.0, "imbalance {per:?}");
    }

    #[test]
    fn more_threads_cut_more_edges() {
        let c = blocks(200, 2);
        let m = VerilatorModel::new(&c);
        let host = X64Config::ae4();
        let t2 = m.timings(&host, 2);
        let t16 = m.timings(&host, 16);
        assert!(t16.comm >= t2.comm, "{t2:?} vs {t16:?}");
        assert!(t16.sync > t2.sync);
        assert!(t16.comp < t2.comp);
    }

    #[test]
    fn working_set_and_binary_size_grow_with_design() {
        let small = VerilatorModel::new(&blocks(10, 2));
        let large = VerilatorModel::new(&blocks(1000, 2));
        assert!(large.working_set_bytes > 10 * small.working_set_bytes);
        assert!(large.binary_bytes() > 10 * small.binary_bytes());
        assert!(large.total_out_bytes() > small.total_out_bytes());
        assert!(large.fibers() > small.fibers());
    }
}
