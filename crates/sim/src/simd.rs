//! Vector kernels for the strided lane sweeps.
//!
//! The gang engine executes each fused single-word opcode across `L`
//! scenario lanes. In the word-interleaved arena layout the `L` copies
//! of one arena word are contiguous (`off * lanes + lane`), so a lane
//! sweep is a dense map over `&[u64]` slices — exactly the shape SIMD
//! wants. This module provides those kernels three ways:
//!
//! * **AVX2** (x86_64): 4 lanes per 256-bit vector, used when the CPU
//!   reports `avx2` at runtime;
//! * **NEON** (aarch64): 2 lanes per 128-bit vector;
//! * **scalar fallback**: plain chunk loops over the same [`bin1`]/
//!   [`un1`] helpers the lane-major path uses — autovectorizable and
//!   bit-exact by construction on any target.
//!
//! The ISA is detected **once** per engine build ([`VecIsa::detect`],
//! stored in the core's shared state) so the hot loop never re-probes
//! CPUID. `PARENDI_SIMD=0|off|scalar` forces the portable fallback —
//! CI runs the whole sim test suite under that flag.
//!
//! Every kernel takes normalized operands (high bits above the operand
//! width already zero — the engine invariant) and produces normalized
//! results; each has a subtle-case story documented at its `match` arm.
//! Ops a vector ISA cannot express faithfully (e.g. `Ashr`, or any
//! shift where the count width differs from the value width, or NEON
//! shifts at all — `USHL` only honours the low byte of the count, which
//! breaks the ≥ 2^32 saturation rule) fall through to the scalar loop.

#![allow(unsafe_op_in_unsafe_fn)]

use crate::engine::{bin1, sext1, un1};
use parendi_rtl::bits::top_word_mask;
use parendi_rtl::{BinOp, UnOp};

/// Which vector ISA the lane sweeps use, decided once at engine build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum VecIsa {
    /// Portable chunked scalar loops (also the forced-fallback mode).
    Scalar,
    /// 4×u64 per 256-bit vector via `std::arch` x86_64 intrinsics.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// 2×u64 per 128-bit vector via `std::arch` aarch64 intrinsics.
    #[cfg(target_arch = "aarch64")]
    Neon,
}

impl VecIsa {
    /// Runtime detection with a `PARENDI_SIMD` env override
    /// (`0`/`off`/`scalar` force the portable path).
    pub(crate) fn detect() -> Self {
        if let Ok(v) = std::env::var("PARENDI_SIMD") {
            let v = v.to_ascii_lowercase();
            if v == "0" || v == "off" || v == "scalar" {
                return VecIsa::Scalar;
            }
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return VecIsa::Avx2;
        }
        #[cfg(target_arch = "aarch64")]
        if std::arch::is_aarch64_feature_detected!("neon") {
            return VecIsa::Neon;
        }
        VecIsa::Scalar
    }

    /// Short name for bench output.
    pub(crate) fn name(self) -> &'static str {
        match self {
            VecIsa::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            VecIsa::Avx2 => "avx2",
            #[cfg(target_arch = "aarch64")]
            VecIsa::Neon => "neon",
        }
    }
}

/// `d[i] = bin1(op, a[i], b[i], w, aw)` across one dense lane block.
#[inline(always)]
pub(crate) fn vbin(isa: VecIsa, op: BinOp, d: &mut [u64], a: &[u64], b: &[u64], w: u32, aw: u32) {
    debug_assert!(d.len() == a.len() && d.len() == b.len());
    match isa {
        VecIsa::Scalar => {
            for ((d, &a), &b) in d.iter_mut().zip(a).zip(b) {
                *d = bin1(op, a, b, w, aw);
            }
        }
        #[cfg(target_arch = "x86_64")]
        VecIsa::Avx2 => unsafe { avx2::bin(op, d, a, b, w, aw) },
        #[cfg(target_arch = "aarch64")]
        VecIsa::Neon => unsafe { neon::bin(op, d, a, b, w, aw) },
    }
}

/// `d[i] = un1(op, a[i], w, aw)` across one dense lane block.
#[inline(always)]
pub(crate) fn vun(isa: VecIsa, op: UnOp, d: &mut [u64], a: &[u64], w: u32, aw: u32) {
    debug_assert_eq!(d.len(), a.len());
    match isa {
        VecIsa::Scalar => {
            for (d, &a) in d.iter_mut().zip(a) {
                *d = un1(op, a, w, aw);
            }
        }
        #[cfg(target_arch = "x86_64")]
        VecIsa::Avx2 => unsafe { avx2::un(op, d, a, w, aw) },
        #[cfg(target_arch = "aarch64")]
        VecIsa::Neon => unsafe { neon::un(op, d, a, w, aw) },
    }
}

/// `d[i] = if sel[i] & 1 == 1 { t[i] } else { f[i] }`.
#[inline(always)]
pub(crate) fn vmux(isa: VecIsa, d: &mut [u64], sel: &[u64], t: &[u64], f: &[u64]) {
    debug_assert!(d.len() == sel.len() && d.len() == t.len() && d.len() == f.len());
    match isa {
        VecIsa::Scalar => {
            for (i, dv) in d.iter_mut().enumerate() {
                *dv = if sel[i] & 1 == 1 { t[i] } else { f[i] };
            }
        }
        #[cfg(target_arch = "x86_64")]
        VecIsa::Avx2 => unsafe { avx2::mux(d, sel, t, f) },
        #[cfg(target_arch = "aarch64")]
        VecIsa::Neon => unsafe { neon::mux(d, sel, t, f) },
    }
}

/// `d[i] = (a[i] >> lo) & top_word_mask(w)`.
#[inline(always)]
pub(crate) fn vslice(isa: VecIsa, d: &mut [u64], a: &[u64], lo: u32, w: u32) {
    debug_assert_eq!(d.len(), a.len());
    match isa {
        VecIsa::Scalar => {
            let m = top_word_mask(w);
            for (d, &a) in d.iter_mut().zip(a) {
                *d = (a >> lo) & m;
            }
        }
        #[cfg(target_arch = "x86_64")]
        VecIsa::Avx2 => unsafe { avx2::slice(d, a, lo, w) },
        #[cfg(target_arch = "aarch64")]
        VecIsa::Neon => unsafe { neon::slice(d, a, lo, w) },
    }
}

/// `d[i] = a[i] & top_word_mask(w)`.
#[inline(always)]
pub(crate) fn vzext(isa: VecIsa, d: &mut [u64], a: &[u64], w: u32) {
    // Zext of a normalized word is the slice at lo = 0.
    vslice(isa, d, a, 0, w);
}

/// `d[i] = sext1(a[i], aw, w)`.
#[inline(always)]
pub(crate) fn vsext(isa: VecIsa, d: &mut [u64], a: &[u64], aw: u32, w: u32) {
    debug_assert_eq!(d.len(), a.len());
    if w <= aw {
        // Narrowing "sext" is a plain truncation of a normalized word.
        vslice(isa, d, a, 0, w);
        return;
    }
    match isa {
        VecIsa::Scalar => {
            for (d, &a) in d.iter_mut().zip(a) {
                *d = sext1(a, aw, w);
            }
        }
        #[cfg(target_arch = "x86_64")]
        VecIsa::Avx2 => unsafe { avx2::sext(d, a, aw, w) },
        #[cfg(target_arch = "aarch64")]
        VecIsa::Neon => {
            for (d, &a) in d.iter_mut().zip(a) {
                *d = sext1(a, aw, w);
            }
        }
    }
}

/// `d[i] = (lo_[i] | hi[i] << low_w) & top_word_mask(w)`.
#[inline(always)]
pub(crate) fn vconcat(isa: VecIsa, d: &mut [u64], hi: &[u64], lo_: &[u64], low_w: u32, w: u32) {
    debug_assert!(d.len() == hi.len() && d.len() == lo_.len());
    match isa {
        VecIsa::Scalar => {
            let m = top_word_mask(w);
            for ((d, &h), &l) in d.iter_mut().zip(hi).zip(lo_) {
                *d = (l | (h << low_w)) & m;
            }
        }
        #[cfg(target_arch = "x86_64")]
        VecIsa::Avx2 => unsafe { avx2::concat(d, hi, lo_, low_w, w) },
        #[cfg(target_arch = "aarch64")]
        VecIsa::Neon => unsafe { neon::concat(d, hi, lo_, low_w, w) },
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use std::arch::x86_64::*;

    /// Drives a 4-lane vector body over the slices with a scalar tail.
    macro_rules! sweep {
        ($d:ident, $n:expr, $i:ident, $body:expr, $tail:expr) => {{
            let n = $n;
            let mut $i = 0usize;
            while $i + 4 <= n {
                $body;
                $i += 4;
            }
            while $i < n {
                $tail;
                $i += 1;
            }
        }};
    }

    #[inline(always)]
    unsafe fn load(p: &[u64], i: usize) -> __m256i {
        _mm256_loadu_si256(p.as_ptr().add(i) as *const __m256i)
    }

    #[inline(always)]
    unsafe fn store(p: &mut [u64], i: usize, v: __m256i) {
        _mm256_storeu_si256(p.as_mut_ptr().add(i) as *mut __m256i, v)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bin(op: BinOp, d: &mut [u64], a: &[u64], b: &[u64], w: u32, aw: u32) {
        let mv = _mm256_set1_epi64x(top_word_mask(w) as i64);
        let one = _mm256_set1_epi64x(1);
        match op {
            BinOp::And => sweep!(
                d,
                d.len(),
                i,
                store(d, i, _mm256_and_si256(load(a, i), load(b, i))),
                d[i] = a[i] & b[i]
            ),
            BinOp::Or => sweep!(
                d,
                d.len(),
                i,
                store(d, i, _mm256_or_si256(load(a, i), load(b, i))),
                d[i] = a[i] | b[i]
            ),
            BinOp::Xor => sweep!(
                d,
                d.len(),
                i,
                store(d, i, _mm256_xor_si256(load(a, i), load(b, i))),
                d[i] = a[i] ^ b[i]
            ),
            BinOp::Add => sweep!(
                d,
                d.len(),
                i,
                store(
                    d,
                    i,
                    _mm256_and_si256(_mm256_add_epi64(load(a, i), load(b, i)), mv)
                ),
                d[i] = bin1(op, a[i], b[i], w, aw)
            ),
            BinOp::Sub => sweep!(
                d,
                d.len(),
                i,
                store(
                    d,
                    i,
                    _mm256_and_si256(_mm256_sub_epi64(load(a, i), load(b, i)), mv)
                ),
                d[i] = bin1(op, a[i], b[i], w, aw)
            ),
            // `mul_epu32` multiplies the low 32 bits of each u64 lane.
            // For w <= 32 that is exact mod 2^w: the discarded high-32
            // partial products contribute multiples of 2^32 ≡ 0 (mod
            // 2^w). Wider products need the full 64×64 low half —
            // scalar.
            BinOp::Mul if w <= 32 => sweep!(
                d,
                d.len(),
                i,
                store(
                    d,
                    i,
                    _mm256_and_si256(_mm256_mul_epu32(load(a, i), load(b, i)), mv)
                ),
                d[i] = bin1(op, a[i], b[i], w, aw)
            ),
            BinOp::Eq => sweep!(
                d,
                d.len(),
                i,
                store(
                    d,
                    i,
                    _mm256_and_si256(_mm256_cmpeq_epi64(load(a, i), load(b, i)), one)
                ),
                d[i] = (a[i] == b[i]) as u64
            ),
            BinOp::Ne => sweep!(
                d,
                d.len(),
                i,
                store(
                    d,
                    i,
                    _mm256_andnot_si256(_mm256_cmpeq_epi64(load(a, i), load(b, i)), one)
                ),
                d[i] = (a[i] != b[i]) as u64
            ),
            // Unsigned/signed compares share one signed-compare trick:
            // xor both sides with a bias that maps the required order
            // onto signed i64 order. Unsigned: flip bit 63. Signed at
            // `aw` bits: flip bit 63 *and* move the sign bit of the
            // narrow value up (bias = 1<<63 ^ 1<<(aw-1); aw = 64 ⇒ the
            // two flips cancel to 0, i.e. native i64 order).
            BinOp::LtU | BinOp::LtS | BinOp::LeU | BinOp::LeS => {
                let bias = match op {
                    BinOp::LtU | BinOp::LeU => 1u64 << 63,
                    _ => (1u64 << 63) ^ (1u64 << (aw - 1)),
                };
                let bv = _mm256_set1_epi64x(bias as i64);
                match op {
                    BinOp::LtU | BinOp::LtS => sweep!(
                        d,
                        d.len(),
                        i,
                        store(
                            d,
                            i,
                            _mm256_and_si256(
                                _mm256_cmpgt_epi64(
                                    _mm256_xor_si256(load(b, i), bv),
                                    _mm256_xor_si256(load(a, i), bv)
                                ),
                                one
                            )
                        ),
                        d[i] = bin1(op, a[i], b[i], w, aw)
                    ),
                    _ => sweep!(
                        d,
                        d.len(),
                        i,
                        store(
                            d,
                            i,
                            _mm256_andnot_si256(
                                _mm256_cmpgt_epi64(
                                    _mm256_xor_si256(load(a, i), bv),
                                    _mm256_xor_si256(load(b, i), bv)
                                ),
                                one
                            )
                        ),
                        d[i] = bin1(op, a[i], b[i], w, aw)
                    ),
                }
            }
            // Variable shifts vectorize only when the count operand's
            // width equals the value width (`aw == w`): then the count
            // is normalized below 2^w ≤ 2^64, `sllv/srlv` yield 0 for
            // counts ≥ 64, and counts in [w, 64) shift a `< 2^w` value
            // to 0 — all matching the saturating scalar `shift1`.
            BinOp::Shl if aw == w => sweep!(
                d,
                d.len(),
                i,
                store(
                    d,
                    i,
                    _mm256_and_si256(_mm256_sllv_epi64(load(a, i), load(b, i)), mv)
                ),
                d[i] = bin1(op, a[i], b[i], w, aw)
            ),
            BinOp::Lshr if aw == w => sweep!(
                d,
                d.len(),
                i,
                store(d, i, _mm256_srlv_epi64(load(a, i), load(b, i))),
                d[i] = bin1(op, a[i], b[i], w, aw)
            ),
            _ => {
                for i in 0..d.len() {
                    d[i] = bin1(op, a[i], b[i], w, aw);
                }
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn un(op: UnOp, d: &mut [u64], a: &[u64], w: u32, aw: u32) {
        let mv = _mm256_set1_epi64x(top_word_mask(w) as i64);
        let one = _mm256_set1_epi64x(1);
        match op {
            // `andnot(x, m) = !x & m` — correct without assuming the
            // operand's high bits are clear.
            UnOp::Not => sweep!(
                d,
                d.len(),
                i,
                store(d, i, _mm256_andnot_si256(load(a, i), mv)),
                d[i] = un1(op, a[i], w, aw)
            ),
            UnOp::Neg => sweep!(
                d,
                d.len(),
                i,
                store(
                    d,
                    i,
                    _mm256_and_si256(_mm256_sub_epi64(_mm256_setzero_si256(), load(a, i)), mv)
                ),
                d[i] = un1(op, a[i], w, aw)
            ),
            UnOp::RedAnd => {
                let full = _mm256_set1_epi64x(top_word_mask(aw) as i64);
                sweep!(
                    d,
                    d.len(),
                    i,
                    store(
                        d,
                        i,
                        _mm256_and_si256(_mm256_cmpeq_epi64(load(a, i), full), one)
                    ),
                    d[i] = un1(op, a[i], w, aw)
                )
            }
            UnOp::RedOr => sweep!(
                d,
                d.len(),
                i,
                store(
                    d,
                    i,
                    _mm256_andnot_si256(
                        _mm256_cmpeq_epi64(load(a, i), _mm256_setzero_si256()),
                        one
                    )
                ),
                d[i] = un1(op, a[i], w, aw)
            ),
            // No vector popcount in AVX2 — parity stays scalar.
            UnOp::RedXor => {
                for i in 0..d.len() {
                    d[i] = un1(op, a[i], w, aw);
                }
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mux(d: &mut [u64], sel: &[u64], t: &[u64], f: &[u64]) {
        let one = _mm256_set1_epi64x(1);
        sweep!(
            d,
            d.len(),
            i,
            {
                // cmpeq yields all-ones per lane where sel bit 0 is
                // set — a full-width mask blendv can key every byte on.
                let sm = _mm256_cmpeq_epi64(_mm256_and_si256(load(sel, i), one), one);
                store(d, i, _mm256_blendv_epi8(load(f, i), load(t, i), sm));
            },
            d[i] = if sel[i] & 1 == 1 { t[i] } else { f[i] }
        );
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn slice(d: &mut [u64], a: &[u64], lo: u32, w: u32) {
        let mv = _mm256_set1_epi64x(top_word_mask(w) as i64);
        let cnt = _mm_cvtsi32_si128(lo as i32);
        sweep!(
            d,
            d.len(),
            i,
            store(
                d,
                i,
                _mm256_and_si256(_mm256_srl_epi64(load(a, i), cnt), mv)
            ),
            d[i] = (a[i] >> lo) & top_word_mask(w)
        );
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sext(d: &mut [u64], a: &[u64], aw: u32, w: u32) {
        // Widening only (w > aw; narrowing handled as a slice upstream).
        let mv = _mm256_set1_epi64x(top_word_mask(w) as i64);
        let msb = _mm256_set1_epi64x((1u64 << (aw - 1)) as i64);
        let ext = _mm256_set1_epi64x((!0u64 << aw) as i64);
        sweep!(
            d,
            d.len(),
            i,
            {
                let x = load(a, i);
                let neg = _mm256_cmpeq_epi64(_mm256_and_si256(x, msb), msb);
                let s = _mm256_blendv_epi8(x, _mm256_or_si256(x, ext), neg);
                store(d, i, _mm256_and_si256(s, mv));
            },
            d[i] = sext1(a[i], aw, w)
        );
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn concat(d: &mut [u64], hi: &[u64], lo_: &[u64], low_w: u32, w: u32) {
        let mv = _mm256_set1_epi64x(top_word_mask(w) as i64);
        let cnt = _mm_cvtsi32_si128(low_w as i32);
        sweep!(
            d,
            d.len(),
            i,
            store(
                d,
                i,
                _mm256_and_si256(
                    _mm256_or_si256(load(lo_, i), _mm256_sll_epi64(load(hi, i), cnt)),
                    mv
                )
            ),
            d[i] = (lo_[i] | (hi[i] << low_w)) & top_word_mask(w)
        );
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::*;
    use std::arch::aarch64::*;

    /// Drives a 2-lane vector body over the slices with a scalar tail.
    macro_rules! sweep {
        ($d:ident, $n:expr, $i:ident, $body:expr, $tail:expr) => {{
            let n = $n;
            let mut $i = 0usize;
            while $i + 2 <= n {
                $body;
                $i += 2;
            }
            while $i < n {
                $tail;
                $i += 1;
            }
        }};
    }

    #[inline(always)]
    unsafe fn load(p: &[u64], i: usize) -> uint64x2_t {
        vld1q_u64(p.as_ptr().add(i))
    }

    #[inline(always)]
    unsafe fn store(p: &mut [u64], i: usize, v: uint64x2_t) {
        vst1q_u64(p.as_mut_ptr().add(i), v)
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn bin(op: BinOp, d: &mut [u64], a: &[u64], b: &[u64], w: u32, aw: u32) {
        let mv = vdupq_n_u64(top_word_mask(w));
        let one = vdupq_n_u64(1);
        match op {
            BinOp::And => sweep!(
                d,
                d.len(),
                i,
                store(d, i, vandq_u64(load(a, i), load(b, i))),
                d[i] = a[i] & b[i]
            ),
            BinOp::Or => sweep!(
                d,
                d.len(),
                i,
                store(d, i, vorrq_u64(load(a, i), load(b, i))),
                d[i] = a[i] | b[i]
            ),
            BinOp::Xor => sweep!(
                d,
                d.len(),
                i,
                store(d, i, veorq_u64(load(a, i), load(b, i))),
                d[i] = a[i] ^ b[i]
            ),
            BinOp::Add => sweep!(
                d,
                d.len(),
                i,
                store(d, i, vandq_u64(vaddq_u64(load(a, i), load(b, i)), mv)),
                d[i] = bin1(op, a[i], b[i], w, aw)
            ),
            BinOp::Sub => sweep!(
                d,
                d.len(),
                i,
                store(d, i, vandq_u64(vsubq_u64(load(a, i), load(b, i)), mv)),
                d[i] = bin1(op, a[i], b[i], w, aw)
            ),
            BinOp::Eq => sweep!(
                d,
                d.len(),
                i,
                store(d, i, vandq_u64(vceqq_u64(load(a, i), load(b, i)), one)),
                d[i] = (a[i] == b[i]) as u64
            ),
            BinOp::Ne => sweep!(
                d,
                d.len(),
                i,
                store(d, i, vbicq_u64(one, vceqq_u64(load(a, i), load(b, i)))),
                d[i] = (a[i] != b[i]) as u64
            ),
            BinOp::LtU => sweep!(
                d,
                d.len(),
                i,
                store(d, i, vandq_u64(vcltq_u64(load(a, i), load(b, i)), one)),
                d[i] = (a[i] < b[i]) as u64
            ),
            BinOp::LeU => sweep!(
                d,
                d.len(),
                i,
                store(d, i, vandq_u64(vcleq_u64(load(a, i), load(b, i)), one)),
                d[i] = (a[i] <= b[i]) as u64
            ),
            // Signed compares at `aw` bits: flip the narrow sign bit
            // so unsigned vector order matches signed `aw`-bit order.
            BinOp::LtS | BinOp::LeS => {
                let bias = vdupq_n_u64(1u64 << (aw - 1));
                match op {
                    BinOp::LtS => sweep!(
                        d,
                        d.len(),
                        i,
                        store(
                            d,
                            i,
                            vandq_u64(
                                vcltq_u64(veorq_u64(load(a, i), bias), veorq_u64(load(b, i), bias)),
                                one
                            )
                        ),
                        d[i] = bin1(op, a[i], b[i], w, aw)
                    ),
                    _ => sweep!(
                        d,
                        d.len(),
                        i,
                        store(
                            d,
                            i,
                            vandq_u64(
                                vcleq_u64(veorq_u64(load(a, i), bias), veorq_u64(load(b, i), bias)),
                                one
                            )
                        ),
                        d[i] = bin1(op, a[i], b[i], w, aw)
                    ),
                }
            }
            // Mul, Ashr, and both variable shifts stay scalar: NEON has
            // no 64×64 multiply, and `USHL` keys off the count's low
            // byte only — a count ≥ 2^32 must saturate, not wrap.
            _ => {
                for i in 0..d.len() {
                    d[i] = bin1(op, a[i], b[i], w, aw);
                }
            }
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn un(op: UnOp, d: &mut [u64], a: &[u64], w: u32, aw: u32) {
        let mv = vdupq_n_u64(top_word_mask(w));
        let one = vdupq_n_u64(1);
        match op {
            UnOp::Not => sweep!(
                d,
                d.len(),
                i,
                store(d, i, vbicq_u64(mv, load(a, i))),
                d[i] = un1(op, a[i], w, aw)
            ),
            UnOp::Neg => sweep!(
                d,
                d.len(),
                i,
                store(d, i, vandq_u64(vsubq_u64(vdupq_n_u64(0), load(a, i)), mv)),
                d[i] = un1(op, a[i], w, aw)
            ),
            UnOp::RedAnd => {
                let full = vdupq_n_u64(top_word_mask(aw));
                sweep!(
                    d,
                    d.len(),
                    i,
                    store(d, i, vandq_u64(vceqq_u64(load(a, i), full), one)),
                    d[i] = un1(op, a[i], w, aw)
                )
            }
            UnOp::RedOr => sweep!(
                d,
                d.len(),
                i,
                store(d, i, vbicq_u64(one, vceqq_u64(load(a, i), vdupq_n_u64(0)))),
                d[i] = un1(op, a[i], w, aw)
            ),
            UnOp::RedXor => {
                for i in 0..d.len() {
                    d[i] = un1(op, a[i], w, aw);
                }
            }
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mux(d: &mut [u64], sel: &[u64], t: &[u64], f: &[u64]) {
        let one = vdupq_n_u64(1);
        sweep!(
            d,
            d.len(),
            i,
            {
                let sm = vceqq_u64(vandq_u64(load(sel, i), one), one);
                store(d, i, vbslq_u64(sm, load(t, i), load(f, i)));
            },
            d[i] = if sel[i] & 1 == 1 { t[i] } else { f[i] }
        );
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn slice(d: &mut [u64], a: &[u64], lo: u32, w: u32) {
        let mv = vdupq_n_u64(top_word_mask(w));
        // A compile-time-unknown right shift is a left shift by a
        // negative count (`lo <= 63`, so the low byte is exact).
        let cnt = vdupq_n_s64(-(lo as i64));
        sweep!(
            d,
            d.len(),
            i,
            store(d, i, vandq_u64(vshlq_u64(load(a, i), cnt), mv)),
            d[i] = (a[i] >> lo) & top_word_mask(w)
        );
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn concat(d: &mut [u64], hi: &[u64], lo_: &[u64], low_w: u32, w: u32) {
        let mv = vdupq_n_u64(top_word_mask(w));
        let cnt = vdupq_n_s64(low_w as i64);
        sweep!(
            d,
            d.len(),
            i,
            store(
                d,
                i,
                vandq_u64(vorrq_u64(load(lo_, i), vshlq_u64(load(hi, i), cnt)), mv)
            ),
            d[i] = (lo_[i] | (hi[i] << low_w)) & top_word_mask(w)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every vector kernel must agree with the scalar helpers for all
    /// ops at awkward widths, lane counts that exercise both the
    /// vector body and the scalar tail, and operand corner values.
    #[test]
    fn vector_kernels_match_scalar_helpers() {
        let isa = VecIsa::detect();
        let widths = [1u32, 5, 31, 32, 33, 63, 64];
        let vals = [0u64, 1, 2, 0x5a5a_5a5a, u64::MAX, 1 << 31, (1 << 31) - 1];
        let lanes = [1usize, 2, 3, 4, 5, 7, 8, 9];
        let bins = [
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::LtU,
            BinOp::LtS,
            BinOp::LeU,
            BinOp::LeS,
            BinOp::Shl,
            BinOp::Lshr,
            BinOp::Ashr,
        ];
        let uns = [
            UnOp::Not,
            UnOp::Neg,
            UnOp::RedAnd,
            UnOp::RedOr,
            UnOp::RedXor,
        ];
        for &n in &lanes {
            for &w in &widths {
                let m = top_word_mask(w);
                // Lane-varied operands from the corner values.
                let av: Vec<u64> = (0..n)
                    .map(|l| vals[l % vals.len()].rotate_left(l as u32) & m)
                    .collect();
                let bv: Vec<u64> = (0..n).map(|l| vals[(l + 3) % vals.len()] & m).collect();
                let mut d = vec![0u64; n];
                let mut exp = vec![0u64; n];
                for op in bins {
                    let rw = match op {
                        BinOp::Eq
                        | BinOp::Ne
                        | BinOp::LtU
                        | BinOp::LtS
                        | BinOp::LeU
                        | BinOp::LeS => 1,
                        _ => w,
                    };
                    vbin(isa, op, &mut d, &av, &bv, rw, w);
                    for l in 0..n {
                        exp[l] = bin1(op, av[l], bv[l], rw, w);
                    }
                    assert_eq!(d, exp, "{op:?} w={w} n={n}");
                }
                for op in uns {
                    let rw = match op {
                        UnOp::Not | UnOp::Neg => w,
                        _ => 1,
                    };
                    vun(isa, op, &mut d, &av, rw, w);
                    for l in 0..n {
                        exp[l] = un1(op, av[l], rw, w);
                    }
                    assert_eq!(d, exp, "{op:?} w={w} n={n}");
                }
                // Mux on both selector polarities per lane.
                let sel: Vec<u64> = (0..n).map(|l| (l & 1) as u64).collect();
                vmux(isa, &mut d, &sel, &av, &bv);
                for l in 0..n {
                    exp[l] = if sel[l] & 1 == 1 { av[l] } else { bv[l] };
                }
                assert_eq!(d, exp, "mux w={w} n={n}");
                // Slices at assorted positions; zext/sext to wider.
                for lo in [0, 1, w / 2, w - 1] {
                    let sw = (w - lo).clamp(1, 7);
                    vslice(isa, &mut d, &av, lo, sw);
                    let sm = top_word_mask(sw);
                    for l in 0..n {
                        exp[l] = (av[l] >> lo) & sm;
                    }
                    assert_eq!(d, exp, "slice w={w} lo={lo} n={n}");
                }
                for &wide in widths.iter().filter(|&&x| x >= w) {
                    vsext(isa, &mut d, &av, w, wide);
                    for l in 0..n {
                        exp[l] = sext1(av[l], w, wide);
                    }
                    assert_eq!(d, exp, "sext {w}->{wide} n={n}");
                    vzext(isa, &mut d, &av, w);
                    for l in 0..n {
                        exp[l] = av[l] & m;
                    }
                    assert_eq!(d, exp, "zext w={w} n={n}");
                }
                for lw in (1..w).step_by(7) {
                    let hv: Vec<u64> = av.iter().map(|&a| a & top_word_mask(w - lw)).collect();
                    let lv: Vec<u64> = bv.iter().map(|&b| b & top_word_mask(lw)).collect();
                    vconcat(isa, &mut d, &hv, &lv, lw, w);
                    for l in 0..n {
                        exp[l] = (lv[l] | (hv[l] << lw)) & m;
                    }
                    assert_eq!(d, exp, "concat lw={lw} w={w} n={n}");
                }
            }
        }
    }

    /// Shift counts far above the value width must saturate to zero in
    /// the vector path exactly like the scalar `shift1` contract.
    #[test]
    fn vector_shifts_saturate_on_huge_counts() {
        let isa = VecIsa::detect();
        for &w in &[32u32, 64] {
            let m = top_word_mask(w);
            let av = vec![m, 1, m, 0x1234 & m];
            // Counts straddling w, 64, u32::MAX, and beyond (only
            // representable when the count width is 64).
            let bv: Vec<u64> = if w == 64 {
                vec![w as u64 - 1, w as u64, u32::MAX as u64 + 1, u64::MAX]
            } else {
                vec![w as u64 - 1, w as u64, w as u64 + 1, m]
            };
            let mut d = vec![0u64; 4];
            for op in [BinOp::Shl, BinOp::Lshr] {
                vbin(isa, op, &mut d, &av, &bv, w, w);
                for l in 0..4 {
                    assert_eq!(d[l], bin1(op, av[l], bv[l], w, w), "{op:?} w={w} l={l}");
                }
            }
        }
    }
}
