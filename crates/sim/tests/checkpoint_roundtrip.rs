//! The crash-safety contract: a snapshot taken mid-run and restored
//! into a *fresh* engine — any thread count, any transport backend —
//! must continue bit-identically to the uninterrupted run. The matrix
//! below covers both facades (BSP, gang), both lane layouts (strided,
//! packed), every transport, and 1/4 worker threads; a separate test
//! kills a checkpointing child process mid-run and resumes from the
//! auto-checkpoint it left behind.

mod common;

use common::random_circuit_io;
use parendi_core::{compile, Compilation, PartitionConfig};
use parendi_rtl::{ArrayId, Circuit, RegId};
use parendi_sim::{BspSimulator, GangSimulator, Snapshot, SnapshotError, TransportChoice};

const BACKENDS: [TransportChoice; 3] = [
    TransportChoice::InProcess,
    TransportChoice::SharedMem,
    TransportChoice::Tcp,
];

fn multi_chip(seed: u64) -> (Circuit, Compilation) {
    let c = random_circuit_io(seed, 10, 50, 2);
    let mut cfg = PartitionConfig::with_tiles(6);
    cfg.tiles_per_chip = 3;
    let comp = compile(&c, &cfg).expect("compiles");
    assert!(comp.partition.chips >= 2, "must exercise the transport");
    (c, comp)
}

/// Full architectural state of one gang lane, for exact comparison.
fn lane_state(gang: &GangSimulator<'_>, lane: usize) -> Vec<u64> {
    let c = gang.circuit();
    let mut v = Vec::new();
    for ri in 0..c.regs.len() {
        v.extend_from_slice(gang.reg_value_lane(RegId(ri as u32), lane).words());
    }
    for (ai, a) in c.arrays.iter().enumerate() {
        for idx in 0..a.depth {
            v.extend_from_slice(gang.array_value_lane(ArrayId(ai as u32), idx, lane).words());
        }
    }
    v
}

fn bsp_state(bsp: &BspSimulator<'_>, c: &Circuit) -> Vec<u64> {
    let mut v = Vec::new();
    for ri in 0..c.regs.len() {
        v.extend_from_slice(bsp.reg_value(RegId(ri as u32)).words());
    }
    for (ai, a) in c.arrays.iter().enumerate() {
        for idx in 0..a.depth {
            v.extend_from_slice(bsp.array_value(ArrayId(ai as u32), idx).words());
        }
    }
    v
}

/// BSP leg of the matrix: snapshot at cycle 21, serialize through
/// bytes, restore into a fresh engine on a (possibly different)
/// backend/thread count, run the tail, compare against the
/// uninterrupted run.
#[test]
fn bsp_restore_is_bit_identical_across_backends_and_threads() {
    let (c, comp) = multi_chip(71);
    for backend in BACKENDS {
        for &threads in &[1usize, 4] {
            let mut sim = BspSimulator::with_transport(&c, &comp.partition, threads, backend);
            sim.poke("in0", 41);
            sim.poke("in1", 7);
            sim.run(21);
            let snap = sim.snapshot();
            assert_eq!(snap.cycle(), 21);
            // Serialize through the wire format — what a file holds.
            let snap = Snapshot::from_bytes(&snap.to_bytes()).expect("round-trips");
            sim.poke("in1", 19);
            sim.run(16);
            let want = bsp_state(&sim, &c);

            // Restore into a fresh engine with a *different* thread
            // count on the same backend (thread count is not part of
            // the snapshotted state).
            let mut resumed =
                BspSimulator::with_transport(&c, &comp.partition, 5 - threads, backend);
            resumed.restore(&snap).expect("shapes match");
            assert_eq!(resumed.cycle(), 21, "[{}]", resumed.transport_name());
            resumed.poke("in1", 19);
            resumed.run(16);
            assert_eq!(
                bsp_state(&resumed, &c),
                want,
                "[{} t{threads}] resumed state diverged",
                resumed.transport_name(),
            );
            for o in &c.outputs {
                assert_eq!(
                    resumed.peek_output(&o.name),
                    sim.peek_output(&o.name),
                    "[{} t{threads}] output {}",
                    resumed.transport_name(),
                    o.name,
                );
            }
        }
    }
}

/// Gang leg of the matrix: strided (5 lanes) and packed (6 lanes, so
/// the packed tail sees a non-trivial retire blend), with per-lane
/// stimulus diverging before *and* after the snapshot, and one lane
/// retired before the snapshot so retirement state rides along.
#[test]
fn gang_restore_is_bit_identical_across_modes_and_backends() {
    let (c, comp) = multi_chip(72);
    for packed in [false, true] {
        let lanes = if packed { 6 } else { 5 };
        for backend in BACKENDS {
            for &threads in &[1usize, 4] {
                let mut gang = GangSimulator::with_transport(
                    &c,
                    &comp.partition,
                    threads,
                    lanes,
                    packed,
                    backend,
                );
                for l in 0..lanes {
                    gang.poke_lane("in0", l, 3 + 13 * l as u64);
                    gang.poke_lane("in1", l, 1 ^ l as u64);
                }
                gang.run(9);
                gang.finish_lane(2);
                gang.run(8);
                let snap = Snapshot::from_bytes(&gang.snapshot().to_bytes()).expect("round-trips");
                for l in 0..lanes {
                    gang.poke_lane("in0", l, 100 + l as u64);
                }
                gang.run(14);
                let want: Vec<Vec<u64>> = (0..lanes).map(|l| lane_state(&gang, l)).collect();

                let mut resumed = GangSimulator::with_transport(
                    &c,
                    &comp.partition,
                    5 - threads,
                    lanes,
                    packed,
                    backend,
                );
                resumed.restore(&snap).expect("shapes match");
                assert_eq!(resumed.cycle(), 17);
                assert!(!resumed.lane_is_active(2), "retirement must be restored");
                for l in 0..lanes {
                    resumed.poke_lane("in0", l, 100 + l as u64);
                }
                resumed.run(14);
                for (l, want) in want.iter().enumerate() {
                    assert_eq!(
                        &lane_state(&resumed, l),
                        want,
                        "[{} t{threads} packed={packed}] lane {l} diverged",
                        resumed.transport_name(),
                    );
                }
            }
        }
    }
}

/// Corrupted, truncated, or mislabeled snapshot bytes must be rejected
/// with the matching typed error — never a partial restore.
#[test]
fn corrupted_snapshots_are_rejected() {
    let (c, comp) = multi_chip(73);
    let mut sim = BspSimulator::new(&c, &comp.partition, 2);
    sim.run(5);
    let bytes = sim.snapshot().to_bytes();

    // Pristine bytes parse.
    assert!(Snapshot::from_bytes(&bytes).is_ok());

    // A flipped payload byte fails the checksum.
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    assert!(matches!(
        Snapshot::from_bytes(&bad),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    // A truncated file (torn write) is caught by the length field.
    assert!(matches!(
        Snapshot::from_bytes(&bytes[..bytes.len() - 9]),
        Err(SnapshotError::Truncated)
    ));

    // Wrong magic: not a snapshot at all.
    let mut bad = bytes.clone();
    bad[0] = b'X';
    assert!(matches!(
        Snapshot::from_bytes(&bad),
        Err(SnapshotError::BadMagic)
    ));

    // Future format version.
    let mut bad = bytes.clone();
    bad[4] = 0xee;
    assert!(matches!(
        Snapshot::from_bytes(&bad),
        Err(SnapshotError::BadVersion { .. })
    ));
}

/// A snapshot must refuse to restore into an engine of a different
/// shape — different lane count or different circuit — with a message
/// naming the mismatch, leaving the target untouched.
#[test]
fn restore_rejects_mismatched_engines() {
    let (c, comp) = multi_chip(74);
    let mut gang = GangSimulator::new(&c, &comp.partition, 2, 4);
    gang.run(6);
    let snap = gang.snapshot();

    // Wrong lane count.
    let mut other = GangSimulator::new(&c, &comp.partition, 2, 3);
    other.run(2);
    match other.restore(&snap) {
        Err(SnapshotError::ShapeMismatch(msg)) => {
            assert!(msg.contains("lanes"), "should name the dimension: {msg}")
        }
        other => panic!("expected shape mismatch, got {other:?}"),
    }
    assert_eq!(other.cycle(), 2, "failed restore must not touch state");

    // Wrong circuit.
    let (c2, comp2) = multi_chip(75);
    let mut other = GangSimulator::new(&c2, &comp2.partition, 2, 4);
    match other.restore(&snap) {
        Err(SnapshotError::ShapeMismatch(msg)) => {
            assert!(msg.contains("circuit"), "should name the circuit: {msg}")
        }
        other => panic!("expected shape mismatch, got {other:?}"),
    }
}

const CHILD_ENV: &str = "PARENDI_CKPT_CHILD_PATH";
const CHILD_BACKEND_ENV: &str = "PARENDI_CKPT_CHILD_BACKEND";
const CHILD_SEED: u64 = 76;

fn child_backend(name: &str) -> TransportChoice {
    match name {
        "shm" => TransportChoice::SharedMem,
        "tcp" => TransportChoice::Tcp,
        _ => TransportChoice::InProcess,
    }
}

/// Child half of `killed_run_resumes_from_auto_checkpoint`: inert
/// unless spawned with the handoff env vars. Checkpoints every 10
/// cycles, dies abruptly at cycle 25 — no drop handlers, no flush —
/// leaving the cycle-20 auto-checkpoint as the only survivor.
#[test]
fn ckpt_child_entry() {
    let Ok(path) = std::env::var(CHILD_ENV) else {
        return;
    };
    let backend = child_backend(&std::env::var(CHILD_BACKEND_ENV).unwrap_or_default());
    let (c, comp) = multi_chip(CHILD_SEED);
    let mut sim = BspSimulator::with_transport(&c, &comp.partition, 2, backend);
    sim.set_auto_checkpoint(&path, 10);
    sim.poke("in0", 5);
    sim.poke("in1", 60);
    sim.run(25);
    // Simulate a crash: skip every destructor (for the shm backend
    // this also leaks the /dev/shm segment the parent's next engine
    // build must sweep).
    std::process::exit(42);
}

/// The full crash-recovery workflow, per transport backend: a child
/// process auto-checkpoints every 10 cycles and is lost at cycle 25;
/// the parent picks up the cycle-20 snapshot from disk, restores it
/// into a fresh engine, and the resumed run is bit-identical to an
/// uninterrupted one.
#[test]
fn killed_run_resumes_from_auto_checkpoint() {
    let (c, comp) = multi_chip(CHILD_SEED);
    // The uninterrupted reference: same stimulus, straight to 45.
    let mut reference = BspSimulator::new(&c, &comp.partition, 2);
    reference.poke("in0", 5);
    reference.poke("in1", 60);
    reference.run(45);
    let want = bsp_state(&reference, &c);

    let exe = std::env::current_exe().expect("current test binary");
    for backend in BACKENDS {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "parendi-ckpt-test-{}-{}.snap",
            std::process::id(),
            backend.name()
        ));
        let _ = std::fs::remove_file(&path);
        let status = std::process::Command::new(&exe)
            .args(["ckpt_child_entry", "--exact"])
            .env(CHILD_ENV, &path)
            .env(CHILD_BACKEND_ENV, backend.name())
            .status()
            .expect("spawn checkpointing child");
        assert_eq!(
            status.code(),
            Some(42),
            "[{}] child died as planned",
            backend.name()
        );

        let snap = Snapshot::read(&path)
            .unwrap_or_else(|e| panic!("[{}] read auto-checkpoint: {e}", backend.name()));
        assert_eq!(
            snap.cycle(),
            20,
            "[{}] last full checkpoint",
            backend.name()
        );
        let _ = std::fs::remove_file(&path);

        // Resume on the same backend, different thread count.
        let mut resumed = BspSimulator::with_transport(&c, &comp.partition, 3, backend);
        resumed.restore(&snap).expect("shapes match");
        resumed.run(25);
        assert_eq!(resumed.cycle(), 45);
        assert_eq!(
            bsp_state(&resumed, &c),
            want,
            "[{}] kill-resume diverged from the uninterrupted run",
            backend.name(),
        );
    }
}

/// `PARENDI_CHECKPOINT` chunking must not change results: an
/// auto-checkpointing run is bit-identical to a plain one, and the
/// file left behind restores to the final cycle.
#[test]
fn auto_checkpoint_preserves_results() {
    let (c, comp) = multi_chip(77);
    let mut plain = BspSimulator::new(&c, &comp.partition, 2);
    plain.poke("in0", 9);
    plain.poke("in1", 2);
    plain.run(33);

    let path = std::env::temp_dir().join(format!("parendi-ckpt-auto-{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut auto = BspSimulator::new(&c, &comp.partition, 2);
    auto.set_auto_checkpoint(&path, 7);
    auto.poke("in0", 9);
    auto.poke("in1", 2);
    auto.run(33);
    assert_eq!(
        bsp_state(&auto, &c),
        bsp_state(&plain, &c),
        "chunking changed results"
    );

    // 33 = 4×7 + 5, so the newest on-disk snapshot is cycle 28.
    let snap = Snapshot::read(&path).expect("auto-checkpoint written");
    assert_eq!(snap.cycle(), 28);
    let _ = std::fs::remove_file(&path);
}
