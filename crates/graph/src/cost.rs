//! Per-node execution-cost models.
//!
//! The partitioner and the timing layers need, for every combinational
//! node, an estimate of (a) IPU tile cycles, (b) x64 instructions, (c)
//! generated code bytes, and (d) live data bytes. The IPU numbers are
//! anchored to the paper's observation that a xorshift PRNG fiber —
//! three XORs and three shifts on 64-bit values (§4.1) — is "roughly 6
//! instructions", i.e. about one cycle per word-wide ALU operation.

use parendi_rtl::bits::words_for;
use parendi_rtl::{BinOp, Circuit, NodeKind, UnOp};

/// Cost of a single node in several units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCost {
    /// IPU tile cycles to evaluate the node once.
    pub ipu_cycles: u32,
    /// x64 instructions to evaluate the node once.
    pub x64_instrs: u32,
    /// Code bytes the node contributes to its tile's binary.
    pub code_bytes: u32,
    /// Data bytes held live for the node's result.
    pub data_bytes: u32,
}

/// Computes per-node costs for every node of a circuit.
///
/// Returned vectors are indexed by `NodeId`.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// IPU cycles per node.
    pub ipu_cycles: Vec<u32>,
    /// x64 instructions per node.
    pub x64_instrs: Vec<u32>,
    /// Code bytes per node.
    pub code_bytes: Vec<u32>,
    /// Result data bytes per node.
    pub data_bytes: Vec<u32>,
}

/// Cost of one node, independent of its neighbours.
pub fn node_cost(kind: &NodeKind, width: u32) -> NodeCost {
    let w = words_for(width) as u32;
    // (ipu cycles, x64 instrs) for the operation itself.
    let (cycles, instrs) = match kind {
        // Constants fold into immediates; sources are loads.
        NodeKind::Const(_) => (0, 0),
        NodeKind::Input(_) | NodeKind::RegRead(_) => (w, w),
        NodeKind::ArrayRead { .. } => (2 + w, 2 + w),
        NodeKind::Slice { .. } | NodeKind::Zext(_) | NodeKind::Sext(_) => (w, w),
        NodeKind::Concat { .. } => (w, w),
        NodeKind::Un(op, _) => match op {
            UnOp::Not | UnOp::Neg => (w, w),
            UnOp::RedAnd | UnOp::RedOr | UnOp::RedXor => (w + 1, w + 1),
        },
        NodeKind::Bin(op, _, _) => match op {
            BinOp::And | BinOp::Or | BinOp::Xor => (w, w),
            BinOp::Add | BinOp::Sub => (w + (w > 1) as u32, w + (w > 1) as u32),
            BinOp::Mul => (2 * w * w + 1, w * w + 1),
            BinOp::Eq | BinOp::Ne | BinOp::LtU | BinOp::LeU => (w + 1, w + 1),
            BinOp::LtS | BinOp::LeS => (w + 2, w + 2),
            BinOp::Shl | BinOp::Lshr | BinOp::Ashr => (2 * w + 1, 2 * w + 1),
        },
        NodeKind::Mux { .. } => (w + 1, w + 1),
    };
    NodeCost {
        ipu_cycles: cycles,
        x64_instrs: instrs,
        // IPU instructions are 4 or 8 bytes; call it 6 on average, and free
        // nodes still occupy nothing.
        code_bytes: cycles * 6,
        data_bytes: w * 8,
    }
}

impl CostModel {
    /// Builds the cost tables for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let n = circuit.nodes.len();
        let mut m = CostModel {
            ipu_cycles: Vec::with_capacity(n),
            x64_instrs: Vec::with_capacity(n),
            code_bytes: Vec::with_capacity(n),
            data_bytes: Vec::with_capacity(n),
        };
        for node in &circuit.nodes {
            let c = node_cost(&node.kind, node.width);
            m.ipu_cycles.push(c.ipu_cycles);
            m.x64_instrs.push(c.x64_instrs);
            m.code_bytes.push(c.code_bytes);
            m.data_bytes.push(c.data_bytes);
        }
        m
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.ipu_cycles.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.ipu_cycles.is_empty()
    }

    /// Total IPU cycles of the whole circuit evaluated once on one tile.
    pub fn total_ipu_cycles(&self) -> u64 {
        self.ipu_cycles.iter().map(|&c| c as u64).sum()
    }

    /// Total x64 instructions of the whole circuit evaluated once.
    pub fn total_x64_instrs(&self) -> u64 {
        self.x64_instrs.iter().map(|&c| c as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_rtl::{Bits, Builder};

    #[test]
    fn xorshift_fiber_is_a_few_instructions() {
        // The paper's PRNG fiber: 3 xors + 3 shifts on 64 bits ≈ 6 instrs.
        let mut b = Builder::new("prng");
        let s = b.reg_init("s", Bits::from_u64(64, 1));
        let t1 = b.shli(s.q(), 13);
        let x1 = b.xor(s.q(), t1);
        let t2 = b.lshri(x1, 7);
        let x2 = b.xor(x1, t2);
        let t3 = b.shli(x2, 17);
        let x3 = b.xor(x2, t3);
        b.connect(s, x3);
        let c = b.finish().unwrap();
        let m = CostModel::of(&c);
        let total = m.total_ipu_cycles();
        assert!(
            (4..=20).contains(&total),
            "xorshift fiber cost {total} out of expected band"
        );
    }

    #[test]
    fn wide_ops_cost_more() {
        let narrow = node_cost(
            &NodeKind::Bin(BinOp::Add, parendi_rtl::NodeId(0), parendi_rtl::NodeId(0)),
            32,
        );
        let wide = node_cost(
            &NodeKind::Bin(BinOp::Add, parendi_rtl::NodeId(0), parendi_rtl::NodeId(0)),
            512,
        );
        assert!(wide.ipu_cycles > narrow.ipu_cycles);
        assert!(wide.data_bytes == 64);
    }

    #[test]
    fn constants_are_free() {
        let c = node_cost(&NodeKind::Const(Bits::zero(64)), 64);
        assert_eq!(c.ipu_cycles, 0);
        assert_eq!(c.code_bytes, 0);
    }
}
