//! The reference single-threaded full-cycle interpreter.
//!
//! Evaluates the entire circuit once per RTL cycle (activity-oblivious,
//! §3: "full-cycle simulators perform better ... than event-driven"),
//! using a flat `u64` word arena and the kernels of
//! [`parendi_rtl::bits::word`]. This is the semantic oracle every
//! parallel execution is checked against.

use parendi_rtl::bits::{word, words_for, Bits};
use parendi_rtl::{ArrayId, Circuit, InputId, NodeId, NodeKind, RegId, UnOp};
use std::collections::HashMap;

/// A single-threaded cycle-accurate simulator.
#[derive(Debug)]
pub struct Simulator<'c> {
    circuit: &'c Circuit,
    /// Word offset of each node's value in `arena`.
    node_off: Vec<u32>,
    arena: Vec<u64>,
    /// Word offset of each register in `reg_cur` / `reg_next`.
    reg_off: Vec<u32>,
    reg_cur: Vec<u64>,
    reg_next: Vec<u64>,
    /// Array contents, one flat buffer per array.
    arrays: Vec<Vec<u64>>,
    /// Word offset of each input in `input_buf`.
    input_off: Vec<u32>,
    input_buf: Vec<u64>,
    input_by_name: HashMap<String, InputId>,
    output_by_name: HashMap<String, NodeId>,
    inputs_dirty: bool,
    cycle: u64,
}

impl<'c> Simulator<'c> {
    /// Prepares a simulator for `circuit` (registers/arrays at their
    /// power-on values, inputs zero).
    pub fn new(circuit: &'c Circuit) -> Self {
        let mut node_off = Vec::with_capacity(circuit.nodes.len());
        let mut words = 0u32;
        for n in &circuit.nodes {
            node_off.push(words);
            words += words_for(n.width) as u32;
        }
        let mut reg_off = Vec::with_capacity(circuit.regs.len());
        let mut rwords = 0u32;
        for r in &circuit.regs {
            reg_off.push(rwords);
            rwords += words_for(r.width) as u32;
        }
        let mut reg_cur = vec![0u64; rwords as usize];
        for (r, off) in circuit.regs.iter().zip(&reg_off) {
            let w = words_for(r.width);
            reg_cur[*off as usize..*off as usize + w].copy_from_slice(r.init.words());
        }
        let arrays = circuit
            .arrays
            .iter()
            .map(|a| {
                let w = words_for(a.width);
                let mut buf = vec![0u64; w * a.depth as usize];
                if let Some(init) = &a.init {
                    for (i, v) in init.iter().enumerate() {
                        buf[i * w..(i + 1) * w].copy_from_slice(v.words());
                    }
                }
                buf
            })
            .collect();
        let mut input_off = Vec::with_capacity(circuit.inputs.len());
        let mut iwords = 0u32;
        let mut input_by_name = HashMap::new();
        for (i, d) in circuit.inputs.iter().enumerate() {
            input_off.push(iwords);
            iwords += words_for(d.width) as u32;
            input_by_name.insert(d.name.clone(), InputId(i as u32));
        }
        let output_by_name = circuit
            .outputs
            .iter()
            .map(|o| (o.name.clone(), o.node))
            .collect();
        let mut sim = Simulator {
            circuit,
            node_off,
            arena: vec![0u64; words as usize],
            reg_off,
            reg_next: reg_cur.clone(),
            reg_cur,
            arrays,
            input_off,
            input_buf: vec![0u64; iwords as usize],
            input_by_name,
            output_by_name,
            inputs_dirty: false,
            cycle: 0,
        };
        sim.preload_constants();
        sim.eval_comb();
        sim
    }

    fn preload_constants(&mut self) {
        for (i, n) in self.circuit.nodes.iter().enumerate() {
            if let NodeKind::Const(b) = &n.kind {
                let off = self.node_off[i] as usize;
                self.arena[off..off + b.words().len()].copy_from_slice(b.words());
            }
        }
    }

    /// Number of completed RTL cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Looks up an input by hierarchical name.
    pub fn input_id(&self, name: &str) -> Option<InputId> {
        self.input_by_name.get(name).copied()
    }

    /// Drives an input. Takes effect from the next [`step`](Self::step).
    ///
    /// # Panics
    ///
    /// Panics if the width does not match the declaration.
    pub fn set_input(&mut self, id: InputId, value: &Bits) {
        let decl = &self.circuit.inputs[id.index()];
        assert_eq!(decl.width, value.width(), "input {} width", decl.name);
        let off = self.input_off[id.index()] as usize;
        self.input_buf[off..off + value.words().len()].copy_from_slice(value.words());
        self.inputs_dirty = true;
    }

    /// Convenience: drive input `name` with a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if no such input exists.
    pub fn poke(&mut self, name: &str, value: u64) {
        let id = self
            .input_id(name)
            .unwrap_or_else(|| panic!("no input named {name}"));
        let width = self.circuit.inputs[id.index()].width;
        self.set_input(id, &Bits::from_u64(width, value));
    }

    /// The current value of a combinational node (as of the last eval).
    pub fn peek_node(&self, id: NodeId) -> Bits {
        let n = self.circuit.node(id);
        let off = self.node_off[id.index()] as usize;
        Bits::from_words(n.width, &self.arena[off..off + words_for(n.width)])
    }

    /// The current value of output `name`, or `None` if it doesn't exist.
    pub fn output(&self, name: &str) -> Option<Bits> {
        self.output_by_name.get(name).map(|&n| self.peek_node(n))
    }

    /// The current value of a register.
    pub fn reg_value(&self, id: RegId) -> Bits {
        let r = &self.circuit.regs[id.index()];
        let off = self.reg_off[id.index()] as usize;
        Bits::from_words(r.width, &self.reg_cur[off..off + words_for(r.width)])
    }

    /// The register with the given hierarchical name, if any.
    pub fn reg_by_name(&self, name: &str) -> Option<RegId> {
        self.circuit
            .regs
            .iter()
            .position(|r| r.name == name)
            .map(|i| RegId(i as u32))
    }

    /// An element of an array.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn array_value(&self, id: ArrayId, index: u32) -> Bits {
        let a = &self.circuit.arrays[id.index()];
        assert!(index < a.depth, "array index out of range");
        let w = words_for(a.width);
        let off = index as usize * w;
        Bits::from_words(a.width, &self.arrays[id.index()][off..off + w])
    }

    /// Writes an array element directly (testbench backdoor).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or out-of-range index.
    pub fn write_array(&mut self, id: ArrayId, index: u32, value: &Bits) {
        let a = &self.circuit.arrays[id.index()];
        assert!(index < a.depth, "array index out of range");
        assert_eq!(a.width, value.width(), "array element width");
        let w = words_for(a.width);
        let off = index as usize * w;
        self.arrays[id.index()][off..off + w].copy_from_slice(value.words());
        // Keep combinational reads coherent.
        self.eval_comb();
    }

    /// Raw word slice of a node value (used by the BSP engine checks).
    pub fn node_words(&self, id: NodeId) -> &[u64] {
        let off = self.node_off[id.index()] as usize;
        let w = words_for(self.circuit.width(id));
        &self.arena[off..off + w]
    }

    /// Advances one full RTL clock cycle.
    ///
    /// Inputs driven since the previous step are observed by this cycle's
    /// clock edge, and all peeked values reflect the post-edge state.
    pub fn step(&mut self) {
        if self.inputs_dirty {
            self.eval_comb();
            self.inputs_dirty = false;
        }
        self.clock_edge();
        self.eval_comb();
        self.cycle += 1;
    }

    /// Advances `n` cycles.
    pub fn step_n(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Evaluates all combinational nodes in topological (id) order.
    fn eval_comb(&mut self) {
        for i in 0..self.circuit.nodes.len() {
            self.eval_node(i);
        }
    }

    fn eval_node(&mut self, i: usize) {
        let node = &self.circuit.nodes[i];
        let off = self.node_off[i] as usize;
        let nw = words_for(node.width);
        match &node.kind {
            NodeKind::Const(_) => {} // preloaded
            NodeKind::Input(id) => {
                let src = self.input_off[id.index()] as usize;
                // Input and node widths match (validated); `input_buf`
                // and `arena` are distinct fields, so this is a plain
                // allocation-free copy.
                self.arena[off..off + nw].copy_from_slice(&self.input_buf[src..src + nw]);
            }
            NodeKind::RegRead(r) => {
                let src = self.reg_off[r.index()] as usize;
                self.arena[off..off + nw].copy_from_slice(&self.reg_cur[src..src + nw]);
            }
            NodeKind::ArrayRead { array, index } => {
                let idx = self.read_index(*index);
                let a = &self.arrays[array.index()];
                let depth = self.circuit.arrays[array.index()].depth as u64;
                if idx < depth {
                    let src = idx as usize * nw;
                    self.arena[off..off + nw].copy_from_slice(&a[src..src + nw]);
                } else {
                    self.arena[off..off + nw].fill(0);
                }
            }
            _ => {
                // Pure combinational op: operands strictly precede `i`,
                // so the arena splits into read/write halves.
                let (src, dst_tail) = self.arena.split_at_mut(off);
                let dst = &mut dst_tail[..nw];
                eval_pure(self.circuit, &self.node_off, node, i, src, dst);
            }
        }
    }

    fn read_index(&self, id: NodeId) -> u64 {
        let off = self.node_off[id.index()] as usize;
        let w = words_for(self.circuit.width(id));
        word::fold_index(&self.arena[off..off + w])
    }

    fn clock_edge(&mut self) {
        // Latch register next-values.
        for (ri, r) in self.circuit.regs.iter().enumerate() {
            let next = r.next.expect("validated circuit");
            let src = self.node_off[next.index()] as usize;
            let dst = self.reg_off[ri] as usize;
            let w = words_for(r.width);
            self.reg_next[dst..dst + w].copy_from_slice(&self.arena[src..src + w]);
        }
        std::mem::swap(&mut self.reg_cur, &mut self.reg_next);
        // Apply array write ports in declaration order (last wins).
        for (ai, a) in self.circuit.arrays.iter().enumerate() {
            let w = words_for(a.width);
            for p in &a.write_ports {
                let en_off = self.node_off[p.enable.index()] as usize;
                if self.arena[en_off] & 1 == 0 {
                    continue;
                }
                let idx = self.read_index(p.index);
                if idx >= a.depth as u64 {
                    continue;
                }
                let src = self.node_off[p.data.index()] as usize;
                let dst = idx as usize * w;
                let (arena, arrays) = (&self.arena, &mut self.arrays);
                arrays[ai][dst..dst + w].copy_from_slice(&arena[src..src + w]);
            }
        }
    }
}

/// Evaluates a pure combinational node whose operands live in `src`
/// (all words before the node's own offset) into `dst`.
///
/// Shared by the reference interpreter and the BSP engine (which passes
/// process-local offsets through `off_of`).
pub(crate) fn eval_pure(
    circuit: &Circuit,
    off_of: &[u32],
    node: &parendi_rtl::Node,
    _index: usize,
    src: &[u64],
    dst: &mut [u64],
) {
    use parendi_rtl::BinOp;
    let w = node.width;
    let opnd = |id: NodeId| {
        let off = off_of[id.index()] as usize;
        &src[off..off + words_for(circuit.width(id))]
    };
    match &node.kind {
        NodeKind::Un(op, a) => {
            let a = opnd(*a);
            match op {
                UnOp::Not => word::not(dst, a, w),
                UnOp::Neg => word::neg(dst, a, w),
                UnOp::RedAnd => dst[0] = word::red_and(a, circuit.width(unop_arg(node))) as u64,
                UnOp::RedOr => dst[0] = word::red_or(a) as u64,
                UnOp::RedXor => dst[0] = word::red_xor(a) as u64,
            }
        }
        NodeKind::Bin(op, a, b) => {
            let (aw, av, bv) = (circuit.width(*a), opnd(*a), opnd(*b));
            match op {
                BinOp::And => word::and(dst, av, bv, w),
                BinOp::Or => word::or(dst, av, bv, w),
                BinOp::Xor => word::xor(dst, av, bv, w),
                BinOp::Add => word::add(dst, av, bv, w),
                BinOp::Sub => word::sub(dst, av, bv, w),
                BinOp::Mul => word::mul(dst, av, bv, w),
                BinOp::Eq => dst[0] = word::eq(av, bv) as u64,
                BinOp::Ne => dst[0] = !word::eq(av, bv) as u64,
                BinOp::LtU => dst[0] = word::lt_u(av, bv) as u64,
                BinOp::LtS => dst[0] = word::lt_s(av, bv, aw) as u64,
                BinOp::LeU => dst[0] = !word::lt_u(bv, av) as u64,
                BinOp::LeS => dst[0] = !word::lt_s(bv, av, aw) as u64,
                BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                    let sh = word::shift_amount(bv, aw);
                    match op {
                        BinOp::Shl => word::shl(dst, av, sh, w),
                        BinOp::Lshr => word::lshr(dst, av, sh, w),
                        _ => word::ashr(dst, av, sh, w),
                    }
                }
            }
        }
        NodeKind::Mux { sel, t, f } => {
            let s = opnd(*sel)[0] & 1 == 1;
            word::copy(dst, if s { opnd(*t) } else { opnd(*f) });
        }
        NodeKind::Slice { src: s, lo } => {
            word::slice(dst, opnd(*s), lo + w - 1, *lo);
        }
        NodeKind::Zext(a) => word::zext(dst, opnd(*a), w),
        NodeKind::Sext(a) => word::sext(dst, opnd(*a), circuit.width(*a), w),
        NodeKind::Concat { hi, lo } => {
            word::concat(dst, opnd(*hi), opnd(*lo), circuit.width(*lo));
        }
        NodeKind::Const(_)
        | NodeKind::Input(_)
        | NodeKind::RegRead(_)
        | NodeKind::ArrayRead { .. } => {
            unreachable!("sources handled by the caller")
        }
    }
}

fn unop_arg(node: &parendi_rtl::Node) -> NodeId {
    match node.kind {
        NodeKind::Un(_, a) => a,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_rtl::Builder;

    #[test]
    fn counter_counts() {
        let mut b = Builder::new("c");
        let r = b.reg("count", 8, 0);
        let one = b.lit(8, 1);
        let n = b.add(r.q(), one);
        b.connect(r, n);
        b.output("q", r.q());
        let c = b.finish().unwrap();
        let mut sim = Simulator::new(&c);
        assert_eq!(sim.output("q").unwrap().to_u64(), 0);
        sim.step_n(5);
        assert_eq!(sim.output("q").unwrap().to_u64(), 5);
        sim.step_n(251);
        assert_eq!(sim.output("q").unwrap().to_u64(), 0, "8-bit wraparound");
        assert_eq!(sim.cycle(), 256);
    }

    #[test]
    fn xorshift64_matches_software() {
        let seed = 0x2545_F491_4F6C_DD1Du64;
        let mut b = Builder::new("prng");
        let s = b.reg_init("s", Bits::from_u64(64, seed));
        let t1 = b.shli(s.q(), 13);
        let x1 = b.xor(s.q(), t1);
        let t2 = b.lshri(x1, 7);
        let x2 = b.xor(x1, t2);
        let t3 = b.shli(x2, 17);
        let x3 = b.xor(x2, t3);
        b.connect(s, x3);
        b.output("out", s.q());
        let c = b.finish().unwrap();
        let mut sim = Simulator::new(&c);
        let mut sw = seed;
        for _ in 0..100 {
            assert_eq!(sim.output("out").unwrap().to_u64(), sw);
            sw ^= sw << 13;
            sw ^= sw >> 7;
            sw ^= sw << 17;
            sim.step();
        }
    }

    #[test]
    fn inputs_drive_logic() {
        let mut b = Builder::new("mux");
        let sel = b.input("sel", 1);
        let a = b.input("a", 16);
        let bb = b.input("b", 16);
        let m = b.mux(sel, a, bb);
        b.output("o", m);
        let r = b.reg("dummy", 1, 0);
        b.connect(r, r.q());
        let c = b.finish().unwrap();
        let mut sim = Simulator::new(&c);
        sim.poke("a", 0xaaaa);
        sim.poke("b", 0xbbbb);
        sim.poke("sel", 0);
        sim.step();
        assert_eq!(sim.output("o").unwrap().to_u64(), 0xbbbb);
        sim.poke("sel", 1);
        sim.step();
        assert_eq!(sim.output("o").unwrap().to_u64(), 0xaaaa);
    }

    #[test]
    fn memory_write_read_with_port_priority() {
        let mut b = Builder::new("mem");
        let we = b.input("we", 1);
        let addr = b.input("addr", 4);
        let d0 = b.input("d0", 32);
        let d1 = b.input("d1", 32);
        let mem = b.array("m", 32, 16);
        b.array_write(mem, addr, d0, we);
        b.array_write(mem, addr, d1, we); // same index: port 1 wins
        let rd = b.array_read(mem, addr);
        b.output("q", rd);
        let r = b.reg("dummy", 1, 0);
        b.connect(r, r.q());
        let c = b.finish().unwrap();
        let mut sim = Simulator::new(&c);
        sim.poke("we", 1);
        sim.poke("addr", 3);
        sim.poke("d0", 111);
        sim.poke("d1", 222);
        sim.step();
        assert_eq!(
            sim.array_value(ArrayId(0), 3).to_u64(),
            222,
            "last port wins"
        );
        assert_eq!(sim.output("q").unwrap().to_u64(), 222);
        sim.poke("we", 0);
        sim.poke("d1", 999);
        sim.step();
        assert_eq!(
            sim.array_value(ArrayId(0), 3).to_u64(),
            222,
            "disabled port holds"
        );
    }

    #[test]
    fn wide_datapath() {
        // 200-bit accumulator.
        let mut b = Builder::new("wide");
        let r = b.reg("acc", 200, 0);
        let k = b.lit_bits(Bits::from_hex(200, "ffffffffffffffffff").unwrap());
        let n = b.add(r.q(), k);
        b.connect(r, n);
        b.output("acc", r.q());
        let c = b.finish().unwrap();
        let mut sim = Simulator::new(&c);
        sim.step_n(3);
        let expect = Bits::from_hex(200, "ffffffffffffffffff")
            .unwrap()
            .mul(&Bits::from_u64(200, 3).zext(200));
        assert_eq!(sim.output("acc").unwrap(), expect);
    }

    #[test]
    fn array_backdoor_and_oob_read() {
        let mut b = Builder::new("bd");
        let idx = b.input("i", 8); // can address beyond depth 16
        let mem = b.array("m", 8, 16);
        let rd = b.array_read(mem, idx);
        b.output("q", rd);
        let r = b.reg("dummy", 1, 0);
        b.connect(r, r.q());
        let c = b.finish().unwrap();
        let mut sim = Simulator::new(&c);
        sim.write_array(ArrayId(0), 7, &Bits::from_u64(8, 0x5a));
        sim.poke("i", 7);
        sim.step();
        assert_eq!(sim.output("q").unwrap().to_u64(), 0x5a);
        sim.poke("i", 200); // out of range reads zero
        sim.step();
        assert_eq!(sim.output("q").unwrap().to_u64(), 0);
    }

    #[test]
    fn registers_update_simultaneously() {
        // Swap network: a <-> b every cycle.
        let mut b = Builder::new("swap");
        let ra = b.reg("a", 8, 1);
        let rb = b.reg("b", 8, 2);
        b.connect(ra, rb.q());
        b.connect(rb, ra.q());
        let c = b.finish().unwrap();
        let mut sim = Simulator::new(&c);
        sim.step();
        assert_eq!(sim.reg_value(RegId(0)).to_u64(), 2);
        assert_eq!(sim.reg_value(RegId(1)).to_u64(), 1);
        sim.step();
        assert_eq!(sim.reg_value(RegId(0)).to_u64(), 1);
        assert_eq!(sim.reg_value(RegId(1)).to_u64(), 2);
    }
}
