//! Microbenchmarks of the word-level kernels that dominate functional
//! simulation time.

use criterion::{criterion_group, criterion_main, Criterion};
use parendi_rtl::Bits;
use std::hint::black_box;

fn bench_bits(c: &mut Criterion) {
    let mut g = c.benchmark_group("bits");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(1));
    let a64 = Bits::from_u64(64, 0x0123_4567_89ab_cdef);
    let b64 = Bits::from_u64(64, 0xfedc_ba98_7654_3210);
    let a512 = Bits::from_hex(512, &"ab".repeat(64)).unwrap();
    let b512 = Bits::from_hex(512, &"cd".repeat(64)).unwrap();
    g.bench_function("add64", |b| b.iter(|| black_box(&a64).add(black_box(&b64))));
    g.bench_function("add512", |b| {
        b.iter(|| black_box(&a512).add(black_box(&b512)))
    });
    g.bench_function("mul512", |b| {
        b.iter(|| black_box(&a512).mul(black_box(&b512)))
    });
    g.bench_function("shl512", |b| b.iter(|| black_box(&a512).shl(137)));
    g.bench_function("concat", |b| {
        b.iter(|| black_box(&a512).concat(black_box(&b64)))
    });
    g.finish();
}

criterion_group!(benches, bench_bits);
criterion_main!(benches);
