//! Fig. 4: PRNG simulation rate vs parallelism with a fixed number of
//! fibers per tile (IPU) or thread (x64).
//!
//! The PRNGs are independent (`t_comm = 0`), so the experiment isolates
//! `t_sync`: rate(m) = clk / (2·barrier(m) + f·fiber_cost). The fiber
//! cost is *measured* from the real xorshift design via the cost model;
//! the barrier costs come from the machine models of §4.1.

use parendi_bench::{
    baseline_rate, load_baseline, parse_quick_flag, vs_baseline_cell, write_bench_json, BenchRecord,
};
use parendi_core::{compile, PartitionConfig};
use parendi_designs::prng::build_prng_bank;
use parendi_graph::{extract_fibers, CostModel};
use parendi_machine::ipu::IpuConfig;
use parendi_machine::x64::X64Config;
use parendi_sim::BspSimulator;

fn main() {
    parse_quick_flag();
    // Measure one fiber's cost from the real design.
    let bank = build_prng_bank(4);
    let costs = CostModel::of(&bank);
    let fibers = extract_fibers(&bank, &costs);
    let ipu_fiber = fibers.fibers[0].ipu_cost;
    let x64_fiber = fibers.fibers[0].x64_cost;
    println!("measured xorshift fiber: {ipu_fiber} IPU cycles, {x64_fiber} x64 instructions\n");

    let ipu = IpuConfig::m2000();
    println!("Fig. 4 (left): IPU, rate normalized to 64 tiles");
    println!("{:>6} {:>9} {:>9} {:>9}", "tiles", "7f", "56f", "448f");
    let fs = [7u64, 56, 448];
    let base: Vec<f64> = fs
        .iter()
        .map(|&f| 1.0 / (ipu.sync_cycles(64) as f64 + f as f64 * ipu_fiber as f64))
        .collect();
    let mut tiles = 64;
    while tiles <= 5888 {
        let rates: Vec<f64> = fs
            .iter()
            .map(|&f| 1.0 / (ipu.sync_cycles(tiles) as f64 + f as f64 * ipu_fiber as f64))
            .collect();
        println!(
            "{tiles:>6} {:>9.3} {:>9.3} {:>9.3}",
            rates[0] / base[0],
            rates[1] / base[1],
            rates[2] / base[2]
        );
        tiles += 832;
    }

    let ix3 = X64Config::ix3();
    println!("\nFig. 4 (right): x64 (ix3 barrier), rate normalized to 1 thread");
    println!(
        "{:>8} {:>9} {:>9} {:>9}",
        "threads", "736f", "5888f", "47104f"
    );
    let fs = [736u64, 5888, 47104];
    let base: Vec<f64> = fs
        .iter()
        .map(|&f| 1.0 / (f as f64 * x64_fiber as f64 / ix3.base_ipc))
        .collect();
    for threads in [1u32, 7, 14, 21, 28, 35, 42, 49, 56] {
        let rates: Vec<f64> = fs
            .iter()
            .map(|&f| {
                1.0 / (ix3.sync_cycles(threads) as f64 + f as f64 * x64_fiber as f64 / ix3.base_ipc)
            })
            .collect();
        println!(
            "{threads:>8} {:>9.3} {:>9.3} {:>9.3}",
            rates[0] / base[0],
            rates[1] / base[1],
            rates[2] / base[2]
        );
    }
    println!(
        "\nShape check: IPU\u{2019}s 448f line stays near 1.0; x64 falls sharply even at 47104f."
    );

    // Host-engine cross-check: the PRNGs are independent (`t_comm = 0`),
    // so the measured exchange phase of the real point-to-point engine is
    // pure synchronization — the executable counterpart of the modeled
    // barrier costs above. The kcyc/s column comes from *untimed* runs
    // (best of three; timed runs pay per-tile clock reads), the phase
    // columns from one timed run; every row lands in BENCH_fig04.json
    // and prints its delta against the checked-in pre-PR baseline.
    let base = load_baseline();
    let bank = build_prng_bank(64);
    let comp = compile(&bank, &PartitionConfig::with_tiles(32)).expect("prng bank fits");
    println!(
        "\nHost engine (measured, {} tiles, t_comm = 0): exchange phase is barrier cost",
        comp.partition.tiles_used()
    );
    println!(
        "{:>8} {:>12} {:>14} {:>12} {:>9}",
        "threads", "compute/cyc", "exchange/cyc", "kcyc/s", "vs pre-PR"
    );
    let mut records = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut sim = BspSimulator::new(&bank, &comp.partition, threads);
        sim.run(100); // warm the persistent pool
        let cycles = 2000u64;
        let best = (0..3).map(|_| sim.run(cycles)).fold(f64::MAX, f64::min);
        let ph = sim.run_timed(cycles);
        let rate = cycles as f64 / best;
        let vs = baseline_rate(
            base.as_deref().unwrap_or(&[]),
            "fig04",
            "prng64",
            "bsp",
            false,
            "",
            1,
            threads as u32,
        );
        println!(
            "{threads:>8} {:>10.2}µs {:>12.2}µs {:>12.1} {:>9}",
            ph.compute_s * 1e6 / cycles as f64,
            ph.exchange_s * 1e6 / cycles as f64,
            rate / 1e3,
            vs_baseline_cell(rate, vs),
        );
        records.push(BenchRecord::from_phases(
            "fig04",
            "prng64",
            "bsp",
            false,
            comp.partition.chips,
            comp.partition.tiles_used(),
            1,
            threads as u32,
            cycles,
            rate,
            &ph,
        ));
    }
    match write_bench_json("fig04", &records) {
        Ok(path) => println!("\nwrote {} ({} records)", path.display(), records.len()),
        Err(e) => println!("\ncould not write BENCH_fig04.json: {e}"),
    }
    if let Some(base) = &base {
        for r in &records {
            if let Some(b) = baseline_rate(base, "fig04", "prng64", "bsp", false, "", 1, r.threads)
            {
                println!(
                    "prng64 bsp threads={}: pre-PR {:>9.1} kcyc/s -> now {:>9.1} kcyc/s ({})",
                    r.threads,
                    b / 1e3,
                    r.cycles_per_s / 1e3,
                    vs_baseline_cell(r.cycles_per_s, Some(b)),
                );
            }
        }
    }
}
