//! The compile cache: content-hash-keyed LRU over compiled partitions.
//!
//! Compiling a partition (fiber extraction, load balancing, routing,
//! bytecode lowering, state layout) dominates short scenario batches,
//! so the daemon compiles **once per [`CompileKey`] digest** and hands
//! every subsequent batch an `Arc` of the cached artifact. Three
//! properties the tests pin:
//!
//! * **Single-flight**: two simultaneous requests for the same key
//!   compile once — the second blocks on a condvar while the first
//!   builds (a `Building` slot marks the in-flight compile), then
//!   shares the finished entry.
//! * **LRU at capacity**: beyond `cap` ready entries the
//!   least-recently-used one is dropped. In-flight `Building` slots
//!   are never evicted (a waiter is parked on them).
//! * **Panic containment**: a compile that panics is caught, its slot
//!   removed, and every waiter woken to an error — a poisoned design
//!   must not wedge the daemon.

use crate::proto::ProtoError;
use parendi_core::{CompileKey, Partition};
use parendi_rtl::Circuit;
use parendi_sim::Precompiled;
use parendi_telemetry::{Counter, MetricsRegistry};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One cached compile: everything an engine instantiation needs,
/// owned (the daemon outlives any request).
pub struct CacheEntry {
    /// The key the entry is filed under.
    pub key: CompileKey,
    /// The built circuit (engines borrow it for their lifetime).
    pub circuit: Circuit,
    /// The partition the artifact was compiled for.
    pub partition: Partition,
    /// The compiled artifact; engines deep-copy it per instantiation.
    pub pre: Precompiled,
    /// Wall-clock seconds the original compile took — what every
    /// subsequent hit saves.
    pub compile_s: f64,
}

enum Slot {
    /// A compile is in flight on some connection thread; wait on the
    /// condvar.
    Building,
    /// A finished artifact.
    Ready {
        entry: Arc<CacheEntry>,
        /// Logical LRU timestamp (a lock-protected counter, not wall
        /// time).
        last_used: u64,
    },
}

struct CacheState {
    slots: HashMap<u64, Slot>,
    clock: u64,
}

/// The content-hash-keyed LRU compile cache (see the module docs).
pub struct CompileCache {
    state: Mutex<CacheState>,
    cv: Condvar,
    cap: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl CompileCache {
    /// A cache holding at most `cap` ready entries, reporting
    /// `serve_cache_hits` / `serve_cache_misses` /
    /// `serve_cache_evictions` through `metrics`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (a zero-capacity cache would evict the
    /// entry a waiter is about to share).
    pub fn new(cap: usize, metrics: &MetricsRegistry) -> Self {
        assert!(cap >= 1, "cache capacity must be at least 1");
        CompileCache {
            state: Mutex::new(CacheState {
                slots: HashMap::new(),
                clock: 0,
            }),
            cv: Condvar::new(),
            cap,
            hits: metrics.counter("serve_cache_hits"),
            misses: metrics.counter("serve_cache_misses"),
            evictions: metrics.counter("serve_cache_evictions"),
        }
    }

    /// Returns the entry for `digest`, building it with `build` on a
    /// miss. The second element is `true` on a cache hit (including a
    /// wait on another thread's in-flight build — the compile was
    /// shared either way). Only the thread that actually builds counts
    /// a miss.
    pub fn get_or_build<F>(
        &self,
        digest: u64,
        build: F,
    ) -> Result<(Arc<CacheEntry>, bool), ProtoError>
    where
        F: FnOnce() -> Result<CacheEntry, String>,
    {
        let mut st = self.state.lock().expect("compile cache");
        loop {
            match st.slots.get(&digest) {
                Some(Slot::Ready { entry, .. }) => {
                    let entry = entry.clone();
                    st.clock += 1;
                    let now = st.clock;
                    if let Some(Slot::Ready { last_used, .. }) = st.slots.get_mut(&digest) {
                        *last_used = now;
                    }
                    self.hits.inc();
                    return Ok((entry, true));
                }
                // A thread that waits out another's in-flight build
                // shares the compile exactly like a plain hit.
                Some(Slot::Building) => {
                    st = self.cv.wait(st).expect("compile cache");
                }
                None => {
                    st.slots.insert(digest, Slot::Building);
                    self.misses.inc();
                    break;
                }
            }
        }
        drop(st);

        // Build outside the lock (this is the expensive part —
        // different keys compile concurrently). Catch panics so a
        // poisoned design cannot strand waiters on the Building slot.
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(build))
            .unwrap_or_else(|p| Err(panic_message(p)));

        let mut st = self.state.lock().expect("compile cache");
        let result = match built {
            Ok(entry) => {
                let entry = Arc::new(entry);
                st.clock += 1;
                let now = st.clock;
                st.slots.insert(
                    digest,
                    Slot::Ready {
                        entry: entry.clone(),
                        last_used: now,
                    },
                );
                while self.ready_count(&st) > self.cap {
                    let oldest = st
                        .slots
                        .iter()
                        .filter_map(|(k, s)| match s {
                            Slot::Ready { last_used, .. } => Some((*last_used, *k)),
                            Slot::Building => None,
                        })
                        .min()
                        .map(|(_, k)| k)
                        .expect("over-capacity cache has a ready entry");
                    st.slots.remove(&oldest);
                    self.evictions.inc();
                }
                Ok((entry, false))
            }
            Err(e) => {
                st.slots.remove(&digest);
                Err(ProtoError::Remote(format!("compile failed: {e}")))
            }
        };
        self.cv.notify_all();
        result
    }

    fn ready_count(&self, st: &CacheState) -> usize {
        st.slots
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// Ready (finished) entries currently cached.
    pub fn len(&self) -> usize {
        self.ready_count(&self.state.lock().expect("compile cache"))
    }

    /// Whether no finished entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a finished entry for `digest` is cached (test hook; a
    /// racing eviction can invalidate the answer immediately).
    pub fn contains(&self, digest: u64) -> bool {
        matches!(
            self.state.lock().expect("compile cache").slots.get(&digest),
            Some(Slot::Ready { .. })
        )
    }

    /// Drops every finished entry (in-flight builds survive — a
    /// waiter is parked on them). The deterministic cold start the
    /// load generator's cold/warm split relies on.
    pub fn clear(&self) {
        self.state
            .lock()
            .expect("compile cache")
            .slots
            .retain(|_, s| matches!(s, Slot::Building));
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "compile panicked".to_string()
    }
}
