//! The off-chip transport contract: every backend — in-process,
//! shared-memory, TCP loopback — must produce bit-identical
//! architectural state to the reference interpreter, for both
//! multi-chip partitioning strategies, at 1/2/4 chips. The backends
//! differ only in which memory-domain boundary the per-chip-pair
//! aggregates cross; the byte column must be comparable across them.

mod common;

use common::random_circuit_io;
use parendi_core::{compile, MultiChipStrategy, PartitionConfig};
use parendi_rtl::RegId;
use parendi_sim::{BspSimulator, GangSimulator, Simulator, TransportChoice};

const BACKENDS: [TransportChoice; 3] = [
    TransportChoice::InProcess,
    TransportChoice::SharedMem,
    TransportChoice::Tcp,
];

/// Runs the reference and every transport backend over the same
/// stimulus and asserts identical registers, arrays, and outputs.
/// Returns the per-backend byte columns for comparability checks.
fn check_backends(seed: u64, chips: u32, mc: MultiChipStrategy, threads: usize) -> Vec<u64> {
    let c = random_circuit_io(seed, 12, 60, 3);
    let mut cfg = PartitionConfig::with_tiles(chips * 2);
    cfg.tiles_per_chip = 2;
    cfg.multi_chip = mc;
    let comp = compile(&c, &cfg).expect("compiles");
    assert_eq!(
        comp.partition.chips, chips,
        "partition must span {chips} chips"
    );

    // Reference run: poke, run a chunk, re-poke, run again — input
    // changes between chunks cross the transport mid-run.
    let stim = [(5u64, 30u64), (0xdead_beef, 21)];
    let mut reference = Simulator::new(&c);
    for &(base, cycles) in &stim {
        for i in 0..3 {
            reference.poke(&format!("in{i}"), base.wrapping_add(i as u64));
        }
        reference.step_n(cycles);
    }

    let mut bytes = Vec::new();
    for backend in BACKENDS {
        let mut bsp = BspSimulator::with_transport(&c, &comp.partition, threads, backend);
        for &(base, cycles) in &stim {
            for i in 0..3 {
                bsp.poke(&format!("in{i}"), base.wrapping_add(i as u64));
            }
            bsp.run(cycles);
        }
        let tag = bsp.transport_name();
        for i in 0..c.regs.len() {
            assert_eq!(
                bsp.reg_value(RegId(i as u32)),
                reference.reg_value(RegId(i as u32)),
                "seed {seed} {mc:?} {chips} chips [{tag}]: reg {i} ({})",
                c.regs[i].name,
            );
        }
        for (ai, a) in c.arrays.iter().enumerate() {
            for idx in 0..a.depth {
                assert_eq!(
                    bsp.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                    reference.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                    "seed {seed} {mc:?} {chips} chips [{tag}]: array {}[{idx}]",
                    a.name,
                );
            }
        }
        for (oi, o) in c.outputs.iter().enumerate() {
            assert_eq!(
                bsp.peek_output(&o.name).expect("engine output"),
                reference.output(&o.name).expect("reference output"),
                "seed {seed} {mc:?} {chips} chips [{tag}]: output {oi} ({})",
                o.name,
            );
        }
        bytes.push(bsp.offchip_bytes_sent());
    }
    bytes
}

#[test]
fn all_backends_match_the_reference_across_chip_counts() {
    for seed in [11u64, 47] {
        for mc in [MultiChipStrategy::Pre, MultiChipStrategy::Post] {
            for &chips in &[1u32, 2, 4] {
                let bytes = check_backends(seed, chips, mc, 3);
                // The byte column is defined identically for every
                // backend (whole pair aggregates per completed cycle),
                // so the measured volumes must agree exactly.
                assert!(
                    bytes.iter().all(|&b| b == bytes[0]),
                    "seed {seed} {mc:?} {chips} chips: byte columns diverged: {bytes:?}"
                );
                if chips == 1 {
                    assert_eq!(bytes[0], 0, "no off-chip traffic on one chip");
                } else {
                    assert!(bytes[0] > 0, "multi-chip runs must move bytes");
                }
            }
        }
    }
}

/// The staged backends must survive uneven run() chunking: the epoch
/// parity of the double-buffered aggregates alternates per cycle, and a
/// chunk boundary must not desynchronize the publish/receive protocol.
#[test]
fn staged_backends_survive_chunked_runs() {
    let c = random_circuit_io(23, 10, 50, 2);
    let mut cfg = PartitionConfig::with_tiles(6);
    cfg.tiles_per_chip = 3;
    let comp = compile(&c, &cfg).expect("compiles");
    assert!(comp.partition.chips >= 2);
    let mut reference = Simulator::new(&c);
    reference.poke("in0", 9);
    reference.poke("in1", 1);
    let mut sims: Vec<BspSimulator> = BACKENDS
        .iter()
        .map(|&b| {
            let mut s = BspSimulator::with_transport(&c, &comp.partition, 2, b);
            s.poke("in0", 9);
            s.poke("in1", 1);
            s
        })
        .collect();
    for chunk in [1u64, 2, 1, 61, 64] {
        reference.step_n(chunk);
        for s in &mut sims {
            s.run(chunk);
        }
    }
    for s in &sims {
        assert_eq!(s.cycle(), 129);
        for i in 0..c.regs.len() {
            assert_eq!(
                s.reg_value(RegId(i as u32)),
                reference.reg_value(RegId(i as u32)),
                "[{}] reg {i} diverged across chunked runs",
                s.transport_name(),
            );
        }
    }
}

/// The gang engine rides the same transport seam: a multi-lane run
/// under each backend must be bit-exact per lane against per-lane
/// reference interpreters.
#[test]
fn gang_lanes_match_under_every_backend() {
    let c = random_circuit_io(31, 8, 40, 2);
    let mut cfg = PartitionConfig::with_tiles(4);
    cfg.tiles_per_chip = 2;
    let comp = compile(&c, &cfg).expect("compiles");
    assert!(comp.partition.chips >= 2);
    let lanes = 5usize;
    let cycles = 25u64;
    let mut refs: Vec<Simulator> = (0..lanes).map(|_| Simulator::new(&c)).collect();
    for (l, r) in refs.iter_mut().enumerate() {
        r.poke("in0", 3 + l as u64);
        r.poke("in1", 77u64.wrapping_mul(l as u64 + 1));
        r.step_n(cycles);
    }
    for backend in BACKENDS {
        let mut gang = GangSimulator::with_transport(&c, &comp.partition, 2, lanes, false, backend);
        for l in 0..lanes {
            gang.poke_lane("in0", l, 3 + l as u64);
            gang.poke_lane("in1", l, 77u64.wrapping_mul(l as u64 + 1));
        }
        gang.run(cycles);
        for (l, r) in refs.iter().enumerate() {
            for i in 0..c.regs.len() {
                assert_eq!(
                    gang.reg_value_lane(RegId(i as u32), l),
                    r.reg_value(RegId(i as u32)),
                    "[{}] lane {l} reg {i} diverged",
                    gang.transport_name(),
                );
            }
        }
    }
}
