//! Content-hashed compile keys: the identity of a compiled partition.
//!
//! A gang server caches compiled partitions, so it needs a stable,
//! cross-process answer to "is this the same compile?". A [`CompileKey`]
//! hashes everything [`crate::compile`] and the engine front-end consume
//! — the full circuit content, every [`PartitionConfig`] field, and the
//! lane shape (lane count + packed flag) — into one 64-bit FNV-1a
//! digest. Two requests with equal digests may share one compiled
//! artifact; any semantic difference (one renamed register, one changed
//! init value, a different tile budget, a different lane bucket)
//! changes the digest.
//!
//! The hash walks only the circuit's flat `Vec`s in their construction
//! order — never a `HashMap` — so the digest is identical across
//! processes, runs, and hosts (the property the cross-process test in
//! `parendi-serve` pins). The serializable text form follows the same
//! hand-rolled `to_text`/`from_text` idiom as
//! [`crate::routing::ChipExchangePlan`].

use crate::config::{MultiChipStrategy, PartitionConfig, Strategy};
use parendi_rtl::{Circuit, NodeKind};

/// The FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64 hasher over explicit, deterministic feeds.
/// Deliberately not `std::hash::Hasher`: nothing here may depend on
/// `RandomState` or iteration order.
#[derive(Clone, Copy, Debug)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Length-prefixed string feed, so `("ab", "c")` and `("a", "bc")`
    /// hash differently.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn bits(&mut self, b: &parendi_rtl::Bits) {
        self.u32(b.width());
        for &w in b.words() {
            self.u64(w);
        }
    }
}

/// Feeds one combinational node. Tag bytes keep variants with equal
/// operand lists distinct.
fn hash_node(h: &mut Fnv, node: &parendi_rtl::Node) {
    h.u32(node.width);
    match &node.kind {
        NodeKind::Const(b) => {
            h.u32(0);
            h.bits(b);
        }
        NodeKind::Input(i) => {
            h.u32(1);
            h.u32(i.0);
        }
        NodeKind::RegRead(r) => {
            h.u32(2);
            h.u32(r.0);
        }
        NodeKind::ArrayRead { array, index } => {
            h.u32(3);
            h.u32(array.0);
            h.u32(index.0);
        }
        NodeKind::Un(op, a) => {
            h.u32(4);
            h.u32(*op as u32);
            h.u32(a.0);
        }
        NodeKind::Bin(op, a, b) => {
            h.u32(5);
            h.u32(*op as u32);
            h.u32(a.0);
            h.u32(b.0);
        }
        NodeKind::Mux { sel, t, f } => {
            h.u32(6);
            h.u32(sel.0);
            h.u32(t.0);
            h.u32(f.0);
        }
        NodeKind::Slice { src, lo } => {
            h.u32(7);
            h.u32(src.0);
            h.u32(*lo);
        }
        NodeKind::Zext(a) => {
            h.u32(8);
            h.u32(a.0);
        }
        NodeKind::Sext(a) => {
            h.u32(9);
            h.u32(a.0);
        }
        NodeKind::Concat { hi, lo } => {
            h.u32(10);
            h.u32(hi.0);
            h.u32(lo.0);
        }
    }
}

/// FNV-1a 64 content hash of a circuit: name, every node (kind, operand
/// ids, width), every register (name, width, init, next), every array
/// (name, shape, init, write ports), and the I/O declarations — all in
/// the IR's flat construction order, so the digest is stable across
/// processes. Any semantic edit changes it.
pub fn circuit_content_hash(circuit: &Circuit) -> u64 {
    let mut h = Fnv::new();
    h.str(&circuit.name);
    h.u64(circuit.nodes.len() as u64);
    for n in &circuit.nodes {
        hash_node(&mut h, n);
    }
    h.u64(circuit.regs.len() as u64);
    for r in &circuit.regs {
        h.str(&r.name);
        h.u32(r.width);
        h.bits(&r.init);
        h.u32(r.next.map(|n| n.0).unwrap_or(u32::MAX));
    }
    h.u64(circuit.arrays.len() as u64);
    for a in &circuit.arrays {
        h.str(&a.name);
        h.u32(a.width);
        h.u32(a.depth);
        match &a.init {
            None => h.u32(0),
            Some(init) => {
                h.u32(1);
                h.u64(init.len() as u64);
                for b in init {
                    h.bits(b);
                }
            }
        }
        h.u64(a.write_ports.len() as u64);
        for p in &a.write_ports {
            h.u32(p.index.0);
            h.u32(p.data.0);
            h.u32(p.enable.0);
        }
    }
    h.u64(circuit.inputs.len() as u64);
    for i in &circuit.inputs {
        h.str(&i.name);
        h.u32(i.width);
    }
    h.u64(circuit.outputs.len() as u64);
    for o in &circuit.outputs {
        h.str(&o.name);
        h.u32(o.node.0);
    }
    h.0
}

/// Feeds every compile-relevant [`PartitionConfig`] field.
fn hash_config(h: &mut Fnv, cfg: &PartitionConfig) {
    h.u32(cfg.tiles);
    h.u32(cfg.tiles_per_chip);
    h.u64(cfg.data_bytes_per_tile);
    h.u64(cfg.code_bytes_per_tile);
    h.u64(cfg.array_threshold_bytes);
    h.u32(match cfg.strategy {
        Strategy::BottomUp => 0,
        Strategy::Hypergraph => 1,
    });
    h.u32(match cfg.multi_chip {
        MultiChipStrategy::Pre => 0,
        MultiChipStrategy::Post => 1,
        MultiChipStrategy::None => 2,
    });
    h.u32(cfg.differential_exchange as u32);
    h.u64(cfg.seed);
}

/// The identity of one compiled partition: circuit content +
/// [`PartitionConfig`] + lane shape, digested to 64 bits. Equal keys
/// may share a cached `Compiled`; the lane shape is part of the key
/// because every lane-carrying buffer is sized and laid out for one
/// specific `(lanes, packed)` pair at compile time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CompileKey {
    /// [`circuit_content_hash`] of the circuit alone — useful for
    /// grouping cache entries by design.
    pub circuit_hash: u64,
    /// Scenario lanes the artifact is laid out for.
    pub lanes: u32,
    /// Whether 1-bit state is bit-packed across lanes.
    pub packed: bool,
    /// The combined digest (circuit + config + lane shape).
    digest: u64,
}

impl CompileKey {
    /// Computes the key for compiling `circuit` under `cfg` at the
    /// given lane shape.
    pub fn new(circuit: &Circuit, cfg: &PartitionConfig, lanes: u32, packed: bool) -> Self {
        let circuit_hash = circuit_content_hash(circuit);
        let mut h = Fnv::new();
        h.u64(circuit_hash);
        hash_config(&mut h, cfg);
        h.u32(lanes);
        h.u32(packed as u32);
        CompileKey {
            circuit_hash,
            lanes,
            packed,
            digest: h.0,
        }
    }

    /// The combined 64-bit digest — the cache key.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Serializes the key as one line of text (the
    /// `ChipExchangePlan::to_text` idiom): four fixed-order fields,
    /// round-tripped by [`from_text`](Self::from_text).
    pub fn to_text(&self) -> String {
        format!(
            "compilekey {:016x} {} {} {:016x}\n",
            self.circuit_hash, self.lanes, self.packed as u32, self.digest
        )
    }

    /// Parses [`to_text`](Self::to_text) output. `None` on any
    /// malformed field (a corrupted key must never alias a real one).
    pub fn from_text(s: &str) -> Option<Self> {
        let mut it = s.split_whitespace();
        if it.next()? != "compilekey" {
            return None;
        }
        let circuit_hash = u64::from_str_radix(it.next()?, 16).ok()?;
        let lanes = it.next()?.parse().ok()?;
        let packed = match it.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        let digest = u64::from_str_radix(it.next()?, 16).ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(CompileKey {
            circuit_hash,
            lanes,
            packed,
            digest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_rtl::Builder;

    fn counter(name: &str, init: u64) -> Circuit {
        let mut b = Builder::new(name);
        let r = b.reg("c", 16, init);
        let one = b.lit(16, 1);
        let n = b.add(r.q(), one);
        b.connect(r, n);
        b.output("q", r.q());
        b.finish().unwrap()
    }

    #[test]
    fn identical_circuits_hash_identically() {
        let a = counter("ctr", 0);
        let b = counter("ctr", 0);
        assert_eq!(circuit_content_hash(&a), circuit_content_hash(&b));
        let cfg = PartitionConfig::with_tiles(2);
        assert_eq!(
            CompileKey::new(&a, &cfg, 8, false),
            CompileKey::new(&b, &cfg, 8, false)
        );
    }

    #[test]
    fn content_changes_change_the_hash() {
        let base = counter("ctr", 0);
        // A different init value, a different name, and a different
        // width are all semantic edits.
        assert_ne!(
            circuit_content_hash(&base),
            circuit_content_hash(&counter("ctr", 1))
        );
        assert_ne!(
            circuit_content_hash(&base),
            circuit_content_hash(&counter("ctr2", 0))
        );
    }

    #[test]
    fn key_separates_config_and_lane_shape() {
        let c = counter("ctr", 0);
        let cfg = PartitionConfig::with_tiles(2);
        let base = CompileKey::new(&c, &cfg, 8, false);
        // Lane count, packed flag, and any config field each fork the
        // digest.
        assert_ne!(base.digest(), CompileKey::new(&c, &cfg, 16, false).digest());
        assert_ne!(base.digest(), CompileKey::new(&c, &cfg, 8, true).digest());
        let mut cfg2 = cfg.clone();
        cfg2.tiles = 4;
        assert_ne!(base.digest(), CompileKey::new(&c, &cfg2, 8, false).digest());
        let mut cfg3 = cfg.clone();
        cfg3.seed = 1;
        assert_ne!(base.digest(), CompileKey::new(&c, &cfg3, 8, false).digest());
    }

    #[test]
    fn text_round_trips_and_rejects_corruption() {
        let c = counter("ctr", 0);
        let key = CompileKey::new(&c, &PartitionConfig::with_tiles(2), 64, true);
        let text = key.to_text();
        assert_eq!(CompileKey::from_text(&text), Some(key));
        assert_eq!(CompileKey::from_text("compilekey zz 8 0 00"), None);
        assert_eq!(CompileKey::from_text("notakey 00 8 0 00"), None);
        assert_eq!(CompileKey::from_text(""), None);
        // Trailing junk is corruption, not tolerance.
        assert_eq!(
            CompileKey::from_text(&format!("{} extra", text.trim())),
            None
        );
    }
}
