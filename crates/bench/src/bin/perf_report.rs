//! `perf_report`: run a corpus design under the traced engine and
//! print a Fig. 6-style performance report from the telemetry layer —
//! the per-tile straggler table (p50/p95/max of each sub-phase), each
//! worker's phase share from its event-trace track, the top static
//! opcodes of the compiled bytecode, and the full metrics snapshot.
//!
//! Flags / knobs: `--quick` (or `PARENDI_QUICK=1`) shrinks the run;
//! `PARENDI_TRACE=out.json` additionally writes the Perfetto-loadable
//! Chrome trace the report was computed from (the report itself always
//! traces in memory); `PARENDI_TRANSPORT` picks the off-chip backend.

use parendi_bench::{parse_quick_flag, quick, rule, write_bench_json, BenchRecord};
use parendi_core::{compile, PartitionConfig};
use parendi_designs::Benchmark;
use parendi_sim::{BspSimulator, TraceConfig, TransportChoice};
use parendi_telemetry::SpanKind;

/// `p`-th percentile of `sorted` (nearest-rank; `sorted` ascending).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn main() {
    parse_quick_flag();
    // Honour PARENDI_TRACE for an on-disk copy; the report itself
    // always needs an in-memory tile-level trace.
    let trace_cfg = match TraceConfig::from_env() {
        cfg if cfg.is_off() => TraceConfig::tile(),
        cfg => cfg,
    };
    let design = Benchmark::Sr(if quick() { 3 } else { 4 });
    let circuit = design.build();
    let per_chip = 8u32;
    let chips = 2u32;
    let threads = 4usize;
    let cycles: u64 = if quick() { 200 } else { 500 };
    let mut cfg = PartitionConfig::with_tiles(per_chip * chips);
    cfg.tiles_per_chip = per_chip;
    let comp = compile(&circuit, &cfg).expect("corpus design compiles");
    let transport = TransportChoice::from_env();
    let mut sim =
        BspSimulator::with_trace(&circuit, &comp.partition, threads, transport, trace_cfg);
    sim.run(50); // warm the persistent pool
    let ph = sim.run_timed(cycles);

    println!(
        "perf_report: {} | {} tiles / {} chips | {} threads | transport {} | {} cycles",
        design.name(),
        comp.partition.tiles_used(),
        comp.partition.chips,
        threads,
        sim.transport_name(),
        cycles,
    );
    println!(
        "rate {:.1} kcyc/s | straggler split per cycle: compute {:.2}µs, \
         offchip {:.2}µs, exchange {:.2}µs",
        cycles as f64 / ph.total_s / 1e3,
        ph.compute_s * 1e6 / cycles as f64,
        ph.offchip_s * 1e6 / cycles as f64,
        ph.exchange_s * 1e6 / cycles as f64,
    );

    // Fig. 6-style straggler table: distribution of per-tile sub-phase
    // times over the timed run.
    println!(
        "\nPer-tile sub-phase distribution ({} tiles, µs/cycle):",
        ph.per_tile.len()
    );
    println!(
        "{:>10} {:>9} {:>9} {:>9} {:>9}",
        "phase", "p50", "p95", "max", "sum"
    );
    rule(50);
    type TileGet = fn(&parendi_sim::bsp::TilePhases) -> f64;
    let cols: [(&str, TileGet); 3] = [
        ("compute", |t| t.compute_s),
        ("offchip", |t| t.offchip_s),
        ("exchange", |t| t.exchange_s),
    ];
    for (name, get) in &cols {
        let mut v: Vec<f64> = ph
            .per_tile
            .iter()
            .map(|t| get(t) * 1e6 / cycles as f64)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let sum: f64 = v.iter().sum();
        println!(
            "{:>10} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            name,
            percentile(&v, 50.0),
            percentile(&v, 95.0),
            v.last().copied().unwrap_or(0.0),
            sum,
        );
    }

    // Per-worker phase share from the event-trace tracks: how each
    // worker's traced span time divides among the span kinds.
    let summaries = sim.trace_summaries();
    let short = |kind: SpanKind| match kind {
        SpanKind::Compute => "compute",
        SpanKind::OffchipFlush => "flush",
        SpanKind::OverlapResidual => "residual",
        SpanKind::TransportSend => "send",
        SpanKind::TransportRecv => "recv",
        SpanKind::BarrierWait => "barrier",
        SpanKind::Exchange => "exchange",
    };
    println!("\nPer-worker phase share (event trace):");
    print!("{:>18} {:>9}", "track", "spans");
    for kind in SpanKind::ALL {
        print!(" {:>9}", short(kind));
    }
    println!();
    rule(18 + 10 + 10 * SpanKind::ALL.len());
    for s in &summaries {
        print!("{:>18} {:>9}", s.name, s.events);
        for kind in SpanKind::ALL {
            print!(" {:>8.1}%", s.share(kind) * 100.0);
        }
        if s.dropped > 0 {
            print!("  ({} dropped)", s.dropped);
        }
        println!();
    }

    // Top static opcodes of the compiled bytecode (the data fusion
    // decisions are made from).
    let stats = sim.code_stats();
    println!(
        "\nTop opcodes ({} static ops over {} tiles):",
        stats.total_ops, stats.tiles
    );
    for o in stats.top_opcodes(10) {
        println!(
            "  {:<10} w={:<3} x{:<8} {:>5.1}%",
            o.name,
            o.width,
            o.count,
            o.count as f64 * 100.0 / stats.total_ops.max(1) as f64
        );
    }
    println!("Top adjacent pairs (fusion candidates):");
    for p in stats.top_pairs(5) {
        println!("  {:<10} -> {:<10} x{}", p.first, p.second, p.count);
    }

    let metrics = sim.metrics_snapshot();
    println!("\nMetrics snapshot:");
    print!("{}", metrics.to_text());
    // A saturated trace buffer silently truncates every table above —
    // make it loud so a partial report is never read as a full one.
    let dropped = metrics.get("trace_events_dropped").unwrap_or(0);
    if dropped > 0 {
        eprintln!(
            "\nWARNING: {dropped} trace event(s) dropped — the per-worker \
             shares above undercount; raise the trace capacity \
             (TraceConfig::with_capacity) or use PARENDI_TRACE_LEVEL=phase"
        );
    }
    // Persist the measured point so the report leaves a machine-readable
    // trail next to the figure bins. An unwritable bench dir is a hard
    // failure: CI reads the JSON, not the tables above.
    let rec = BenchRecord {
        bin: "perf_report".into(),
        design: design.name(),
        engine: "bsp-traced".into(),
        chips,
        tiles: comp.partition.tiles_used() as u32,
        lanes: 1,
        threads: threads as u32,
        cycles,
        cycles_per_s: cycles as f64 / ph.total_s.max(1e-12),
        lane_cycles_per_s: cycles as f64 / ph.total_s.max(1e-12),
        compute_s: ph.compute_s,
        offchip_s: ph.offchip_s,
        exchange_s: ph.exchange_s,
        overlap_s: ph.overlap_s,
        total_s: ph.total_s,
        ..BenchRecord::default()
    }
    .with_metrics(metrics);
    match write_bench_json("perf_report", &[rec]) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("\nperf_report: could not write bench json: {e}");
            std::process::exit(1);
        }
    }
    // The engine writes the PARENDI_TRACE file (if configured) when it
    // drops, after its transport threads drain.
}
