//! # parendi-rtl
//!
//! The RTL substrate of the Parendi reproduction: arbitrary-width
//! [`Bits`] values, a structural data-dependence-graph IR
//! ([`ir::Circuit`]), a width-checked construction eDSL
//! ([`builder::Builder`]) that stands in for the Verilog frontend, and
//! design-size statistics ([`stats()`](stats()) in the [`stats`](stats/index.html) module).
//!
//! Downstream crates consume circuits produced here: `parendi-graph`
//! extracts fibers, `parendi-core` partitions them, and `parendi-sim`
//! executes them under the BSP model.
//!
//! # Examples
//!
//! ```
//! use parendi_rtl::{Builder, Bits};
//!
//! let mut b = Builder::new("xorshift");
//! let state = b.reg_init("s", Bits::from_u64(64, 0x2545F4914F6CDD1D));
//! let t1 = b.shli(state.q(), 13);
//! let x1 = b.xor(state.q(), t1);
//! let t2 = b.lshri(x1, 7);
//! let x2 = b.xor(x1, t2);
//! let t3 = b.shli(x2, 17);
//! let x3 = b.xor(x2, t3);
//! b.connect(state, x3);
//! b.output("out", state.q());
//! let circuit = b.finish()?;
//! assert!(circuit.nodes.len() > 6);
//! # Ok::<(), parendi_rtl::RtlError>(())
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod builder;
pub mod ir;
pub mod opt;
pub mod stats;
pub mod verilog;

pub use bits::{Bits, MAX_WIDTH};
pub use builder::{ArrayHandle, Builder, Reg, Signal};
pub use ir::{
    Array, ArrayId, BinOp, Circuit, InputDecl, InputId, Node, NodeId, NodeKind, OutputDecl, RegId,
    Register, RtlError, UnOp, WritePort,
};
pub use opt::{optimize, OptStats};
pub use stats::{stats, CircuitStats};
pub use verilog::to_verilog;
