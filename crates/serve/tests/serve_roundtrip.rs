//! End-to-end daemon tests: protocol round trips over a real Unix
//! socket, the four compile-cache properties the issue pins (lane
//! shapes fork entries, LRU eviction, cross-process hash stability,
//! single-flight concurrent compiles), and bit-identical equivalence
//! between daemon responses and a direct `GangSimulator` run.

use parendi_core::{compile, CompileKey, PartitionConfig};
use parendi_designs::Benchmark;
use parendi_rtl::bits::Bits;
use parendi_serve::cache::{CacheEntry, CompileCache};
use parendi_serve::{spawn, Client, PackedChoice, ProtoError, ScenarioBatch, ServeConfig};
use parendi_sim::{dump_vcd_lane, GangSimulator, Precompiled, StimulusSet};
use parendi_telemetry::MetricsRegistry;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A per-test private socket path (tests share one process; sockets
/// must not collide).
fn test_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "parendi-serve-test-{}-{tag}.sock",
        std::process::id()
    ))
}

fn start(tag: &str) -> (parendi_serve::ServerHandle, PathBuf) {
    let path = test_socket(tag);
    let _ = std::fs::remove_file(&path);
    let handle = spawn(ServeConfig::with_socket(&path)).expect("spawn daemon");
    (handle, path)
}

fn stop(handle: parendi_serve::ServerHandle, path: &PathBuf) {
    Client::connect(path)
        .expect("connect for shutdown")
        .shutdown()
        .expect("clean shutdown");
    handle.join();
}

/// Submit → per-lane streaming → DONE, with results bit-identical to
/// a direct `GangSimulator` run of the same stimulus (the acceptance
/// criterion), including per-lane horizons retiring out of order.
#[test]
fn daemon_matches_direct_gang_run() {
    let (handle, path) = start("equiv");
    let mut client = Client::connect(&path).expect("connect");

    let mut batch = ScenarioBatch::new("ca64", 4);
    batch.packed = PackedChoice::Off;
    let l0 = batch.scenario(40);
    let l1 = batch.scenario(25);
    batch.drive(l0, 0, "inj", Bits::from_u64(1, 1));
    batch.drive(l0, 1, "inj", Bits::from_u64(1, 0));
    batch.drive(l0, 10, "inj", Bits::from_u64(1, 1));
    batch.drive(l1, 3, "inj", Bits::from_u64(1, 1));
    batch.drive(l1, 4, "inj", Bits::from_u64(1, 0));
    let result = client.submit(&batch).expect("submit");
    assert_eq!(result.summary.scenarios, 2);
    assert_eq!(result.summary.gang_lanes, 2);
    assert!(!result.summary.packed);
    assert_eq!(result.lanes.len(), 2);

    // The direct run: same design, same partition shape, same lane
    // bucket, same stimulus — the server must add nothing on top.
    let circuit = Benchmark::parse("ca64").unwrap().build();
    let comp = compile(&circuit, &PartitionConfig::with_tiles(4)).expect("compile");
    let mut sim = GangSimulator::new(&circuit, &comp.partition, 2, 2);
    let mut stim = StimulusSet::new(2);
    stim.drive(0, 0, "inj", Bits::from_u64(1, 1));
    stim.drive(1, 0, "inj", Bits::from_u64(1, 0));
    stim.drive(10, 0, "inj", Bits::from_u64(1, 1));
    stim.drive(3, 1, "inj", Bits::from_u64(1, 1));
    stim.drive(4, 1, "inj", Bits::from_u64(1, 0));
    // Lane 1 retires at 25, lane 0 at 40 — replay the server's
    // segmented schedule.
    sim.run_stimulus(25, &stim);
    let want_l1 = sim.peek_outputs_lane(1);
    sim.finish_lane(1);
    sim.run_stimulus(15, &stim);
    let want_l0 = sim.peek_outputs_lane(0);

    for (lane, want) in [(0u32, want_l0), (1u32, want_l1)] {
        let got = result.lane(lane).expect("lane result");
        let got_values: Vec<&Bits> = got.outputs.iter().map(|(_, v)| v).collect();
        assert_eq!(got_values.len(), want.len(), "lane {lane} output count");
        for ((name, got), want) in got.outputs.iter().zip(&want) {
            assert_eq!(got, want, "lane {lane} output {name} must be bit-identical");
        }
    }

    stop(handle, &path);
}

/// The same circuit under two lane shapes yields two cache entries
/// (lane shape is part of the key), and resubmitting either shape is
/// a hit.
#[test]
fn lane_shapes_fork_cache_entries() {
    let (handle, path) = start("shapes");
    let mut client = Client::connect(&path).expect("connect");

    let mut narrow = ScenarioBatch::new("sr2", 8);
    narrow.packed = PackedChoice::Off;
    narrow.scenario(5);
    narrow.scenario(5);
    let mut wide = narrow.clone();
    for _ in 0..3 {
        wide.scenario(5);
    }

    let first = client.submit(&narrow).expect("narrow submit");
    assert!(!first.summary.cache_hit, "fresh daemon: must be a miss");
    let second = client.submit(&wide).expect("wide submit");
    assert!(!second.summary.cache_hit, "new lane shape: must be a miss");
    assert_eq!(
        second.summary.gang_lanes, 8,
        "5 scenarios bucket to 8 lanes"
    );
    assert_ne!(
        first.summary.key_digest, second.summary.key_digest,
        "lane shape is part of the compile key"
    );

    let again = client.submit(&narrow).expect("narrow resubmit");
    assert!(again.summary.cache_hit, "same shape: must be a hit");
    assert_eq!(again.summary.key_digest, first.summary.key_digest);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("serve_cache_misses"), Some(2));
    assert_eq!(stats.get("serve_cache_hits"), Some(1));
    assert_eq!(stats.get("serve_batches"), Some(3));
    assert_eq!(stats.get("serve_scenarios"), Some(2 + 5 + 2));

    stop(handle, &path);
}

/// Builds a real cache entry for one tiny uniquely-named circuit.
fn tiny_entry(name: &str, lanes: usize) -> (u64, CacheEntry) {
    let mut b = parendi_rtl::Builder::new(name);
    let r = b.reg("c", 16, 0);
    let one = b.lit(16, 1);
    let n = b.add(r.q(), one);
    b.connect(r, n);
    b.output("q", r.q());
    let circuit = b.finish().unwrap();
    let cfg = PartitionConfig::with_tiles(2);
    let key = CompileKey::new(&circuit, &cfg, lanes as u32, false);
    let comp = compile(&circuit, &cfg).expect("compile tiny");
    let pre = Precompiled::build(&circuit, &comp.partition, lanes, false);
    (
        key.digest(),
        CacheEntry {
            key,
            circuit,
            partition: comp.partition,
            pre,
            compile_s: 0.0,
        },
    )
}

/// At capacity the least-recently-used entry is evicted — and touching
/// an entry protects it.
#[test]
fn lru_evicts_the_coldest_entry() {
    let metrics = MetricsRegistry::new();
    let cache = CompileCache::new(2, &metrics);
    let (da, ea) = tiny_entry("lru_a", 2);
    let (db, eb) = tiny_entry("lru_b", 2);
    let (dc, ec) = tiny_entry("lru_c", 2);
    assert!(
        da != db && db != dc && da != dc,
        "distinct names, distinct digests"
    );

    cache.get_or_build(da, || Ok(ea)).expect("insert a");
    cache.get_or_build(db, || Ok(eb)).expect("insert b");
    // Touch `a` so `b` is now the coldest.
    let (_, hit) = cache
        .get_or_build(da, || panic!("a is cached"))
        .expect("touch a");
    assert!(hit);
    cache
        .get_or_build(dc, || Ok(ec))
        .expect("insert c evicts b");

    assert_eq!(cache.len(), 2);
    assert!(cache.contains(da), "recently touched entry survives");
    assert!(!cache.contains(db), "coldest entry is evicted");
    assert!(cache.contains(dc));
    assert_eq!(metrics.snapshot().get("serve_cache_evictions"), Some(1));
}

/// Two simultaneous requests for the same key compile once: the
/// second blocks on the in-flight build and shares its artifact.
#[test]
fn concurrent_same_key_compiles_once_direct() {
    let metrics = MetricsRegistry::new();
    let cache = Arc::new(CompileCache::new(4, &metrics));
    let builds = Arc::new(AtomicUsize::new(0));
    let building = Arc::new(AtomicBool::new(false));
    let (digest, entry) = tiny_entry("single_flight", 2);

    let slow = {
        let cache = cache.clone();
        let builds = builds.clone();
        let building = building.clone();
        std::thread::spawn(move || {
            cache
                .get_or_build(digest, move || {
                    building.store(true, Ordering::SeqCst);
                    builds.fetch_add(1, Ordering::SeqCst);
                    // Hold the Building slot long enough for the other
                    // thread to arrive and park.
                    std::thread::sleep(std::time::Duration::from_millis(200));
                    Ok(entry)
                })
                .expect("slow build")
        })
    };
    // Only start the second lookup once the first is inside its build.
    while !building.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    let (_, hit) = cache
        .get_or_build(digest, || panic!("second request must not build"))
        .expect("waiter");
    assert!(hit, "the waiter shares the in-flight compile as a hit");
    slow.join().expect("builder thread");
    assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one compile ran");
    assert_eq!(metrics.snapshot().get("serve_cache_misses"), Some(1));
    assert_eq!(metrics.snapshot().get("serve_cache_hits"), Some(1));
}

/// The daemon-level version: four concurrent clients race the same
/// batch at a fresh daemon; exactly one compile runs.
#[test]
fn concurrent_clients_share_one_compile() {
    let (handle, path) = start("race");
    let clients = 4;
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&path).expect("connect");
                let mut batch = ScenarioBatch::new("sr2", 8);
                batch.packed = PackedChoice::Off;
                batch.scenario(10);
                batch.scenario(10);
                client.submit(&batch).expect("racing submit")
            })
        })
        .collect();
    let results: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("client"))
        .collect();

    let digest = results[0].summary.key_digest;
    assert!(results.iter().all(|r| r.summary.key_digest == digest));
    let mut client = Client::connect(&path).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("serve_cache_misses"),
        Some(1),
        "four racing clients, one compile"
    );
    assert_eq!(stats.get("serve_cache_hits"), Some(clients as u64 - 1));
    // Every client must have gotten identical outputs.
    for r in &results[1..] {
        for (a, b) in r.lanes.iter().zip(&results[0].lanes) {
            assert_eq!(a, b, "racing clients see identical results");
        }
    }

    stop(handle, &path);
}

const KEY_CHILD_ENV: &str = "PARENDI_SERVE_KEY_CHILD_PATH";

fn stability_key() -> CompileKey {
    let circuit = Benchmark::parse("sr2").expect("sr2").build();
    CompileKey::new(&circuit, &PartitionConfig::with_tiles(8), 4, false)
}

/// Child half of `compile_key_is_stable_across_processes`: inert
/// unless spawned with the handoff env var. Writes its digest of the
/// fixed design to the given path.
#[test]
fn serve_key_child_entry() {
    let Ok(path) = std::env::var(KEY_CHILD_ENV) else {
        return;
    };
    std::fs::write(&path, stability_key().to_text()).expect("write child key");
}

/// The compile key must be identical across processes — a daemon
/// restarted tomorrow must reuse what today's daemon would cache. A
/// re-exec'd child computes the same key and the digests must match
/// (this catches any `HashMap`-iteration or ASLR dependence in the
/// hash walk).
#[test]
fn compile_key_is_stable_across_processes() {
    let path = std::env::temp_dir().join(format!(
        "parendi-serve-key-child-{}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let exe = std::env::current_exe().expect("current test binary");
    let status = std::process::Command::new(&exe)
        .args(["serve_key_child_entry", "--exact"])
        .env(KEY_CHILD_ENV, &path)
        .status()
        .expect("spawn key child");
    assert!(status.success(), "child failed: {status:?}");
    let child_text = std::fs::read_to_string(&path).expect("read child key");
    let child_key = CompileKey::from_text(&child_text).expect("parse child key");
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        child_key,
        stability_key(),
        "compile key digests must be process-independent"
    );
}

/// The streamed VCD slice equals `dump_vcd_lane` of a direct engine —
/// same circuit, same horizon, byte for byte.
#[test]
fn vcd_slice_matches_direct_dump() {
    let (handle, path) = start("vcd");
    let mut client = Client::connect(&path).expect("connect");
    let mut batch = ScenarioBatch::new("sr2", 8);
    batch.packed = PackedChoice::Off;
    batch.scenario(12);
    batch.vcd_lane = Some(0);
    let result = client.submit(&batch).expect("submit");
    let got = result.vcd.expect("vcd slice");

    let circuit = Benchmark::parse("sr2").unwrap().build();
    let comp = compile(&circuit, &PartitionConfig::with_tiles(8)).expect("compile");
    let mut sim = GangSimulator::new(&circuit, &comp.partition, 2, 1);
    let mut want = Vec::new();
    dump_vcd_lane(&mut sim, 0, 12, &mut want).expect("direct dump");
    assert_eq!(
        got,
        String::from_utf8(want).unwrap(),
        "VCD must be identical"
    );

    stop(handle, &path);
}

/// Failures answer `ERR` and keep the connection serving: a bad
/// design, a bad payload, and an unknown input each fail loudly, then
/// a good batch still succeeds on the same stream.
#[test]
fn errors_are_loud_and_nonfatal() {
    let (handle, path) = start("errors");
    let mut client = Client::connect(&path).expect("connect");

    let mut unknown = ScenarioBatch::new("nosuchdesign", 4);
    unknown.scenario(5);
    match client.submit(&unknown) {
        Err(ProtoError::Remote(msg)) => assert!(msg.contains("nosuchdesign"), "{msg}"),
        other => panic!("expected remote error, got {other:?}"),
    }

    let mut bad_input = ScenarioBatch::new("sr2", 8);
    bad_input.scenario(5);
    bad_input.drive(0, 0, "not_an_input", Bits::from_u64(4, 1));
    match client.submit(&bad_input) {
        Err(ProtoError::Remote(msg)) => assert!(msg.contains("not_an_input"), "{msg}"),
        other => panic!("expected remote error, got {other:?}"),
    }

    // The stream survives both failures.
    let mut good = ScenarioBatch::new("sr2", 8);
    good.packed = PackedChoice::Off;
    good.scenario(5);
    let result = client.submit(&good).expect("good batch after errors");
    assert_eq!(result.summary.scenarios, 1);

    // CLEAR drops the entry: the same batch misses again.
    client.clear_cache().expect("clear");
    let again = client.submit(&good).expect("resubmit after clear");
    assert!(!again.summary.cache_hit, "cleared cache must re-compile");

    stop(handle, &path);
}

/// Shutdown is clean: the daemon confirms, the accept loop exits, the
/// socket file is removed, and later connects fail.
#[test]
fn shutdown_removes_the_socket() {
    let (handle, path) = start("shutdown");
    Client::connect(&path)
        .expect("connect")
        .shutdown()
        .expect("shutdown confirmed");
    handle.join();
    assert!(!path.exists(), "socket file must be removed on exit");
    assert!(
        Client::connect(&path).is_err(),
        "no daemon must answer after shutdown"
    );
}
