//! Lane fork and fault injection: `fork_lanes` must broadcast the
//! golden lane's full architectural state (the inverse of
//! `finish_lane`), post-fork divergence must match per-lane reference
//! interpreters, and an installed `FaultPlan` must perturb exactly the
//! specified lane/register/bit — stuck-ats persistently, transient
//! flips for exactly one cycle — with the campaign classifying the
//! outcome against the golden lane.

mod common;

use common::random_circuit_io;
use parendi_core::{compile, Compilation, PartitionConfig};
use parendi_rtl::{ArrayId, Circuit, RegId, Signal};
use parendi_sim::{run_campaign, FaultOutcome, FaultPlan, GangSimulator, Simulator};

fn multi_chip(seed: u64) -> (Circuit, Compilation) {
    let c = random_circuit_io(seed, 10, 50, 2);
    let mut cfg = PartitionConfig::with_tiles(6);
    cfg.tiles_per_chip = 3;
    let comp = compile(&c, &cfg).expect("compiles");
    assert!(comp.partition.chips >= 2, "must exercise the transport");
    (c, comp)
}

fn lane_state(gang: &GangSimulator<'_>, lane: usize) -> Vec<u64> {
    let c = gang.circuit();
    let mut v = Vec::new();
    for ri in 0..c.regs.len() {
        v.extend_from_slice(gang.reg_value_lane(RegId(ri as u32), lane).words());
    }
    for (ai, a) in c.arrays.iter().enumerate() {
        for idx in 0..a.depth {
            v.extend_from_slice(gang.array_value_lane(ArrayId(ai as u32), idx, lane).words());
        }
    }
    v
}

/// After a shared boot (divergent stimulus, one retired lane),
/// `fork_lanes` must make every lane — including the retired one —
/// bit-identical to the golden lane, and reactivate them all.
#[test]
fn fork_broadcasts_the_golden_lane() {
    let (c, comp) = multi_chip(81);
    for packed in [false, true] {
        let lanes = if packed { 6 } else { 5 };
        let mut gang = GangSimulator::with_layout(&c, &comp.partition, 2, lanes, packed, false);
        for l in 0..lanes {
            gang.poke_lane("in0", l, 7 + l as u64);
            gang.poke_lane("in1", l, l as u64);
        }
        gang.run(11);
        gang.finish_lane(1);
        gang.run(4);
        let golden = 3usize;
        let want = lane_state(&gang, golden);
        // Sanity: lanes diverged before the fork.
        assert_ne!(lane_state(&gang, 0), want, "stimulus must diverge lanes");

        gang.fork_lanes(golden);
        assert_eq!(gang.active_lanes(), lanes, "fork reactivates every lane");
        for l in 0..lanes {
            assert_eq!(
                lane_state(&gang, l),
                want,
                "packed={packed}: lane {l} not a copy of the golden lane"
            );
        }
    }
}

/// Fork-then-diverge must match fresh per-lane reference interpreters
/// fed the golden lane's boot stimulus followed by the lane's own:
/// the boot-prefix-shared campaign pattern, proven bit-exact.
#[test]
fn post_fork_divergence_matches_the_interpreter() {
    let (c, comp) = multi_chip(82);
    let lanes = 4usize;
    let golden = 2usize;
    let boot = 13u64;
    let tail = 17u64;

    let mut gang = GangSimulator::new(&c, &comp.partition, 2, lanes);
    for l in 0..lanes {
        gang.poke_lane("in0", l, 50 + l as u64);
        gang.poke_lane("in1", l, 5 * l as u64);
    }
    gang.run(boot);
    gang.fork_lanes(golden);
    for l in 0..lanes {
        gang.poke_lane("in0", l, 200 + 3 * l as u64);
    }
    gang.run(tail);

    for l in 0..lanes {
        // Reference: the golden lane's boot, then this lane's tail.
        let mut r = Simulator::new(&c);
        r.poke("in0", 50 + golden as u64);
        r.poke("in1", 5 * golden as u64);
        r.step_n(boot);
        r.poke("in0", 200 + 3 * l as u64);
        r.step_n(tail);
        for ri in 0..c.regs.len() {
            assert_eq!(
                gang.reg_value_lane(RegId(ri as u32), l),
                r.reg_value(RegId(ri as u32)),
                "lane {l} reg {ri} ({}) diverged from the interpreter",
                c.regs[ri].name,
            );
        }
    }
}

/// A purpose-built circuit where fault effects are fully predictable:
/// a counter that feeds an output (faults on it are *detected*), a
/// register feeding nothing (faults on it are *latent*), and the
/// fault-free case (*silent* — here, a stuck-at writing the value the
/// bit already has).
fn classification_circuit() -> Circuit {
    let mut b = parendi_rtl::Builder::new("riros");
    let cnt = b.reg("cnt", 16, 0);
    let one = b.lit(16, 1);
    let n = b.add(cnt.q(), one);
    b.connect(cnt, n);
    b.output("o_cnt", cnt.q());
    // Shadow register: observes the counter through its own unique
    // next-value net, feeds no output — faults on it can only be
    // latent. (shadow_40 = XOR(0..39) = 0, so a stuck-at-1 provably
    // differs from the fault-free value at campaign end.)
    let shadow = b.reg("shadow", 16, 0);
    let sn = b.xor(shadow.q(), cnt.q());
    b.connect(shadow, sn);
    // A register that recomputes the constant 1 every cycle: a
    // stuck-at-1 on bit 0 writes the value the bit already has.
    let ones = b.reg("always1", 8, 1);
    let one8 = b.lit(8, 1);
    let keep: Signal = b.or(ones.q(), one8);
    b.connect(ones, keep);
    b.output("o_keep", ones.q());
    b.finish().expect("validates")
}

/// The campaign classifies the three canonical outcomes on the
/// purpose-built circuit: output-visible ⇒ detected, state-only ⇒
/// latent, masked ⇒ silent — and the golden lane matches the
/// reference interpreter afterwards (faults never leak into it).
#[test]
fn campaign_classifies_detected_latent_silent() {
    let c = classification_circuit();
    let comp = compile(&c, &PartitionConfig::with_tiles(2)).expect("compiles");
    let lanes = 4usize;
    let golden = 0u32;
    let mut gang = GangSimulator::new(&c, &comp.partition, 2, lanes);

    let mut plan = FaultPlan::new();
    plan.stuck_at(1, "cnt", 3, true); // visible at o_cnt ⇒ detected
    plan.stuck_at(2, "shadow", 5, true); // no output cone ⇒ latent
    plan.stuck_at(3, "always1", 0, true); // already 1 ⇒ silent
    let cycles = 40u64;
    let report = run_campaign(&mut gang, &plan, golden, cycles, 8).expect("valid plan");

    assert_eq!(report.detected(), 1, "{}", report.summary());
    assert_eq!(report.latent(), 1, "{}", report.summary());
    assert_eq!(report.silent(), 1, "{}", report.summary());
    assert!(matches!(
        report.outcomes[0],
        (1, FaultOutcome::Detected { .. })
    ));
    assert_eq!(report.outcomes[1], (2, FaultOutcome::Latent));
    assert_eq!(report.outcomes[2], (3, FaultOutcome::Silent));

    // The golden lane is untouched: it still matches the interpreter.
    let mut r = Simulator::new(&c);
    r.step_n(cycles);
    for ri in 0..c.regs.len() {
        assert_eq!(
            gang.reg_value_lane(RegId(ri as u32), golden as usize),
            r.reg_value(RegId(ri as u32)),
            "golden lane corrupted: reg {}",
            c.regs[ri].name,
        );
    }

    // Coverage counters landed in the metrics registry.
    let m = gang.metrics_snapshot();
    assert_eq!(m.get("faults_injected"), Some(3));
    assert_eq!(m.get("faults_detected"), Some(1));
    assert_eq!(m.get("faults_latent"), Some(1));
    assert_eq!(m.get("faults_silent"), Some(1));

    // Campaigns must also run under packed lanes (1-bit state
    // bit-packed across lanes) with identical classification.
    let mut packed = GangSimulator::new_packed(&c, &comp.partition, 2, lanes);
    let report = run_campaign(&mut packed, &plan, golden, cycles, 8).expect("valid plan");
    assert_eq!(
        (report.detected(), report.latent(), report.silent()),
        (1, 1, 1),
        "packed classification diverged: {}",
        report.summary()
    );
}

/// A transient flip perturbs its bit for exactly one cycle: identical
/// to the golden lane before the flip cycle, divergent right after,
/// and the divergence evolves as a one-shot XOR would in the
/// reference (checked by replaying the flip in an interpreter).
#[test]
fn transient_flip_applies_exactly_once() {
    let c = classification_circuit();
    let comp = compile(&c, &PartitionConfig::with_tiles(2)).expect("compiles");
    let mut gang = GangSimulator::new(&c, &comp.partition, 2, 2);

    let mut plan = FaultPlan::new();
    plan.flip(1, "cnt", 0, 5); // flip bit 0 of cnt during cycle 5
    gang.apply_fault_plan(&plan).expect("valid plan");

    // Up to and including cycle 5 the fault is invisible in committed
    // state read *before* cycle 5 runs.
    gang.run(5);
    assert_eq!(
        gang.reg_value_lane(RegId(0), 1).to_u64(),
        5,
        "flip must not act before its cycle"
    );
    // Cycle 5 executes with the flipped next-state bit: cnt becomes
    // (5+1) ^ 1 = 7, and from then on the lane stays exactly 1 ahead.
    gang.run(1);
    assert_eq!(gang.reg_value_lane(RegId(0), 1).to_u64(), 7);
    assert_eq!(gang.reg_value_lane(RegId(0), 0).to_u64(), 6);
    gang.run(10);
    assert_eq!(
        gang.reg_value_lane(RegId(0), 1).to_u64(),
        gang.reg_value_lane(RegId(0), 0).to_u64() + 1,
        "a transient flip must not re-apply"
    );

    // clear_faults lifts the plan: forked lanes stay in lockstep.
    gang.clear_faults();
    gang.fork_lanes(0);
    gang.run(7);
    assert_eq!(
        gang.reg_value_lane(RegId(0), 1),
        gang.reg_value_lane(RegId(0), 0),
        "cleared faults must stop perturbing"
    );
}

/// Rejected plans: unknown register, out-of-range bit or lane, and a
/// golden-lane target — each with a message naming the offender, and
/// the gang left fault-free.
#[test]
fn invalid_plans_are_rejected_with_context() {
    let c = classification_circuit();
    let comp = compile(&c, &PartitionConfig::with_tiles(2)).expect("compiles");
    let mut gang = GangSimulator::new(&c, &comp.partition, 2, 3);

    let mut plan = FaultPlan::new();
    plan.stuck_at(1, "nonesuch", 0, true);
    let err = gang.apply_fault_plan(&plan).unwrap_err();
    assert!(err.contains("nonesuch"), "{err}");

    let mut plan = FaultPlan::new();
    plan.stuck_at(1, "cnt", 99, true);
    let err = gang.apply_fault_plan(&plan).unwrap_err();
    assert!(err.contains("bit 99"), "{err}");

    let mut plan = FaultPlan::new();
    plan.stuck_at(7, "cnt", 0, true);
    let err = gang.apply_fault_plan(&plan).unwrap_err();
    assert!(err.contains("lane 7"), "{err}");

    let mut plan = FaultPlan::new();
    plan.stuck_at(0, "cnt", 0, true);
    let err = run_campaign(&mut gang, &plan, 0, 10, 5).unwrap_err();
    assert!(err.contains("golden"), "{err}");

    // None of the rejected plans stuck: both lanes still agree.
    gang.run(20);
    assert_eq!(
        gang.reg_value_lane(RegId(0), 1),
        gang.reg_value_lane(RegId(0), 0),
        "a rejected plan must install nothing"
    );
}

/// Faults and checkpoints compose: a campaign interrupted by
/// snapshot/restore classifies identically to an uninterrupted one
/// (the plan is re-applied after restore; fault state itself is not
/// part of the snapshot — documented in docs/CHECKPOINT.md).
#[test]
fn campaigns_survive_checkpoint_restore() {
    let (c, comp) = multi_chip(83);
    let lanes = 4usize;
    let golden = 0u32;
    let plan = FaultPlan::round_robin(&c, lanes as u32, golden);
    assert!(!plan.is_empty());

    // Uninterrupted campaign.
    let mut gang = GangSimulator::new(&c, &comp.partition, 2, lanes);
    for l in 0..lanes {
        gang.poke_lane("in0", l, 9);
        gang.poke_lane("in1", l, 4);
    }
    let want = run_campaign(&mut gang, &plan, golden, 30, 6).expect("valid plan");

    // Same campaign, snapshotted mid-flight and resumed in a fresh
    // engine: first half here, snapshot, second half there.
    let mut first = GangSimulator::new(&c, &comp.partition, 2, lanes);
    for l in 0..lanes {
        first.poke_lane("in0", l, 9);
        first.poke_lane("in1", l, 4);
    }
    let _ = run_campaign(&mut first, &plan, golden, 18, 6).expect("valid plan");
    let snap = first.snapshot();
    let mut second = GangSimulator::new(&c, &comp.partition, 3, lanes);
    second.restore(&snap).expect("shapes match");
    let resumed = run_campaign(&mut second, &plan, golden, 12, 6).expect("valid plan");

    // Detected set must match exactly; latent/silent classification is
    // computed on final state, which is bit-identical by the restore
    // contract, so the whole outcome vector agrees.
    let strip = |r: &parendi_sim::CampaignReport| -> Vec<(u32, bool)> {
        r.outcomes
            .iter()
            .map(|(l, o)| (*l, matches!(o, FaultOutcome::Detected { .. })))
            .collect()
    };
    assert_eq!(
        strip(&resumed),
        strip(&want),
        "checkpointed campaign diverged: {} vs {}",
        resumed.summary(),
        want.summary(),
    );
}
