//! VCD (Value Change Dump) waveform export for the reference simulator.
//!
//! Dumps every register and primary output each cycle, emitting only
//! changed values as the VCD format intends. Output loads in GTKWave or
//! any other waveform viewer.

use crate::interp::Simulator;
use parendi_rtl::bits::Bits;
use parendi_rtl::{Circuit, NodeId, RegId};
use std::io::{self, Write};

/// Canonical VCD binary: leading zeros trimmed (but at least one digit).
fn trimmed_binary(v: &Bits) -> String {
    let full = format!("{v:b}");
    let t = full.trim_start_matches('0');
    if t.is_empty() {
        "0".into()
    } else {
        t.into()
    }
}

/// Streams simulator state to a VCD file.
pub struct VcdWriter<W: Write> {
    out: W,
    /// (vcd id, reg) pairs.
    regs: Vec<(String, RegId)>,
    /// (vcd id, output node, name) triples.
    outputs: Vec<(String, NodeId)>,
    last: Vec<Option<Bits>>,
    time: u64,
}

fn vcd_id(mut n: usize) -> String {
    // Printable-character identifier, base 94 starting at '!'.
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break s;
        }
        n -= 1;
    }
}

impl<W: Write> VcdWriter<W> {
    /// Writes the VCD header for `circuit` and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W, circuit: &Circuit) -> io::Result<Self> {
        writeln!(out, "$date today $end")?;
        writeln!(out, "$version parendi-sim $end")?;
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {} $end", circuit.name.replace(' ', "_"))?;
        let mut regs = Vec::new();
        let mut outputs = Vec::new();
        let mut n = 0usize;
        for (i, r) in circuit.regs.iter().enumerate() {
            let id = vcd_id(n);
            n += 1;
            writeln!(
                out,
                "$var reg {} {} {} $end",
                r.width,
                id,
                r.name.replace(' ', "_")
            )?;
            regs.push((id, RegId(i as u32)));
        }
        for o in &circuit.outputs {
            let id = vcd_id(n);
            n += 1;
            let w = circuit.width(o.node);
            writeln!(
                out,
                "$var wire {} {} {} $end",
                w,
                id,
                o.name.replace(' ', "_")
            )?;
            outputs.push((id, o.node));
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        Ok(VcdWriter {
            out,
            last: vec![None; regs.len() + outputs.len()],
            regs,
            outputs,
            time: 0,
        })
    }

    /// Records the simulator's current state as one timestep.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn sample(&mut self, sim: &Simulator<'_>) -> io::Result<()> {
        writeln!(self.out, "#{}", self.time)?;
        self.time += 1;
        let mut slot = 0usize;
        for (id, reg) in &self.regs {
            let v = sim.reg_value(*reg);
            if self.last[slot].as_ref() != Some(&v) {
                writeln!(self.out, "b{} {}", trimmed_binary(&v), id)?;
                self.last[slot] = Some(v);
            }
            slot += 1;
        }
        for (id, node) in &self.outputs {
            let v = sim.peek_node(*node);
            if self.last[slot].as_ref() != Some(&v) {
                writeln!(self.out, "b{} {}", trimmed_binary(&v), id)?;
                self.last[slot] = Some(v);
            }
            slot += 1;
        }
        Ok(())
    }
}

/// Runs `cycles` cycles of `sim`, dumping a VCD trace into `out`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn dump_vcd<W: Write>(sim: &mut Simulator<'_>, cycles: u64, out: W) -> io::Result<()> {
    let mut vcd = VcdWriter::new(out, sim_circuit(sim))?;
    vcd.sample(sim)?;
    for _ in 0..cycles {
        sim.step();
        vcd.sample(sim)?;
    }
    Ok(())
}

fn sim_circuit<'c>(sim: &Simulator<'c>) -> &'c Circuit {
    sim.circuit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_rtl::Builder;

    fn counter() -> Circuit {
        let mut b = Builder::new("cnt");
        let r = b.reg("count", 4, 0);
        let one = b.lit(4, 1);
        let n = b.add(r.q(), one);
        b.connect(r, n);
        b.output("q", r.q());
        b.finish().unwrap()
    }

    #[test]
    fn vcd_structure_and_changes() {
        let c = counter();
        let mut sim = Simulator::new(&c);
        let mut buf = Vec::new();
        dump_vcd(&mut sim, 5, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$timescale 1ns $end"));
        assert!(text.contains("$var reg 4 ! count $end"));
        assert!(text.contains("$enddefinitions $end"));
        // 6 timesteps (initial + 5).
        for t in 0..=5 {
            assert!(text.contains(&format!("#{t}\n")), "missing timestep {t}");
        }
        // Counter value 3 appears at some point.
        assert!(
            text.contains("b11 !"),
            "value change for 3 missing:\n{text}"
        );
    }

    #[test]
    fn unchanged_values_are_not_re_emitted() {
        // A register that never changes should appear once after t0.
        let mut b = Builder::new("hold");
        let r = b.reg("frozen", 8, 0x5a);
        b.connect(r, r.q());
        let c = b.finish().unwrap();
        let mut sim = Simulator::new(&c);
        let mut buf = Vec::new();
        dump_vcd(&mut sim, 10, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let emissions = text.matches("b1011010 !").count();
        assert_eq!(
            emissions, 1,
            "frozen register dumped more than once:\n{text}"
        );
    }

    #[test]
    fn vcd_ids_are_printable_and_unique() {
        let ids: Vec<String> = (0..200).map(vcd_id).collect();
        let unique: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
        assert!(ids
            .iter()
            .all(|s| s.chars().all(|c| ('!'..='~').contains(&c))));
    }
}
