//! An ergonomic, width-checked builder for [`Circuit`]s.
//!
//! The builder plays the role of the Verilog frontend in this
//! reproduction (see DESIGN.md §2): designs are *constructed* through a
//! typed Rust eDSL rather than parsed. Width errors panic at
//! construction time with the offending hierarchical scope in the
//! message, which is the moral equivalent of an elaboration error.
//!
//! # Examples
//!
//! A 8-bit counter with an enable input:
//!
//! ```
//! use parendi_rtl::Builder;
//!
//! let mut b = Builder::new("counter");
//! let en = b.input("en", 1);
//! let count = b.reg("count", 8, 0);
//! let one = b.lit(8, 1);
//! let next = b.add(count.q(), one);
//! let next = b.mux(en, next, count.q());
//! b.connect(count, next);
//! b.output("value", count.q());
//! let circuit = b.finish().unwrap();
//! assert_eq!(circuit.regs.len(), 1);
//! ```

use crate::bits::Bits;
use crate::ir::{
    Array, ArrayId, BinOp, Circuit, InputDecl, InputId, Node, NodeId, NodeKind, OutputDecl, RegId,
    Register, RtlError, UnOp, WritePort,
};

/// A handle to a combinational value under construction.
///
/// `Signal`s are cheap copies of `(node id, width)`; all operations on
/// them go through the [`Builder`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Signal {
    id: NodeId,
    width: u32,
}

impl Signal {
    /// The node backing this signal.
    #[inline]
    pub fn id(self) -> NodeId {
        self.id
    }

    /// The signal width in bits.
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }
}

/// A handle to a register: its id plus its read (current-value) signal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Reg {
    id: RegId,
    q: Signal,
}

impl Reg {
    /// The register id.
    #[inline]
    pub fn id(self) -> RegId {
        self.id
    }

    /// The register's current-value (`q`) signal.
    #[inline]
    pub fn q(self) -> Signal {
        self.q
    }
}

/// A handle to a memory array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArrayHandle {
    id: ArrayId,
    width: u32,
    depth: u32,
}

impl ArrayHandle {
    /// The array id.
    #[inline]
    pub fn id(self) -> ArrayId {
        self.id
    }

    /// Element width in bits.
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }

    /// Number of elements.
    #[inline]
    pub fn depth(self) -> u32 {
        self.depth
    }
}

/// Incrementally builds a [`Circuit`].
///
/// See the [module documentation](self) for an example.
#[derive(Debug)]
pub struct Builder {
    circuit: Circuit,
    scopes: Vec<String>,
}

impl Builder {
    /// Starts a new design with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Builder {
            circuit: Circuit::new(name),
            scopes: Vec::new(),
        }
    }

    /// Enters a naming scope; registers and arrays declared inside get
    /// `scope.`-prefixed hierarchical names.
    pub fn push_scope(&mut self, name: impl Into<String>) {
        self.scopes.push(name.into());
    }

    /// Leaves the innermost naming scope.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop_scope(&mut self) {
        self.scopes.pop().expect("pop_scope with no open scope");
    }

    /// Runs `f` inside a named scope.
    pub fn scoped<T>(&mut self, name: impl Into<String>, f: impl FnOnce(&mut Self) -> T) -> T {
        self.push_scope(name);
        let out = f(self);
        self.pop_scope();
        out
    }

    fn qualified(&self, name: &str) -> String {
        if self.scopes.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.scopes.join("."), name)
        }
    }

    fn push(&mut self, kind: NodeKind, width: u32) -> Signal {
        assert!(
            width >= 1,
            "zero-width signal in scope `{}`",
            self.scopes.join(".")
        );
        let id = NodeId(self.circuit.nodes.len() as u32);
        self.circuit.nodes.push(Node { kind, width });
        Signal { id, width }
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> Signal {
        let id = InputId(self.circuit.inputs.len() as u32);
        self.circuit.inputs.push(InputDecl {
            name: self.qualified(&name.into()),
            width,
        });
        self.push(NodeKind::Input(id), width)
    }

    /// Declares a primary output driven by `sig`.
    pub fn output(&mut self, name: impl Into<String>, sig: Signal) {
        let name = self.qualified(&name.into());
        self.circuit.outputs.push(OutputDecl {
            name,
            node: sig.id(),
        });
    }

    /// A literal constant of the given width (value truncated).
    pub fn lit(&mut self, width: u32, value: u64) -> Signal {
        self.lit_bits(Bits::from_u64(width, value))
    }

    /// A literal constant from a [`Bits`] value.
    pub fn lit_bits(&mut self, value: Bits) -> Signal {
        let w = value.width();
        self.push(NodeKind::Const(value), w)
    }

    /// Declares a register with a `u64` power-on value.
    pub fn reg(&mut self, name: impl Into<String>, width: u32, init: u64) -> Reg {
        self.reg_init(name, Bits::from_u64(width, init))
    }

    /// Declares a register with an arbitrary power-on value.
    pub fn reg_init(&mut self, name: impl Into<String>, init: Bits) -> Reg {
        let width = init.width();
        let id = RegId(self.circuit.regs.len() as u32);
        self.circuit.regs.push(Register {
            name: self.qualified(&name.into()),
            width,
            init,
            next: None,
        });
        let q = self.push(NodeKind::RegRead(id), width);
        Reg { id, q }
    }

    /// Connects a register's next value.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or double connection.
    pub fn connect(&mut self, reg: Reg, next: Signal) {
        let r = &mut self.circuit.regs[reg.id.index()];
        assert_eq!(
            r.width,
            next.width(),
            "connect width mismatch on reg `{}`",
            r.name
        );
        assert!(r.next.is_none(), "register `{}` connected twice", r.name);
        r.next = Some(next.id());
    }

    /// Declares a register that loads `d` when `en` is high, else holds.
    pub fn reg_en(&mut self, name: impl Into<String>, en: Signal, d: Signal, init: u64) -> Reg {
        let r = self.reg(name, d.width(), init);
        let next = self.mux(en, d, r.q());
        self.connect(r, next);
        r
    }

    /// Declares a memory array with all-zero initial contents.
    pub fn array(&mut self, name: impl Into<String>, width: u32, depth: u32) -> ArrayHandle {
        assert!(width >= 1 && depth >= 1, "degenerate array");
        let id = ArrayId(self.circuit.arrays.len() as u32);
        self.circuit.arrays.push(Array {
            name: self.qualified(&name.into()),
            width,
            depth,
            init: None,
            write_ports: Vec::new(),
        });
        ArrayHandle { id, width, depth }
    }

    /// Declares a memory array with explicit initial contents.
    ///
    /// # Panics
    ///
    /// Panics if `init` is empty or element widths differ.
    pub fn array_init(&mut self, name: impl Into<String>, init: Vec<Bits>) -> ArrayHandle {
        assert!(!init.is_empty(), "empty array init");
        let width = init[0].width();
        assert!(init.iter().all(|b| b.width() == width), "ragged array init");
        let depth = init.len() as u32;
        let h = self.array(name, width, depth);
        self.circuit.arrays[h.id.index()].init = Some(init);
        h
    }

    /// A combinational read port on `arr` at `index`.
    pub fn array_read(&mut self, arr: ArrayHandle, index: Signal) -> Signal {
        self.push(
            NodeKind::ArrayRead {
                array: arr.id,
                index: index.id(),
            },
            arr.width,
        )
    }

    /// Adds a clocked write port to `arr`.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not match the element width or `enable` is
    /// not 1 bit.
    pub fn array_write(&mut self, arr: ArrayHandle, index: Signal, data: Signal, enable: Signal) {
        assert_eq!(data.width(), arr.width, "array write data width");
        assert_eq!(enable.width(), 1, "array write enable width");
        self.circuit.arrays[arr.id.index()]
            .write_ports
            .push(WritePort {
                index: index.id(),
                data: data.id(),
                enable: enable.id(),
            });
    }

    fn bin(&mut self, op: BinOp, a: Signal, b: Signal) -> Signal {
        if !op.is_shift() {
            assert_eq!(
                a.width(),
                b.width(),
                "{op:?} width mismatch in scope `{}`",
                self.scopes.join(".")
            );
        }
        let w = if op.is_comparison() { 1 } else { a.width() };
        self.push(NodeKind::Bin(op, a.id(), b.id()), w)
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::And, a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::Xor, a, b)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::Sub, a, b)
    }

    /// Wrapping multiplication (truncated).
    pub fn mul(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::Mul, a, b)
    }

    /// Equality comparison (1 bit).
    pub fn eq(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::Eq, a, b)
    }

    /// Inequality comparison (1 bit).
    pub fn ne(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::Ne, a, b)
    }

    /// Unsigned less-than (1 bit).
    pub fn lt_u(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::LtU, a, b)
    }

    /// Signed less-than (1 bit).
    pub fn lt_s(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::LtS, a, b)
    }

    /// Unsigned less-or-equal (1 bit).
    pub fn le_u(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::LeU, a, b)
    }

    /// Signed less-or-equal (1 bit).
    pub fn le_s(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::LeS, a, b)
    }

    /// Unsigned greater-or-equal (1 bit).
    pub fn ge_u(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::LeU, b, a)
    }

    /// Unsigned greater-than (1 bit).
    pub fn gt_u(&mut self, a: Signal, b: Signal) -> Signal {
        self.bin(BinOp::LtU, b, a)
    }

    /// Dynamic logical shift left.
    pub fn shl(&mut self, a: Signal, sh: Signal) -> Signal {
        self.bin(BinOp::Shl, a, sh)
    }

    /// Dynamic logical shift right.
    pub fn lshr(&mut self, a: Signal, sh: Signal) -> Signal {
        self.bin(BinOp::Lshr, a, sh)
    }

    /// Dynamic arithmetic shift right.
    pub fn ashr(&mut self, a: Signal, sh: Signal) -> Signal {
        self.bin(BinOp::Ashr, a, sh)
    }

    /// Shift left by a constant (free: wired as slice + concat-with-zeros).
    pub fn shli(&mut self, a: Signal, sh: u32) -> Signal {
        if sh == 0 {
            return a;
        }
        if sh >= a.width() {
            return self.lit(a.width(), 0);
        }
        let kept = self.slice(a, a.width() - 1 - sh, 0);
        let zeros = self.lit(sh, 0);
        self.concat(kept, zeros)
    }

    /// Logical shift right by a constant (free).
    pub fn lshri(&mut self, a: Signal, sh: u32) -> Signal {
        if sh == 0 {
            return a;
        }
        if sh >= a.width() {
            return self.lit(a.width(), 0);
        }
        let kept = self.slice(a, a.width() - 1, sh);
        self.zext(kept, a.width())
    }

    /// Rotate right by a constant (free).
    pub fn rotr(&mut self, a: Signal, sh: u32) -> Signal {
        let sh = sh % a.width();
        if sh == 0 {
            return a;
        }
        let low = self.slice(a, sh - 1, 0);
        let high = self.slice(a, a.width() - 1, sh);
        self.concat(low, high)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: Signal) -> Signal {
        let w = a.width();
        self.push(NodeKind::Un(UnOp::Not, a.id()), w)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: Signal) -> Signal {
        let w = a.width();
        self.push(NodeKind::Un(UnOp::Neg, a.id()), w)
    }

    /// AND-reduction to 1 bit.
    pub fn red_and(&mut self, a: Signal) -> Signal {
        self.push(NodeKind::Un(UnOp::RedAnd, a.id()), 1)
    }

    /// OR-reduction to 1 bit.
    pub fn red_or(&mut self, a: Signal) -> Signal {
        self.push(NodeKind::Un(UnOp::RedOr, a.id()), 1)
    }

    /// XOR-reduction to 1 bit.
    pub fn red_xor(&mut self, a: Signal) -> Signal {
        self.push(NodeKind::Un(UnOp::RedXor, a.id()), 1)
    }

    /// Two-way multiplexer: `if sel { t } else { f }`.
    ///
    /// # Panics
    ///
    /// Panics if `sel` is not 1 bit or the arms differ in width.
    pub fn mux(&mut self, sel: Signal, t: Signal, f: Signal) -> Signal {
        assert_eq!(sel.width(), 1, "mux select must be 1 bit");
        assert_eq!(t.width(), f.width(), "mux arm width mismatch");
        let w = t.width();
        self.push(
            NodeKind::Mux {
                sel: sel.id(),
                t: t.id(),
                f: f.id(),
            },
            w,
        )
    }

    /// N-way one-hot style selection from `(sel_bit, value)` pairs with a
    /// default; later entries take priority.
    pub fn select(&mut self, cases: &[(Signal, Signal)], default: Signal) -> Signal {
        let mut out = default;
        for &(cond, val) in cases {
            out = self.mux(cond, val, out);
        }
        out
    }

    /// Bit extraction `a[hi..=lo]`.
    pub fn slice(&mut self, a: Signal, hi: u32, lo: u32) -> Signal {
        assert!(
            hi >= lo && hi < a.width(),
            "bad slice [{hi}:{lo}] of {} bits",
            a.width()
        );
        if lo == 0 && hi == a.width() - 1 {
            return a;
        }
        self.push(NodeKind::Slice { src: a.id(), lo }, hi - lo + 1)
    }

    /// The single bit `a[i]`.
    pub fn bit(&mut self, a: Signal, i: u32) -> Signal {
        self.slice(a, i, i)
    }

    /// Zero-extension (or truncation) to `width`.
    pub fn zext(&mut self, a: Signal, width: u32) -> Signal {
        if width == a.width() {
            return a;
        }
        self.push(NodeKind::Zext(a.id()), width)
    }

    /// Sign-extension (or truncation) to `width`.
    pub fn sext(&mut self, a: Signal, width: u32) -> Signal {
        if width == a.width() {
            return a;
        }
        self.push(NodeKind::Sext(a.id()), width)
    }

    /// Concatenation `{hi, lo}`.
    pub fn concat(&mut self, hi: Signal, lo: Signal) -> Signal {
        let w = hi.width() + lo.width();
        self.push(
            NodeKind::Concat {
                hi: hi.id(),
                lo: lo.id(),
            },
            w,
        )
    }

    /// Concatenation of many parts, first element highest.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn cat(&mut self, parts: &[Signal]) -> Signal {
        let (&first, rest) = parts.split_first().expect("cat of zero signals");
        rest.iter().fold(first, |acc, &p| self.concat(acc, p))
    }

    /// Replicates `a` `n` times.
    pub fn repeat(&mut self, a: Signal, n: u32) -> Signal {
        assert!(n >= 1, "repeat count must be >= 1");
        let mut out = a;
        for _ in 1..n {
            out = self.concat(out, a);
        }
        out
    }

    /// 1-bit logical negation.
    pub fn lnot(&mut self, a: Signal) -> Signal {
        assert_eq!(a.width(), 1, "lnot expects a 1-bit signal");
        self.not(a)
    }

    /// Nodes added so far.
    pub fn node_count(&self) -> usize {
        self.circuit.nodes.len()
    }

    /// Finishes the design and validates it.
    ///
    /// # Errors
    ///
    /// Returns any [`RtlError`] found by [`Circuit::validate`], e.g. an
    /// unconnected register.
    pub fn finish(self) -> Result<Circuit, RtlError> {
        self.circuit.validate()?;
        Ok(self.circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_builds_and_validates() {
        let mut b = Builder::new("c");
        let en = b.input("en", 1);
        let r = b.reg("count", 8, 0);
        let one = b.lit(8, 1);
        let inc = b.add(r.q(), one);
        let nxt = b.mux(en, inc, r.q());
        b.connect(r, nxt);
        b.output("q", r.q());
        let c = b.finish().unwrap();
        assert_eq!(c.regs.len(), 1);
        assert_eq!(c.inputs.len(), 1);
        assert_eq!(c.outputs.len(), 1);
        assert_eq!(c.sink_nodes().len(), 1);
    }

    #[test]
    fn unconnected_register_is_an_error() {
        let mut b = Builder::new("c");
        let _ = b.reg("r", 4, 0);
        assert!(matches!(
            b.finish(),
            Err(RtlError::UnconnectedRegister { .. })
        ));
    }

    #[test]
    fn scoped_names() {
        let mut b = Builder::new("c");
        b.scoped("core0", |b| {
            b.scoped("alu", |b| {
                let r = b.reg("acc", 8, 0);
                b.connect(r, r.q());
            });
        });
        let c = b.finish().unwrap();
        assert_eq!(c.regs[0].name, "core0.alu.acc");
    }

    #[test]
    fn static_shift_helpers() {
        let mut b = Builder::new("c");
        let r = b.reg("r", 8, 0);
        let s1 = b.shli(r.q(), 3);
        let s2 = b.lshri(r.q(), 3);
        let s3 = b.rotr(r.q(), 3);
        assert_eq!(s1.width(), 8);
        assert_eq!(s2.width(), 8);
        assert_eq!(s3.width(), 8);
        let z = b.shli(r.q(), 8);
        let f = b.xor(s1, s2);
        let g = b.xor(f, s3);
        let h = b.xor(g, z);
        b.connect(r, h);
        b.finish().unwrap();
    }

    #[test]
    fn array_ports_validate() {
        let mut b = Builder::new("c");
        let addr = b.input("addr", 4);
        let data = b.input("data", 32);
        let we = b.input("we", 1);
        let mem = b.array("mem", 32, 16);
        let rd = b.array_read(mem, addr);
        b.array_write(mem, addr, data, we);
        b.output("rdata", rd);
        let c = b.finish().unwrap();
        assert_eq!(c.arrays[0].write_ports.len(), 1);
        assert_eq!(c.arrays[0].size_bytes(), 16 * 8);
        // Three sink nodes per write port.
        assert_eq!(c.sink_nodes().len(), 3);
    }

    #[test]
    #[should_panic(expected = "mux arm width mismatch")]
    fn mux_width_mismatch_panics() {
        let mut b = Builder::new("c");
        let s = b.input("s", 1);
        let a = b.input("a", 4);
        let c = b.input("c", 5);
        let _ = b.mux(s, a, c);
    }

    #[test]
    fn repeat_and_cat() {
        let mut b = Builder::new("c");
        let a = b.input("a", 2);
        let r = b.repeat(a, 3);
        assert_eq!(r.width(), 6);
        let d = b.input("d", 3);
        let x = b.cat(&[a, d, a]);
        assert_eq!(x.width(), 7);
    }
}
