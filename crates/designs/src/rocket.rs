//! The `rocket` benchmark: a pipelined RV32I core.
//!
//! Three-stage organization — Fetch, eXecute, Writeback — with full
//! W→X forwarding and a one-bubble flush on taken control transfers, so
//! straight-line code retires one instruction per cycle. Compared to
//! [`crate::pico`] the datapath is spread across pipeline registers,
//! which is exactly why the paper finds rocket *slightly* more scalable
//! than pico but still straggler-bound (§4.3, Fig. 6b/6c).

use crate::rv32;
use parendi_rtl::{Bits, Builder, Circuit};

/// Configuration of a rocket-like core instance.
#[derive(Clone, Debug)]
pub struct RocketConfig {
    /// Program (word 0 executes at PC 0).
    pub program: Vec<u32>,
    /// Data memory words.
    pub dmem_words: u32,
    /// Initial data memory contents (zero-padded).
    pub dmem_init: Vec<u32>,
}

impl RocketConfig {
    /// A config running `program` with 256 words of zeroed data memory.
    pub fn new(program: Vec<u32>) -> Self {
        RocketConfig {
            program,
            dmem_words: 256,
            dmem_init: Vec::new(),
        }
    }
}

/// Elaborates a rocket core into an existing builder.
pub fn build_rocket_into(b: &mut Builder, cfg: &RocketConfig) {
    let imem_depth = (cfg.program.len() as u32).max(4).next_power_of_two();
    let dmem_depth = cfg.dmem_words.max(4).next_power_of_two();
    let ibits = rv32::addr_bits(imem_depth);
    let dbits = rv32::addr_bits(dmem_depth);

    let imem_init: Vec<Bits> = (0..imem_depth)
        .map(|i| Bits::from_u64(32, cfg.program.get(i as usize).copied().unwrap_or(0) as u64))
        .collect();
    let imem = b.array_init("imem", imem_init);
    let dmem_init: Vec<Bits> = (0..dmem_depth)
        .map(|i| {
            Bits::from_u64(
                32,
                cfg.dmem_init.get(i as usize).copied().unwrap_or(0) as u64,
            )
        })
        .collect();
    let dmem = b.array_init("dmem", dmem_init);

    // ---- F stage.
    let pc = b.reg("pc", 32, 0);
    let pc_fx = b.reg("pc_fx", 32, 0);
    let ir_fx = b.reg("ir_fx", 32, 0);
    let valid_fx = b.reg("valid_fx", 1, 0);
    let halted = b.reg("halted", 1, 0);

    let pc_word = b.slice(pc.q(), ibits + 1, 2);
    let fetched = b.array_read(imem, pc_word);

    // ---- X stage: decode + regread + forwarding + execute.
    let f = rv32::decode(b, ir_fx.q());
    let (rf, r1_raw, r2_raw) = rv32::regfile(b, f.rs1, f.rs2);

    // W-stage registers (declared early so X can forward from them).
    let w_rd = b.reg("w_rd", 5, 0);
    let w_val = b.reg("w_val", 32, 0);
    let w_en = b.reg("w_en", 1, 0);

    let fwd1_hit0 = b.eq(w_rd.q(), f.rs1);
    let fwd1_hit = b.and(fwd1_hit0, w_en.q());
    let r1 = b.mux(fwd1_hit, w_val.q(), r1_raw);
    let fwd2_hit0 = b.eq(w_rd.q(), f.rs2);
    let fwd2_hit = b.and(fwd2_hit0, w_en.q());
    let r2 = b.mux(fwd2_hit, w_val.q(), r2_raw);

    let ex = rv32::execute(b, &f, pc_fx.q(), r1, r2, dmem, dbits);

    let not_halted = b.lnot(halted.q());
    let x_fire = b.and(valid_fx.q(), not_halted);
    let halt_now = b.and(ex.is_halt, x_fire);
    let halted_next = b.or(halted.q(), halt_now);
    b.connect(halted, halted_next);

    let redirect = b.and(ex.redirect, x_fire);
    let mem_we = b.and(ex.mem_we, x_fire);
    b.array_write(dmem, ex.mem_word_addr, ex.mem_wdata, mem_we);

    // ---- X/W pipeline registers and the register-file write port.
    let wb_fire = b.and(ex.wb_en, x_fire);
    b.connect(w_rd, f.rd);
    b.connect(w_val, ex.wb_value);
    b.connect(w_en, wb_fire);
    b.array_write(rf, w_rd.q(), w_val.q(), w_en.q());

    // ---- Next PC and F/X registers.
    let four = b.lit(32, 4);
    let pc4 = b.add(pc.q(), four);
    let seq_or_target = b.mux(redirect, ex.next_pc, pc4);
    let pc_next = b.mux(halted_next, pc.q(), seq_or_target);
    b.connect(pc, pc_next);
    b.connect(ir_fx, fetched);
    let pcq = pc.q();
    b.connect(pc_fx, pcq);
    // The instruction fetched this cycle is squashed on redirect.
    let no_redirect = b.lnot(redirect);
    let nh = b.lnot(halted_next);
    let fetch_valid = b.and(no_redirect, nh);
    b.connect(valid_fx, fetch_valid);

    // Retired-instruction counter.
    let retired = b.reg("retired", 32, 0);
    let one = b.lit(32, 1);
    let inc = b.add(retired.q(), one);
    let retired_next = b.mux(x_fire, inc, retired.q());
    b.connect(retired, retired_next);
}

/// Builds a standalone rocket design.
pub fn build_rocket(cfg: &RocketConfig) -> Circuit {
    let mut b = Builder::new("rocket");
    build_rocket_into(&mut b, cfg);
    b.finish().expect("rocket must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{self, programs, reg};
    use parendi_rtl::{ArrayId, RegId};
    use parendi_sim::Simulator;

    fn reg_id(c: &Circuit, name: &str) -> RegId {
        RegId(c.regs.iter().position(|r| r.name == name).expect("reg") as u32)
    }

    fn array_id(c: &Circuit, name: &str) -> ArrayId {
        ArrayId(c.arrays.iter().position(|a| a.name == name).expect("array") as u32)
    }

    fn run_to_halt(c: &Circuit, max_cycles: u64) -> (Simulator<'_>, u64) {
        let mut sim = Simulator::new(c);
        let halted = reg_id(c, "halted");
        let mut cycles = 0;
        while sim.reg_value(halted).to_u64() == 0 {
            sim.step();
            cycles += 1;
            assert!(
                cycles < max_cycles,
                "core did not halt in {max_cycles} cycles"
            );
        }
        (sim, cycles)
    }

    #[test]
    fn fibonacci_matches_golden() {
        let prog = programs::fibonacci(12);
        let mut golden = isa::GoldenRv32::new(256);
        golden.run(&prog, 100_000);
        let c = build_rocket(&RocketConfig::new(prog));
        let (sim, _) = run_to_halt(&c, 20_000);
        let rf = array_id(&c, "regfile");
        assert_eq!(
            sim.array_value(rf, reg::A0).to_u64() as u32,
            golden.regs[reg::A0 as usize]
        );
        let dmem = array_id(&c, "dmem");
        assert_eq!(sim.array_value(dmem, 0).to_u64() as u32, golden.dmem[0]);
    }

    #[test]
    fn full_state_matches_golden_on_mixed_program() {
        let prog = programs::mixed(25);
        let mut golden = isa::GoldenRv32::new(256);
        golden.run(&prog, 100_000);
        let c = build_rocket(&RocketConfig::new(prog));
        let (sim, _) = run_to_halt(&c, 50_000);
        let rf = array_id(&c, "regfile");
        let dmem = array_id(&c, "dmem");
        for r in 1..32u32 {
            assert_eq!(
                sim.array_value(rf, r).to_u64() as u32,
                golden.regs[r as usize],
                "x{r}"
            );
        }
        for w in 0..64u32 {
            assert_eq!(
                sim.array_value(dmem, w).to_u64() as u32,
                golden.dmem[w as usize],
                "dmem[{w}]"
            );
        }
    }

    #[test]
    fn back_to_back_dependencies_forward() {
        // x5 = 1; x5 = x5+2; x5 = x5+3; ... all dependent, no bubbles.
        let prog = vec![
            isa::addi(reg::T0, 0, 1),
            isa::addi(reg::T0, reg::T0, 2),
            isa::addi(reg::T0, reg::T0, 3),
            isa::addi(reg::T0, reg::T0, 4),
            isa::halt(),
        ];
        let c = build_rocket(&RocketConfig::new(prog));
        let (sim, _) = run_to_halt(&c, 100);
        let rf = array_id(&c, "regfile");
        assert_eq!(sim.array_value(rf, reg::T0).to_u64(), 10);
    }

    #[test]
    fn pipeline_beats_pico_on_ipc() {
        let prog = programs::fibonacci(10);
        let rocket = build_rocket(&RocketConfig::new(prog.clone()));
        let (rsim, rcycles) = run_to_halt(&rocket, 20_000);
        let retired_r = rsim.reg_value(reg_id(&rocket, "retired")).to_u64();

        let pico = crate::pico::build_pico(&crate::pico::PicoConfig::new(prog));
        let mut psim = Simulator::new(&pico);
        let phalted = reg_id(&pico, "halted");
        let mut pcycles = 0u64;
        while psim.reg_value(phalted).to_u64() == 0 {
            psim.step();
            pcycles += 1;
            assert!(pcycles < 40_000);
        }
        let retired_p = psim.reg_value(reg_id(&pico, "retired")).to_u64();

        // Same architectural work...
        assert_eq!(retired_r, retired_p, "same program, same instruction count");
        // ...in significantly fewer cycles.
        let ipc_r = retired_r as f64 / rcycles as f64;
        let ipc_p = retired_p as f64 / pcycles as f64;
        assert!(
            ipc_r > 1.5 * ipc_p,
            "rocket IPC {ipc_r:.2} must beat pico IPC {ipc_p:.2}"
        );
    }

    #[test]
    fn store_then_load_roundtrip() {
        let prog = vec![
            isa::addi(reg::T0, 0, 0x5a),
            isa::sw(reg::T0, reg::ZERO, 8),
            isa::lw(reg::T1, reg::ZERO, 8),
            isa::add(reg::T2, reg::T1, reg::T1),
            isa::halt(),
        ];
        let c = build_rocket(&RocketConfig::new(prog));
        let (sim, _) = run_to_halt(&c, 100);
        let rf = array_id(&c, "regfile");
        assert_eq!(sim.array_value(rf, reg::T1).to_u64(), 0x5a);
        assert_eq!(sim.array_value(rf, reg::T2).to_u64(), 0xb4);
    }
}
