//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! the `criterion_group!` / `criterion_main!` macros) on plain
//! wall-clock timing. Passing `--test` (as `cargo bench -- --test` does
//! for smoke runs) executes every benchmark body exactly once and skips
//! measurement, so CI can catch regressions without paying for a full
//! measurement run.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Benchmark throughput annotation (reported alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test" || a == "--quick");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&id, self.test_mode, 10, Duration::from_secs(1), None, f);
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` (or runs it once under `--test`).
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(
            &id,
            self.criterion.test_mode,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Handed to benchmark closures; times the hot loop.
pub struct Bencher {
    /// Whether to run the body exactly once without timing.
    smoke: bool,
    /// Mean seconds per iteration of the best sample (output).
    best_s: f64,
    /// Iterations used per sample.
    iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly and records the best mean iteration time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.smoke {
            black_box(f());
            self.best_s = 0.0;
            return;
        }
        // Calibrate the per-sample iteration count to ~10ms.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let per_sample = ((0.01 / once) as u64).clamp(1, 1_000_000);
        self.iters = per_sample;
        let mut best = f64::INFINITY;
        for _ in 0..self.iters_samples() {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            best = best.min(t.elapsed().as_secs_f64() / per_sample as f64);
        }
        self.best_s = best;
    }

    fn iters_samples(&self) -> u64 {
        self.iters.clamp(3, 64)
    }
}

fn run_one(
    id: &str,
    smoke: bool,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let _ = (sample_size, measurement_time);
    let mut b = Bencher {
        smoke,
        best_s: 0.0,
        iters: 1,
    };
    let start = Instant::now();
    f(&mut b);
    if smoke {
        println!("{id}: ok (smoke, {:.3}s)", start.elapsed().as_secs_f64());
        return;
    }
    let per = b.best_s;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per > 0.0 => {
            format!("  {:.3} Kelem/s", n as f64 / per / 1e3)
        }
        Some(Throughput::Bytes(n)) if per > 0.0 => {
            format!("  {:.3} MiB/s", n as f64 / per / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{id}: {:.3} µs/iter{rate}", per * 1e6);
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
