//! The PRNG microbenchmark of §4.1 (Fig. 4): `n` independent xorshift64
//! generators, each one fiber of "three XORs and three shifts" \[37\].
//!
//! Because the generators never communicate, `t_comm = 0` and the design
//! isolates the synchronization term of Eq. 1.

use parendi_rtl::{Bits, Builder, Circuit};

/// Builds one xorshift64 fiber named `name` with the given seed.
pub fn build_xorshift_into(b: &mut Builder, name: &str, seed: u64) {
    let s = b.reg_init(name, Bits::from_u64(64, if seed == 0 { 1 } else { seed }));
    let t1 = b.shli(s.q(), 13);
    let x1 = b.xor(s.q(), t1);
    let t2 = b.lshri(x1, 7);
    let x2 = b.xor(x1, t2);
    let t3 = b.shli(x2, 17);
    let x3 = b.xor(x2, t3);
    b.connect(s, x3);
}

/// Builds the `n`-generator PRNG bank.
pub fn build_prng_bank(n: u32) -> Circuit {
    let mut b = Builder::new(format!("prng{n}"));
    for i in 0..n {
        build_xorshift_into(
            &mut b,
            &format!("g{i}"),
            0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1),
        );
    }
    b.finish().expect("prng bank must validate")
}

/// The software xorshift64 step, for verification.
pub fn soft_xorshift64(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

/// Builds the `n`-generator PRNG bank with a **runtime seed port**: when
/// the 1-bit `reseed` input is high, every generator loads `seed`
/// xor-ed with its private per-generator constant instead of stepping.
///
/// This is the per-lane stimulus hook for gang simulation: drive each
/// lane's `seed` with a different value for one `reseed` cycle and the
/// lanes become `n × lanes` decorrelated xorshift streams over one
/// compiled partition (a seed farm). The expected state is
/// [`soft_seeded_state`].
pub fn build_seeded_bank(n: u32) -> Circuit {
    let mut b = Builder::new(format!("sprng{n}"));
    let reseed = b.input("reseed", 1);
    let seed = b.input("seed", 64);
    for i in 0..n {
        let name = format!("g{i}");
        let init = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1);
        let s = b.reg_init(&name, Bits::from_u64(64, init));
        let t1 = b.shli(s.q(), 13);
        let x1 = b.xor(s.q(), t1);
        let t2 = b.lshri(x1, 7);
        let x2 = b.xor(x1, t2);
        let t3 = b.shli(x2, 17);
        let x3 = b.xor(x2, t3);
        let k = b.lit(64, generator_salt(i));
        let loaded = b.xor(seed, k);
        let nx = b.mux(reseed, loaded, x3);
        b.connect(s, nx);
        b.output(format!("o{i}"), s.q());
    }
    b.finish().expect("seeded prng bank must validate")
}

/// The per-generator constant xor-ed into a loaded seed, so one seed
/// value decorrelates the whole bank.
pub fn generator_salt(i: u32) -> u64 {
    0xD1B5_4A32_D192_ED03u64.wrapping_mul(i as u64 * 2 + 1)
}

/// Software golden model for [`build_seeded_bank`]: the state of
/// generator `i` after `post_cycles` further cycles once `seed` was
/// loaded for exactly one cycle.
pub fn soft_seeded_state(i: u32, seed: u64, post_cycles: u64) -> u64 {
    let mut s = seed ^ generator_salt(i);
    for _ in 0..post_cycles {
        s = soft_xorshift64(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use parendi_rtl::RegId;
    use parendi_sim::Simulator;

    #[test]
    fn generators_match_software_and_stay_independent() {
        let c = build_prng_bank(8);
        assert_eq!(c.regs.len(), 8);
        let mut sim = Simulator::new(&c);
        let seeds: Vec<u64> = (0..8).map(|i| sim.reg_value(RegId(i)).to_u64()).collect();
        sim.step_n(5);
        for (i, &seed) in seeds.iter().enumerate() {
            let mut s = seed;
            for _ in 0..5 {
                s = soft_xorshift64(s);
            }
            assert_eq!(sim.reg_value(RegId(i as u32)).to_u64(), s, "generator {i}");
        }
    }

    #[test]
    fn seeded_bank_loads_and_free_runs() {
        let c = build_seeded_bank(4);
        let mut sim = Simulator::new(&c);
        sim.poke("reseed", 1);
        sim.poke("seed", 0xfeed_beef_dead_cafe);
        sim.step();
        sim.poke("reseed", 0);
        sim.step_n(7);
        for i in 0..4u32 {
            assert_eq!(
                sim.reg_value(RegId(i)).to_u64(),
                soft_seeded_state(i, 0xfeed_beef_dead_cafe, 7),
                "generator {i} after reseed"
            );
        }
    }

    #[test]
    fn fibers_are_independent() {
        let c = build_prng_bank(16);
        let costs = parendi_graph::CostModel::of(&c);
        let fs = parendi_graph::extract_fibers(&c, &costs);
        assert_eq!(fs.len(), 16);
        let adj = parendi_graph::adjacency(&c, &fs);
        assert!(
            adj.neighbors.iter().all(|n| n.is_empty()),
            "PRNGs must not communicate"
        );
        assert!((fs.duplication_factor() - 1.0).abs() < 1e-9);
    }
}
