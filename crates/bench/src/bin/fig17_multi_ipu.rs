//! Fig. 17: multi-IPU partitioning strategies on 4 chips — partitioning
//! fibers *pre* merge (Parendi default) vs *post* merge vs ignoring chip
//! boundaries entirely (*none*).

use parendi_bench::{lr_max, sr_max};
use parendi_core::{compile, MultiChipStrategy, PartitionConfig};
use parendi_designs::Benchmark;
use parendi_machine::ipu::IpuConfig;
use parendi_sim::timing::{ipu_rate_khz, ipu_timings};

fn main() {
    let ipu = IpuConfig::m2000();
    println!("Fig. 17: 4-IPU strategies, rate normalized to `pre`");
    println!(
        "{:>8} {:>6} | {:>9} {:>11} {:>8}",
        "design", "strat", "kHz", "offchipKiB", "norm"
    );
    let benches = [
        Benchmark::Sr(sr_max().saturating_sub(5).max(2)),
        Benchmark::Sr(sr_max()),
        Benchmark::Lr(lr_max().saturating_sub(2).max(2)),
        Benchmark::Lr(lr_max()),
    ];
    for bench in benches {
        let c = bench.build();
        let mut base = None;
        for (label, mc) in [
            ("pre", MultiChipStrategy::Pre),
            ("post", MultiChipStrategy::Post),
            ("none", MultiChipStrategy::None),
        ] {
            let mut cfg = PartitionConfig::with_tiles(5888);
            cfg.multi_chip = mc;
            let comp = compile(&c, &cfg).expect("fits 4 IPUs");
            let khz = ipu_rate_khz(&comp, &ipu);
            let t = ipu_timings(&comp, &ipu);
            let _ = t;
            let b = *base.get_or_insert(khz);
            println!(
                "{:>8} {:>6} | {:>9.1} {:>11.1} {:>8.3}",
                bench.name(),
                label,
                khz,
                comp.plan.offchip_total_bytes as f64 / 1024.0,
                khz / b
            );
        }
        println!();
    }
    println!("Shape check: pre >= post >> none (the paper's Fig. 17 ordering);");
    println!("`none` pays a much larger off-chip volume.");
}
