//! Quickstart: build a small design with the eDSL, compile it onto IPU
//! tiles, run it in parallel bit-exactly, and read the predicted rate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parendi::core::{compile, PartitionConfig};
use parendi::machine::ipu::IpuConfig;
use parendi::rtl::{Builder, RegId};
use parendi::sim::{ipu_timings, BspSimulator, Simulator};

fn main() {
    // 1. Describe hardware: four interleaved 32-bit counters with a
    //    shared comparator.
    let mut b = Builder::new("quickstart");
    let mut qs = Vec::new();
    for i in 0..4u64 {
        let r = b.reg(format!("ctr{i}"), 32, i);
        let k = b.lit(32, 2 * i + 1);
        let nx = b.add(r.q(), k);
        b.connect(r, nx);
        qs.push(r.q());
    }
    let max01 = {
        let gt = b.gt_u(qs[0], qs[1]);
        b.mux(gt, qs[0], qs[1])
    };
    let max23 = {
        let gt = b.gt_u(qs[2], qs[3]);
        b.mux(gt, qs[2], qs[3])
    };
    let top = b.reg("top", 32, 0);
    let gt = b.gt_u(max01, max23);
    let winner = b.mux(gt, max01, max23);
    b.connect(top, winner);
    b.output("top", top.q());
    let circuit = b.finish().expect("validates");

    // 2. Compile: extract fibers, run the 4-stage partitioner.
    let comp = compile(&circuit, &PartitionConfig::with_tiles(4)).expect("compiles");
    println!(
        "compiled {} fibers onto {} tiles (straggler {} IPU cycles)",
        comp.fibers.len(),
        comp.partition.tiles_used(),
        comp.partition.straggler_cost()
    );

    // 3. Execute in parallel under BSP and check against the reference.
    let mut reference = Simulator::new(&circuit);
    let mut bsp = BspSimulator::new(&circuit, &comp.partition, 2);
    reference.step_n(1000);
    bsp.run(1000);
    for i in 0..circuit.regs.len() {
        assert_eq!(
            bsp.reg_value(RegId(i as u32)),
            reference.reg_value(RegId(i as u32)),
            "BSP must be bit-exact"
        );
    }
    println!("1000 cycles simulated; BSP output is bit-identical to the reference");
    println!("top counter value: {}", reference.output("top").unwrap());

    // 4. Predict the rate on the IPU model.
    let ipu = IpuConfig::m2000();
    let t = ipu_timings(&comp, &ipu);
    println!(
        "predicted IPU rate: {:.1} kHz (comp {:.0} + comm {:.0} + sync {:.0} cycles)",
        t.rate_khz(&ipu),
        t.comp,
        t.comm,
        t.sync
    );
}
