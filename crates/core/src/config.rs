//! Compiler configuration and errors.

use std::fmt;

/// Which single-device partitioning strategy to use (paper §6.6, Fig. 16).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Parendi's bottom-up submodular merge (`B`, §5.1 stages 3–4).
    #[default]
    BottomUp,
    /// RepCut-style hypergraph partitioning over replication clusters (`H`).
    Hypergraph,
}

/// How fibers are distributed across IPU chips (paper §6.6, Fig. 17).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MultiChipStrategy {
    /// Partition *fibers* across chips before merging (Parendi default).
    #[default]
    Pre,
    /// Merge into processes first, then partition processes across chips.
    Post,
    /// Ignore chip boundaries entirely (assign processes round-robin).
    None,
}

/// Parameters of a compilation.
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Desired number of processes (= tiles used), across all chips.
    pub tiles: u32,
    /// Tiles available per chip (1472 on a GC200).
    pub tiles_per_chip: u32,
    /// Data memory budget per tile in bytes (≈400 KiB).
    pub data_bytes_per_tile: u64,
    /// Code memory budget per tile in bytes (≈200 KiB).
    pub code_bytes_per_tile: u64,
    /// Stage-1 threshold: arrays at least this large get their fibers
    /// pre-merged (default 128 KiB, tunable — paper §5.1).
    pub array_threshold_bytes: u64,
    /// Single-device strategy.
    pub strategy: Strategy,
    /// Multi-chip strategy.
    pub multi_chip: MultiChipStrategy,
    /// Enable the differential-exchange optimization (§5.2).
    pub differential_exchange: bool,
    /// RNG seed for the hypergraph partitioner.
    pub seed: u64,
}

impl PartitionConfig {
    /// A configuration for `tiles` tiles with M2000-like budgets.
    pub fn with_tiles(tiles: u32) -> Self {
        PartitionConfig {
            tiles,
            tiles_per_chip: 1472,
            data_bytes_per_tile: 400 << 10,
            code_bytes_per_tile: 200 << 10,
            array_threshold_bytes: 128 << 10,
            strategy: Strategy::BottomUp,
            multi_chip: MultiChipStrategy::Pre,
            differential_exchange: true,
            seed: 0xC0FFEE,
        }
    }

    /// Number of chips this configuration spans.
    pub fn chips(&self) -> u32 {
        self.tiles.div_ceil(self.tiles_per_chip).max(1)
    }
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self::with_tiles(1472)
    }
}

/// A compilation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The design cannot be reduced to the requested tile count within
    /// the per-tile memory budgets (paper §5.1 stage 4 / §5.3).
    DoesNotFit {
        /// Processes remaining when merging got stuck.
        processes: usize,
        /// Requested tiles.
        tiles: u32,
    },
    /// A single fiber exceeds a per-tile budget on its own (§5.3: e.g. a
    /// Verilog array larger than tile data memory).
    FiberTooLarge {
        /// Offending fiber index.
        fiber: u32,
        /// Bytes needed.
        needed: u64,
        /// Bytes available.
        budget: u64,
    },
    /// The circuit has no fibers (nothing to simulate).
    EmptyDesign,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::DoesNotFit { processes, tiles } => write!(
                f,
                "design does not fit: {processes} processes cannot merge down to {tiles} tiles \
                 within memory budgets"
            ),
            CompileError::FiberTooLarge {
                fiber,
                needed,
                budget,
            } => write!(
                f,
                "fiber {fiber} needs {needed} bytes, exceeding the per-tile budget of {budget}"
            ),
            CompileError::EmptyDesign => write!(f, "design has no fibers"),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chips_derived_from_tiles() {
        assert_eq!(PartitionConfig::with_tiles(1472).chips(), 1);
        assert_eq!(PartitionConfig::with_tiles(1473).chips(), 2);
        assert_eq!(PartitionConfig::with_tiles(5888).chips(), 4);
    }

    #[test]
    fn errors_display() {
        let e = CompileError::DoesNotFit {
            processes: 10,
            tiles: 4,
        };
        assert!(e.to_string().contains("does not fit"));
        let e = CompileError::FiberTooLarge {
            fiber: 3,
            needed: 1024,
            budget: 512,
        };
        assert!(e.to_string().contains("fiber 3"));
    }
}
