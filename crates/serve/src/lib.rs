//! # parendi-serve
//!
//! Gang-as-a-service: a persistent daemon that keeps compiled
//! partitions hot in a content-hashed LRU cache and serves scenario
//! batches over a Unix socket.
//!
//! The paper's workload shape — thousands of short, independent RTL
//! scenarios over a handful of designs — pays the compile front-end
//! (fiber extraction, load balancing, routing, bytecode lowering) over
//! and over if every batch compiles from scratch. The daemon amortizes
//! it: one [`CompileKey`](parendi_core::CompileKey) digest per
//! (circuit, partition config, lane shape), one compile per digest,
//! and every batch after the first instantiates its gang from the
//! cached artifact ([`parendi_sim::Precompiled`]) in milliseconds.
//!
//! * [`proto`] — the `PSRV` frame format and the text payloads
//!   ([`ScenarioBatch`], [`LaneResult`], [`BatchSummary`]);
//! * [`cache`] — the single-flight LRU [`CompileCache`];
//! * [`server`] — the daemon: accept loop, lane packing, the gang
//!   permit pool, per-lane retire streaming;
//! * [`client`] — the [`Client`] library the tests and the
//!   `serve_load` load generator share.
//!
//! Wire protocol, cache keying, the lane-packing policy, and shutdown
//! semantics are documented in `docs/SERVE.md`; the `PARENDI_SERVE_*`
//! knobs in `docs/ENVVARS.md`.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;

pub use cache::{CacheEntry, CompileCache};
pub use client::{BatchResult, Client};
pub use proto::{BatchSummary, LaneResult, PackedChoice, ProtoError, Scenario, ScenarioBatch};
pub use server::{run, spawn, ServeConfig, ServerHandle};
