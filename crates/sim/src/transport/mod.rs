//! The off-chip fabric: pluggable transports for the per-ordered-
//! chip-pair aggregate mailboxes.
//!
//! The engine models a multi-chip machine (Parendi's m×b off-chip
//! exchange) by aggregating every cross-chip channel into one wide
//! mailbox per **ordered chip pair** (`engine.rs` lays them out after
//! the on-chip per-tile-pair boxes). Historically those aggregates
//! lived in the same address space as everything else, so the
//! fig10/fig17 multi-IPU curves were measured over plain memcpys. This
//! module puts the chip boundary behind [`ChipTransport`] so the same
//! cycle loop can move the aggregates through a real memory-domain
//! boundary:
//!
//! * [`TransportChoice::InProcess`] — the historical direct path:
//!   producing tiles write straight into the consumer-side [`Mailbox`],
//!   bit-exact and zero-copy. The default.
//! * [`TransportChoice::SharedMem`] — producers write a **staging**
//!   mailbox, and completed pair buffers are published through a
//!   memory-mapped file on `/dev/shm` guarded by per-parity sequence
//!   words. The mapping protocol is process-agnostic (a child process
//!   can `ShmMap::open` the same path and exchange frames — see the
//!   cross-process test in `shmem.rs`).
//! * [`TransportChoice::Tcp`] — completed pair buffers travel as
//!   length-prefixed frames over loopback sockets, one stream per
//!   ordered pair, with a dedicated writer thread per pair so a worker
//!   never blocks on a full socket buffer.
//!
//! # Epoch discipline
//!
//! The transport inherits the engine's double-buffer contract: during
//! cycle `c` producers fill parity `(c+1) & 1` and consumers read
//! parity `c & 1`; barrier 1 separates the two. A staged backend
//! inserts a publish/receive hop inside the producer half of the
//! cycle:
//!
//! 1. each producing tile's [`offchip_flush`](crate::exec) writes its
//!    send segments into the *staging* copy of the pair aggregate
//!    (same layout, same parity);
//! 2. [`ChipTransport::tile_flushed`] counts down the pair's producing
//!    tiles; the worker that flushes the last tile publishes the whole
//!    parity buffer as one frame (an `AcqRel` countdown makes every
//!    staging write visible to the publisher);
//! 3. before barrier 1, each worker calls
//!    [`ChipTransport::complete_recvs`] for the pairs whose consumer
//!    chip it owns, blocking until the cycle's frame arrives, and
//!    copies it into the consumer-side [`Mailbox`] at the same parity.
//!
//! Every publish precedes every receive wait within a worker, and the
//! lockstep barriers bound in-flight traffic to one frame per pair, so
//! the hop cannot deadlock. Frames carry the **whole** aggregate
//! buffer: staging boxes are initialized by mirroring the consumer box
//! (both parities, including the epoch-0 register preload), so words a
//! cycle does not write retain exactly the bytes the in-process path
//! would have left in place — this is what keeps the packed
//! retire-mask blends bit-exact across backends.
//!
//! # Byte accounting
//!
//! [`ChipTransport::bytes_sent`] reports the bytes that crossed the
//! chip boundary: one whole pair aggregate per completed cycle, for
//! *every* backend (the in-process path conveys the same buffer
//! implicitly through shared memory). Receive waits are timed by the
//! cycle loop into the same `BspPhases::offchip_s` column as the
//! modeled link residual, so fig10/fig17 print comparable measured
//! columns for all three backends.
//!
//! # Failure behavior
//!
//! Transport faults are unrecoverable mid-cycle: a malformed or short
//! TCP frame, a closed peer, or an unmappable shared-memory file
//! panics the worker, and the engine's worker loop converts any worker
//! panic into a process abort (a hung barrier would deadlock the run).
//! Frame decoding itself ([`tcp::decode_frame`]) is a total function
//! returning `Result`, unit-tested on truncated and corrupted input.

use crate::engine::Mailbox;
use parendi_telemetry::{Counter, TraceSink};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub(crate) mod inproc;
pub(crate) mod shmem;
pub(crate) mod tcp;

/// Which backend carries the off-chip aggregate mailboxes.
///
/// Selected per simulator via `BspSimulator::with_transport` /
/// `GangSimulator::with_transport`, or globally via the
/// `PARENDI_TRANSPORT` environment variable (`inproc` | `shm` |
/// `tcp`). All backends are bit-exact; they differ only in which
/// memory-domain boundary the aggregates cross and in the measured
/// cost that lands in `BspPhases::offchip_s`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TransportChoice {
    /// Direct writes into the consumer mailbox (one address space).
    #[default]
    InProcess,
    /// Staged frames through a memory-mapped `/dev/shm` file.
    SharedMem,
    /// Length-prefixed frames over loopback TCP sockets.
    Tcp,
}

impl TransportChoice {
    /// Reads `PARENDI_TRANSPORT` (`inproc` | `shm` | `tcp`, with a few
    /// aliases), defaulting to [`TransportChoice::InProcess`]. Unknown
    /// values fall back to the default so a typo degrades to the
    /// bit-exact path rather than aborting.
    pub fn from_env() -> Self {
        match std::env::var("PARENDI_TRANSPORT").as_deref() {
            Ok("shm") | Ok("shmem") | Ok("shared") | Ok("shared-mem") => Self::SharedMem,
            Ok("tcp") => Self::Tcp,
            _ => Self::InProcess,
        }
    }

    /// Short stable name (used in bench record tags and fig columns).
    pub fn name(&self) -> &'static str {
        match self {
            Self::InProcess => "inproc",
            Self::SharedMem => "shm",
            Self::Tcp => "tcp",
        }
    }
}

/// A typed transport fault on the connection-setup or framing path.
///
/// Backends surface these instead of bare `unwrap` panics so a refused
/// connection, a half-open peer, or a stalled handshake produces a
/// message naming the failing operation (and, for timeouts, the
/// configured budget) before the worker aborts. The budget comes from
/// `PARENDI_TRANSPORT_TIMEOUT_MS` — see [`transport_timeout`].
#[derive(Debug)]
pub enum TransportError {
    /// An OS-level I/O failure; `context` names the operation
    /// (e.g. `"connect pair 3"`).
    Io {
        /// The operation that failed.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// An operation exceeded the `PARENDI_TRANSPORT_TIMEOUT_MS` budget.
    Timeout {
        /// The operation that timed out.
        context: String,
        /// The budget that was exceeded, in milliseconds.
        ms: u64,
    },
    /// The peer spoke the wrong protocol during connection setup.
    Handshake(String),
    /// A received frame failed validation (bad magic, short payload…).
    Frame(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { context, source } => write!(f, "transport i/o error: {context}: {source}"),
            Self::Timeout { context, ms } => {
                write!(
                    f,
                    "transport timeout: {context} exceeded {ms} ms \
                     (PARENDI_TRANSPORT_TIMEOUT_MS)"
                )
            }
            Self::Handshake(msg) => write!(f, "transport handshake error: {msg}"),
            Self::Frame(msg) => write!(f, "transport frame error: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl TransportError {
    /// Wraps an [`std::io::Error`] with the operation it interrupted.
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Self::Io {
            context: context.into(),
            source,
        }
    }
}

/// The connection-setup / blocking-read budget: `Some(duration)` from
/// `PARENDI_TRANSPORT_TIMEOUT_MS` (default 30 000 ms), or `None` when
/// the variable is set to `0` (wait forever). Malformed values fall
/// back to the default.
pub(crate) fn transport_timeout() -> Option<Duration> {
    let ms = std::env::var("PARENDI_TRANSPORT_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(30_000);
    (ms != 0).then(|| Duration::from_millis(ms))
}

/// Everything a backend needs at build time, derived by
/// `EngineCore::new` from the compiled partition.
pub(crate) struct TransportInit<'a> {
    /// `(from_chip, to_chip)` of each off-chip pair, in mailbox order
    /// (`channels[onchip + i]` carries `pairs[i]`).
    pub pairs: &'a [(u32, u32)],
    /// The full mailbox fabric (on-chip boxes first); staged backends
    /// mirror `channels[onchip..]` into their staging copies.
    pub channels: &'a [Mailbox],
    /// Number of leading on-chip mailboxes in `channels`.
    pub onchip: usize,
    /// Per tile: the pair indices the tile's off-chip sends feed.
    pub produces: Vec<Vec<u32>>,
    /// Per worker: the pair indices whose consumer chip the worker
    /// owns (it performs those receives).
    pub recv_of: Vec<Vec<u32>>,
    /// Credited once per published pair frame (all backends).
    pub frames_sent: Counter,
    /// Credited once per received pair frame (all backends, including
    /// the implicit in-process receives).
    pub frames_received: Counter,
    /// Event-trace sink; backends with their own threads (the TCP
    /// writer threads) register tracks here.
    pub trace: Option<Arc<TraceSink>>,
}

/// A backend carrying the off-chip aggregate mailboxes (see the module
/// docs for the cycle-level contract).
pub(crate) trait ChipTransport: Send + Sync {
    /// The mailbox slice producing tiles flush into: `None` means the
    /// consumer-side fabric itself (the in-process direct path);
    /// `Some` is a same-layout staging copy (on-chip entries are
    /// zero-sized placeholders — only off-chip boxes are ever touched
    /// through this slice).
    fn staging(&self) -> Option<&[Mailbox]>;

    /// Notes that `tile`'s off-chip segments for `parity` are written;
    /// publishes every pair whose producers have all flushed for this
    /// `cycle`.
    fn tile_flushed(&self, tile: usize, parity: usize, cycle: u64);

    /// Blocks until every pair in worker `who`'s receive set has this
    /// `cycle`'s frame, copying each into the consumer mailbox
    /// (`channels[onchip + pair]`) at `parity`. Must be called after
    /// the worker's own flushes and before barrier 1.
    fn complete_recvs(
        &self,
        who: usize,
        parity: usize,
        cycle: u64,
        channels: &[Mailbox],
        onchip: usize,
    );

    /// Total bytes that crossed the chip boundary so far (whole pair
    /// aggregates, every backend — see the module docs).
    fn bytes_sent(&self) -> u64;

    /// Re-derives backend-side mirror state from the engine fabric
    /// after the engine mutated it outside the cycle loop (checkpoint
    /// restore, lane fork). Staged backends re-mirror the consumer
    /// boxes into staging (both parities) so the next cycle's frames
    /// carry the restored bytes; the shared-memory backend also rewinds
    /// its sequence words to `cycle`. Called between runs only — no
    /// worker is in flight. The default (in-process) is a no-op.
    fn resync(&self, _channels: &[Mailbox], _onchip: usize, _cycle: u64) {}

    /// Short stable backend name.
    fn name(&self) -> &'static str;
}

/// Builds the chosen backend over the compiled fabric.
pub(crate) fn build(choice: TransportChoice, init: TransportInit<'_>) -> Box<dyn ChipTransport> {
    match choice {
        TransportChoice::InProcess => Box::new(inproc::InProcess::new(init)),
        TransportChoice::SharedMem => Box::new(shmem::SharedMem::new(init)),
        TransportChoice::Tcp => Box::new(tcp::Tcp::new(init)),
    }
}

/// The machinery every backend shares: the per-pair producer countdown
/// and the staging fabric (empty for the in-process path). `on_ready`
/// fires exactly once per pair per cycle, on the worker that flushed
/// the pair's last producing tile, after an `AcqRel` edge that makes
/// all producers' staging writes visible to it.
pub(crate) struct Staging {
    /// Same length/layout as the engine fabric; on-chip entries are
    /// zero-sized. Empty (no staging) for the in-process path.
    boxes: Vec<Mailbox>,
    /// Per tile: pair indices it produces into.
    produces: Vec<Vec<u32>>,
    /// Per pair: producing tiles still unflushed this cycle.
    counts: Vec<AtomicU32>,
    /// Per pair: total producing tiles (the countdown reset value).
    full: Vec<u32>,
    /// Per pair: words in one parity buffer of the aggregate.
    pair_words: Vec<usize>,
    /// Number of leading on-chip mailboxes.
    onchip: usize,
    bytes: AtomicU64,
    frames_sent: Counter,
    frames_received: Counter,
}

impl Staging {
    /// Builds the countdown (and, with `staged`, the mirror staging
    /// fabric) from the engine's init data.
    pub(crate) fn new(init: &TransportInit<'_>, staged: bool) -> Self {
        let npairs = init.pairs.len();
        let mut full = vec![0u32; npairs];
        for tile in &init.produces {
            for &p in tile {
                full[p as usize] += 1;
            }
        }
        let pair_words: Vec<usize> = (0..npairs)
            .map(|p| init.channels[init.onchip + p].words())
            .collect();
        let boxes = if staged {
            let mut boxes: Vec<Mailbox> = (0..init.onchip).map(|_| Mailbox::new(0)).collect();
            for (p, &words) in pair_words.iter().enumerate() {
                let b = Mailbox::new(words);
                // Mirror the consumer box, both parities: frames carry
                // whole buffers, so unwritten words must hold exactly
                // what the direct path would have left there
                // (including the epoch-0 register preload in parity 0).
                // SAFETY: single-threaded build — no concurrent access.
                unsafe {
                    for parity in 0..2 {
                        let src = init.channels[init.onchip + p].read(parity);
                        std::ptr::copy_nonoverlapping(src.as_ptr(), b.write_base(parity), words);
                    }
                }
                boxes.push(b);
            }
            boxes
        } else {
            Vec::new()
        };
        Staging {
            boxes,
            produces: init.produces.clone(),
            counts: full.iter().map(|&f| AtomicU32::new(f)).collect(),
            full,
            pair_words,
            onchip: init.onchip,
            bytes: AtomicU64::new(0),
            frames_sent: init.frames_sent.clone(),
            frames_received: init.frames_received.clone(),
        }
    }

    /// The staging fabric, or `None` for the in-process path.
    pub(crate) fn boxes(&self) -> Option<&[Mailbox]> {
        if self.boxes.is_empty() {
            None
        } else {
            Some(&self.boxes)
        }
    }

    /// One parity buffer of pair `p`'s staging box.
    ///
    /// SAFETY contract of the caller: all producers of `p` have
    /// flushed (the countdown reached zero through this thread's
    /// `AcqRel` decrement), so no writer of this parity remains.
    pub(crate) unsafe fn frame(&self, p: usize, parity: usize) -> &[u64] {
        unsafe { self.boxes[self.onchip + p].read(parity) }
    }

    /// Words in one parity buffer of pair `p`.
    pub(crate) fn words(&self, p: usize) -> usize {
        self.pair_words[p]
    }

    /// Registers `tile`'s flush; calls `on_ready(pair)` for each pair
    /// whose countdown it completed (crediting the frame's bytes), and
    /// re-arms that pair for the next cycle.
    pub(crate) fn tile_flushed(&self, tile: usize, mut on_ready: impl FnMut(usize)) {
        for &p in &self.produces[tile] {
            let p = p as usize;
            if self.counts[p].fetch_sub(1, Ordering::AcqRel) == 1 {
                self.bytes
                    .fetch_add(self.pair_words[p] as u64 * 8, Ordering::Relaxed);
                self.frames_sent.inc();
                on_ready(p);
                // Safe to re-arm before barrier 1: next-cycle flushes
                // only start after barrier 2.
                self.counts[p].store(self.full[p], Ordering::Release);
            }
        }
    }

    /// Re-mirrors the consumer boxes into the staging fabric, both
    /// parities — the build-time mirror re-run after a restore or lane
    /// fork rewrote the consumer-side mailboxes. No-op when unstaged.
    ///
    /// Caller contract: no worker is in flight (called between runs).
    pub(crate) fn resync(&self, channels: &[Mailbox], onchip: usize) {
        if self.boxes.is_empty() {
            return;
        }
        for (p, &words) in self.pair_words.iter().enumerate() {
            // SAFETY: between runs, nothing else reads or writes either
            // fabric — same situation as the single-threaded build.
            unsafe {
                for parity in 0..2 {
                    let src = channels[onchip + p].read(parity);
                    std::ptr::copy_nonoverlapping(
                        src.as_ptr(),
                        self.boxes[self.onchip + p].write_base(parity),
                        words,
                    );
                }
            }
        }
    }

    /// Total bytes credited so far.
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Credits `n` received pair frames.
    pub(crate) fn credit_recvs(&self, n: u64) {
        self.frames_received.add(n);
    }
}

/// Pins the calling thread to `core` (best effort, Linux only) when
/// `PARENDI_PIN=1` — the "pinned per-chip" half of the shared-memory
/// story. Silently a no-op elsewhere or when the syscall fails.
pub(crate) fn maybe_pin_to_core(core: usize) {
    if std::env::var("PARENDI_PIN").as_deref() != Ok("1") {
        return;
    }
    #[cfg(target_os = "linux")]
    {
        // Hand-declared cpu_set_t (1024 bits) + sched_setaffinity: the
        // container has no libc crate and the ABI is stable.
        let mut mask = [0u64; 16];
        mask[(core / 64) % 16] |= 1u64 << (core % 64);
        unsafe extern "C" {
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        }
        // SAFETY: mask outlives the call; pid 0 = calling thread.
        unsafe {
            sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr());
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = core;
    }
}
