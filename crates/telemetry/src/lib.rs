//! Observability primitives for the Parendi engines: lock-free event
//! tracing drained into Chrome trace-event JSON ([`trace`]), a typed
//! counter/gauge registry exported as a serializable snapshot
//! ([`metrics`]), and static bytecode statistics ([`stats`]).
//!
//! The crate is dependency-free and engine-agnostic: the simulator
//! crates thread [`TraceSink`]/[`MetricsRegistry`] handles through
//! their hot loops, and the bench harness embeds [`MetricsSnapshot`]
//! into its `BENCH_*.json` records. Every knob that feeds these types
//! (`PARENDI_TRACE`, `PARENDI_TRACE_LEVEL`) is cataloged in
//! `docs/ENVVARS.md`.

mod metrics;
mod stats;
mod trace;

pub use metrics::{Counter, MetricsRegistry, MetricsSnapshot};
pub use stats::{CodeStats, OpcodeCount, PairCount};
pub use trace::{
    SpanKind, TraceBuf, TraceConfig, TraceEvent, TraceLevel, TraceSink, TrackSummary, NO_TILE,
    SPAN_KINDS,
};
