//! `fault_campaign`: fault-injection campaigns over gang lanes on
//! corpus designs — the RIROS-style workload the scenario-parallel
//! engine makes cheap. Per design: boot every lane identically, fork
//! from the golden lane, install one stuck-at per non-golden lane
//! (`FaultPlan::round_robin`), run the campaign, and report
//! detected / latent / silent coverage plus faults/s throughput.
//!
//! The golden lane is asserted bit-exact against the reference
//! interpreter after every campaign — fault isolation is the
//! contract — and the binary exits nonzero if a campaign detects
//! nothing (a dead campaign must fail CI, not upload a green record).
//!
//! Flags / knobs: `--quick` (or `PARENDI_QUICK=1`) shrinks lanes and
//! cycles; `--resume <snapshot>` restores a checkpoint written by a
//! previous run (e.g. via `PARENDI_CHECKPOINT=path:N`) and finishes
//! that design's campaign from where it died; `PARENDI_BENCH_DIR`
//! receives `BENCH_fault_campaign.json`.

use parendi_bench::{parse_quick_flag, quick, rule, write_bench_json, BenchRecord};
use parendi_core::{compile, PartitionConfig};
use parendi_designs::{ca, prng};
use parendi_rtl::{Circuit, RegId};
use parendi_sim::{run_campaign, FaultPlan, GangSimulator, Simulator, Snapshot};

/// One campaign configuration over a corpus design. Both legs expose
/// their faulted state at primary outputs — a campaign over a design
/// with no outputs can only ever classify latent/silent.
struct Leg {
    circuit: Circuit,
    packed: bool,
    lanes: usize,
    boot: u64,
    cycles: u64,
}

fn legs() -> Vec<Leg> {
    if quick() {
        vec![
            Leg {
                circuit: ca::build_rule30(32),
                packed: true,
                lanes: 64,
                boot: 16,
                cycles: 96,
            },
            Leg {
                circuit: prng::build_seeded_bank(4),
                packed: false,
                lanes: 8,
                boot: 16,
                cycles: 64,
            },
        ]
    } else {
        vec![
            Leg {
                circuit: ca::build_rule30(64),
                packed: true,
                lanes: 256,
                boot: 32,
                cycles: 512,
            },
            Leg {
                circuit: prng::build_seeded_bank(8),
                packed: false,
                lanes: 32,
                boot: 32,
                cycles: 256,
            },
        ]
    }
}

/// `--resume <path>` from argv, if present.
fn parse_resume() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--resume" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--resume requires a snapshot path");
                std::process::exit(2);
            }));
        }
    }
    None
}

fn main() {
    parse_quick_flag();
    let resume = parse_resume().map(|p| {
        Snapshot::read(&p).unwrap_or_else(|e| {
            eprintln!("cannot resume from {p}: {e}");
            std::process::exit(2);
        })
    });

    let threads = 4usize;
    let mut records = Vec::new();
    let mut any_dead = false;

    println!("fault_campaign: stuck-at campaigns over gang lanes (golden lane 0)");
    println!(
        "{:<8} {:>6} {:>6} {:>7} {:>9} {:>8} {:>8} {:>8} {:>12} {:>14}",
        "design",
        "lanes",
        "packed",
        "faults",
        "cycles",
        "detect",
        "latent",
        "silent",
        "faults/s",
        "flane-cyc/s"
    );
    rule(94);

    for leg in legs() {
        let mut cfg = PartitionConfig::with_tiles(4);
        cfg.tiles_per_chip = 2;
        let comp = compile(&leg.circuit, &cfg).expect("corpus design compiles");
        let golden = 0u32;
        let plan = FaultPlan::round_robin(&leg.circuit, leg.lanes as u32, golden);
        assert!(
            !plan.is_empty(),
            "{}: empty fault plan",
            leg.circuit.name.clone()
        );

        let mut gang = if leg.packed {
            GangSimulator::new_packed(&leg.circuit, &comp.partition, threads, leg.lanes)
        } else {
            GangSimulator::new(&leg.circuit, &comp.partition, threads, leg.lanes)
        };

        // Resume path: if the snapshot matches this leg's design and
        // shape, restore it and finish the campaign; otherwise boot
        // from cycle 0. (PARENDI_CHECKPOINT=path:N makes the engine
        // drop resumable snapshots every N cycles automatically.)
        let mut done = 0u64;
        let resumed = match &resume {
            Some(snap)
                if snap.circuit() == leg.circuit.name && snap.lanes() as usize == leg.lanes =>
            {
                gang.restore(snap).unwrap_or_else(|e| {
                    eprintln!("{}: snapshot does not fit: {e}", leg.circuit.name.clone());
                    std::process::exit(2);
                });
                done = snap.cycle().saturating_sub(leg.boot).min(leg.cycles);
                true
            }
            _ => false,
        };
        if !resumed {
            // Shared boot, then fork every lane from the golden one —
            // the campaign pattern (a boot prefix amortized across the
            // whole fault set).
            gang.run(leg.boot);
            gang.fork_lanes(golden as usize);
        }

        let left = leg.cycles - done;
        let report =
            run_campaign(&mut gang, &plan, golden, left, 16).expect("round-robin plan is valid");

        // The golden lane must be bit-exact against the reference
        // interpreter over the full boot + campaign horizon: faults
        // are masked out of every other lane's blend, never lane 0's.
        let mut r = Simulator::new(&leg.circuit);
        r.step_n(leg.boot + leg.cycles);
        for ri in 0..leg.circuit.regs.len() {
            assert_eq!(
                gang.reg_value_lane(RegId(ri as u32), golden as usize),
                r.reg_value(RegId(ri as u32)),
                "{}: golden lane diverged from the interpreter at reg {}",
                leg.circuit.name.clone(),
                leg.circuit.regs[ri].name,
            );
        }

        println!(
            "{:<8} {:>6} {:>6} {:>7} {:>9} {:>8} {:>8} {:>8} {:>12.1} {:>14.0}",
            leg.circuit.name.clone(),
            leg.lanes,
            leg.packed,
            report.outcomes.len(),
            done + left,
            report.detected(),
            report.latent(),
            report.silent(),
            report.faults_per_s(),
            report.fault_lane_cycles_per_s(),
        );
        if report.detected() == 0 {
            any_dead = true;
            eprintln!(
                "ERROR: {}: campaign detected nothing ({})",
                leg.circuit.name.clone(),
                report.summary()
            );
        }

        let rec = BenchRecord {
            bin: "fault_campaign".into(),
            design: leg.circuit.name.clone(),
            engine: "gang".into(),
            packed: gang.is_packed(),
            chips: comp.partition.chips,
            tiles: comp.partition.tiles_used(),
            lanes: leg.lanes as u32,
            threads: threads as u32,
            cycles: left,
            cycles_per_s: left as f64 / report.seconds.max(1e-12),
            lane_cycles_per_s: report.fault_lane_cycles_per_s(),
            total_s: report.seconds,
            ..BenchRecord::default()
        };
        records.push(rec.with_metrics(gang.metrics_snapshot()));
    }

    match write_bench_json("fault_campaign", &records) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => {
            // A campaign whose evidence never lands on disk must not
            // report success — CI greps the JSON, not the stdout.
            eprintln!("\nfault_campaign: could not write bench json: {e}");
            std::process::exit(1);
        }
    }
    if any_dead {
        eprintln!("fault_campaign: at least one campaign detected nothing");
        std::process::exit(1);
    }
}
