//! The gang daemon binary.
//!
//! ```text
//! parendi-serve           # serve on PARENDI_SERVE_SOCKET until SHUTDOWN
//! parendi-serve --stop    # ask a running daemon to exit
//! parendi-serve --stats   # print a running daemon's metrics
//! ```
//!
//! Knobs (`PARENDI_SERVE_SOCKET`, `PARENDI_SERVE_CACHE_CAP`,
//! `PARENDI_SERVE_WORKERS`, `PARENDI_SERVE_THREADS`) are documented in
//! `docs/ENVVARS.md`.

use parendi_serve::{Client, ServeConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let cfg = ServeConfig::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            println!(
                "[serve] listening on {} (cache {} entries, {} gangs x {} threads)",
                cfg.socket.display(),
                cfg.cache_cap,
                cfg.workers,
                cfg.threads
            );
            match parendi_serve::run(cfg) {
                Ok(()) => {
                    println!("[serve] stopped");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("[serve] ERROR: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--stop") => match Client::connect(&cfg.socket).and_then(Client::shutdown) {
            Ok(()) => {
                println!("[serve] daemon at {} stopping", cfg.socket.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("[serve] ERROR: {e}");
                ExitCode::FAILURE
            }
        },
        Some("--stats") => match Client::connect(&cfg.socket).and_then(|mut c| c.stats()) {
            Ok(snap) => {
                print!("{}", snap.to_text());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("[serve] ERROR: {e}");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("usage: parendi-serve [--stop | --stats]   (got {other:?})");
            ExitCode::FAILURE
        }
    }
}
