//! Gang simulation over the designs corpus: per-lane stimulus on the
//! seeded PRNG bank (a seed farm — the gang engine's flagship workload)
//! and lane-exact execution of input-free corpus designs.

use parendi_core::{compile, MultiChipStrategy, PartitionConfig};
use parendi_designs::{prng, Benchmark};
use parendi_rtl::bits::Bits;
use parendi_rtl::RegId;
use parendi_sim::{GangSimulator, Simulator, StimulusSet};

/// A seed farm: one compiled partition, eight lanes, a different seed
/// per lane driven through the `reseed`/`seed` ports for one cycle.
/// Every generator of every lane must land on its software golden
/// state — `generators × lanes` decorrelated streams from one compile.
#[test]
fn seeded_prng_bank_runs_divergent_lanes() {
    let n = 8u32;
    let lanes = 8usize;
    let c = prng::build_seeded_bank(n);
    let mut cfg = PartitionConfig::with_tiles(n);
    cfg.tiles_per_chip = 4; // two chips: lane traffic crosses the gateway
    let comp = compile(&c, &cfg).expect("seeded bank compiles");
    let mut gang = GangSimulator::new(&c, &comp.partition, 4, lanes);

    let lane_seed = |l: usize| 0xA5A5_0000_0000_0000u64 | (l as u64 * 0x1234_5678);
    let mut stim = StimulusSet::new(lanes as u32);
    for l in 0..lanes as u32 {
        stim.drive(0, l, "reseed", Bits::from_u64(1, 1));
        stim.drive(0, l, "seed", Bits::from_u64(64, lane_seed(l as usize)));
        stim.drive(1, l, "reseed", Bits::from_u64(1, 0));
    }
    let post = 16u64;
    gang.run_stimulus(1 + post, &stim);

    for l in 0..lanes {
        for g in 0..n {
            let expect = prng::soft_seeded_state(g, lane_seed(l), post);
            assert_eq!(
                gang.reg_value_lane(RegId(g), l).to_u64(),
                expect,
                "lane {l} generator {g}"
            );
            assert_eq!(
                gang.peek_output_lane(&format!("o{g}"), l)
                    .expect("output exists")
                    .to_u64(),
                expect,
                "lane {l} output o{g}"
            );
        }
    }
}

/// Input-free corpus designs: every gang lane must execute exactly like
/// the reference interpreter, across both multi-chip fiber-distribution
/// strategies (the lanes cannot diverge — what's under test is the
/// lane-strided execution of real designs, arrays included).
#[test]
fn corpus_designs_lanes_match_reference() {
    for (bench, tiles, per_chip, cycles) in [
        (Benchmark::Pico, 12u32, 6u32, 40u64),
        (Benchmark::Sr(3), 9, 5, 25),
    ] {
        let c = bench.build();
        for mc in [MultiChipStrategy::Pre, MultiChipStrategy::Post] {
            let mut cfg = PartitionConfig::with_tiles(tiles);
            cfg.tiles_per_chip = per_chip;
            cfg.multi_chip = mc;
            let comp = compile(&c, &cfg).expect("corpus design compiles");
            let mut reference = Simulator::new(&c);
            let mut gang = GangSimulator::new(&c, &comp.partition, 4, 4);
            reference.step_n(cycles);
            gang.run(cycles);
            for lane in 0..4 {
                for i in 0..c.regs.len() {
                    assert_eq!(
                        gang.reg_value_lane(RegId(i as u32), lane),
                        reference.reg_value(RegId(i as u32)),
                        "{} {mc:?} lane {lane}: reg {} diverged",
                        bench.name(),
                        c.regs[i].name
                    );
                }
                for (ai, a) in c.arrays.iter().enumerate() {
                    for idx in 0..a.depth {
                        assert_eq!(
                            gang.array_value_lane(parendi_rtl::ArrayId(ai as u32), idx, lane),
                            reference.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                            "{} {mc:?} lane {lane}: array {}[{idx}]",
                            bench.name(),
                            a.name
                        );
                    }
                }
            }
        }
    }
}

/// Packed 1-bit lanes over real corpus designs: the control-heavy mesh
/// NoC (dense 1-bit valid/grant logic — the packed mode's target) and
/// the multi-cycle RISC-V core, at lane counts straddling the 64-lane
/// packed word boundary, across both multi-chip strategies. Input-free,
/// so every packed lane must equal the single reference interpreter
/// bit for bit.
#[test]
fn gang_packed_corpus_designs_match_reference() {
    for (bench, tiles, per_chip, cycles, lanes) in [
        (Benchmark::Sr(3), 9u32, 5u32, 40u64, 65usize),
        (Benchmark::Pico, 12, 6, 40, 64),
    ] {
        let c = bench.build();
        for mc in [MultiChipStrategy::Pre, MultiChipStrategy::Post] {
            let mut cfg = PartitionConfig::with_tiles(tiles);
            cfg.tiles_per_chip = per_chip;
            cfg.multi_chip = mc;
            let comp = compile(&c, &cfg).expect("corpus design compiles");
            let mut reference = Simulator::new(&c);
            let mut gang = GangSimulator::new_packed(&c, &comp.partition, 4, lanes);
            assert!(gang.is_packed());
            reference.step_n(cycles);
            gang.run(cycles);
            for lane in [0usize, 1, 63.min(lanes - 1), lanes - 1] {
                for i in 0..c.regs.len() {
                    assert_eq!(
                        gang.reg_value_lane(RegId(i as u32), lane),
                        reference.reg_value(RegId(i as u32)),
                        "{} {mc:?} packed lane {lane}: reg {} diverged",
                        bench.name(),
                        c.regs[i].name
                    );
                }
                for (ai, a) in c.arrays.iter().enumerate() {
                    for idx in 0..a.depth {
                        assert_eq!(
                            gang.array_value_lane(parendi_rtl::ArrayId(ai as u32), idx, lane),
                            reference.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                            "{} {mc:?} packed lane {lane}: array {}[{idx}]",
                            bench.name(),
                            a.name
                        );
                    }
                }
                for o in &c.outputs {
                    assert_eq!(
                        gang.peek_output_lane(&o.name, lane),
                        reference.output(&o.name),
                        "{} {mc:?} packed lane {lane}: output {}",
                        bench.name(),
                        o.name
                    );
                }
            }
        }
    }
}

/// The seed farm on packed lanes: per-lane reseed stimulus through the
/// packed 1-bit `reseed` input (the bit-scatter path), every generator
/// of every lane on its software golden state.
#[test]
fn gang_packed_seeded_bank_runs_divergent_lanes() {
    let n = 8u32;
    let lanes = 66usize; // straddle the packed word boundary
    let c = prng::build_seeded_bank(n);
    let mut cfg = PartitionConfig::with_tiles(n);
    cfg.tiles_per_chip = 4;
    let comp = compile(&c, &cfg).expect("seeded bank compiles");
    let mut gang = GangSimulator::new_packed(&c, &comp.partition, 4, lanes);

    let lane_seed = |l: usize| 0x5EED_0000_0000_0000u64 | (l as u64 * 0x9E37_79B9);
    let mut stim = StimulusSet::new(lanes as u32);
    for l in 0..lanes as u32 {
        stim.drive(0, l, "reseed", Bits::from_u64(1, 1));
        stim.drive(0, l, "seed", Bits::from_u64(64, lane_seed(l as usize)));
        stim.drive(1, l, "reseed", Bits::from_u64(1, 0));
    }
    let post = 16u64;
    gang.run_stimulus(1 + post, &stim);
    for l in [0usize, 31, 63, 64, 65] {
        for g in 0..n {
            let expect = prng::soft_seeded_state(g, lane_seed(l), post);
            assert_eq!(
                gang.reg_value_lane(RegId(g), l).to_u64(),
                expect,
                "packed lane {l} generator {g}"
            );
        }
    }
}

/// The pure-control Rule 30 automaton on packed lanes: per-lane
/// injection bits through the packed-input scatter path, every lane
/// checked against the golden software model — and against the strided
/// gang — at a lane count past the packed word boundary.
#[test]
fn gang_packed_rule30_matches_golden_model() {
    use parendi_designs::ca;
    let cells = 96u32;
    let lanes = 80usize;
    let cycles = 24u64;
    let c = ca::build_rule30(cells);
    let mut cfg = PartitionConfig::with_tiles(8);
    cfg.tiles_per_chip = 4;
    let comp = compile(&c, &cfg).expect("automaton compiles");
    let mut stim = StimulusSet::new(lanes as u32);
    // Lane l injects on cycles where (cycle + l) % 3 == 0: every lane
    // sees a different chaotic trajectory.
    for l in 0..lanes as u32 {
        for cy in 0..cycles {
            let inj = (cy + l as u64).is_multiple_of(3);
            stim.drive(cy, l, "inj", Bits::from_u64(1, inj as u64));
        }
    }
    let mut packed = GangSimulator::new_packed(&c, &comp.partition, 4, lanes);
    let mut strided = GangSimulator::new(&c, &comp.partition, 4, lanes);
    packed.run_stimulus(cycles, &stim);
    strided.run_stimulus(cycles, &stim);
    for l in [0usize, 1, 62, 63, 64, 79] {
        let mut soft = ca::soft_rule30_init(cells);
        for cy in 0..cycles {
            let inj = (cy + l as u64).is_multiple_of(3);
            soft = ca::soft_rule30_step(&soft, inj);
        }
        for (i, &bit) in soft.iter().enumerate() {
            assert_eq!(
                packed.reg_value_lane(RegId(i as u32), l).to_u64(),
                bit as u64,
                "packed lane {l} cell {i}"
            );
            assert_eq!(
                strided.reg_value_lane(RegId(i as u32), l).to_u64(),
                bit as u64,
                "strided lane {l} cell {i}"
            );
        }
        let parity = soft.iter().filter(|&&b| b).count() as u64 % 2;
        assert_eq!(
            packed.peek_output_lane("parity", l).unwrap().to_u64(),
            parity,
            "packed lane {l} parity"
        );
    }
}
