//! The output of the Parendi compiler: processes assigned to tiles.

use crate::process::Process;
use parendi_graph::fiber::{FiberSet, SinkKind};

/// A complete partition: one [`Process`] per tile, grouped by chip.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Processes in tile order (chip-major).
    pub processes: Vec<Process>,
    /// Number of chips spanned.
    pub chips: u32,
    /// Sink kind of every fiber (copied from extraction, indexed by
    /// `FiberId`), kept here so consumers need not re-extract.
    pub fiber_sinks: Vec<SinkKind>,
}

impl Partition {
    /// Builds a partition from processes (will be sorted chip-major).
    pub fn new(mut processes: Vec<Process>, fs: &FiberSet) -> Self {
        processes.sort_by_key(|p| p.chip);
        let chips = processes.iter().map(|p| p.chip + 1).max().unwrap_or(1);
        Partition {
            processes,
            chips,
            fiber_sinks: fs.fibers.iter().map(|f| f.sink).collect(),
        }
    }

    /// Number of tiles used.
    pub fn tiles_used(&self) -> u32 {
        self.processes.len() as u32
    }

    /// `t_comp`: the straggler process cost in IPU cycles.
    pub fn straggler_cost(&self) -> u64 {
        self.processes.iter().map(|p| p.ipu_cost).max().unwrap_or(0)
    }

    /// Mean process cost in IPU cycles (for utilization reporting).
    pub fn mean_cost(&self) -> f64 {
        if self.processes.is_empty() {
            return 0.0;
        }
        self.processes
            .iter()
            .map(|p| p.ipu_cost as f64)
            .sum::<f64>()
            / self.processes.len() as f64
    }

    /// Tile utilization: mean/straggler (1.0 = perfectly balanced).
    pub fn utilization(&self) -> f64 {
        let s = self.straggler_cost();
        if s == 0 {
            1.0
        } else {
            self.mean_cost() / s as f64
        }
    }

    /// Tiles on the given chip.
    pub fn tiles_on_chip(&self, chip: u32) -> usize {
        self.processes.iter().filter(|p| p.chip == chip).count()
    }
}
