//! Fig. 6: straggler fibers and performance-scaling regions for the
//! three small designs (pico, bitcoin, rocket).
//!
//! (b) fiber computation-cycle distributions; (c) the per-cycle cost
//! breakdown as tiles double — imbalanced designs plateau at the
//! straggler almost immediately.

use parendi_bench::ipu_point;
use parendi_designs::Benchmark;
use parendi_graph::{extract_fibers, CostModel};
use parendi_machine::ipu::IpuConfig;

fn main() {
    let ipu = IpuConfig::m2000();
    for bench in Benchmark::small_three() {
        let c = bench.build();
        let costs = CostModel::of(&c);
        let fs = extract_fibers(&c, &costs);
        let mut cyc: Vec<u64> = fs.fibers.iter().map(|f| f.ipu_cost).collect();
        cyc.sort_unstable();
        let total: u64 = cyc.iter().sum();
        println!("== {} ==", bench.name());
        println!(
            "Fig. 6b: {} fibers | min {} p50 {} p90 {} max {} | m_crit ~ {:.0}",
            cyc.len(),
            cyc[0],
            cyc[cyc.len() / 2],
            cyc[cyc.len() * 9 / 10],
            cyc[cyc.len() - 1],
            total as f64 / cyc[cyc.len() - 1] as f64,
        );
        println!(
            "Fig. 6c: {:>6} {:>10} {:>10} {:>10} {:>10}",
            "tiles", "t_comp", "t_comm", "t_sync", "norm-total"
        );
        let mut base_total = None;
        let mut tiles = 1u32;
        while tiles <= 1024 {
            let p = ipu_point(&c, tiles, &ipu);
            let total = p.timings.total();
            let base = *base_total.get_or_insert(total);
            println!(
                "        {:>6} {:>10.0} {:>10.0} {:>10.0} {:>10.3}",
                p.tiles_used,
                p.timings.comp,
                p.timings.comm,
                p.timings.sync,
                total / base
            );
            tiles *= 4;
        }
        println!();
    }
    println!("Shape check: pico plateaus immediately (giant straggler);");
    println!("bitcoin keeps reducing t_comp through hundreds of tiles.");
}
