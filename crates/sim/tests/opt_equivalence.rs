//! The optimizer (fold + CSE + DCE) must preserve semantics exactly:
//! optimized circuits produce bit-identical architectural state.

mod common;

use common::random_circuit;
use parendi_rtl::{optimize, RegId};
use parendi_sim::Simulator;
use proptest::prelude::*;

fn check_opt_equivalence(seed: u64, cycles: u64) {
    let c = random_circuit(seed, 10, 50);
    let (o, stats) = optimize(&c);
    assert!(
        stats.nodes_after <= stats.nodes_before,
        "optimizer must not grow circuits"
    );
    o.validate().expect("optimized circuit validates");
    let mut sim_c = Simulator::new(&c);
    let mut sim_o = Simulator::new(&o);
    sim_c.step_n(cycles);
    sim_o.step_n(cycles);
    for i in 0..c.regs.len() {
        assert_eq!(
            sim_o.reg_value(RegId(i as u32)),
            sim_c.reg_value(RegId(i as u32)),
            "seed {seed}: register {} ({}) diverged after optimization",
            i,
            c.regs[i].name
        );
    }
    for (ai, a) in c.arrays.iter().enumerate() {
        for idx in 0..a.depth {
            assert_eq!(
                sim_o.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                sim_c.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                "seed {seed}: array {}[{idx}] diverged",
                a.name
            );
        }
    }
}

#[test]
fn fixed_seeds() {
    for seed in 0..12u64 {
        check_opt_equivalence(seed, 30);
    }
}

#[test]
fn optimizer_shrinks_benchmark_designs() {
    // The SHA pipeline is constant-rich (K table) and must shrink.
    let c = parendi_designs_stub_miner();
    let (o, stats) = optimize(&c);
    assert!(stats.nodes_after < stats.nodes_before, "{stats:?}");
    assert!(stats.folded > 0 || stats.deduped > 0);
    o.validate().unwrap();
}

/// A miner-like constant-heavy circuit built locally (the designs crate
/// is not a dependency of parendi-sim).
fn parendi_designs_stub_miner() -> parendi_rtl::Circuit {
    use parendi_rtl::Builder;
    let mut b = Builder::new("stub");
    let r = b.reg("acc", 32, 1);
    let mut v = r.q();
    for k in [0x428a2f98u64, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5] {
        let c1 = b.lit(32, k);
        let c2 = b.lit(32, k); // duplicate constant: CSE fodder
        let s = b.add(c1, c2); // constant: fold fodder
        let t = b.xor(v, s);
        v = b.rotr(t, 7);
    }
    b.connect(r, v);
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn optimize_preserves_semantics(seed in 0u64..100_000, cycles in 1u64..40) {
        check_opt_equivalence(seed, cycles);
    }
}
