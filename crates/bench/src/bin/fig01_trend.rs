//! Fig. 1: chip growth vs single-thread performance, and the implied
//! core count needed to simulate a flagship chip at the 2006 rate.

use parendi_machine::trends;

fn main() {
    println!("Fig. 1: transistors vs single-thread performance (fitted trends)");
    println!(
        "{:>6} {:>18} {:>18} {:>16}",
        "year", "transistors(K)", "1T-SPECint(x1e3)", "required cores"
    );
    let mut year = 2004.0;
    while year <= 2034.0 {
        println!(
            "{:>6.0} {:>18.3e} {:>18.3e} {:>16.1}",
            year,
            trends::transistors_k(year),
            trends::single_thread_k(year),
            trends::required_cores(year)
        );
        year += 2.0;
    }
    println!(
        "\nShape check: required cores crosses 1000 around {}",
        (2006..2040)
            .find(|&y| trends::required_cores(y as f64) >= 1000.0)
            .map(|y| y.to_string())
            .unwrap_or_else(|| "never".into())
    );
}
