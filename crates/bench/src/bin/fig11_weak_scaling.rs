//! Fig. 11: coping with increasing design size (weak scaling). Parendi
//! holds its rate longer than Verilator as meshes grow, so the speedup
//! (dashed line in the paper) rises with N. Also reports the Fig. 12
//! utilization series: imbalance leaves idle tiles that absorb growth.

use parendi_baseline::VerilatorModel;
use parendi_bench::{best_ipu, lr_max, sr_max, verilator_point};
use parendi_designs::Benchmark;
use parendi_machine::ipu::IpuConfig;
use parendi_machine::x64::X64Config;

fn sweep(label: &str, benches: Vec<Benchmark>) {
    let ipu = IpuConfig::m2000();
    let ix3 = X64Config::ix3();
    let ae4 = X64Config::ae4();
    println!("{label}");
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "design", "ix3-kHz", "ae4-kHz", "ipu-kHz", "sp-ix3", "sp-ae4", "util%"
    );
    for b in benches {
        let c = b.build();
        let vm = VerilatorModel::new(&c);
        let vx = verilator_point(&vm, &ix3);
        let va = verilator_point(&vm, &ae4);
        let best = best_ipu(&c, &ipu);
        println!(
            "{:>7} {:>10.2} {:>10.2} {:>10.1} {:>9.2} {:>9.2} {:>8.1}",
            b.name(),
            vx.mt_khz,
            va.mt_khz,
            best.khz,
            best.khz / vx.mt_khz,
            best.khz / va.mt_khz,
            100.0 * best.comp.partition.utilization(),
        );
    }
    println!();
}

fn main() {
    println!("Fig. 11: weak scaling (best rates per design size)\n");
    sweep("srN sweep:", (2..=sr_max()).map(Benchmark::Sr).collect());
    sweep("lrN sweep:", (2..=lr_max()).map(Benchmark::Lr).collect());
    println!("Shape check: the ipu column falls far more slowly than the x64 columns,");
    println!("so the speedup columns rise with N (Fig. 11's dashed lines). Low util%");
    println!("at small N is the Fig. 12 headroom that absorbs design growth.");
}
