//! Gang simulation over the designs corpus: per-lane stimulus on the
//! seeded PRNG bank (a seed farm — the gang engine's flagship workload)
//! and lane-exact execution of input-free corpus designs.

use parendi_core::{compile, MultiChipStrategy, PartitionConfig};
use parendi_designs::{prng, Benchmark};
use parendi_rtl::bits::Bits;
use parendi_rtl::RegId;
use parendi_sim::{GangSimulator, Simulator, StimulusSet};

/// A seed farm: one compiled partition, eight lanes, a different seed
/// per lane driven through the `reseed`/`seed` ports for one cycle.
/// Every generator of every lane must land on its software golden
/// state — `generators × lanes` decorrelated streams from one compile.
#[test]
fn seeded_prng_bank_runs_divergent_lanes() {
    let n = 8u32;
    let lanes = 8usize;
    let c = prng::build_seeded_bank(n);
    let mut cfg = PartitionConfig::with_tiles(n);
    cfg.tiles_per_chip = 4; // two chips: lane traffic crosses the gateway
    let comp = compile(&c, &cfg).expect("seeded bank compiles");
    let mut gang = GangSimulator::new(&c, &comp.partition, 4, lanes);

    let lane_seed = |l: usize| 0xA5A5_0000_0000_0000u64 | (l as u64 * 0x1234_5678);
    let mut stim = StimulusSet::new(lanes as u32);
    for l in 0..lanes as u32 {
        stim.drive(0, l, "reseed", Bits::from_u64(1, 1));
        stim.drive(0, l, "seed", Bits::from_u64(64, lane_seed(l as usize)));
        stim.drive(1, l, "reseed", Bits::from_u64(1, 0));
    }
    let post = 16u64;
    gang.run_stimulus(1 + post, &stim);

    for l in 0..lanes {
        for g in 0..n {
            let expect = prng::soft_seeded_state(g, lane_seed(l), post);
            assert_eq!(
                gang.reg_value_lane(RegId(g), l).to_u64(),
                expect,
                "lane {l} generator {g}"
            );
            assert_eq!(
                gang.peek_output_lane(&format!("o{g}"), l)
                    .expect("output exists")
                    .to_u64(),
                expect,
                "lane {l} output o{g}"
            );
        }
    }
}

/// Input-free corpus designs: every gang lane must execute exactly like
/// the reference interpreter, across both multi-chip fiber-distribution
/// strategies (the lanes cannot diverge — what's under test is the
/// lane-strided execution of real designs, arrays included).
#[test]
fn corpus_designs_lanes_match_reference() {
    for (bench, tiles, per_chip, cycles) in [
        (Benchmark::Pico, 12u32, 6u32, 40u64),
        (Benchmark::Sr(3), 9, 5, 25),
    ] {
        let c = bench.build();
        for mc in [MultiChipStrategy::Pre, MultiChipStrategy::Post] {
            let mut cfg = PartitionConfig::with_tiles(tiles);
            cfg.tiles_per_chip = per_chip;
            cfg.multi_chip = mc;
            let comp = compile(&c, &cfg).expect("corpus design compiles");
            let mut reference = Simulator::new(&c);
            let mut gang = GangSimulator::new(&c, &comp.partition, 4, 4);
            reference.step_n(cycles);
            gang.run(cycles);
            for lane in 0..4 {
                for i in 0..c.regs.len() {
                    assert_eq!(
                        gang.reg_value_lane(RegId(i as u32), lane),
                        reference.reg_value(RegId(i as u32)),
                        "{} {mc:?} lane {lane}: reg {} diverged",
                        bench.name(),
                        c.regs[i].name
                    );
                }
                for (ai, a) in c.arrays.iter().enumerate() {
                    for idx in 0..a.depth {
                        assert_eq!(
                            gang.array_value_lane(parendi_rtl::ArrayId(ai as u32), idx, lane),
                            reference.array_value(parendi_rtl::ArrayId(ai as u32), idx),
                            "{} {mc:?} lane {lane}: array {}[{idx}]",
                            bench.name(),
                            a.name
                        );
                    }
                }
            }
        }
    }
}
