//! Exchange planning: what each tile sends and receives every cycle.
//!
//! After partitioning, every register (and array write port) whose value
//! is consumed on another tile contributes to the BSP communication
//! phase. The differential-exchange optimization (§5.2) replaces
//! whole-array transfers with per-port `(index, data, enable)` records,
//! using the static bound on writes per cycle.
//!
//! Since the point-to-point refactor, the volumes reported here are a
//! *derived view* of the executable [`crate::routing::Routing`]: the
//! planner sums bytes over exactly the hops the BSP engine executes, so
//! the cost model and the engine cannot diverge. [`plan`] remains as a
//! convenience wrapper that compiles a throwaway routing.

use crate::partition::Partition;
use crate::routing::Routing;
use parendi_rtl::Circuit;

/// Per-cycle communication volumes implied by a partition.
#[derive(Clone, Debug, Default)]
pub struct ExchangePlan {
    /// Bytes each tile sends per cycle (fanout included).
    pub tile_out_bytes: Vec<u64>,
    /// Bytes each tile receives per cycle.
    pub tile_in_bytes: Vec<u64>,
    /// Worst per-tile on-chip traffic (out + in), driving the on-chip
    /// exchange cost (Fig. 5 left: cost follows `b`).
    pub max_tile_onchip_bytes: u64,
    /// Total bytes crossing chip boundaries, driving the off-chip cost
    /// (Fig. 5 right: cost follows `m×b`).
    pub offchip_total_bytes: u64,
    /// Unique value bytes crossing tile boundaries (Table 3 "Int.",
    /// fanout excluded).
    pub onchip_cut_bytes: u64,
    /// Unique value bytes crossing chip boundaries (Table 3 "Ext.").
    pub offchip_cut_bytes: u64,
}

impl ExchangePlan {
    /// Total fanout-included bytes sent per cycle.
    pub fn total_sent(&self) -> u64 {
        self.tile_out_bytes.iter().sum()
    }
}

/// Computes the [`ExchangePlan`] of `partition` by compiling its
/// point-to-point routing and summing bytes over the routed hops.
///
/// Callers that also need the routes themselves (the BSP engine, the
/// figure binaries) should build a [`Routing`] once and call
/// [`Routing::exchange_plan`] instead of paying for two compilations.
pub fn plan(circuit: &Circuit, partition: &Partition, differential: bool) -> ExchangePlan {
    Routing::new(circuit, partition).exchange_plan(circuit, differential)
}
